"""Shared configuration for the benchmark harness.

Budgets are controlled by two environment variables:

* ``REPRO_BENCH_SCALE`` — multiplier on the pure-sampling budgets
  (default 0.25; 1.0 gives the table defaults documented in
  ``repro.experiments.config``).
* ``REPRO_BENCH_FULL`` — set to ``1`` to run the BO methods at the paper's
  full budgets even where the default bench shrinks them for wall-clock.
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@pytest.fixture(scope="session")
def bench_full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1, warmup_rounds=0)
