"""Benchmark the batched acquisition + dispatch throughput work.

Three timed sections, mirroring the three tiers of the throughput PR:

* ``proposal`` — one 60-D multi-weight pBO batch proposal (n=600 training
  points, 8 weights): the lockstep path, where every DIRECT/COBYLA
  generation scores the weight-union with ONE shared GP posterior
  evaluation, versus the pre-change per-weight searches (forced through
  :func:`propose_batch`'s independent-search fallback, which re-runs the
  posterior once per weight per candidate batch).
* ``dispatch`` — broker evaluation of a large unique-point block on the
  vectorized UVLO testbench objective: chunked vectorized dispatch (one
  ``objective.evaluate((k, D))`` call per chunk) versus the historical
  row-at-a-time dispatch.  Both sides run the full broker bookkeeping
  (content-addressed caching, stats, policies), so the speedup is what a
  campaign actually sees.
* ``backend`` — ``REPRO_BACKEND=numba`` versus the numpy reference on the
  marginal-likelihood hot path (fused corr/grad sweep, ARD contraction,
  ``α αᵀ − K⁻¹`` assembly).  Skipped — and recorded as such — when numba
  is not installed; the default container ships without it.

Unlike ``gp_hotpath.py`` this benchmark needs no baseline checkout: the
legacy paths still exist behind the current APIs (the per-weight proposal
fallback and ``dispatch="row"``), so both sides measure the same tree
in-process.

Writes a JSON report (default ``BENCH_acq_throughput.json`` at the repo
root) following the ``BENCH_gp_hotpath.json`` meta/speedup schema.
``--fast`` shrinks every section to smoke-test size for CI.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/acq_throughput.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(os.path.dirname(_HERE))


def _fitted_gp(n, dim, seed=0):
    from repro.gp import GaussianProcess
    from repro.kernels import Matern52

    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, (n, dim))
    y = np.sin(X.sum(axis=1)) + 0.1 * rng.standard_normal(n)
    return GaussianProcess(
        Matern52(dim=dim, lengthscale=2.0 * np.sqrt(dim)), noise_variance=1e-4
    ).fit(X, y)


def _best_of(repeats, fn):
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_proposal(fast):
    """Lockstep multi-weight proposal vs independent per-weight searches."""
    import repro.bo.propose as propose_mod
    from repro.acquisition.functions import pbo_weights
    from repro.bo.propose import propose_batch

    n_train, dim = (80, 12) if fast else (600, 60)
    repeats = 1 if fast else 3
    gp = _fitted_gp(n_train, dim, seed=0)
    weights = pbo_weights(5 if fast else 8)
    box = np.column_stack([-np.ones(dim), np.ones(dim)])

    t_current, current = _best_of(
        repeats, lambda: propose_batch(gp, weights, box)
    )
    supports = propose_mod.supports_lockstep
    propose_mod.supports_lockstep = lambda stack: False
    try:
        t_legacy, legacy = _best_of(
            repeats, lambda: propose_batch(gp, weights, box)
        )
    finally:
        propose_mod.supports_lockstep = supports

    common = {"dim": dim, "n_train": n_train, "n_weights": int(weights.size)}
    return {
        "legacy": {
            **common,
            "lockstep": False,
            "seconds": round(t_legacy, 4),
            "acq_evals": legacy.n_evaluations,
        },
        "current": {
            **common,
            "lockstep": True,
            "seconds": round(t_current, 4),
            "acq_evals": current.n_evaluations,
        },
        "speedup": round(t_legacy / t_current, 2),
        "proposals_match": bool(
            np.allclose(legacy.X, current.X, atol=1e-8)
        ),
    }


def bench_dispatch(fast):
    """Chunked vectorized broker dispatch vs row-at-a-time dispatch."""
    from repro.circuits.behavioral.uvlo import UVLOTestbench
    from repro.runtime import BrokerConfig, EvaluationBroker

    n_points = 128 if fast else 4096
    repeats = 1 if fast else 3
    objective = UVLOTestbench().objective("delta_vthl")
    rng = np.random.default_rng(1)
    X = rng.uniform(-1.0, 1.0, (n_points, objective.dim))

    def run(dispatch):
        # a fresh broker per run: the content-addressed cache must not
        # serve the second mode the first mode's simulations
        broker = EvaluationBroker(objective, BrokerConfig(dispatch=dispatch))
        return broker.evaluate_batch(X)

    t_row, row = _best_of(repeats, lambda: run("row"))
    t_chunk, chunk = _best_of(repeats, lambda: run("chunk"))

    common = {"n_points": n_points, "dim": objective.dim}
    return {
        "legacy": {
            **common,
            "dispatch": "row",
            "seconds": round(t_row, 4),
        },
        "current": {
            **common,
            "dispatch": "chunk",
            "seconds": round(t_chunk, 4),
        },
        "speedup": round(t_row / t_chunk, 2),
        "values_bitwise_identical": bool(np.array_equal(row.y, chunk.y)),
    }


def bench_backend(fast):
    """REPRO_BACKEND=numba vs the numpy reference on the LML hot path."""
    from repro.backends import BACKEND_ENV, numba_available

    if not numba_available():
        return {
            "available": False,
            "note": "numba not installed; numpy reference path is the "
            "only backend in this environment",
        }

    from repro.gp.evaluator import MarginalLikelihoodEvaluator

    n, dim = (60, 4) if fast else (300, 8)
    n_evals = 5 if fast else 40
    gp = _fitted_gp(n, dim, seed=2)
    thetas = [gp.theta + 0.05 * k for k in range(n_evals)]

    def run():
        evaluator = MarginalLikelihoodEvaluator(gp)
        out = 0.0
        for theta in thetas:
            lml, _ = evaluator.evaluate(theta)
            out += lml
        return out

    saved = os.environ.get(BACKEND_ENV)
    try:
        os.environ[BACKEND_ENV] = "numpy"
        t_numpy, lml_numpy = _best_of(2, run)
        os.environ[BACKEND_ENV] = "numba"
        run()  # JIT warm-up compile outside the timed region
        t_numba, lml_numba = _best_of(2, run)
    finally:
        if saved is None:
            os.environ.pop(BACKEND_ENV, None)
        else:
            os.environ[BACKEND_ENV] = saved

    return {
        "available": True,
        "legacy": {
            "backend": "numpy",
            "n": n,
            "dim": dim,
            "n_evals": n_evals,
            "seconds": round(t_numpy, 4),
        },
        "current": {
            "backend": "numba",
            "n": n,
            "dim": dim,
            "n_evals": n_evals,
            "seconds": round(t_numba, 4),
        },
        "speedup": round(t_numpy / t_numba, 2),
        "lml_gap": float(abs(lml_numpy - lml_numba)),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test sizes (seconds, for CI) instead of report sizes",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_acq_throughput.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = {
        "meta": {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "fast": args.fast,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "baseline": "in-process legacy paths (per-weight proposal "
            "fallback, row dispatch, numpy backend)",
        }
    }
    for section, fn in (
        ("proposal", bench_proposal),
        ("dispatch", bench_dispatch),
        ("backend", bench_backend),
    ):
        print(f"[{section}] ...", flush=True)
        report[section] = fn(args.fast)
        summary = {
            k: v
            for k, v in report[section].items()
            if k not in ("legacy", "current")
        }
        print(f"[{section}] {json.dumps(summary)}", flush=True)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return report


if __name__ == "__main__":
    main()
