"""Benchmark the vectorized GP hot path against the pre-change baseline.

Three timed sections, mirroring the three tiers of the rework:

* ``hyperopt`` — multi-start marginal-likelihood fitting of a Matern-5/2
  ARD GP (n=200, d=8): fused value+gradient evaluator over a cached kernel
  workspace versus the original refit-per-evaluation path.
* ``refit`` — sequential BO conditioning: incremental rank-k Cholesky
  ``add_data`` versus a full O(n^3) refit per appended batch.
* ``proposal`` — one 60-D pBO batch proposal (n=400 training points,
  5 weights): lockstep DIRECT searches sharing one posterior evaluation
  per candidate union (plus batched local-stage evaluations) versus
  independent per-weight searches scoring the acquisition point by point.

Both sides run in subprocesses through ``measure_side.py``.  The baseline
is, by preference, the *actual pre-change code*: the repository's root
commit checked out into a temporary git worktree.  When git history is
unavailable (shallow clone, exported tarball) the frozen replica in
``legacy_baseline.py`` is measured instead and the report says so.

Writes a JSON report (default ``BENCH_gp_hotpath.json`` at the repo root).
``--fast`` shrinks every section to smoke-test size for CI.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/gp_hotpath.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(os.path.dirname(_HERE))
_MEASURE = os.path.join(_HERE, "measure_side.py")
_SECTIONS = ("hyperopt", "refit", "proposal")


def _run_side(src_path, section, fast, replica=False):
    """Run one measurement subprocess and parse its RESULT line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = src_path
    cmd = [sys.executable, _MEASURE, "--section", section]
    if fast:
        cmd.append("--fast")
    if replica:
        cmd.append("--legacy-replica")
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, cwd=_REPO_ROOT
    )
    for line in proc.stdout.splitlines():
        if line.startswith("RESULT:"):
            return json.loads(line[len("RESULT:") :])
    raise RuntimeError(
        f"measurement failed for section={section} (rc={proc.returncode}):\n"
        f"{proc.stdout}\n{proc.stderr}"
    )


class _BaselineTree:
    """Context manager providing the baseline commit as a git worktree."""

    def __init__(self):
        self.path = None
        self.src = None
        self.commit = None

    def __enter__(self):
        try:
            root_commits = subprocess.run(
                ["git", "rev-list", "--max-parents=0", "HEAD"],
                capture_output=True,
                text=True,
                cwd=_REPO_ROOT,
                check=True,
            ).stdout.split()
            self.commit = root_commits[0]
            self.path = tempfile.mkdtemp(prefix="gp-hotpath-baseline-")
            subprocess.run(
                ["git", "worktree", "add", "--detach", self.path, self.commit],
                capture_output=True,
                text=True,
                cwd=_REPO_ROOT,
                check=True,
            )
            src = os.path.join(self.path, "src")
            if not os.path.isdir(src):
                raise RuntimeError("baseline commit has no src/ directory")
            self.src = src
        except Exception:
            self._cleanup()
            self.path = self.src = None
        return self

    def __exit__(self, *exc):
        self._cleanup()

    def _cleanup(self):
        if self.path is None:
            return
        subprocess.run(
            ["git", "worktree", "remove", "--force", self.path],
            capture_output=True,
            cwd=_REPO_ROOT,
        )
        shutil.rmtree(self.path, ignore_errors=True)


def _combine(section, legacy, current):
    out = {"legacy": legacy, "current": current}
    out["speedup"] = round(legacy["seconds"] / current["seconds"], 2)
    if section == "hyperopt":
        out["speedup_per_eval"] = round(
            legacy["ms_per_eval"] / current["ms_per_eval"], 2
        )
        out["lml_gap"] = round(abs(legacy["lml"] - current["lml"]), 6)
    elif section == "refit":
        out["prediction_gap"] = float(
            np.max(
                np.abs(
                    np.asarray(legacy["prediction_head"])
                    - np.asarray(current["prediction_head"])
                )
            )
        )
    elif section == "proposal":
        out["proposals_match"] = bool(
            np.allclose(
                np.asarray(legacy["proposals"]),
                np.asarray(current["proposals"]),
                atol=1e-8,
            )
        )
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test sizes (seconds, for CI) instead of report sizes",
    )
    parser.add_argument(
        "--replica",
        action="store_true",
        help="benchmark against the frozen replica instead of the baseline commit",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_gp_hotpath.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    current_src = os.path.join(_REPO_ROOT, "src")
    report = {
        "meta": {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "fast": args.fast,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        }
    }

    with _BaselineTree() as baseline:
        use_tree = baseline.src is not None and not args.replica
        report["meta"]["baseline"] = (
            f"root commit {baseline.commit[:12]} (git worktree)"
            if use_tree
            else "frozen replica (benchmarks/perf/legacy_baseline.py)"
        )
        for section in _SECTIONS:
            print(f"[{section}] legacy ...", flush=True)
            if use_tree:
                legacy = _run_side(baseline.src, section, args.fast)
            else:
                legacy = _run_side(
                    current_src, section, args.fast, replica=True
                )
            print(f"[{section}] current ...", flush=True)
            current = _run_side(current_src, section, args.fast)
            report[section] = _combine(section, legacy, current)
            summary = {
                k: v
                for k, v in report[section].items()
                if k not in ("legacy", "current")
            }
            summary["legacy_s"] = legacy["seconds"]
            summary["current_s"] = current["seconds"]
            print(f"[{section}] {json.dumps(summary)}", flush=True)

    # raw comparison payloads are folded into *_gap / *_match above
    for section, key in (("refit", "prediction_head"), ("proposal", "proposals")):
        report[section]["legacy"].pop(key, None)
        report[section]["current"].pop(key, None)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return report


if __name__ == "__main__":
    main()
