"""Frozen replica of the pre-vectorization GP hot path, for benchmarking.

``benchmarks/perf/gp_hotpath.py`` compares the current code against the
operation sequence the repository shipped before the hot-path rework:

* a fresh pairwise-distance matrix (with temporaries) per Gram evaluation,
* ``K + noise * np.eye(n)`` plus another ``jitter * np.eye(n)`` per jitter
  attempt, and scipy wrappers at their ``check_finite=True`` defaults,
* ``K^{-1}`` via ``cho_solve`` against a dense identity,
* one materialized ``(n, n)`` gradient matrix per ARD dimension, built from
  a per-dimension Python loop over coordinate differences,
* hyperparameter search that refits the model (Gram + Cholesky) on every
  trial theta and then rebuilds the distance structure again for the
  gradient.

Keeping the baseline frozen here (instead of importing whatever the tree
currently contains) makes committed benchmark numbers reproducible: both
sides of the comparison are pinned by this file and the current sources.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, cholesky
from scipy.optimize import minimize

_JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4)
_SQRT5 = np.sqrt(5.0)


def _pairwise_sq_dists(X, Z, lengthscales):
    Xs = X / lengthscales
    Zs = Z / lengthscales
    sq = (
        np.sum(Xs**2, axis=1)[:, None]
        + np.sum(Zs**2, axis=1)[None, :]
        - 2.0 * Xs @ Zs.T
    )
    return np.maximum(sq, 0.0)


def _matern52_g(sq):
    r = np.sqrt(np.maximum(sq, 0.0))
    return (1.0 + _SQRT5 * r + (5.0 / 3.0) * sq) * np.exp(-_SQRT5 * r)


def _matern52_dg_dsq(sq):
    r = np.sqrt(np.maximum(sq, 0.0))
    return -(5.0 / 6.0) * (1.0 + _SQRT5 * r) * np.exp(-_SQRT5 * r)


class LegacyMatern52ArdGP:
    """Matern-5/2 ARD GP with the original refit-per-evaluation hot path."""

    def __init__(self, X, y, noise_variance=1e-4):
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(y, dtype=float)
        d = self.X.shape[1]
        self.variance = 1.0
        self.lengthscales = np.ones(d)
        self.noise_variance = float(noise_variance)
        self._chol = None
        self._alpha = None
        self._refit()

    # -- hyperparameter vector ------------------------------------------------

    @property
    def theta(self):
        return np.concatenate(
            [
                [np.log(self.variance)],
                np.log(self.lengthscales),
                [np.log(self.noise_variance)],
            ]
        )

    @theta.setter
    def theta(self, value):
        value = np.asarray(value, dtype=float)
        self.variance = float(np.exp(value[0]))
        self.lengthscales = np.exp(value[1:-1])
        self.noise_variance = float(np.exp(value[-1]))
        self._refit()

    def theta_bounds(self):
        d = self.lengthscales.shape[0]
        bounds = np.empty((d + 2, 2))
        bounds[0] = (np.log(1e-6), np.log(1e6))
        bounds[1 : d + 1] = (np.log(1e-3), np.log(1e3))
        bounds[d + 1] = (np.log(1e-10), np.log(1e2))
        return bounds

    # -- original hot-path operations -----------------------------------------

    def _gram(self):
        sq = _pairwise_sq_dists(self.X, self.X, self.lengthscales)
        np.fill_diagonal(sq, 0.0)
        return self.variance * _matern52_g(sq)

    def _refit(self):
        K = self._gram()
        n = K.shape[0]
        base = K + self.noise_variance * np.eye(n)
        last_error = None
        for jitter in _JITTERS:
            try:
                self._chol = cholesky(base + jitter * np.eye(n), lower=True)
                break
            except np.linalg.LinAlgError as exc:  # pragma: no cover - rare
                last_error = exc
        else:  # pragma: no cover - pathological kernels only
            raise np.linalg.LinAlgError(
                "Gram matrix is not positive definite even with jitter"
            ) from last_error
        self._alpha = cho_solve((self._chol, True), self.y)

    def log_marginal_likelihood(self):
        n = self.y.shape[0]
        log_det = 2.0 * np.sum(np.log(np.diag(self._chol)))
        return float(
            -0.5 * self.y @ self._alpha
            - 0.5 * log_det
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def _kernel_gradients(self):
        X = self.X
        sq = _pairwise_sq_dists(X, X, self.lengthscales)
        np.fill_diagonal(sq, 0.0)
        g = _matern52_g(sq)
        dg = _matern52_dg_dsq(sq)
        grads = [self.variance * g]
        for k in range(X.shape[1]):
            diff = (X[:, k][:, None] - X[:, k][None, :]) / self.lengthscales[k]
            grads.append(self.variance * dg * (-2.0 * diff**2))
        return grads

    def log_marginal_likelihood_gradient(self):
        n = self.X.shape[0]
        K_inv = cho_solve((self._chol, True), np.eye(n))
        inner = np.outer(self._alpha, self._alpha) - K_inv
        grads = [0.5 * np.sum(inner * dK) for dK in self._kernel_gradients()]
        grads.append(0.5 * self.noise_variance * np.trace(inner))
        return np.asarray(grads)


def legacy_cross(gp, Z):
    """Cross-covariance ``k(X_train, Z)`` with the legacy operation order."""
    sq = _pairwise_sq_dists(gp.X, np.asarray(Z, dtype=float), gp.lengthscales)
    return gp.variance * _matern52_g(sq)


def legacy_fit_hyperparameters(gp, n_restarts=2, seed=None, max_iter=100):
    """The original multi-start L-BFGS-B fit: one full refit per trial theta.

    Returns ``(best_theta, best_lml, n_evaluations)``.
    """
    rng = np.random.default_rng(seed)
    bounds = gp.theta_bounds()
    lower, upper = bounds[:, 0], bounds[:, 1]
    evaluations = 0

    def objective(theta):
        nonlocal evaluations
        evaluations += 1
        try:
            gp.theta = theta
            lml = gp.log_marginal_likelihood()
            grad = gp.log_marginal_likelihood_gradient()
        except np.linalg.LinAlgError:
            return 1e25, np.zeros_like(theta)
        if not np.isfinite(lml):
            return 1e25, np.zeros_like(theta)
        return -lml, -grad

    starts = [gp.theta.copy()]
    for _ in range(n_restarts - 1):
        starts.append(rng.uniform(lower, upper))

    best_theta = gp.theta.copy()
    best_lml = -np.inf
    for start in starts:
        start = np.clip(start, lower, upper)
        result = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            bounds=list(zip(lower, upper)),
            options={"maxiter": max_iter},
        )
        if np.isfinite(result.fun) and -result.fun > best_lml:
            best_lml = -result.fun
            best_theta = result.x.copy()

    gp.theta = best_theta
    return best_theta, best_lml, evaluations
