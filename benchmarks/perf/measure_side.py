"""Measure one side of the GP hot-path benchmark (run via subprocess).

This script is version-agnostic: it only touches APIs that exist both in
the current tree and in the pre-change baseline commit, so the benchmark
driver (``gp_hotpath.py``) can run it twice — once with ``PYTHONPATH``
pointing at the current ``src/`` and once at a git worktree of the baseline
commit — and compare timings of *the real code on both sides*.

Feature detection replaces version checks: the batched proposal path is
used when ``repro.bo.propose`` exists (current tree) and falls back to
independent per-weight acquisition searches (the baseline behavior)
otherwise.

``--legacy-replica`` instead measures the frozen in-repo replica of the
baseline hot path (``legacy_baseline.py``) — the fallback when the baseline
commit cannot be checked out (shallow clones, exported tarballs).

Prints a single JSON line prefixed with ``RESULT:`` to stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))


def _regression_data(n, d, seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, (n, d))
    y = np.sin(X.sum(axis=1)) + 0.1 * rng.standard_normal(n)
    return X, y


def measure_hyperopt(fast, replica=False):
    n, d = (60, 4) if fast else (200, 8)
    n_restarts = 1 if fast else 2
    X, y = _regression_data(n, d, seed=0)

    if replica:
        from legacy_baseline import (
            LegacyMatern52ArdGP,
            legacy_fit_hyperparameters,
        )

        warm = LegacyMatern52ArdGP(X, y, noise_variance=1e-4)
        legacy_fit_hyperparameters(warm, n_restarts=1, seed=0, max_iter=3)
        seconds = np.inf
        for _ in range(5):  # best-of-N damps scheduler noise
            gp = LegacyMatern52ArdGP(X, y, noise_variance=1e-4)
            t0 = time.perf_counter()
            _, lml, evals = legacy_fit_hyperparameters(
                gp, n_restarts=n_restarts, seed=1
            )
            seconds = min(seconds, time.perf_counter() - t0)
        return {
            "n": n,
            "dim": d,
            "n_restarts": n_restarts,
            "seconds": round(seconds, 4),
            "evals": evals,
            "ms_per_eval": round(1e3 * seconds / evals, 4),
            "lml": lml,
        }

    from repro.gp.hyperopt import fit_hyperparameters
    from repro.gp.model import GaussianProcess
    from repro.kernels import Matern52

    def make_gp():
        gp = GaussianProcess(
            Matern52(dim=d, ard=True), noise_variance=1e-4, train_noise=True
        )
        gp.add_data(X, y)
        return gp

    fit_hyperparameters(make_gp(), n_restarts=1, seed=0, max_iter=3)  # warmup

    seconds = np.inf
    for _ in range(5):  # best-of-N damps scheduler noise
        gp = make_gp()
        t0 = time.perf_counter()
        result = fit_hyperparameters(gp, n_restarts=n_restarts, seed=1)
        seconds = min(seconds, time.perf_counter() - t0)
    return {
        "n": n,
        "dim": d,
        "n_restarts": n_restarts,
        "seconds": round(seconds, 4),
        "evals": result.n_evaluations,
        "ms_per_eval": round(1e3 * seconds / result.n_evaluations, 4),
        "lml": result.log_marginal_likelihood,
    }


def measure_refit(fast, replica=False):
    d = 4 if fast else 8
    n0 = 60 if fast else 200
    n_batches = 5 if fast else 20
    batch = 5
    X, y = _regression_data(n0 + n_batches * batch, d, seed=3)

    if replica:
        from legacy_baseline import LegacyMatern52ArdGP, legacy_cross

        seconds = np.inf
        for _ in range(3):  # first pass doubles as warmup
            gp = LegacyMatern52ArdGP(X[:n0], y[:n0], noise_variance=1e-4)
            t0 = time.perf_counter()
            for b in range(n_batches):
                hi = n0 + (b + 1) * batch
                gp.X, gp.y = X[:hi], y[:hi]
                gp._refit()
            seconds = min(seconds, time.perf_counter() - t0)
        head = gp._alpha @ legacy_cross(gp, X[:16])
    else:
        from repro.gp.model import GaussianProcess
        from repro.kernels import Matern52

        seconds = np.inf
        for _ in range(3):  # first pass doubles as warmup
            gp = GaussianProcess(
                Matern52(dim=d, ard=True), noise_variance=1e-4
            )
            gp.add_data(X[:n0], y[:n0])
            t0 = time.perf_counter()
            for b in range(n_batches):
                lo, hi = n0 + b * batch, n0 + (b + 1) * batch
                gp.add_data(X[lo:hi], y[lo:hi])
            seconds = min(seconds, time.perf_counter() - t0)
        head = gp.predict(X[:16]).mean
    return {
        "dim": d,
        "n_start": n0,
        "n_batches": n_batches,
        "batch_size": batch,
        "seconds": round(seconds, 4),
        "prediction_head": [float(v) for v in head],
    }


def measure_proposal(fast, replica=False):
    from repro.gp.model import GaussianProcess
    from repro.kernels import Matern52

    d = 12 if fast else 60
    n = 60 if fast else 400
    n_weights = 3 if fast else 5
    rng = np.random.default_rng(2)
    X = rng.uniform(-1.0, 1.0, (n, d))
    y = np.sin(X[:, :4].sum(axis=1)) + 0.1 * rng.standard_normal(n)
    gp = GaussianProcess(
        Matern52(dim=d, lengthscale=2.0), noise_variance=1e-4, train_noise=False
    )
    gp.add_data(X, y)
    box = np.column_stack([-np.ones(d), np.ones(d)])

    if replica:  # point-at-a-time searches on the current tree
        propose_batch = None
    else:
        try:  # current tree: lockstep batched proposal
            from repro.bo.propose import propose_batch
        except ImportError:  # baseline: independent per-weight searches
            propose_batch = None
    from repro.acquisition.functions import WeightedAcquisition, pbo_weights
    from repro.acquisition.optimize import default_acquisition_optimizer

    weights = pbo_weights(n_weights)

    def run_once():
        if propose_batch is not None:
            proposal = propose_batch(gp, weights, box)
            return proposal.X, proposal.n_evaluations
        points, evals = [], 0
        for w in weights:
            acq = WeightedAcquisition(gp, weight=float(w))
            # the lambda hides the batched ``evaluate`` attribute so every
            # candidate costs one single-point posterior evaluation, as the
            # pre-rework inner loop behaved
            fun = (lambda a: lambda x: float(a(x)))(acq) if replica else acq
            result = default_acquisition_optimizer(d).minimize(fun, box)
            points.append(result.x)
            evals += result.n_evaluations
        return np.array(points), evals

    run_once()  # warmup
    seconds = np.inf
    for _ in range(3):  # best-of-N damps scheduler noise
        t0 = time.perf_counter()
        X_prop, evals = run_once()
        seconds = min(seconds, time.perf_counter() - t0)
    return {
        "dim": d,
        "n_train": n,
        "n_weights": n_weights,
        "batched": propose_batch is not None,
        "seconds": round(seconds, 4),
        "acq_evals": evals,
        "proposals": [[float(v) for v in row] for row in X_prop],
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--section", required=True, choices=("hyperopt", "refit", "proposal")
    )
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--legacy-replica", action="store_true")
    args = parser.parse_args()
    fn = {
        "hyperopt": measure_hyperopt,
        "refit": measure_refit,
        "proposal": measure_proposal,
    }[args.section]
    print(
        "RESULT:" + json.dumps(fn(args.fast, replica=args.legacy_replica)),
        flush=True,
    )


if __name__ == "__main__":
    main()
