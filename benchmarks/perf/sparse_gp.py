"""Benchmark the sparse inducing-point GP against the exact GP at scale.

Two sections:

* ``equivalence`` — the m = n identity at small n: the sparse model's
  posterior mean / variance and evidence must sit within 1e-8 of the
  exact GP (the same gate ``tests/test_gp_sparse.py`` pins).
* ``scaling`` — fit + predict wall time over n = 5 000 … 50 000 with a
  fixed inducing budget m.  The exact GP is *calibrated* at small n and
  its O(n³) time / O(n²) memory are projected to each target n; where the
  projection exceeds the time budget or the Gram matrix would not fit,
  the exact side is recorded as ``"skipped"`` with the reason — which at
  these sizes is every row, and is precisely the regime the sparse path
  exists for.

Writes a JSON report (default ``BENCH_sparse_gp.json`` at the repo
root).  ``--fast`` shrinks every section to smoke-test size for CI.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/sparse_gp.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np

from repro.gp.model import GaussianProcess
from repro.gp.sparse import SparseGaussianProcess
from repro.kernels.stationary import Matern52

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(os.path.dirname(_HERE))

#: Seconds the exact side may cost per n before it is skipped.
EXACT_TIME_BUDGET = 5.0

#: Bytes the exact Gram matrix may occupy before it is skipped.
EXACT_MEMORY_BUDGET = 2 << 30  # 2 GiB


def _dataset(n, dim, seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n, dim))
    y = (
        np.sin(3.0 * X[:, 0])
        + 0.5 * np.cos(2.0 * X[:, 1]) * X[:, 2]
        + 0.05 * rng.standard_normal(n)
    )
    return X, y


def run_equivalence(fast):
    """The m = n identity, measured rather than asserted."""
    n = 80 if fast else 300
    dim = 6
    X, y = _dataset(n, dim, seed=0)
    X_test = _dataset(200, dim, seed=1)[0]
    exact = GaussianProcess(
        Matern52(dim=dim, ard=True), noise_variance=1e-4
    ).fit(X, y)
    sparse = SparseGaussianProcess(
        Matern52(dim=dim, ard=True), noise_variance=1e-4, m=n
    ).fit(X, y)
    pe, ps = exact.predict(X_test), sparse.predict(X_test)
    return {
        "n": n,
        "dim": dim,
        "max_mean_gap": float(np.max(np.abs(ps.mean - pe.mean))),
        "max_variance_gap": float(np.max(np.abs(ps.variance - pe.variance))),
        "evidence_gap": abs(
            sparse.log_marginal_likelihood() - exact.log_marginal_likelihood()
        ),
        "tolerance": 1e-8,
    }


def _calibrate_exact(dim, fast):
    """Measured exact-GP fit times at small n, for cubic projection."""
    sizes = (300, 600) if fast else (1000, 2000)
    points = []
    for n in sizes:
        X, y = _dataset(n, dim, seed=2)
        gp = GaussianProcess(Matern52(dim=dim, ard=True), noise_variance=1e-4)
        t0 = time.perf_counter()
        gp.fit(X, y)
        points.append({"n": n, "seconds": round(time.perf_counter() - t0, 4)})
    # cubic model t(n) = c n^3 from the largest calibration point
    ref = points[-1]
    coeff = ref["seconds"] / ref["n"] ** 3
    return points, coeff


def _exact_side(n, coeff):
    """Projected exact cost at n; a skip record when over budget."""
    projected = coeff * n**3
    gram_bytes = 8 * n * n
    if gram_bytes > EXACT_MEMORY_BUDGET:
        return {
            "status": "skipped",
            "reason": (
                f"Gram matrix would need {gram_bytes / 2**30:.1f} GiB "
                f"(budget {EXACT_MEMORY_BUDGET / 2**30:.0f} GiB)"
            ),
            "projected_seconds": round(projected, 2),
        }
    if projected > EXACT_TIME_BUDGET:
        return {
            "status": "skipped",
            "reason": (
                f"projected fit time {projected:.1f}s exceeds the "
                f"{EXACT_TIME_BUDGET:.0f}s budget"
            ),
            "projected_seconds": round(projected, 2),
        }
    return {"status": "eligible", "projected_seconds": round(projected, 2)}


def run_scaling(fast):
    dim = 8
    m = 128 if fast else 256
    sizes = (1500, 3000) if fast else (5000, 10000, 20000, 50000)
    n_test = 500 if fast else 2000
    calibration, coeff = _calibrate_exact(dim, fast)
    X_test = _dataset(n_test, dim, seed=3)[0]
    rows = []
    for n in sizes:
        X, y = _dataset(n, dim, seed=4)
        gp = SparseGaussianProcess(
            Matern52(dim=dim, ard=True), noise_variance=1e-4, m=m
        )
        t0 = time.perf_counter()
        gp.fit(X, y)
        fit_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        pred = gp.predict(X_test)
        predict_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        gp.log_marginal_likelihood()
        evidence_seconds = time.perf_counter() - t0
        exact = _exact_side(n, coeff)
        if exact["status"] == "eligible":
            ref = GaussianProcess(
                Matern52(dim=dim, ard=True), noise_variance=1e-4
            )
            t0 = time.perf_counter()
            ref.fit(X, y)
            exact["fit_seconds"] = round(time.perf_counter() - t0, 4)
            if exact["fit_seconds"] > EXACT_TIME_BUDGET:
                # the cubic projection undershot; record the blown budget
                exact["status"] = "timed_out"
                exact["reason"] = (
                    f"measured fit time {exact['fit_seconds']:.1f}s exceeds "
                    f"the {EXACT_TIME_BUDGET:.0f}s budget"
                )
        rows.append(
            {
                "n": n,
                "m": gp.n_inducing,
                "sparse": {
                    "fit_seconds": round(fit_seconds, 4),
                    "predict_seconds": round(predict_seconds, 4),
                    "evidence_seconds": round(evidence_seconds, 4),
                    "mean_predictive_std": round(
                        float(np.mean(pred.std)), 6
                    ),
                },
                "exact": exact,
            }
        )
    return {
        "dim": dim,
        "m": m,
        "n_test": n_test,
        "exact_time_budget_seconds": EXACT_TIME_BUDGET,
        "exact_calibration": calibration,
        "rows": rows,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true", help="smoke-test sizes for CI"
    )
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_sparse_gp.json"),
        help="report path (default: BENCH_sparse_gp.json at the repo root)",
    )
    args = parser.parse_args(argv)

    report = {
        "meta": {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "fast": bool(args.fast),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "equivalence": run_equivalence(args.fast),
        "scaling": run_scaling(args.fast),
    }
    ok = (
        report["equivalence"]["max_mean_gap"]
        <= report["equivalence"]["tolerance"]
    )
    report["equivalence"]["within_tolerance"] = bool(ok)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    print(json.dumps(report, indent=1))
    print(f"\nreport written to {args.out}")
    if not ok:
        raise SystemExit("equivalence gate failed")


if __name__ == "__main__":
    main()
