"""Ablation benches for the design choices DESIGN.md calls out.

All ablations run on the UVLO testbench (fast) with the Table-1 budgets.
They print comparison rows; assertions are deliberately soft (the hunts
are stochastic) and check structural invariants rather than exact wins.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.circuits.behavioral import UVLOTestbench
from repro.experiments import (
    acquisition_weight_ablation,
    embedding_dimension_sweep,
    kernel_ablation,
    projection_ablation,
    uvlo_config,
)
from repro.utils import render_table
from repro.utils.timing import format_duration

SEED = 2019


def _print(rows, title):
    print()
    print(
        render_table(
            ["variant", "worst (min-orient.)", "# failures", "1st hit", "runtime"],
            [
                [
                    r.variant,
                    f"{r.worst_value:+.3f}",
                    r.n_failures,
                    r.first_failure_index or "-",
                    format_duration(r.total_seconds),
                ]
                for r in rows
            ],
            title=title,
        )
    )


def test_ablation_embedding_dimension(benchmark):
    tb = UVLOTestbench()
    cfg = uvlo_config(seed=SEED)
    rows = run_once(
        benchmark,
        lambda: embedding_dimension_sweep(tb, "delta_vthl", cfg, dims=[2, 4, 8, 16]),
    )
    _print(rows, "Ablation — embedding dimension d (Algorithm 2 picks 8)")
    assert len(rows) == 4
    # the paper's trade-off: d=16 must not be the fastest variant
    runtimes = {r.variant: r.total_seconds for r in rows}
    assert runtimes["d=16"] >= min(runtimes.values())


def test_ablation_acquisition_weights(benchmark):
    tb = UVLOTestbench()
    cfg = uvlo_config(seed=SEED)
    rows = run_once(
        benchmark, lambda: acquisition_weight_ablation(tb, "delta_vthl", cfg)
    )
    _print(rows, "Ablation — multi-weight pBO ladder vs single weight")
    assert {r.variant for r in rows} == {
        "multi-weight ladder",
        "single weight w=0.5",
    }
    # the single-weight batch collapses to (nearly) one distinct proposal
    # per batch, so its worst case should not beat the ladder's
    ladder = next(r for r in rows if "ladder" in r.variant)
    single = next(r for r in rows if "single" in r.variant)
    assert ladder.worst_value <= single.worst_value + 0.3


def test_ablation_projection(benchmark):
    tb = UVLOTestbench()
    cfg = uvlo_config(seed=SEED)
    rows = run_once(benchmark, lambda: projection_ablation(tb, "delta_vthl", cfg))
    _print(rows, "Ablation — clip projection p_Omega vs ray rescaling")
    clip = next(r for r in rows if "clip" in r.variant)
    rescale = next(r for r in rows if "ray" in r.variant)
    # clipping concentrates proposals on the cube boundary where the
    # failures live; rescaling must not find strictly more failures
    assert clip.n_failures >= rescale.n_failures


def test_ablation_kernel(benchmark):
    tb = UVLOTestbench()
    cfg = uvlo_config(seed=SEED)
    rows = run_once(benchmark, lambda: kernel_ablation(tb, "delta_vthl", cfg))
    _print(rows, "Ablation — isotropic vs ARD Matern-5/2 in the embedded space")
    assert len(rows) == 2
    assert all(np.isfinite(r.worst_value) for r in rows)
