"""Fig. 2 reproduction: function evaluations per optimization versus D.

The paper optimizes ``y_syn(x) = ‖x − c‖₂/‖c‖₂`` (Eq. 10) with DIRECT_L
and COBYLA and shows that the evaluations needed per optimization grow
super-linearly with the dimension — the Section 3 motivation for dimension
reduction.  This bench regenerates the two series and asserts the shape.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import optimizer_scaling
from repro.utils import render_table

DIMS = (2, 5, 10, 20, 40, 60)


def test_fig2_optimizer_scaling(benchmark):
    result = run_once(
        benchmark,
        lambda: optimizer_scaling(
            dims=DIMS,
            n_repeats=3,
            f_target=0.1,
            max_evaluations=300_000,
            seed=42,
        ),
    )
    rows = []
    for i, d in enumerate(result.dims):
        rows.append(
            [
                d,
                int(result.evaluations["DIRECT-L"][i]),
                int(result.evaluations["COBYLA"][i]),
            ]
        )
    print()
    print(
        render_table(
            ["D", "DIRECT-L evals", "COBYLA evals"],
            rows,
            title="Fig. 2 — evaluations per optimization of y_syn (Eq. 10)",
        )
    )

    for name, counts in result.evaluations.items():
        # super-linear growth: going 2 -> 60 dims costs far more than 30x
        growth = counts[-1] / max(counts[0], 1.0)
        dim_ratio = DIMS[-1] / DIMS[0]
        assert growth > dim_ratio, (
            f"{name}: evaluation growth {growth:.1f}x is not super-linear "
            f"in dimension ({dim_ratio:.0f}x)"
        )
        # and the counts are non-trivially increasing along the sweep
        assert counts[-1] > counts[1] > 0
