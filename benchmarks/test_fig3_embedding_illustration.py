"""Fig. 3 reproduction: a 1-D random embedding recovers a 2-D optimum.

The paper's illustration: a 2-D objective that depends only on ``x₁`` is
searched along a random 1-D embedding line; the optimum found along the
line matches the true 2-D optimum.
"""

from benchmarks.conftest import run_once
from repro.experiments import embedding_illustration
from repro.utils import render_table


def test_fig3_embedding_illustration(benchmark):
    result = run_once(benchmark, lambda: embedding_illustration(seed=3))
    # print a sparse trace of the function along the embedding line
    step = max(1, len(result.z) // 12)
    rows = [
        [f"{z:+.2f}", f"{x[0]:+.3f}", f"{x[1]:+.3f}", f"{y:.4f}"]
        for z, x, y in zip(
            result.z[::step], result.x_points[::step], result.y_along_embedding[::step]
        )
    ]
    print()
    print(
        render_table(
            ["z", "x1", "x2", "y(x)"],
            rows,
            title="Fig. 3 — objective along the random 1-D embedding",
        )
    )
    print(
        f"optimum along embedding: {result.y_optimum_embedded:.5f} "
        f"(true 2-D optimum: {result.y_optimum_2d:.5f})"
    )
    assert result.y_optimum_embedded <= result.y_optimum_2d + 0.01
