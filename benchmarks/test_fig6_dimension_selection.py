"""Fig. 6 reproduction: embedding-dimension selection curves (Algorithm 2).

The paper runs Algorithm 2 with 5 initial samples for the UVLO and 50 for
the LDO, plots min-max-normalized averaged GP MSE versus the candidate
embedding dimension, and picks d̃ where the curve flattens (d̃=8 for the
UVLO, d̃=30 for the LDO).  The *shape* to reproduce: high MSE at tiny d,
flattening somewhere well below the full dimensionality.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.circuits.behavioral import LDOTestbench, UVLOTestbench
from repro.experiments import dimension_selection_curve, ldo_config, uvlo_config
from repro.utils import render_table


def _print_curve(curve):
    width = 40
    rows = [
        [d, f"{m:.3f}", "#" * int(round(width * m))]
        for d, m in zip(curve.dims, curve.normalized_mse)
    ]
    print()
    print(render_table(["d", "norm MSE", ""], rows, title=f"Fig. 6 — {curve.label}"))
    print(f"selected d̃ = {curve.selected_dim}")


def test_fig6_uvlo_curve(benchmark):
    tb = UVLOTestbench()
    cfg = uvlo_config()
    curve = run_once(
        benchmark,
        lambda: dimension_selection_curve(
            tb, "delta_vthl", cfg, dims=[1, 2, 4, 6, 8, 12, 16, 19], seed=7
        ),
    )
    _print_curve(curve)
    # flattening below the full dimension: the pick compresses the space
    assert curve.selected_dim < 19
    assert curve.normalized_mse[0] == max(curve.normalized_mse)


def test_fig6_ldo_curves(benchmark):
    tb = LDOTestbench()
    cfg = ldo_config()
    dims = [1, 2, 4, 8, 12, 16, 20, 25, 30, 40, 50, 60]

    def run_all():
        return [
            dimension_selection_curve(tb, spec, cfg, dims=dims, seed=17)
            for spec in tb.PERFORMANCES
        ]

    curves = run_once(benchmark, run_all)
    for curve in curves:
        _print_curve(curve)
        assert curve.selected_dim < 60
        # MSE at d=1 is far from the flat level
        assert curve.normalized_mse[0] > 0.5
