"""Section 3 complexity claim: acquisition optimization cost grows with D.

The paper argues the per-step cost of BO blows up with dimension: GP
posterior evaluation is ``O(N² + N·D)`` per acquisition query, and the
number of queries needed by the acquisition optimizer grows super-linearly
in ``D``.  This bench times one full acquisition optimization (DIRECT-L +
COBYLA at the library's fixed caps) at several dimensions and asserts the
wall-clock trend.
"""

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.acquisition import WeightedAcquisition, optimize_acquisition
from repro.gp import GaussianProcess
from repro.kernels import Matern52
from repro.utils import render_table
from repro.utils.validation import unit_cube_bounds

DIMS = (2, 8, 19, 60)
N_TRAIN = 100


def _time_one(dim: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (N_TRAIN, dim))
    y = np.sin(X[:, 0]) + 0.1 * rng.standard_normal(N_TRAIN)
    gp = GaussianProcess(Matern52(dim=dim), noise_variance=1e-3).fit(X, y)
    acq = WeightedAcquisition(gp, weight=0.5)
    start = time.perf_counter()
    optimize_acquisition(acq, unit_cube_bounds(dim))
    return time.perf_counter() - start


def test_sec3_acquisition_cost(benchmark):
    def sweep():
        return {d: _time_one(d, seed=d) for d in DIMS}

    times = run_once(benchmark, sweep)
    print()
    print(
        render_table(
            ["D", "acquisition optimization (s)"],
            [[d, f"{t:.3f}"] for d, t in times.items()],
            title="Section 3 — per-step acquisition optimization cost vs D",
        )
    )
    # the cost at D=60 clearly exceeds the cost at D=2
    assert times[60] > times[2]
