"""Table 1 reproduction: UVLO failure detection, 19 dimensions.

Runs the paper's seven methods (MC, SSS, EI, PI, LCB, pBO, proposed) with
the paper's BO budgets (5 init + 95 sequential / 5×19 batches) and prints
the table in the paper's layout.  MC/SSS budgets scale with
``REPRO_BENCH_SCALE`` (1.0 = the paper's 20 000 / ~1 000).

Shape asserted (paper Table 1): only the proposed method detects failures;
every baseline's worst case stays below the 0.9 V spec.
"""

from benchmarks.conftest import run_once
from repro.circuits.behavioral import UVLOTestbench
from repro.experiments import format_table, run_table, uvlo_config

#: Harness seed for the headline single-run table (the hunt is stochastic;
#: multi-seed statistics are reported in EXPERIMENTS.md).
TABLE1_SEED = 2019


def test_table1_uvlo(benchmark, bench_scale):
    tb = UVLOTestbench()
    cfg = uvlo_config(seed=TABLE1_SEED).scaled(bench_scale)
    table = run_once(benchmark, lambda: run_table(tb, cfg, keep_results=False))
    print()
    print(format_table(table, title="Table 1 — UVLO (19 dimensions)"))

    ours = table.row("delta_vthl", "This work").summary
    assert ours.detected, "the proposed method must detect UVLO failures"
    # the proposed method's worst case is beyond the spec
    assert -ours.worst_value > 0.9
    # the pure-sampling baselines never find the ~1e-7-rate failure
    for baseline in ("MC", "SSS"):
        summary = table.row("delta_vthl", baseline).summary
        assert not summary.detected, f"{baseline} unexpectedly found a failure"
    # full-D BO baselines: reported, not asserted — with modern GP/optimizer
    # machinery at equal budgets their detection is seed-dependent (see
    # EXPERIMENTS.md "reproduction nuances"); the paper's 2019 baselines
    # found nothing
    detected = [
        m for m in ("EI", "PI", "LCB", "pBO")
        if table.row("delta_vthl", m).summary.detected
    ]
    print(f"\nfull-D BO baselines that also detected a failure: {detected or 'none'}")
