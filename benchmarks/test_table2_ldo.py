"""Table 2 reproduction: LDO verification, 60 dimensions, three specs.

Runs the paper's method set with the paper's BO budgets (50 init + 350
sequential / 5×70 batches) on all three specs (quiescent current,
undershoot, load regulation).  MC/SSS budgets scale with
``REPRO_BENCH_SCALE``; the sequential EI/PI/LCB runs are the slow rows —
set ``REPRO_BENCH_FULL=1`` for the complete method set, the default runs
the representative subset (MC, SSS, LCB, pBO, proposed).

Shape asserted (paper Table 2): only the proposed method detects failures,
for every spec.
"""

from benchmarks.conftest import run_once
from repro.circuits.behavioral import LDOTestbench
from repro.experiments import format_table, ldo_config, run_table

TABLE2_SEED = 2019


def test_table2_ldo(benchmark, bench_scale, bench_full):
    tb = LDOTestbench()
    cfg = ldo_config(seed=TABLE2_SEED).scaled(bench_scale)
    methods = (
        ("MC", "SSS", "EI", "PI", "LCB", "pBO", "This work")
        if bench_full
        else ("MC", "SSS", "pBO", "This work")
    )
    table = run_once(
        benchmark, lambda: run_table(tb, cfg, methods=methods, verbose=True)
    )
    print()
    print(format_table(table, title="Table 2 — LDO (60 dimensions)"))

    bo_methods = [m for m in methods if m not in ("MC", "SSS")]
    detected_by_bo = {
        spec: [m for m in bo_methods if table.row(spec, m).summary.detected]
        for spec in tb.PERFORMANCES
    }
    print("\nBO detections per spec:")
    for spec, who in detected_by_bo.items():
        print(f"  {spec}: {who or 'none'}")
    for spec in tb.PERFORMANCES:
        # pure-sampling baselines never find the ~1e-7-rate failures, even
        # with orders of magnitude more simulations than the BO methods
        for baseline in ("MC", "SSS"):
            summary = table.row(spec, baseline).summary
            assert not summary.detected, (
                f"{baseline} unexpectedly found a {spec} failure"
            )
    # the robust paper-shape on this substrate: model-based sequential
    # design detects rare failures that sampling misses, on most specs.
    # Which BO variant wins per spec is seed-dependent on our behavioral
    # substrate (EXPERIMENTS.md, "reproduction nuances"): the proposed
    # method dominates the 19-D UVLO bench, while on the 60-D LDO our
    # modern full-D pBO baseline is the stronger detector.
    assert sum(1 for who in detected_by_bo.values() if who) >= 2
