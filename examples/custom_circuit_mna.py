"""Verify a transistor-level circuit simulated with the built-in MNA engine.

Shows the full "real simulator" code path: build a netlist, measure a
performance with DC sweeps / transients, expose it as a cache-addressable
runtime :class:`~repro.circuits.mna.MNAObjective`, and hunt worst-case
variations with the proposed method.

The circuit is the built-in MNA low-dropout-regulator demo (9 variation
parameters); the verified spec is its load regulation.  Each simulation is
a pair of Newton DC solves, so budgets are kept small.

Run:  python examples/custom_circuit_mna.py
"""

import numpy as np

from repro.bo import RemboBO, RunSpec, Specification, uniform_initial_design
from repro.circuits.mna import ldo_demo_objective
from repro.circuits.mna.ldo_demo import LDODemo
from repro.utils import format_duration
from repro.utils.timing import Timer


def main() -> None:
    nominal = LDODemo()
    print("MNA LDO demo at nominal corner:")
    print(f"  vout            = {nominal.output_voltage():.3f} V")
    print(f"  quiescent curr. = {1e3 * nominal.quiescent_current():.3f} mA")
    print(f"  load regulation = {nominal.load_regulation():.2f} %")

    spec = Specification(
        "load regulation", threshold=0.22, failure_when="above", units="%"
    )
    objective = ldo_demo_objective("load_regulation", spec=spec)

    with Timer() as timer:
        X0 = uniform_initial_design(objective.bounds, n_init=8, seed=3)
        y0 = objective.evaluate(X0)
        engine = RemboBO(batch_size=4, embedding_dim=4, seed=5)
        result = engine.solve(
            objective=objective,
            spec=RunSpec(
                n_batches=4,
                threshold=objective.threshold,
                initial_data=(X0, y0),
            ),
        )
    summary = result.summarize(spec.minimization_threshold)
    worst = spec.from_minimization(result.best_y)
    print(
        f"\nworst-case load regulation over {result.n_evaluations} MNA "
        f"simulations: {worst:.2f} % (spec {spec.threshold} %)"
    )
    print(f"failures found: {summary.n_failures}; wall time {format_duration(timer.elapsed)}")
    print("worst variation vector:", np.array2string(result.best_x, precision=2))


if __name__ == "__main__":
    main()
