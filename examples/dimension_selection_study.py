"""Embedding-dimension selection study (paper Fig. 6 / Algorithm 2).

Runs the proposed dimension-selection procedure on both circuit
testbenches and on a synthetic function with a *known* effective
dimension, printing the normalized-MSE curves the paper plots in Fig. 6.

Run:  python examples/dimension_selection_study.py
"""

import numpy as np

from repro.bo import uniform_initial_design
from repro.circuits.behavioral import LDOTestbench, UVLOTestbench
from repro.embedding import select_embedding_dimension
from repro.synthetic import EmbeddedFunction, sphere
from repro.utils import render_table


def curve(label, X, y, dims, seed):
    result = select_embedding_dimension(X, y, dims=dims, n_trials=4, seed=seed)
    print(f"\n{label} (selected d = {result.selected_dim}):")
    bar_width = 40
    rows = []
    for d, mse in zip(result.dims, result.normalized_mse):
        rows.append([d, f"{mse:.3f}", "#" * int(round(bar_width * mse))])
    print(render_table(["d", "norm. MSE", ""], rows))
    return result


def main() -> None:
    # synthetic sanity check: effective dimension is exactly 3
    fun = EmbeddedFunction(sphere, total_dim=16, effective_dim=3, scale=2.0, seed=0)
    X = uniform_initial_design(np.column_stack([-np.ones(16), np.ones(16)]), 40, seed=0)
    y = np.array([fun(x) for x in X])
    curve("synthetic (true d_e = 3)", X, y, dims=[1, 2, 3, 4, 6, 8, 12, 16], seed=0)

    # UVLO with the paper's 5 initial samples (Section 5.2)
    uvlo = UVLOTestbench()
    X = uniform_initial_design(uvlo.bounds(), 5, seed=1)
    y = np.array([uvlo.objective("delta_vthl")(x) for x in X])
    curve("UVLO |ΔV_THL| (5 samples)", X, y, dims=[1, 2, 4, 6, 8, 12, 16, 19], seed=1)

    # LDO with the paper's 50 initial samples, one curve per spec
    ldo = LDOTestbench()
    X = uniform_initial_design(ldo.bounds(), 50, seed=2)
    for spec in ldo.PERFORMANCES:
        y = np.array([ldo.objective(spec)(x) for x in X])
        curve(
            f"LDO {spec} (50 samples)",
            X,
            y,
            dims=[1, 2, 4, 8, 12, 16, 20, 25, 30, 40, 50, 60],
            seed=2,
        )


if __name__ == "__main__":
    main()
