"""LDO three-spec verification (paper Table 2 in miniature).

Runs the proposed method against the pBO baseline on the 60-dimensional
low-dropout-regulator testbench for all three specs (quiescent current,
undershoot, load regulation), with the paper's batch structure scaled down
(2 batches of 35 instead of 5 of 70) so the script finishes in a few
minutes.  For the full-budget reproduction use
``pytest benchmarks/test_table2_ldo.py --benchmark-only``.

Run:  python examples/ldo_verification.py
"""

from repro.circuits.behavioral import LDOTestbench
from repro.experiments import format_table, ldo_config, run_table


def main() -> None:
    testbench = LDOTestbench()
    print(f"LDO testbench: {testbench.dim} variation parameters")
    for name, spec in testbench.specs.items():
        print(f"  spec {name}: {spec.name} < {spec.threshold}{spec.units}")
    print()

    cfg = ldo_config(
        n_init=30,
        batch_size=35,
        n_batches=2,
        n_sequential=70,
        mc_samples=5_000,
        sss_samples_per_scale=80,
    )
    table = run_table(
        testbench,
        cfg,
        methods=("MC", "pBO", "This work"),
        verbose=True,
    )
    print()
    print(format_table(table, title="LDO verification (60 dimensions, reduced budgets)"))


if __name__ == "__main__":
    main()
