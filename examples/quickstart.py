"""Quickstart: detect a rare failure of a synthetic high-dimensional circuit.

Builds a 20-dimensional objective with a 3-dimensional effective subspace
and a rare low-value pocket, then runs the paper's full pipeline through
the :class:`~repro.campaign.Campaign` facade:

1. collect a small initial dataset,
2. select an embedding dimension with Algorithm 2,
3. run random-embedding batch BO (Algorithm 1) to hunt the failure,
   with telemetry tracing every phase,
4. compare with plain Monte Carlo at the same budget.

Run:  python examples/quickstart.py
The trace lands in quickstart.trace.jsonl; inspect it with
``python -m repro.telemetry.report quickstart.trace.jsonl``.
"""

import numpy as np

from repro.bo import RemboBO, RunSpec, uniform_initial_design
from repro.campaign import Campaign
from repro.embedding import select_embedding_dimension
from repro.runtime import FunctionObjective
from repro.sampling import MonteCarloSampler
from repro.synthetic import RareFailureFunction
from repro.telemetry import TelemetryConfig
from repro.utils import render_table, unit_cube_bounds

SEED = 2
D, EFFECTIVE_DIM = 20, 3
TRACE_PATH = "quickstart.trace.jsonl"


def main() -> None:
    # a black-box "circuit": 20 variation parameters, 3 of which (after a
    # hidden rotation) matter; failures are y < -1 in a narrow pocket
    circuit = RareFailureFunction(
        total_dim=D,
        effective_dim=EFFECTIVE_DIM,
        threshold=-1.2,
        depth=3.0,
        radius=0.3,
        seed=11,
    )
    bounds = unit_cube_bounds(D)
    # every evaluation flows through the runtime's Objective protocol
    objective = FunctionObjective(
        circuit, dim=D, bounds=bounds, cache_key="rare-failure-quickstart"
    )

    # step 1: a shared initial dataset (the paper's D_0)
    X0 = uniform_initial_design(bounds, n_init=25, seed=SEED)
    y0 = np.asarray(objective(X0))
    print(f"initial dataset: {len(y0)} simulations, best value {y0.min():+.3f}")

    # step 2: Algorithm 2 — embedding dimension from the initial data
    selection = select_embedding_dimension(
        X0, y0, dims=[1, 2, 3, 4, 6, 8, 12], n_trials=5, seed=SEED
    )
    print("\nAlgorithm 2 (embedding dimension selection):")
    print(
        render_table(
            ["d", "normalized MSE"],
            [
                [d, f"{m:.3f}"]
                for d, m in zip(selection.dims, selection.normalized_mse)
            ],
        )
    )
    print(f"selected embedding dimension: d = {selection.selected_dim}")

    # step 3: Algorithm 1 — REMBO batch BO failure hunting via Campaign,
    # with a trace of every phase (gp_fit / acq_opt / evaluate spans)
    campaign = Campaign(
        objective,
        RemboBO(
            batch_size=5,
            embedding_dim=max(selection.selected_dim, EFFECTIVE_DIM + 1),
            seed=SEED,
        ),
        telemetry=TelemetryConfig(trace_path=TRACE_PATH),
    )
    outcome = campaign.run(
        RunSpec(
            bounds=bounds,
            n_batches=8,
            threshold=circuit.threshold,
            initial_data=(X0, y0),
        )
    )
    result = outcome.run
    summary = result.summarize(circuit.threshold)
    print(
        f"\nproposed method: {result.n_evaluations} simulations, "
        f"worst value {result.best_y:+.3f}, "
        f"{summary.n_failures} failures"
        + (
            f", first at simulation #{summary.first_failure_index}"
            if summary.detected
            else ""
        )
    )
    counters = outcome.metrics["counters"]
    print(
        f"telemetry: {counters.get('evaluations.completed', 0)} simulations "
        f"traced -> {outcome.trace_path} "
        f"(python -m repro.telemetry.report {outcome.trace_path})"
    )

    # step 4: Monte Carlo at the same budget misses the pocket
    mc_campaign = Campaign(
        objective, MonteCarloSampler(result.n_evaluations, seed=SEED)
    )
    mc = mc_campaign.run(
        RunSpec(bounds=bounds, threshold=circuit.threshold)
    ).run
    mc_summary = mc.summarize(circuit.threshold)
    print(
        f"Monte Carlo     : {mc.n_evaluations} simulations, "
        f"worst value {mc.best_y:+.3f}, {mc_summary.n_failures} failures"
    )

    if summary.detected and not mc_summary.detected:
        print("\n=> the embedded BO found the rare failure; plain MC did not.")


if __name__ == "__main__":
    main()
