"""UVLO failure hunt (paper Table 1 in miniature).

Runs the proposed random-embedding BO and the competitive methods on the
19-dimensional under-voltage-lockout testbench with the paper's exact BO
budgets (5 initial + 5 batches of 19), printing a Table-1-style comparison.
Monte Carlo uses a reduced budget so the script finishes in about a minute.

Run:  python examples/uvlo_failure_hunt.py
"""

from repro.circuits.behavioral import UVLOTestbench
from repro.experiments import format_table, run_table, uvlo_config


def main() -> None:
    testbench = UVLOTestbench()
    spec = testbench.specs["delta_vthl"]
    print(
        f"UVLO testbench: {testbench.dim} variation parameters "
        f"({', '.join(testbench.parameter_names[:5])}, ...)"
    )
    print(f"spec: {spec.name} must stay below {spec.threshold}{spec.units}\n")

    cfg = uvlo_config().scaled(0.25)  # 5k MC / ~250 SSS for a quick demo
    table = run_table(
        testbench,
        cfg,
        methods=("MC", "SSS", "LCB", "pBO", "This work"),
        verbose=True,
    )
    print()
    print(format_table(table, title="UVLO failure detection (19 dimensions)"))

    ours = table.row("delta_vthl", "This work").summary
    if ours.detected:
        print(
            f"\nThe proposed method found {ours.n_failures} failing corners; "
            f"first at simulation #{ours.first_failure_index}."
        )
    else:
        print(
            "\nNo failure found in this run — the hunt is stochastic; "
            "re-run with another cfg seed (see EXPERIMENTS.md for the "
            "multi-seed success statistics)."
        )


if __name__ == "__main__":
    main()
