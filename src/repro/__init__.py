"""repro — high-dimensional Bayesian optimization for AMS failure detection.

A from-scratch reproduction of "Enabling High-Dimensional Bayesian
Optimization for Efficient Failure Detection of Analog and Mixed-Signal
Circuits" (Hu, Li, Huang — DAC 2019), including every substrate the paper
depends on: GP regression, DIRECT-L/COBYLA optimizers, PI/EI/LCB/pBO
acquisitions, random-embedding BO with embedding-dimension selection,
Monte-Carlo and scaled-sigma sampling baselines, behavioral UVLO/LDO
circuit testbenches and an MNA circuit simulator.

The single documented entry point for running a campaign is
:class:`repro.campaign.Campaign`; observability (tracing, metrics,
profiling) lives in :mod:`repro.telemetry`.
"""

__version__ = "1.0.0"
