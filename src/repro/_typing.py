"""Shared type aliases for array-accepting public APIs.

The library's contract is float64 in, float64 out: public entry points
accept anything :func:`numpy.asarray` can coerce (``ArrayLike``) and the
validation helpers normalize it to ``FloatArray`` before any numerics run.
Annotating with these aliases keeps the strict-mypy gate on ``repro.gp``,
``repro.kernels`` and ``repro.embedding`` honest without sprinkling raw
``npt.NDArray[np.float64]`` spellings everywhere.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

#: Normalized float64 array (what validation helpers return).
FloatArray = npt.NDArray[np.float64]

#: Anything coercible to an array at a public boundary.
ArrayLike = npt.ArrayLike

#: Integer index arrays (candidate dimensions, sort orders).
IntArray = npt.NDArray[np.int_]

__all__ = ["FloatArray", "ArrayLike", "IntArray"]
