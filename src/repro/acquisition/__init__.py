"""Acquisition functions and their optimization (paper Sections 2.2.2, 5.1)."""

from repro.acquisition.base import AcquisitionFunction
from repro.acquisition.functions import (
    ExpectedImprovement,
    LowerConfidenceBound,
    MultiWeightAcquisition,
    ProbabilityOfImprovement,
    WeightedAcquisition,
    pbo_weights,
)
from repro.acquisition.optimize import (
    default_acquisition_optimizer,
    optimize_acquisition,
)

__all__ = [
    "AcquisitionFunction",
    "ProbabilityOfImprovement",
    "ExpectedImprovement",
    "LowerConfidenceBound",
    "WeightedAcquisition",
    "MultiWeightAcquisition",
    "pbo_weights",
    "optimize_acquisition",
    "default_acquisition_optimizer",
]
