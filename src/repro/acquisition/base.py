"""Acquisition-function interface (paper Section 2.2.2).

The paper formulates failure detection as *minimization* of the circuit
performance, so every acquisition here follows the convention that **lower
acquisition values mark better sampling locations** and the next point is
``argmin α(x)``.  Maximization-style acquisitions (EI, PI) are negated.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.gp.surrogate import SurrogateModel
from repro.utils.validation import as_matrix


class AcquisitionFunction(abc.ABC):
    """A sampling criterion built on a fitted GP surrogate."""

    def __init__(self, gp: SurrogateModel) -> None:
        if not gp.is_fitted:
            raise RuntimeError("acquisition functions require a fitted GP")
        self.gp = gp

    @property
    def incumbent(self) -> float:
        """Best (lowest) observed label so far."""
        return float(np.min(self.gp.y_train))

    @abc.abstractmethod
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Vectorized acquisition at each row of ``X`` (lower is better)."""

    def __call__(self, x: np.ndarray) -> float:
        """Scalar acquisition value at a single point, for the optimizers."""
        return float(self.evaluate(as_matrix(x))[0])
