"""The paper's acquisition functions: PI, EI, LCB and the pBO weighting.

All are written for *minimization* of the objective (circuit performance);
lower acquisition values are better.  ``WeightedAcquisition`` implements
Eq. 9, ``α_pBO(x; D, w) = (1 - w) μ(x; D) − w σ(x; D)``: ``w = 0`` is pure
exploitation of the posterior mean, ``w = 1`` pure exploration of posterior
uncertainty, and a batch of different ``w`` values yields the paper's
parallelizable multi-acquisition batch (Algorithm 1, line 7).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro._typing import ArrayLike, FloatArray
from repro.acquisition.base import AcquisitionFunction
from repro.gp.model import GaussianProcess
from repro.utils.contracts import shape_contract
from repro.utils.validation import as_matrix

#: Floor on the posterior std to keep z-scores finite at training points.
_MIN_STD = 1e-12


class ProbabilityOfImprovement(AcquisitionFunction):
    """Negated probability of improving below the incumbent minus ``xi``."""

    def __init__(self, gp: GaussianProcess, xi: float = 0.0) -> None:
        super().__init__(gp)
        if xi < 0:
            raise ValueError(f"xi must be non-negative, got {xi}")
        self.xi = float(xi)

    @shape_contract("X: a(m, d) | a(d,) -> (m,)")
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        std = np.maximum(pred.std, _MIN_STD)
        z = (self.incumbent - self.xi - pred.mean) / std
        return -np.asarray(norm.cdf(z), dtype=float)


class ExpectedImprovement(AcquisitionFunction):
    """Negated expected improvement below the incumbent minus ``xi``."""

    def __init__(self, gp: GaussianProcess, xi: float = 0.0) -> None:
        super().__init__(gp)
        if xi < 0:
            raise ValueError(f"xi must be non-negative, got {xi}")
        self.xi = float(xi)

    @shape_contract("X: a(m, d) | a(d,) -> (m,)")
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        std = np.maximum(pred.std, _MIN_STD)
        improvement = self.incumbent - self.xi - pred.mean
        z = improvement / std
        ei = np.asarray(
            improvement * norm.cdf(z) + std * norm.pdf(z), dtype=float
        )
        return -np.maximum(ei, 0.0)


class LowerConfidenceBound(AcquisitionFunction):
    """``μ(x) − κ σ(x)``, minimized directly."""

    def __init__(self, gp: GaussianProcess, kappa: float = 2.0) -> None:
        super().__init__(gp)
        if kappa < 0:
            raise ValueError(f"kappa must be non-negative, got {kappa}")
        self.kappa = float(kappa)

    @shape_contract("X: a(m, d) | a(d,) -> (m,)")
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        return pred.mean - self.kappa * pred.std


class WeightedAcquisition(AcquisitionFunction):
    """The pBO acquisition of Eq. 9: ``(1 − w) μ(x) − w σ(x)``."""

    def __init__(self, gp: GaussianProcess, weight: float) -> None:
        super().__init__(gp)
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must lie in [0, 1], got {weight}")
        self.weight = float(weight)

    @shape_contract("X: a(m, d) | a(d,) -> (m,)")
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        return (1.0 - self.weight) * pred.mean - self.weight * pred.std


class MultiWeightAcquisition:
    """Eq. 9 for a whole weight ladder sharing one posterior evaluation.

    ``evaluate_all(X)`` returns an ``(n_weights, m)`` matrix whose row ``i``
    equals ``WeightedAcquisition(gp, w_i).evaluate(X)`` — the GP posterior
    is computed once per candidate set and reweighted across all weights,
    which is what makes the lockstep pBO proposal cheap.
    """

    def __init__(self, gp: GaussianProcess, weights: ArrayLike) -> None:
        if not gp.is_fitted:
            raise RuntimeError("acquisition functions require a fitted GP")
        w = np.asarray(weights, dtype=float).ravel()
        if w.size == 0:
            raise ValueError("at least one weight is required")
        if np.any(w < 0) or np.any(w > 1):
            raise ValueError("weights must lie in [0, 1]")
        self.gp = gp
        self.weights: FloatArray = w

    @shape_contract("X: a(m, d) | a(d,) -> (n_w, m)")
    def evaluate_all(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        w = self.weights[:, None]
        return (1.0 - w) * pred.mean[None, :] - w * pred.std[None, :]


@shape_contract("batch_size: n -> (n,)")
def pbo_weights(batch_size: int) -> np.ndarray:
    """The preset weight ladder ``w_1 … w_{n_b}`` for a pBO batch.

    Evenly spaced over ``[0, 1]`` so one batch spans pure exploitation to
    pure exploration, as the multi-acquisition scheme of [5] intends.  A
    batch of one degenerates to the balanced ``w = 0.5``.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_size == 1:
        return np.array([0.5], dtype=float)
    return np.linspace(0.0, 1.0, batch_size)
