"""The paper's acquisition functions: PI, EI, LCB and the pBO weighting.

All are written for *minimization* of the objective (circuit performance);
lower acquisition values are better.  ``WeightedAcquisition`` implements
Eq. 9, ``α_pBO(x; D, w) = (1 - w) μ(x; D) − w σ(x; D)``: ``w = 0`` is pure
exploitation of the posterior mean, ``w = 1`` pure exploration of posterior
uncertainty, and a batch of different ``w`` values yields the paper's
parallelizable multi-acquisition batch (Algorithm 1, line 7).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro._typing import ArrayLike, FloatArray
from repro.acquisition.base import AcquisitionFunction
from repro.gp.surrogate import SurrogateModel
from repro.utils.contracts import shape_contract
from repro.utils.validation import as_matrix

#: Floor on the posterior std to keep z-scores finite at training points.
_MIN_STD = 1e-12


class ProbabilityOfImprovement(AcquisitionFunction):
    """Negated probability of improving below the incumbent minus ``xi``."""

    def __init__(self, gp: SurrogateModel, xi: float = 0.0) -> None:
        super().__init__(gp)
        if xi < 0:
            raise ValueError(f"xi must be non-negative, got {xi}")
        self.xi = float(xi)

    @shape_contract("X: a(m, d) | a(d,) -> (m,)")
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        std = np.maximum(pred.std, _MIN_STD)
        z = (self.incumbent - self.xi - pred.mean) / std
        return -np.asarray(norm.cdf(z), dtype=float)


class ExpectedImprovement(AcquisitionFunction):
    """Negated expected improvement below the incumbent minus ``xi``."""

    def __init__(self, gp: SurrogateModel, xi: float = 0.0) -> None:
        super().__init__(gp)
        if xi < 0:
            raise ValueError(f"xi must be non-negative, got {xi}")
        self.xi = float(xi)

    @shape_contract("X: a(m, d) | a(d,) -> (m,)")
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        std = np.maximum(pred.std, _MIN_STD)
        improvement = self.incumbent - self.xi - pred.mean
        z = improvement / std
        ei = np.asarray(
            improvement * norm.cdf(z) + std * norm.pdf(z), dtype=float
        )
        return -np.maximum(ei, 0.0)


class LowerConfidenceBound(AcquisitionFunction):
    """``μ(x) − κ σ(x)``, minimized directly."""

    def __init__(self, gp: SurrogateModel, kappa: float = 2.0) -> None:
        super().__init__(gp)
        if kappa < 0:
            raise ValueError(f"kappa must be non-negative, got {kappa}")
        self.kappa = float(kappa)

    @shape_contract("X: a(m, d) | a(d,) -> (m,)")
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        return pred.mean - self.kappa * pred.std


class WeightedAcquisition(AcquisitionFunction):
    """The pBO acquisition of Eq. 9: ``(1 − w) μ(x) − w σ(x)``."""

    def __init__(self, gp: SurrogateModel, weight: float) -> None:
        super().__init__(gp)
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight must lie in [0, 1], got {weight}")
        self.weight = float(weight)

    @shape_contract("X: a(m, d) | a(d,) -> (m,)")
    def evaluate(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        return (1.0 - self.weight) * pred.mean - self.weight * pred.std


class MultiWeightAcquisition:
    """Eq. 9 for a whole weight ladder sharing one posterior evaluation.

    ``evaluate_all(X)`` returns an ``(n_weights, m)`` matrix whose row ``i``
    equals ``WeightedAcquisition(gp, w_i).evaluate(X)`` — the GP posterior
    is computed once per candidate set and reweighted across all weights,
    which is what makes the lockstep pBO proposal cheap.  The reweighting
    itself is one rank-2 GEMM: the ``(n_w, 2)`` coefficient matrix
    ``[1 − w, −w]`` against the ``(2, m)`` posterior slab ``[μ; σ]``.

    ``evaluate_segments(X, segments)`` is the lockstep driver's entry
    point: several searches contribute pending candidate blocks, the
    concatenated union goes through ``gp.predict`` once, and each search
    receives the slice of the union scored under *its* weight.
    """

    def __init__(self, gp: SurrogateModel, weights: ArrayLike) -> None:
        if not gp.is_fitted:
            raise RuntimeError("acquisition functions require a fitted GP")
        w = np.asarray(weights, dtype=float).ravel()
        if w.size == 0:
            raise ValueError("at least one weight is required")
        if np.any(w < 0) or np.any(w > 1):
            raise ValueError("weights must lie in [0, 1]")
        self.gp = gp
        self.weights: FloatArray = w
        #: (n_w, 2) Eq. 9 coefficients; row i is (1 − w_i, −w_i).
        self._coeffs: FloatArray = np.column_stack([1.0 - w, -w])

    @shape_contract("X: a(m, d) | a(d,) -> (n_w, m)")
    def evaluate_all(self, X: np.ndarray) -> np.ndarray:
        pred = self.gp.predict(as_matrix(X))
        slab = np.vstack([pred.mean, pred.std])
        return self._coeffs @ slab

    def evaluate_segments(
        self, X: np.ndarray, segments: list[tuple[int, int]]
    ) -> list[FloatArray]:
        """Score a concatenated candidate union with one posterior call.

        ``segments`` is a list of ``(weight_index, length)`` pairs whose
        lengths sum to ``X.shape[0]``; segment ``j`` covers the next
        ``length`` rows of ``X`` and is scored under
        ``self.weights[weight_index]``.  Returns one value array per
        segment, arithmetic identical to that segment's own
        :class:`WeightedAcquisition` evaluation — this is what lets the
        batched proposal drive many DIRECT/COBYLA searches off a single
        ``gp.predict`` per round.
        """
        X = as_matrix(X)
        total = sum(m for _, m in segments)
        if total != X.shape[0]:
            raise ValueError(
                f"segment lengths sum to {total}, union holds {X.shape[0]} rows"
            )
        pred = self.gp.predict(X)
        out: list[FloatArray] = []
        offset = 0
        for index, m in segments:
            if not 0 <= index < self.weights.shape[0]:
                raise IndexError(
                    f"weight index {index} outside ladder of "
                    f"{self.weights.shape[0]} weights"
                )
            w = float(self.weights[index])
            mu = pred.mean[offset : offset + m]
            sigma = pred.std[offset : offset + m]
            out.append((1.0 - w) * mu - w * sigma)
            offset += m
        return out


@shape_contract("batch_size: n -> (n,)")
def pbo_weights(batch_size: int) -> np.ndarray:
    """The preset weight ladder ``w_1 … w_{n_b}`` for a pBO batch.

    Evenly spaced over ``[0, 1]`` so one batch spans pure exploitation to
    pure exploration, as the multi-acquisition scheme of [5] intends.  A
    batch of one degenerates to the balanced ``w = 0.5``.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_size == 1:
        return np.array([0.5], dtype=float)
    return np.linspace(0.0, 1.0, batch_size)
