"""Acquisition optimization glue (paper Section 5.1).

The paper optimizes each acquisition with DIRECT_L for global search plus
COBYLA for local refinement; :func:`default_acquisition_optimizer` builds
that composition from our from-scratch implementations, with evaluation
budgets that scale mildly with dimension (Section 3: forcing completion of
a high-dimensional acquisition search means capping its evaluations).
"""

from __future__ import annotations

import numpy as np

from repro._typing import ArrayLike
from repro.acquisition.base import AcquisitionFunction
from repro.optim.base import Optimizer
from repro.optim.cobyla import Cobyla
from repro.optim.direct import Direct
from repro.optim.multistart import GlobalLocalOptimizer
from repro.optim.result import OptimizationResult
from repro.telemetry.profile import profiled
from repro.utils.contracts import shape_contract
from repro.utils.validation import check_bounds


#: Default acquisition evaluation caps.  Deliberately *independent* of the
#: search dimension: Section 3 notes that in practice the number of
#: acquisition evaluations must be capped "to force the completion" of each
#: sequential step, and that a fixed cap which is generous in a low-d
#: embedded space is starvation in the full D-dimensional space — the very
#: asymmetry the proposed method exploits.
DEFAULT_GLOBAL_BUDGET = 400
DEFAULT_LOCAL_BUDGET = 150


#: The local stage refines inside the global incumbent's basin only: a box
#: of this half-width (fraction of each side) around the DIRECT-L result.
DEFAULT_LOCAL_RADIUS = 0.1


def supports_lockstep(optimizer: Optimizer) -> bool:
    """True when ``optimizer``'s *global* stage can be driven in lockstep.

    The batched pBO proposal (:func:`repro.bo.propose.propose_batch`)
    replaces per-weight ``minimize`` calls with coroutine driving: every
    weight's pending candidate batch joins one union that is scored by a
    single shared GP posterior evaluation
    (:meth:`~repro.acquisition.functions.MultiWeightAcquisition.evaluate_segments`).
    That requires the global stage to expose the ``search`` coroutine
    protocol, which :class:`~repro.optim.direct.Direct` does.
    """
    return isinstance(optimizer, GlobalLocalOptimizer) and isinstance(
        optimizer.global_optimizer, Direct
    )


def supports_local_lockstep(optimizer: Optimizer) -> bool:
    """True when the *local* refinement stage can also be driven in lockstep.

    :class:`~repro.optim.cobyla.Cobyla` exposes the same ``search``
    coroutine protocol over real (per-weight local) bounds, so the
    refinement phase of the batched proposal can pool every weight's
    simplex/trust-region candidates into shared posterior evaluations too.
    """
    return isinstance(optimizer, GlobalLocalOptimizer) and isinstance(
        optimizer.local_optimizer, Cobyla
    )


def default_acquisition_optimizer(
    dim: int,
    global_budget: int | None = None,
    local_budget: int | None = None,
    local_radius: float | None = DEFAULT_LOCAL_RADIUS,
) -> Optimizer:
    """The paper's DIRECT-L + COBYLA stack with fixed evaluation caps."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if global_budget is None:
        global_budget = DEFAULT_GLOBAL_BUDGET
    if local_budget is None:
        local_budget = DEFAULT_LOCAL_BUDGET
    return GlobalLocalOptimizer(
        Direct(max_evaluations=global_budget, locally_biased=True),
        Cobyla(max_evaluations=local_budget, rho_begin=0.25),
        local_radius=local_radius,
    )


@profiled("acquisition.optimize")
@shape_contract("bounds: a(d, 2) | a(2, d)")
def optimize_acquisition(
    acquisition: AcquisitionFunction,
    bounds: ArrayLike,
    optimizer: Optimizer | None = None,
) -> OptimizationResult:
    """Return ``argmin α(x)`` over the box ``bounds``.

    The result's ``n_evaluations`` counts *acquisition* evaluations — this
    is the quantity whose growth with dimension motivates the paper's
    dimension reduction (Fig. 2).
    """
    lower, upper = check_bounds(bounds)
    if optimizer is None:
        optimizer = default_acquisition_optimizer(lower.shape[0])
    return optimizer.minimize(acquisition, np.column_stack([lower, upper]))
