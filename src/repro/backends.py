"""Opt-in compiled kernel backend (``REPRO_BACKEND=numba``).

The GP hot path — the fused Matérn/SE correlation + derivative sweep, the
ARD gradient contraction, and the ``α αᵀ − K⁻¹`` assembly of the marginal
likelihood evaluator — is pure elementwise/reduction work over ``(n, n)``
buffers.  The numpy implementation is already allocation-free and fused
where it matters; a JIT backend can still win by collapsing the remaining
multi-pass sweeps into single parallel loops.

Selection is by environment variable so the default install stays
zero-dependency:

* ``REPRO_BACKEND`` unset or ``numpy`` — the numpy reference path, always
  available, used by every test pin.
* ``REPRO_BACKEND=numba`` — compile the hot-path ops with ``numba.njit``
  on first use.  Requesting it without numba installed raises
  :class:`BackendUnavailableError` immediately (no silent fallback: a
  perf-motivated opt-in that quietly degrades is worse than an error).

Backend results are pinned to the numpy path at 1e-8 by
``tests/test_backends.py`` (skipped cleanly when numba is absent); the
compiled ops avoid ``fastmath`` so they stay bit-faithful to IEEE
ordering wherever the loop order matches numpy's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # annotations only: keep the module import dependency-free
    from repro._typing import FloatArray

#: Environment variable naming the active backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Recognized backend names.
BACKEND_NAMES = ("numpy", "numba")


class BackendUnavailableError(RuntimeError):
    """A compiled backend was requested but cannot be imported."""


def requested_backend() -> str:
    """The backend named by ``REPRO_BACKEND`` (default ``numpy``).

    Raises ``ValueError`` for unrecognized names so typos fail loudly
    instead of silently running the reference path.
    """
    name = os.environ.get(BACKEND_ENV, "numpy").strip().lower() or "numpy"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"{BACKEND_ENV}={name!r} is not a known backend; "
            f"options: {', '.join(BACKEND_NAMES)}"
        )
    return name


def numba_available() -> bool:
    """True when ``import numba`` succeeds in this environment."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


@dataclass(frozen=True)
class CompiledOps:
    """JIT-compiled hot-path operations of one backend.

    Every op writes into caller-provided buffers (matching the workspace
    discipline of :mod:`repro.kernels.stationary`) and is numerically
    interchangeable with the numpy reference to 1e-8.
    """

    #: Name of the backend that built these ops.
    name: str
    #: ``(sq, g_out) -> None`` — Matérn-5/2 correlation from scaled sq dists.
    matern52_corr: Callable
    #: ``(sq, g_out, dg_out) -> None`` — fused correlation + derivative.
    matern52_corr_grad: Callable
    #: ``(sq, g_out) -> None`` — squared-exponential correlation.
    rbf_corr: Callable
    #: ``(sq, g_out, dg_out) -> None`` — fused SE correlation + derivative.
    rbf_corr_grad: Callable
    #: ``(W, X) -> (d,)`` — ``vec[k] = Σ_ij W_ij (x_ik − x_jk)²``.
    ard_grad_vec: Callable
    #: ``(alpha, inv_lower, out) -> None`` — ``out = α αᵀ − K⁻¹`` where
    #: ``inv_lower`` holds ``K⁻¹`` in its lower triangle (dpotri layout).
    assemble_inner: Callable


_OPS_CACHE: dict[str, CompiledOps] = {}


def compiled_ops() -> Optional[CompiledOps]:
    """The active backend's compiled ops, or None on the numpy default.

    Hot-path call sites gate on this once per evaluation; the numpy path
    pays one environment read and a dict lookup, nothing else.
    """
    name = requested_backend()
    if name == "numpy":
        return None
    ops = _OPS_CACHE.get(name)
    if ops is None:
        ops = _OPS_CACHE[name] = _build_numba_ops()
    return ops


def _build_numba_ops() -> CompiledOps:
    """Compile the numba op set (lazily, on first hot-path use).

    The op bodies are plain annotated functions handed to ``numba.njit``
    as a call (not decorator syntax): numba ships no type stubs, and an
    untyped decorator would erase the signatures under the strict mypy
    gate this module opts into.
    """
    try:
        import numba
    except ImportError as exc:
        raise BackendUnavailableError(
            f"{BACKEND_ENV}=numba requested but numba is not importable; "
            f"install numba or unset {BACKEND_ENV}"
        ) from exc

    import numpy as np

    prange = numba.prange
    sqrt5 = float(np.sqrt(5.0))

    def matern52_corr(
        sq: FloatArray, g_out: FloatArray
    ) -> None:  # pragma: no cover - requires numba
        n, m = sq.shape
        for i in prange(n):
            for j in range(m):
                s = sq[i, j]
                r = np.sqrt(s)
                e = np.exp(-sqrt5 * r)
                g_out[i, j] = (1.0 + sqrt5 * r + (5.0 / 3.0) * s) * e

    def matern52_corr_grad(
        sq: FloatArray, g_out: FloatArray, dg_out: FloatArray
    ) -> None:  # pragma: no cover - requires numba
        n, m = sq.shape
        for i in prange(n):
            for j in range(m):
                s = sq[i, j]
                r = np.sqrt(s)
                e = np.exp(-sqrt5 * r)
                p = 1.0 + sqrt5 * r
                g_out[i, j] = (p + (5.0 / 3.0) * s) * e
                dg_out[i, j] = -(5.0 / 6.0) * p * e

    def rbf_corr(
        sq: FloatArray, g_out: FloatArray
    ) -> None:  # pragma: no cover - requires numba
        n, m = sq.shape
        for i in prange(n):
            for j in range(m):
                g_out[i, j] = np.exp(-0.5 * sq[i, j])

    def rbf_corr_grad(
        sq: FloatArray, g_out: FloatArray, dg_out: FloatArray
    ) -> None:  # pragma: no cover - requires numba
        n, m = sq.shape
        for i in prange(n):
            for j in range(m):
                e = np.exp(-0.5 * sq[i, j])
                g_out[i, j] = e
                dg_out[i, j] = -0.5 * e

    def ard_grad_vec(
        W: FloatArray, X: FloatArray
    ) -> FloatArray:  # pragma: no cover - requires numba
        n, d = X.shape
        vec = np.zeros(d)
        for k in prange(d):
            acc = 0.0
            for i in range(n):
                xik = X[i, k]
                for j in range(n):
                    diff = xik - X[j, k]
                    acc += W[i, j] * diff * diff
            vec[k] = acc
        return vec

    def assemble_inner(
        alpha: FloatArray, inv_lower: FloatArray, out: FloatArray
    ) -> None:  # pragma: no cover - requires numba
        n = alpha.shape[0]
        for i in prange(n):
            ai = alpha[i]
            for j in range(n):
                if j <= i:
                    kinv = inv_lower[i, j]
                else:
                    kinv = inv_lower[j, i]
                out[i, j] = ai * alpha[j] - kinv

    jit = numba.njit(cache=True, parallel=True)
    return CompiledOps(
        name="numba",
        matern52_corr=jit(matern52_corr),
        matern52_corr_grad=jit(matern52_corr_grad),
        rbf_corr=jit(rbf_corr),
        rbf_corr_grad=jit(rbf_corr_grad),
        ard_grad_vec=jit(ard_grad_vec),
        assemble_inner=jit(assemble_inner),
    )


__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "CompiledOps",
    "compiled_ops",
    "numba_available",
    "requested_backend",
]
