"""Bayesian-optimization engines for failure detection (paper Sections 2, 4).

* :class:`SequentialBO` — classic EI/PI/LCB baseline BO in the full space.
* :class:`BatchBO` — the pBO multi-weight batch baseline [5].
* :class:`RemboBO` — the proposed random-embedding batch BO (Algorithm 1).
* :class:`RunSpec` / :class:`EngineProtocol` — the shared keyword-only
  ``solve(objective=..., spec=..., policy=..., telemetry=..., rng=...)``
  entry point every engine implements (the legacy ``run(...)`` methods are
  deprecated wrappers).
* :class:`Specification` / :class:`RunResult` — spec folding and run logs.
"""

from repro.bo.batch import BatchBO
from repro.bo.engine import (
    EngineProtocol,
    RunSpec,
    SurrogateManager,
    default_kernel_factory,
    uniform_initial_design,
)
from repro.bo.loop import ACQUISITIONS, SequentialBO
from repro.bo.propose import BatchProposal, propose_batch
from repro.bo.records import FailureSummary, RunRecorder, RunResult
from repro.bo.rembo import RemboBO
from repro.bo.spec import Specification

__all__ = [
    "SequentialBO",
    "BatchBO",
    "RemboBO",
    "RunSpec",
    "EngineProtocol",
    "Specification",
    "RunResult",
    "RunRecorder",
    "FailureSummary",
    "SurrogateManager",
    "propose_batch",
    "BatchProposal",
    "uniform_initial_design",
    "default_kernel_factory",
    "ACQUISITIONS",
]
