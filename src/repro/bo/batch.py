"""Batch BO with the parallelizable multi-weight acquisition (pBO, [5]).

Per batch: fit the GP once, then optimize the weighted acquisition of Eq. 9
for each preset weight ``w_1 … w_{n_b}``, yielding ``n_b`` new simulation
points spanning exploitation (``w≈0``) through exploration (``w≈1``).  This
is the paper's "pBO" baseline when run in the full ``D``-dimensional space,
and the inner engine of the proposed method when run in an embedded space.

With the default DIRECT-L + COBYLA stack, :func:`~repro.bo.propose.propose_batch`
drives all ``n_b`` searches in lockstep: each generation's candidate union
is scored by ONE shared GP posterior evaluation and reweighted per weight
(:class:`~repro.acquisition.functions.MultiWeightAcquisition`), in both the
global and the local refinement phase.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.acquisition.functions import pbo_weights
from repro.acquisition.optimize import default_acquisition_optimizer
from repro.bo.engine import (
    OptimizerFactory,
    RunSpec,
    SurrogateManager,
    annotate_gp_fit,
    resolve_bounds,
    uniform_initial_design,
)
from repro.gp.surrogate import (
    KernelFactory,
    SurrogateLike,
    coerce_surrogate_spec,
)
from repro.bo.propose import propose_batch
from repro.bo.records import RunRecorder, RunResult
from repro.runtime.broker import RuntimePolicy, make_broker
from repro.runtime.objective import Objective, require_objective
from repro.telemetry.config import TelemetryLike, resolve_telemetry
from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.timing import Timer
from repro.utils.validation import as_matrix, as_vector

#: Engine default when ``RunSpec.n_batches`` is None.
DEFAULT_N_BATCHES = 5


class BatchBO:
    """Full-dimensional pBO (the paper's strongest non-embedded baseline).

    Parameters
    ----------
    batch_size:
        Points per batch ``n_b``.
    weights:
        Preset acquisition weights; defaults to ``pbo_weights(batch_size)``.
    surrogate:
        Engine-level surrogate choice (spec / kind string / mapping);
        ``spec.surrogate`` on an individual run overrides it.
    stop_on_failure:
        Terminate at the end of the first batch containing a failure.
    n_jobs:
        Process-pool width for per-weight acquisition searches on the
        *fallback* path (custom optimizer factories without coroutine
        stages); the default DIRECT-L + COBYLA stack runs fully in
        lockstep and ignores it.  Results are identical either way.
    """

    def __init__(
        self,
        batch_size: int,
        weights: Sequence[float] | None = None,
        kernel_factory: KernelFactory | None = None,
        noise_variance: float = 1e-4,
        tune_every: int = 1,
        n_restarts: int = 2,
        acquisition_optimizer_factory: OptimizerFactory | None = None,
        stop_on_failure: bool = False,
        seed: SeedLike = None,
        n_jobs: int = 1,
        *,
        surrogate: SurrogateLike = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        self.weights = (
            np.asarray(list(weights), dtype=float)
            if weights is not None
            else pbo_weights(self.batch_size)
        )
        if self.weights.shape[0] != self.batch_size:
            raise ValueError(
                f"{self.weights.shape[0]} weights given for batch size {self.batch_size}"
            )
        if np.any(self.weights < 0) or np.any(self.weights > 1):
            raise ValueError("weights must lie in [0, 1]")
        self.kernel_factory = kernel_factory
        self.noise_variance = float(noise_variance)
        self.tune_every = int(tune_every)
        self.n_restarts = int(n_restarts)
        self.surrogate = coerce_surrogate_spec(surrogate)
        self.acquisition_optimizer_factory = (
            acquisition_optimizer_factory or default_acquisition_optimizer
        )
        self.stop_on_failure = bool(stop_on_failure)
        self.n_jobs = int(n_jobs)
        self._rng = as_generator(seed)

    def solve(
        self,
        *,
        objective: Objective,
        spec: RunSpec | None = None,
        policy: RuntimePolicy | None = None,
        telemetry: TelemetryLike = None,
        rng: SeedLike = None,
    ) -> RunResult:
        """Run ``spec.n_batches`` batches of ``batch_size`` simulations each."""
        objective = require_objective(objective, type(self).__name__)
        spec = spec if spec is not None else RunSpec()
        tele = resolve_telemetry(telemetry)
        tracer = tele.tracer
        lower, upper, box = resolve_bounds(objective, spec.bounds)
        dim = lower.shape[0]
        base_rng = as_generator(rng) if rng is not None else self._rng
        rng_init, rng_model = spawn(base_rng, 2)
        n_batches = (
            spec.n_batches if spec.n_batches is not None else DEFAULT_N_BATCHES
        )
        threshold = spec.threshold

        recorder = RunRecorder(method="pBO", model_dim=dim)
        broker = make_broker(
            objective, policy, recorder=recorder, method="pBO", telemetry=tele
        )

        timer = Timer().start()
        if spec.initial_data is not None:
            X = as_matrix(spec.initial_data[0], dim).copy()
            y = as_vector(spec.initial_data[1], X.shape[0]).copy()
            recorder.record_initial(X, y)
        else:
            with tracer.span("init_design", n_init=spec.n_init) as span:
                X0 = uniform_initial_design(box, spec.n_init, seed=rng_init)
                batch = broker.evaluate_batch(X0)
                span.set("n_evaluated", batch.n_evaluated)
            recorder.mark_initial()
            X, y = batch.X, batch.y
        if y.size == 0:
            raise ValueError(
                "no initial evaluations survived the failure policy; "
                "cannot fit a surrogate"
            )

        manager = SurrogateManager(
            dim,
            kernel_factory=self.kernel_factory,
            noise_variance=self.noise_variance,
            tune_every=self.tune_every,
            n_restarts=self.n_restarts,
            seed=rng_model,
            surrogate=(
                spec.surrogate if spec.surrogate is not None else self.surrogate
            ),
        )

        for iteration in range(n_batches):
            with tracer.span("iteration", index=iteration) as it_span:
                with tracer.span("gp_fit", n_train=int(y.size)) as fit_span:
                    gp = manager.refit(X, y)
                    annotate_gp_fit(fit_span, manager)
                with tracer.span("acq_opt") as acq_span:
                    proposal = propose_batch(
                        gp,
                        self.weights,
                        box,
                        optimizer_factory=self.acquisition_optimizer_factory,
                        n_jobs=self.n_jobs,
                    )
                    acq_span.set("fevals", proposal.n_evaluations)
                recorder.add_acquisition(proposal.n_evaluations)
                new_X = np.clip(proposal.X, lower, upper)
                batch = broker.evaluate_batch(new_X)
                it_span.set("n_evaluated", batch.n_evaluated)
            if batch.n_evaluated:
                X = np.vstack([X, batch.X])
                y = np.concatenate([y, batch.y])
            if (
                self.stop_on_failure
                and threshold is not None
                and batch.n_evaluated
                and np.min(batch.y) < threshold
            ):
                break
        timer.stop()

        return recorder.finalize(
            total_seconds=timer.elapsed,
            eval_seconds=broker.stats.eval_seconds,
        )

