"""Shared plumbing for the BO engines: surrogate management, initial design.

The engines differ only in how they propose points (single-acquisition
sequential, multi-weight batch, or batch-through-embedding); GP fitting,
label standardization and hyperparameter tuning cadence are identical and
live here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from repro.gp.hyperopt import HyperoptResult, fit_hyperparameters
from repro.gp.standardize import Standardizer
from repro.gp.surrogate import (
    KernelFactory,
    SurrogateLike,
    SurrogateModel,
    SurrogateSpec,
    coerce_surrogate_spec,
    make_surrogate,
    surrogate_kind_of,
)
from repro.kernels.stationary import Matern52
from repro.optim.base import Optimizer
from repro.runtime.objective import Objective, resolve_bounds  # noqa: F401 — engine-facing re-export
from repro.telemetry.config import TelemetryLike
from repro.utils.contracts import shape_contract
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import as_matrix, as_vector, check_bounds

if TYPE_CHECKING:
    from repro.bo.records import RunResult
    from repro.runtime.broker import RuntimePolicy

OptimizerFactory = Callable[[int], Optimizer]


@dataclass(frozen=True)
class RunSpec:
    """What one engine run should do, independent of how it is wired.

    The spec carries the *problem-shaped* arguments every engine shares —
    bounds, initial design, evaluation budget, failure threshold — while
    runtime wiring (cache/ledger/failure policy) travels separately as a
    :class:`~repro.runtime.broker.RuntimePolicy` and observability as a
    :class:`~repro.telemetry.Telemetry`.

    Parameters
    ----------
    bounds:
        Search box; may be None for an :class:`Objective` that declares
        its own.
    n_init:
        Initial-design size (ignored when ``initial_data`` is given).
    budget:
        Total evaluation budget for sequential engines; None applies the
        engine default.
    n_batches:
        Batch count for batch engines; None applies the engine default.
    threshold:
        Failure threshold ``T`` (minimization orientation: ``y < T``).
    initial_data:
        Precomputed ``(X0, y0)`` shared across methods, as in the paper.
    surrogate:
        Which surrogate model the run should use: a
        :class:`~repro.gp.surrogate.SurrogateSpec`, a kind string
        (``"exact"`` / ``"sparse"`` / ``"auto"``), or a mapping of spec
        fields (``{"kind": "sparse", "m": 256}``).  ``None`` defers to the
        engine's own ``surrogate=`` default.  Normalized to a
        ``SurrogateSpec`` at construction, so invalid kinds fail here with
        an error naming the allowed ones.
    """

    bounds: object | None = None
    n_init: int = 5
    budget: int | None = None
    n_batches: int | None = None
    threshold: float | None = None
    initial_data: tuple[np.ndarray, np.ndarray] | None = None
    surrogate: SurrogateLike = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        if self.n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {self.n_init}")
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.n_batches is not None and self.n_batches < 0:
            raise ValueError(f"n_batches must be >= 0, got {self.n_batches}")
        object.__setattr__(
            self, "surrogate", coerce_surrogate_spec(self.surrogate)
        )


@runtime_checkable
class EngineProtocol(Protocol):
    """The one entry point every BO engine and sampler exposes.

    Implementations: :class:`~repro.bo.loop.SequentialBO`,
    :class:`~repro.bo.batch.BatchBO`, :class:`~repro.bo.rembo.RemboBO`
    (and, duck-typed, the sampling baselines).  The legacy positional
    ``run(...)`` methods remain as deprecated wrappers over ``solve``.
    """

    def solve(
        self,
        *,
        objective: Objective,
        spec: "RunSpec | None" = None,
        policy: "RuntimePolicy | None" = None,
        telemetry: TelemetryLike = None,
        rng: SeedLike = None,
    ) -> "RunResult": ...


def default_kernel_factory(dim: int):
    """Matérn-5/2 with ARD, the usual BO default (paper cites both SE and Matérn)."""
    return Matern52(dim=dim, ard=True)


def annotate_gp_fit(span, manager: "SurrogateManager") -> None:
    """Attach the surrogate refit's hyperopt outcome to a ``gp_fit`` span.

    No-op attributes on the null span when telemetry is off; when the
    refit skipped tuning (``tune_every`` cadence) only ``tuned=False`` is
    recorded.
    """
    span.set("tuned", manager.last_refit_tuned)
    model = manager.model
    if model is not None:
        span.set("surrogate", surrogate_kind_of(model))
        n_inducing = getattr(model, "n_inducing", None)
        if n_inducing is not None:
            span.set("n_inducing", int(n_inducing))
    if manager.last_refit_tuned and manager.last_hyperopt is not None:
        hyper = manager.last_hyperopt
        span.set("lml", float(hyper.log_marginal_likelihood))
        span.set("restarts", int(hyper.n_restarts))
        span.set("fevals", int(hyper.n_evaluations))




@shape_contract("bounds: a(d, 2) | a(2, d), n_init: n -> (n, d)")
def uniform_initial_design(
    bounds, n_init: int, seed: SeedLike = None
) -> np.ndarray:
    """Uniform initial samples in a box (the paper's initial dataset D_0)."""
    lower, upper = check_bounds(bounds)
    if n_init < 1:
        raise ValueError(f"n_init must be >= 1, got {n_init}")
    rng = as_generator(seed)
    return rng.uniform(lower, upper, size=(n_init, lower.shape[0]))


class SurrogateManager:
    """Owns the surrogate model: standardization, refits, tuning cadence.

    Parameters
    ----------
    dim:
        Dimensionality the surrogate operates in (D for plain BO, d for
        REMBO).
    kernel_factory / noise_variance:
        Surrogate construction knobs.
    tune_every:
        Re-optimize hyperparameters every ``tune_every`` refits (1 = always).
    n_restarts:
        Multi-start count for each hyperparameter fit.
    surrogate:
        Which surrogate to build (spec / kind string / field mapping, see
        :func:`~repro.gp.surrogate.make_surrogate`).  ``"auto"`` starts
        exact and rebuilds as sparse once the dataset crosses the spec's
        ``switch_at`` threshold; tuned hyperparameters carry across the
        switch.
    """

    def __init__(
        self,
        dim: int,
        kernel_factory: KernelFactory | None = None,
        noise_variance: float = 1e-4,
        tune_every: int = 1,
        n_restarts: int = 2,
        seed: SeedLike = None,
        surrogate: SurrogateLike = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if tune_every < 1:
            raise ValueError(f"tune_every must be >= 1, got {tune_every}")
        self.dim = int(dim)
        self._kernel_factory = kernel_factory or default_kernel_factory
        self._noise_variance = float(noise_variance)
        self.tune_every = int(tune_every)
        self.n_restarts = int(n_restarts)
        self._rng = as_generator(seed)
        self.standardizer = Standardizer()
        self.surrogate_spec: SurrogateSpec = (
            coerce_surrogate_spec(surrogate) or SurrogateSpec()
        )
        self.model: SurrogateModel | None = None
        self._refit_count = 0
        #: Result of the most recent hyperparameter search (telemetry reads
        #: this to attribute LML/restart/feval counts to the gp_fit span).
        self.last_hyperopt: HyperoptResult | None = None
        #: Whether the most recent :meth:`refit` ran a hyperparameter search.
        self.last_refit_tuned = False

    @property
    def gp(self) -> SurrogateModel | None:
        """Deprecated alias for :attr:`model` (pre-surrogate-API name)."""
        warnings.warn(
            "SurrogateManager.gp is deprecated and will be removed in the "
            "next release; use SurrogateManager.model",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.model

    def _ensure_model(self, n: int) -> SurrogateModel:
        """The surrogate for an ``n``-point fit, rebuilt on a kind switch.

        ``kind="auto"`` resolves against ``n`` on every refit; crossing the
        ``switch_at`` threshold swaps the exact model for a sparse one (the
        spec never switches back — ``n`` only grows along a run).  Tuned
        hyperparameters transplant onto the replacement so the switch does
        not discard the hyperopt state accumulated so far.
        """
        kind = self.surrogate_spec.resolve_kind(n)
        model = self.model
        if model is not None and surrogate_kind_of(model) == kind:
            return model
        replacement = make_surrogate(
            self.surrogate_spec,
            self.dim,
            kernel_factory=self._kernel_factory,
            noise_variance=self._noise_variance,
            n=n,
        )
        if model is not None:
            replacement.theta = model.theta
        self.model = replacement
        return replacement

    def refit(self, X, y) -> SurrogateModel:
        """(Re)train the surrogate on the full dataset in model space.

        When ``X`` extends the previously fitted inputs (the BO engines
        always append), the new rows enter through the model's incremental
        update and only the labels — re-standardized over the grown
        dataset — are resolved against the existing factorization;
        otherwise the surrogate is refit from scratch.  Scheduled
        hyperparameter tuning always ends in an exact refit at the winning
        theta.
        """
        X = as_matrix(X, self.dim)
        y = as_vector(y, X.shape[0])
        y_std = self.standardizer.fit_transform(y)
        model = self._ensure_model(X.shape[0])
        n_prev = model.n_train
        if (
            model.is_fitted
            and X.shape[0] >= n_prev
            and np.array_equal(X[:n_prev], model.X_train)
        ):
            if X.shape[0] > n_prev:
                model.add_data(X[n_prev:], y_std[n_prev:])
            model.set_labels(y_std)
        else:
            model.fit(X, y_std)
        if self._refit_count % self.tune_every == 0:
            self.last_hyperopt = fit_hyperparameters(
                model, n_restarts=self.n_restarts, seed=self._rng
            )
            self.last_refit_tuned = True
        else:
            self.last_refit_tuned = False
        self._refit_count += 1
        return model
