"""Shared plumbing for the BO engines: surrogate management, initial design.

The engines differ only in how they propose points (single-acquisition
sequential, multi-weight batch, or batch-through-embedding); GP fitting,
label standardization and hyperparameter tuning cadence are identical and
live here.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gp.hyperopt import fit_hyperparameters
from repro.gp.model import GaussianProcess
from repro.gp.standardize import Standardizer
from repro.kernels.stationary import Matern52
from repro.optim.base import Optimizer
from repro.runtime.objective import resolve_bounds  # noqa: F401 — engine-facing re-export
from repro.utils.contracts import shape_contract
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import as_matrix, as_vector, check_bounds

KernelFactory = Callable[[int], object]
OptimizerFactory = Callable[[int], Optimizer]


def default_kernel_factory(dim: int):
    """Matérn-5/2 with ARD, the usual BO default (paper cites both SE and Matérn)."""
    return Matern52(dim=dim, ard=True)




@shape_contract("bounds: a(d, 2) | a(2, d), n_init: n -> (n, d)")
def uniform_initial_design(
    bounds, n_init: int, seed: SeedLike = None
) -> np.ndarray:
    """Uniform initial samples in a box (the paper's initial dataset D_0)."""
    lower, upper = check_bounds(bounds)
    if n_init < 1:
        raise ValueError(f"n_init must be >= 1, got {n_init}")
    rng = as_generator(seed)
    return rng.uniform(lower, upper, size=(n_init, lower.shape[0]))


class SurrogateManager:
    """Owns the GP surrogate: standardization, refits and tuning cadence.

    Parameters
    ----------
    dim:
        Dimensionality the GP operates in (D for plain BO, d for REMBO).
    kernel_factory / noise_variance:
        Surrogate construction knobs.
    tune_every:
        Re-optimize hyperparameters every ``tune_every`` refits (1 = always).
    n_restarts:
        Multi-start count for each hyperparameter fit.
    """

    def __init__(
        self,
        dim: int,
        kernel_factory: KernelFactory | None = None,
        noise_variance: float = 1e-4,
        tune_every: int = 1,
        n_restarts: int = 2,
        seed: SeedLike = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if tune_every < 1:
            raise ValueError(f"tune_every must be >= 1, got {tune_every}")
        self.dim = int(dim)
        self._kernel_factory = kernel_factory or default_kernel_factory
        self._noise_variance = float(noise_variance)
        self.tune_every = int(tune_every)
        self.n_restarts = int(n_restarts)
        self._rng = as_generator(seed)
        self.standardizer = Standardizer()
        self.gp: GaussianProcess | None = None
        self._refit_count = 0

    def refit(self, X, y) -> GaussianProcess:
        """(Re)train the surrogate on the full dataset in model space.

        When ``X`` extends the previously fitted inputs (the BO engines
        always append), the new rows enter through the GP's incremental
        rank-k Cholesky update and only the labels — re-standardized over
        the grown dataset — are resolved against the existing factorization;
        otherwise the surrogate is refit from scratch.  Scheduled
        hyperparameter tuning always ends in an exact refit at the winning
        theta.
        """
        X = as_matrix(X, self.dim)
        y = as_vector(y, X.shape[0])
        y_std = self.standardizer.fit_transform(y)
        gp = self.gp
        if gp is None:
            gp = self.gp = GaussianProcess(
                self._kernel_factory(self.dim),
                noise_variance=self._noise_variance,
            )
        n_prev = gp.n_train
        if (
            gp.is_fitted
            and X.shape[0] >= n_prev
            and np.array_equal(X[:n_prev], gp.X_train)
        ):
            if X.shape[0] > n_prev:
                gp.add_data(X[n_prev:], y_std[n_prev:])
            gp.set_labels(y_std)
        else:
            gp.fit(X, y_std)
        if self._refit_count % self.tune_every == 0:
            fit_hyperparameters(gp, n_restarts=self.n_restarts, seed=self._rng)
        self._refit_count += 1
        return gp
