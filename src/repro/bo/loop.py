"""Sequential single-acquisition Bayesian optimization (paper Section 2.2).

This is the "traditional BO" family of the paper's comparison: one GP in
the full ``D``-dimensional space, one acquisition (EI / PI / LCB) optimized
per iteration, one simulation per iteration.  Its failure on the 19- and
60-dimensional testbenches is half of the paper's headline result.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.acquisition.functions import (
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
)
from repro.acquisition.optimize import default_acquisition_optimizer
from repro.bo.engine import (
    KernelFactory,
    OptimizerFactory,
    SurrogateManager,
    resolve_bounds,
    uniform_initial_design,
)
from repro.bo.records import RunRecorder, RunResult
from repro.runtime.broker import RuntimePolicy, make_broker
from repro.runtime.objective import Objective, coerce_objective
from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.timing import Timer
from repro.utils.validation import as_matrix, as_vector

#: Acquisition registry used by the experiment harness ("EI", "PI", "LCB").
ACQUISITIONS = {
    "ei": lambda gp, xi, kappa: ExpectedImprovement(gp, xi=xi),
    "pi": lambda gp, xi, kappa: ProbabilityOfImprovement(gp, xi=xi),
    "lcb": lambda gp, xi, kappa: LowerConfidenceBound(gp, kappa=kappa),
}


class SequentialBO:
    """Classic one-point-per-iteration BO over a box.

    Parameters
    ----------
    acquisition:
        ``"ei"``, ``"pi"`` or ``"lcb"``.
    xi / kappa:
        Acquisition hyperparameters (improvement margin; LCB weight).
    kernel_factory / noise_variance / tune_every / n_restarts:
        Surrogate knobs, see :class:`SurrogateManager`.
    acquisition_optimizer_factory:
        Builds the inner optimizer for a given dimension; defaults to the
        paper's DIRECT-L + COBYLA stack.
    stop_on_failure:
        Optionally terminate as soon as the objective drops below
        ``threshold`` (passed to :meth:`run`).
    """

    def __init__(
        self,
        acquisition: str = "ei",
        xi: float = 0.0,
        kappa: float = 2.0,
        kernel_factory: KernelFactory | None = None,
        noise_variance: float = 1e-4,
        tune_every: int = 1,
        n_restarts: int = 2,
        acquisition_optimizer_factory: OptimizerFactory | None = None,
        stop_on_failure: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if acquisition not in ACQUISITIONS:
            raise ValueError(
                f"unknown acquisition {acquisition!r}; options: {sorted(ACQUISITIONS)}"
            )
        self.acquisition = acquisition
        self.xi = float(xi)
        self.kappa = float(kappa)
        self.kernel_factory = kernel_factory
        self.noise_variance = float(noise_variance)
        self.tune_every = int(tune_every)
        self.n_restarts = int(n_restarts)
        self.acquisition_optimizer_factory = (
            acquisition_optimizer_factory or default_acquisition_optimizer
        )
        self.stop_on_failure = bool(stop_on_failure)
        self._rng = as_generator(seed)

    def run(
        self,
        objective: Objective | Callable[[np.ndarray], float],
        bounds=None,
        n_init: int = 5,
        budget: int = 100,
        threshold: float | None = None,
        initial_data: tuple[np.ndarray, np.ndarray] | None = None,
        runtime: RuntimePolicy | None = None,
    ) -> RunResult:
        """Spend ``budget`` total objective evaluations minimizing ``objective``.

        ``initial_data`` (``X0, y0``) reuses precomputed simulations — the
        paper shares one initial dataset across all BO methods; when given,
        ``n_init`` is ignored and no extra initial simulations are spent.
        ``bounds`` may be omitted for an :class:`Objective` that declares
        its own.  All simulations route through the evaluation runtime
        (``runtime`` supplies shared cache / ledger / failure policy).
        """
        objective = coerce_objective(objective, bounds)
        lower, upper, box = resolve_bounds(objective, bounds)
        dim = lower.shape[0]
        rng_init, rng_model = spawn(self._rng, 2)

        method = self.acquisition.upper()
        recorder = RunRecorder(method=method, model_dim=dim)
        broker = make_broker(objective, runtime, recorder=recorder, method=method)

        timer = Timer().start()
        if initial_data is not None:
            X = as_matrix(initial_data[0], dim).copy()
            y = as_vector(initial_data[1], X.shape[0]).copy()
            recorder.record_initial(X, y)
        else:
            X0 = uniform_initial_design(box, n_init, seed=rng_init)
            batch = broker.evaluate_batch(X0)
            recorder.mark_initial()
            X, y = batch.X, batch.y
        n_spent = max(X.shape[0], n_init if initial_data is None else 0)
        if budget < n_spent:
            raise ValueError(
                f"budget {budget} smaller than initial design {n_spent}"
            )
        if y.size == 0:
            raise ValueError(
                "no initial evaluations survived the failure policy; "
                "cannot fit a surrogate"
            )

        manager = SurrogateManager(
            dim,
            kernel_factory=self.kernel_factory,
            noise_variance=self.noise_variance,
            tune_every=self.tune_every,
            n_restarts=self.n_restarts,
            seed=rng_model,
        )
        build = ACQUISITIONS[self.acquisition]

        while n_spent < budget:
            if (
                self.stop_on_failure
                and threshold is not None
                and np.min(y) < threshold
            ):
                break
            gp = manager.refit(X, y)
            acq = build(gp, self.xi, self.kappa)
            optimizer = self.acquisition_optimizer_factory(dim)
            result = optimizer.minimize(acq, box)
            recorder.add_acquisition(result.n_evaluations)
            x_next = np.clip(result.x, lower, upper)
            y_next = broker.evaluate(x_next)
            n_spent += 1
            if y_next is None:  # dropped by the skip policy
                continue
            X = np.vstack([X, x_next])
            y = np.append(y, y_next)
        timer.stop()

        return recorder.finalize(
            total_seconds=timer.elapsed,
            eval_seconds=broker.stats.eval_seconds,
        )
