"""Sequential single-acquisition Bayesian optimization (paper Section 2.2).

This is the "traditional BO" family of the paper's comparison: one GP in
the full ``D``-dimensional space, one acquisition (EI / PI / LCB) optimized
per iteration, one simulation per iteration.  Its failure on the 19- and
60-dimensional testbenches is half of the paper's headline result.
"""

from __future__ import annotations


import numpy as np

from repro.acquisition.functions import (
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
)
from repro.acquisition.optimize import default_acquisition_optimizer
from repro.bo.engine import (
    OptimizerFactory,
    RunSpec,
    SurrogateManager,
    annotate_gp_fit,
    resolve_bounds,
    uniform_initial_design,
)
from repro.gp.surrogate import (
    KernelFactory,
    SurrogateLike,
    coerce_surrogate_spec,
)
from repro.bo.records import RunRecorder, RunResult
from repro.runtime.broker import RuntimePolicy, make_broker
from repro.runtime.objective import Objective, require_objective
from repro.telemetry.config import TelemetryLike, resolve_telemetry
from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.timing import Timer
from repro.utils.validation import as_matrix, as_vector

#: Acquisition registry used by the experiment harness ("EI", "PI", "LCB").
ACQUISITIONS = {
    "ei": lambda gp, xi, kappa: ExpectedImprovement(gp, xi=xi),
    "pi": lambda gp, xi, kappa: ProbabilityOfImprovement(gp, xi=xi),
    "lcb": lambda gp, xi, kappa: LowerConfidenceBound(gp, kappa=kappa),
}

#: Engine default when ``RunSpec.budget`` is None.
DEFAULT_BUDGET = 100


class SequentialBO:
    """Classic one-point-per-iteration BO over a box.

    Parameters
    ----------
    acquisition:
        ``"ei"``, ``"pi"`` or ``"lcb"``.
    xi / kappa:
        Acquisition hyperparameters (improvement margin; LCB weight).
    kernel_factory / noise_variance / tune_every / n_restarts:
        Surrogate knobs, see :class:`SurrogateManager`.
    surrogate:
        Engine-level surrogate choice (spec / kind string / mapping);
        ``spec.surrogate`` on an individual run overrides it.
    acquisition_optimizer_factory:
        Builds the inner optimizer for a given dimension; defaults to the
        paper's DIRECT-L + COBYLA stack.
    stop_on_failure:
        Optionally terminate as soon as the objective drops below the
        spec's ``threshold``.
    """

    def __init__(
        self,
        acquisition: str = "ei",
        xi: float = 0.0,
        kappa: float = 2.0,
        kernel_factory: KernelFactory | None = None,
        noise_variance: float = 1e-4,
        tune_every: int = 1,
        n_restarts: int = 2,
        acquisition_optimizer_factory: OptimizerFactory | None = None,
        stop_on_failure: bool = False,
        seed: SeedLike = None,
        *,
        surrogate: SurrogateLike = None,
    ) -> None:
        if acquisition not in ACQUISITIONS:
            raise ValueError(
                f"unknown acquisition {acquisition!r}; options: {sorted(ACQUISITIONS)}"
            )
        self.acquisition = acquisition
        self.xi = float(xi)
        self.kappa = float(kappa)
        self.kernel_factory = kernel_factory
        self.noise_variance = float(noise_variance)
        self.tune_every = int(tune_every)
        self.n_restarts = int(n_restarts)
        self.surrogate = coerce_surrogate_spec(surrogate)
        self.acquisition_optimizer_factory = (
            acquisition_optimizer_factory or default_acquisition_optimizer
        )
        self.stop_on_failure = bool(stop_on_failure)
        self._rng = as_generator(seed)

    def solve(
        self,
        *,
        objective: Objective,
        spec: RunSpec | None = None,
        policy: RuntimePolicy | None = None,
        telemetry: TelemetryLike = None,
        rng: SeedLike = None,
    ) -> RunResult:
        """Spend ``spec.budget`` total objective evaluations minimizing.

        ``spec.initial_data`` (``X0, y0``) reuses precomputed simulations —
        the paper shares one initial dataset across all BO methods; when
        given, ``spec.n_init`` is ignored and no extra initial simulations
        are spent.  ``spec.bounds`` may be omitted for an
        :class:`Objective` that declares its own.  All simulations route
        through the evaluation runtime (``policy`` supplies shared
        cache / ledger / failure policy); ``telemetry`` receives
        ``init_design`` / ``iteration`` / ``gp_fit`` / ``acq_opt`` /
        ``evaluate`` spans and broker metrics.  ``rng`` overrides the
        constructor seed for this run.
        """
        objective = require_objective(objective, type(self).__name__)
        spec = spec if spec is not None else RunSpec()
        tele = resolve_telemetry(telemetry)
        tracer = tele.tracer
        lower, upper, box = resolve_bounds(objective, spec.bounds)
        dim = lower.shape[0]
        base_rng = as_generator(rng) if rng is not None else self._rng
        rng_init, rng_model = spawn(base_rng, 2)
        budget = spec.budget if spec.budget is not None else DEFAULT_BUDGET
        threshold = spec.threshold

        method = self.acquisition.upper()
        recorder = RunRecorder(method=method, model_dim=dim)
        broker = make_broker(
            objective, policy, recorder=recorder, method=method, telemetry=tele
        )

        timer = Timer().start()
        if spec.initial_data is not None:
            X = as_matrix(spec.initial_data[0], dim).copy()
            y = as_vector(spec.initial_data[1], X.shape[0]).copy()
            recorder.record_initial(X, y)
        else:
            with tracer.span("init_design", n_init=spec.n_init) as span:
                X0 = uniform_initial_design(box, spec.n_init, seed=rng_init)
                batch = broker.evaluate_batch(X0)
                span.set("n_evaluated", batch.n_evaluated)
            recorder.mark_initial()
            X, y = batch.X, batch.y
        n_spent = max(
            X.shape[0], spec.n_init if spec.initial_data is None else 0
        )
        if budget < n_spent:
            raise ValueError(
                f"budget {budget} smaller than initial design {n_spent}"
            )
        if y.size == 0:
            raise ValueError(
                "no initial evaluations survived the failure policy; "
                "cannot fit a surrogate"
            )

        manager = SurrogateManager(
            dim,
            kernel_factory=self.kernel_factory,
            noise_variance=self.noise_variance,
            tune_every=self.tune_every,
            n_restarts=self.n_restarts,
            seed=rng_model,
            surrogate=(
                spec.surrogate if spec.surrogate is not None else self.surrogate
            ),
        )
        build = ACQUISITIONS[self.acquisition]

        iteration = 0
        while n_spent < budget:
            if (
                self.stop_on_failure
                and threshold is not None
                and np.min(y) < threshold
            ):
                break
            with tracer.span("iteration", index=iteration) as it_span:
                with tracer.span("gp_fit", n_train=int(y.size)) as fit_span:
                    gp = manager.refit(X, y)
                    annotate_gp_fit(fit_span, manager)
                acq = build(gp, self.xi, self.kappa)
                optimizer = self.acquisition_optimizer_factory(dim)
                with tracer.span("acq_opt") as acq_span:
                    result = optimizer.minimize(acq, box)
                    acq_span.set("fevals", result.n_evaluations)
                recorder.add_acquisition(result.n_evaluations)
                x_next = np.clip(result.x, lower, upper)
                y_next = broker.evaluate(x_next)
                it_span.set("n_evaluated", 0 if y_next is None else 1)
            iteration += 1
            n_spent += 1
            if y_next is None:  # dropped by the skip policy
                continue
            X = np.vstack([X, x_next])
            y = np.append(y, y_next)
        timer.stop()

        return recorder.finalize(
            total_seconds=timer.elapsed,
            eval_seconds=broker.stats.eval_seconds,
        )

