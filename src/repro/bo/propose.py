"""Batched multi-weight acquisition proposal — the pBO inner loop.

Run naively, each pBO weight ``w_i`` performs its own DIRECT-L + COBYLA
search and every DIRECT candidate costs one GP posterior evaluation.  But
all weights share the same posterior: only the reweighting
``(1 − w) μ − w σ`` (Eq. 9) differs.  :func:`propose_batch` therefore
drives all ``n_b`` DIRECT coroutines in lockstep — each round gathers the
pending candidate batch of every live search, scores the union with ONE
``gp.predict``, and hands each search its reweighted slice.  The local
COBYLA refinements are mutually independent and can fan out across a
process pool (``n_jobs``); each worker recomputes exactly what the
sequential loop would, so parallel and sequential proposals are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acquisition.functions import WeightedAcquisition
from repro.acquisition.optimize import default_acquisition_optimizer
from repro.gp.model import GaussianProcess
from repro.optim.direct import Direct
from repro.optim.multistart import GlobalLocalOptimizer
from repro.telemetry.profile import profiled
from repro.utils.contracts import shape_contract
from repro.utils.parallel import parallel_map
from repro.utils.validation import check_bounds


@dataclass
class BatchProposal:
    """One pBO batch: a proposed point per weight plus evaluation counts."""

    X: np.ndarray  # (n_weights, dim)
    n_evaluations: int


@dataclass
class _WeightSearch:
    """Bookkeeping for one weight's global DIRECT search."""

    weight: float
    engine: object
    points: np.ndarray | None = None
    done: bool = False
    n_evaluations: int = 0
    best_f: float = field(default=np.inf)
    best_x: np.ndarray | None = None


def _refine_task(task) -> tuple[np.ndarray, float, int]:
    """Local refinement of one weight's incumbent (process-pool safe)."""
    gp, weight, local_bounds, x0, optimizer = task
    acquisition = WeightedAcquisition(gp, weight=weight)
    result = optimizer.minimize(acquisition, local_bounds, x0=x0)
    return result.x, result.fun, result.n_evaluations


def _search_task(task) -> tuple[np.ndarray, int]:
    """A full independent acquisition search (fallback path)."""
    gp, weight, bounds, optimizer = task
    acquisition = WeightedAcquisition(gp, weight=weight)
    result = optimizer.minimize(acquisition, bounds)
    return result.x, result.n_evaluations


@profiled("bo.propose_batch")
@shape_contract("weights: a(n_w,), bounds: a(d, 2) | a(2, d)")
def propose_batch(
    gp: GaussianProcess,
    weights,
    bounds,
    optimizer_factory=None,
    n_jobs: int = 1,
) -> BatchProposal:
    """Propose one point per pBO weight over the box ``bounds``.

    When the optimizer factory produces the standard DIRECT + local stack
    (:class:`GlobalLocalOptimizer` with a :class:`Direct` global stage), the
    global searches run in lockstep sharing one posterior evaluation per
    candidate union, and the local refinements optionally fan out across
    ``n_jobs`` processes.  Any other optimizer falls back to independent
    per-weight searches (still parallelizable across weights).
    """
    lower, upper = check_bounds(bounds)
    dim = lower.shape[0]
    box = np.column_stack([lower, upper])
    weights = np.asarray(weights, dtype=float).ravel()
    factory = optimizer_factory or default_acquisition_optimizer
    stacks = [factory(dim) for _ in weights]
    lockstep = all(
        isinstance(stack, GlobalLocalOptimizer)
        and isinstance(stack.global_optimizer, Direct)
        for stack in stacks
    )
    if not lockstep:
        tasks = [
            (gp, float(w), box, stack) for w, stack in zip(weights, stacks)
        ]
        outcomes = parallel_map(_search_task, tasks, n_jobs=n_jobs)
        X = np.array([x for x, _ in outcomes])
        evals = int(sum(n for _, n in outcomes))
        return BatchProposal(X=X, n_evaluations=evals)

    span = upper - lower
    searches = [
        _WeightSearch(weight=float(w), engine=stack.global_optimizer.search(dim))
        for w, stack in zip(weights, stacks)
    ]
    for search in searches:
        search.points = next(search.engine)

    while True:
        live = [s for s in searches if not s.done]
        if not live:
            break
        union_unit = np.vstack([s.points for s in live])
        union_X = lower + union_unit * span
        pred = gp.predict(union_X)
        mean, std = pred.mean, pred.std
        offset = 0
        for search in live:
            m = search.points.shape[0]
            mu = mean[offset : offset + m]
            sigma = std[offset : offset + m]
            values = (1.0 - search.weight) * mu - search.weight * sigma
            for j in range(m):
                search.n_evaluations += 1
                value = float(values[j])
                if value < search.best_f:
                    search.best_f = value
                    search.best_x = union_X[offset + j].copy()
            offset += m
            try:
                search.points = search.engine.send(values)
            except StopIteration:
                search.done = True
                search.points = None

    # local refinement inside each global incumbent's basin, exactly as
    # GlobalLocalOptimizer would have done per weight
    tasks = []
    for search, stack in zip(searches, stacks):
        if stack.local_radius is not None:
            radius = stack.local_radius * span
            local_lower = np.maximum(lower, search.best_x - radius)
            local_upper = np.minimum(upper, search.best_x + radius)
            local_bounds = np.column_stack([local_lower, local_upper])
        else:
            local_bounds = box
        tasks.append(
            (gp, search.weight, local_bounds, search.best_x, stack.local_optimizer)
        )
    refinements = parallel_map(_refine_task, tasks, n_jobs=n_jobs)

    proposed = []
    total_evals = 0
    for search, (x_ref, f_ref, n_ref) in zip(searches, refinements):
        total_evals += search.n_evaluations + n_ref
        if f_ref <= search.best_f:
            proposed.append(np.asarray(x_ref, dtype=float))
        else:
            proposed.append(search.best_x)
    return BatchProposal(X=np.array(proposed), n_evaluations=total_evals)
