"""Batched multi-weight acquisition proposal — the pBO inner loop.

Run naively, each pBO weight ``w_i`` performs its own DIRECT-L + COBYLA
search and every candidate costs one GP posterior evaluation.  But all
weights share the same posterior: only the reweighting ``(1 − w) μ − w σ``
(Eq. 9) differs.  :func:`propose_batch` therefore drives all ``n_b``
searches in lockstep — each round gathers the pending candidate batch of
every live search coroutine (DIRECT divisions globally, COBYLA
simplices/trust-region steps locally), scores the union with ONE
``gp.predict`` through
:meth:`~repro.acquisition.functions.MultiWeightAcquisition.evaluate_segments`,
and hands each search its reweighted slice.  Best-so-far tracking over a
slice is a vectorized ``argmin`` whose first-minimum tie rule matches the
point-at-a-time "first strictly better" update exactly.

When a custom optimizer factory returns stacks whose stages do not expose
the ``search`` coroutine protocol, the affected phase falls back to
independent per-weight ``minimize`` calls, which can fan out across a
process pool (``n_jobs``); each worker recomputes exactly what the
sequential loop would, so parallel and sequential proposals are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acquisition.functions import (
    MultiWeightAcquisition,
    WeightedAcquisition,
)
from repro.acquisition.optimize import (
    default_acquisition_optimizer,
    supports_local_lockstep,
    supports_lockstep,
)
from repro.gp.surrogate import SurrogateModel
from repro.telemetry.profile import profiled
from repro.utils.contracts import shape_contract
from repro.utils.parallel import parallel_map
from repro.utils.validation import check_bounds


@dataclass
class BatchProposal:
    """One pBO batch: a proposed point per weight plus evaluation counts."""

    X: np.ndarray  # (n_weights, dim)
    n_evaluations: int


@dataclass
class _WeightSearch:
    """Bookkeeping for one weight's search coroutine (global or local)."""

    index: int
    weight: float
    engine: object
    points: np.ndarray | None = None
    done: bool = False
    n_evaluations: int = 0
    best_f: float = field(default=np.inf)
    best_x: np.ndarray | None = None


def _drive_lockstep(
    acquisition: MultiWeightAcquisition,
    searches: list[_WeightSearch],
    to_domain=None,
) -> None:
    """Drive live coroutines to completion, one posterior per round.

    Each round stacks every live search's pending candidate batch into a
    union, maps it to the objective domain (``to_domain``, for coroutines
    that emit unit-cube points), scores the union segments under their
    weights with a single shared ``gp.predict``, updates per-search
    best-so-far state, and sends each coroutine its value slice.
    """
    while True:
        live = [s for s in searches if not s.done]
        if not live:
            break
        union = np.vstack([s.points for s in live])
        if to_domain is not None:
            union = to_domain(union)
        segments = [(s.index, s.points.shape[0]) for s in live]
        sliced = acquisition.evaluate_segments(union, segments)
        offset = 0
        for search, values in zip(live, sliced):
            m = search.points.shape[0]
            search.n_evaluations += m
            j = int(np.argmin(values))
            value = float(values[j])
            if value < search.best_f:
                search.best_f = value
                search.best_x = union[offset + j].copy()
            offset += m
            try:
                search.points = search.engine.send(values)
            except StopIteration:
                search.done = True
                search.points = None


def _refine_task(task) -> tuple[np.ndarray, float, int]:
    """Local refinement of one weight's incumbent (process-pool safe)."""
    gp, weight, local_bounds, x0, optimizer = task
    acquisition = WeightedAcquisition(gp, weight=weight)
    result = optimizer.minimize(acquisition, local_bounds, x0=x0)
    return result.x, result.fun, result.n_evaluations


def _search_task(task) -> tuple[np.ndarray, int]:
    """A full independent acquisition search (fallback path)."""
    gp, weight, bounds, optimizer = task
    acquisition = WeightedAcquisition(gp, weight=weight)
    result = optimizer.minimize(acquisition, bounds)
    return result.x, result.n_evaluations


@profiled("bo.propose_batch")
@shape_contract("weights: a(n_w,), bounds: a(d, 2) | a(2, d)")
def propose_batch(
    gp: SurrogateModel,
    weights,
    bounds,
    optimizer_factory=None,
    n_jobs: int = 1,
) -> BatchProposal:
    """Propose one point per pBO weight over the box ``bounds``.

    When the optimizer factory produces the standard DIRECT + COBYLA stack
    (:class:`GlobalLocalOptimizer` with coroutine-capable stages), both the
    global searches and the local refinements run in lockstep sharing one
    posterior evaluation per candidate union.  Any other optimizer falls
    back to independent per-weight searches for the non-conforming phase,
    parallelizable across weights with ``n_jobs``.
    """
    lower, upper = check_bounds(bounds)
    dim = lower.shape[0]
    box = np.column_stack([lower, upper])
    weights = np.asarray(weights, dtype=float).ravel()
    factory = optimizer_factory or default_acquisition_optimizer
    stacks = [factory(dim) for _ in weights]
    if not all(supports_lockstep(stack) for stack in stacks):
        tasks = [
            (gp, float(w), box, stack) for w, stack in zip(weights, stacks)
        ]
        outcomes = parallel_map(_search_task, tasks, n_jobs=n_jobs)
        X = np.array([x for x, _ in outcomes])
        evals = int(sum(n for _, n in outcomes))
        return BatchProposal(X=X, n_evaluations=evals)

    span = upper - lower
    acquisition = MultiWeightAcquisition(gp, weights)

    # phase 1: global DIRECT coroutines over the unit cube, in lockstep
    searches = [
        _WeightSearch(
            index=i,
            weight=float(w),
            engine=stack.global_optimizer.search(dim),
        )
        for i, (w, stack) in enumerate(zip(weights, stacks))
    ]
    for search in searches:
        search.points = next(search.engine)
    _drive_lockstep(
        acquisition, searches, to_domain=lambda unit: lower + unit * span
    )

    # phase 2: local refinement inside each global incumbent's basin,
    # exactly as GlobalLocalOptimizer would have done per weight
    local_boxes = []
    for search, stack in zip(searches, stacks):
        if stack.local_radius is not None:
            radius = stack.local_radius * span
            local_lower = np.maximum(lower, search.best_x - radius)
            local_upper = np.minimum(upper, search.best_x + radius)
        else:
            local_lower, local_upper = lower, upper
        local_boxes.append((local_lower, local_upper))

    if all(supports_local_lockstep(stack) for stack in stacks):
        refiners = [
            _WeightSearch(
                index=search.index,
                weight=search.weight,
                engine=stack.local_optimizer.search(lo, hi, x0=search.best_x),
            )
            for search, stack, (lo, hi) in zip(searches, stacks, local_boxes)
        ]
        for refiner in refiners:
            refiner.points = next(refiner.engine)
        _drive_lockstep(acquisition, refiners)
        refinements = [
            (refiner.best_x, refiner.best_f, refiner.n_evaluations)
            for refiner in refiners
        ]
    else:
        tasks = [
            (
                gp,
                search.weight,
                np.column_stack([lo, hi]),
                search.best_x,
                stack.local_optimizer,
            )
            for search, stack, (lo, hi) in zip(searches, stacks, local_boxes)
        ]
        refinements = parallel_map(_refine_task, tasks, n_jobs=n_jobs)

    proposed = []
    total_evals = 0
    for search, (x_ref, f_ref, n_ref) in zip(searches, refinements):
        total_evals += search.n_evaluations + n_ref
        if f_ref <= search.best_f:
            proposed.append(np.asarray(x_ref, dtype=float))
        else:
            proposed.append(search.best_x)
    return BatchProposal(X=np.array(proposed), n_evaluations=total_evals)
