"""Result records shared by every BO engine and sampling baseline.

The paper's tables report, per method: the number of simulations, the worst
performance found, the index of the first detected failure, and runtime.
``RunResult`` keeps the full evaluation log so all of those derive from one
object; ``FailureSummary`` is the table-row view against a specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import as_matrix, as_vector


@dataclass
class RunResult:
    """Complete log of one failure-detection / optimization run.

    Attributes
    ----------
    X:
        Evaluated points in the original variation space, in query order.
    y:
        Objective values, in *minimization* orientation (lower = worse
        performance = closer to failure, per paper Eq. 2).
    n_init:
        How many leading rows are initial (non-adaptive) samples.
    method:
        Short method label (``"MC"``, ``"EI"``, ``"REMBO-pBO"``, ...).
    runtime_seconds:
        Total wall-clock including objective evaluations.
    acquisition_evaluations:
        Total acquisition-function evaluations spent (0 for samplers).
    model_dim:
        Dimensionality the surrogate worked in (D, or d under embedding).
    Z:
        Embedded-space points for REMBO runs, aligned with ``X`` rows that
        were proposed through the embedding (None otherwise).
    """

    X: np.ndarray
    y: np.ndarray
    n_init: int
    method: str = ""
    runtime_seconds: float = 0.0
    acquisition_evaluations: int = 0
    model_dim: int | None = None
    Z: np.ndarray | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X = as_matrix(self.X)
        self.y = as_vector(self.y, self.X.shape[0])
        if not 0 <= self.n_init <= self.X.shape[0]:
            raise ValueError(
                f"n_init={self.n_init} outside [0, {self.X.shape[0]}]"
            )

    @property
    def n_evaluations(self) -> int:
        return self.X.shape[0]

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.y))

    @property
    def best_x(self) -> np.ndarray:
        return self.X[self.best_index]

    @property
    def best_y(self) -> float:
        return float(self.y[self.best_index])

    def best_so_far(self) -> np.ndarray:
        """Running minimum of the objective, for convergence plots."""
        return np.minimum.accumulate(self.y)

    def summarize(self, threshold: float) -> "FailureSummary":
        """Summarize against a minimization threshold (failure iff y < T)."""
        failures = np.flatnonzero(self.y < threshold)
        first = int(failures[0]) + 1 if failures.size else None  # 1-based
        return FailureSummary(
            method=self.method,
            n_simulations=self.n_evaluations,
            worst_value=self.best_y,
            n_failures=int(failures.size),
            first_failure_index=first,
            runtime_seconds=self.runtime_seconds,
            failure_indices=failures,
        )


@dataclass
class FailureSummary:
    """One table row: a method's outcome against one specification."""

    method: str
    n_simulations: int
    worst_value: float
    n_failures: int
    first_failure_index: int | None
    runtime_seconds: float
    failure_indices: np.ndarray = field(default_factory=lambda: np.empty(0, int))

    @property
    def detected(self) -> bool:
        return self.n_failures > 0
