"""Result records shared by every BO engine and sampling baseline.

The paper's tables report, per method: the number of simulations, the worst
performance found, the index of the first detected failure, and runtime.
``RunResult`` keeps the full evaluation log so all of those derive from one
object; ``FailureSummary`` is the table-row view against a specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import as_matrix, as_vector


@dataclass
class RunResult:
    """Complete log of one failure-detection / optimization run.

    Attributes
    ----------
    X:
        Evaluated points in the original variation space, in query order.
    y:
        Objective values, in *minimization* orientation (lower = worse
        performance = closer to failure, per paper Eq. 2).
    n_init:
        How many leading rows are initial (non-adaptive) samples.
    method:
        Short method label (``"MC"``, ``"EI"``, ``"REMBO-pBO"``, ...).
    eval_seconds:
        Time spent inside objective evaluations (simulations) only.
    overhead_seconds:
        Everything else — surrogate fits, acquisition optimization,
        bookkeeping.  Total wall clock is the derived
        :attr:`total_seconds` property (the old stored
        ``runtime_seconds`` field completed its deprecation cycle).
    acquisition_evaluations:
        Total acquisition-function evaluations spent (0 for samplers).
    model_dim:
        Dimensionality the surrogate worked in (D, or d under embedding).
    Z:
        Embedded-space points for REMBO runs, aligned with ``X`` rows that
        were proposed through the embedding (None otherwise).
    """

    X: np.ndarray
    y: np.ndarray
    n_init: int
    method: str = ""
    eval_seconds: float = 0.0
    overhead_seconds: float = 0.0
    acquisition_evaluations: int = 0
    model_dim: int | None = None
    Z: np.ndarray | None = None
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X = as_matrix(self.X)
        self.y = as_vector(self.y, self.X.shape[0])
        if not 0 <= self.n_init <= self.X.shape[0]:
            raise ValueError(
                f"n_init={self.n_init} outside [0, {self.X.shape[0]}]"
            )

    @property
    def total_seconds(self) -> float:
        """Total wall clock: evaluation time plus everything else."""
        return self.eval_seconds + self.overhead_seconds

    @property
    def n_evaluations(self) -> int:
        return self.X.shape[0]

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.y))

    @property
    def best_x(self) -> np.ndarray:
        return self.X[self.best_index]

    @property
    def best_y(self) -> float:
        return float(self.y[self.best_index])

    def best_so_far(self) -> np.ndarray:
        """Running minimum of the objective, for convergence plots."""
        return np.minimum.accumulate(self.y)

    def summarize(self, threshold: float) -> "FailureSummary":
        """Summarize against a minimization threshold (failure iff y < T)."""
        failures = np.flatnonzero(self.y < threshold)
        first = int(failures[0]) + 1 if failures.size else None  # 1-based
        return FailureSummary(
            method=self.method,
            n_simulations=self.n_evaluations,
            worst_value=self.best_y,
            n_failures=int(failures.size),
            first_failure_index=first,
            total_seconds=self.total_seconds,
            failure_indices=failures,
        )


class RunRecorder:
    """Accumulates one run's evaluation log into a :class:`RunResult`.

    Every engine used to assemble its ``RunResult`` by hand from locally
    vstacked arrays; the recorder is the single replacement.  It is fed
    incrementally — by the evaluation broker (each
    ``EvaluationBroker.evaluate_batch`` extends the bound recorder) or
    directly via :meth:`extend` — and :meth:`finalize` emits the record.

    Appends are deliberately lenient (plain Python lists, no finiteness
    check): validation happens once, in ``RunResult.__post_init__``, after
    the broker's failure policies have already quarantined or substituted
    non-finite values.
    """

    def __init__(self, method: str = "", model_dim: int | None = None) -> None:
        self.method = method
        self.model_dim = model_dim
        self._X: list[np.ndarray] = []
        self._y: list[float] = []
        self._n_init = 0
        self._acquisition_evaluations = 0

    @property
    def n_evaluations(self) -> int:
        return len(self._y)

    def extend(self, X: np.ndarray, y: np.ndarray) -> None:
        """Append a batch of evaluated points (in evaluation order)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} values"
            )
        for row, value in zip(X, y):
            self._X.append(np.array(row, dtype=float))
            self._y.append(float(value))

    def record_initial(self, X: np.ndarray, y: np.ndarray) -> None:
        """Append pre-evaluated initial data and count it as initial."""
        self.extend(X, y)
        self.mark_initial()

    def mark_initial(self) -> None:
        """Declare everything recorded so far as the initial design."""
        self._n_init = len(self._y)

    def add_acquisition(self, n: int) -> None:
        self._acquisition_evaluations += int(n)

    def finalize(
        self,
        total_seconds: float = 0.0,
        eval_seconds: float = 0.0,
        Z: np.ndarray | None = None,
        extra: dict | None = None,
    ) -> RunResult:
        """Build the :class:`RunResult`; overhead = total - eval time."""
        overhead = max(0.0, float(total_seconds) - float(eval_seconds))
        return RunResult(
            X=np.array(self._X, dtype=float),
            y=np.array(self._y, dtype=float),
            n_init=self._n_init,
            method=self.method,
            eval_seconds=float(eval_seconds),
            overhead_seconds=overhead,
            acquisition_evaluations=self._acquisition_evaluations,
            model_dim=self.model_dim,
            Z=Z,
            extra=extra if extra is not None else {},
        )


@dataclass
class FailureSummary:
    """One table row: a method's outcome against one specification."""

    method: str
    n_simulations: int
    worst_value: float
    n_failures: int
    first_failure_index: int | None
    total_seconds: float
    failure_indices: np.ndarray = field(default_factory=lambda: np.empty(0, int))

    @property
    def detected(self) -> bool:
        return self.n_failures > 0
