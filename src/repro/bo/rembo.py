"""The proposed method: batch BO through a random embedding (Algorithm 1).

This is the paper's contribution assembled end-to-end:

1. select an embedding dimension ``d`` from the initial dataset
   (Algorithm 2), unless the caller fixes one,
2. sample a Gaussian random matrix ``A ∈ R^{D×d}``,
3. map the initial samples down via the pseudo-inverse ``z = A† x`` and
   build the initial GP in the embedded space,
4. per batch, optimize the weighted acquisition ``α_pBO(z; D, w_i)`` for
   each preset weight over ``Z = [-√d, √d]^d``, map each optimizer output
   to the variation space through ``x = p_Ω(A z)``, simulate, collect
   failures ``y < T`` and update the model.

Both GP training and acquisition optimization happen in ``d`` dimensions,
which is where the method's runtime and solution-quality advantages come
from (paper Sections 3-4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.acquisition.functions import pbo_weights
from repro.acquisition.optimize import default_acquisition_optimizer
from repro.bo.engine import (
    OptimizerFactory,
    RunSpec,
    SurrogateManager,
    annotate_gp_fit,
    resolve_bounds,
    uniform_initial_design,
)
from repro.gp.surrogate import (
    KernelFactory,
    SurrogateLike,
    coerce_surrogate_spec,
)
from repro.bo.propose import propose_batch
from repro.bo.records import RunRecorder, RunResult
from repro.embedding.dimension_selection import (
    DimensionSelectionResult,
    select_embedding_dimension,
)
from repro.embedding.random_embedding import RandomEmbedding
from repro.runtime.broker import RuntimePolicy, make_broker
from repro.runtime.objective import Objective, require_objective
from repro.telemetry.config import TelemetryLike, resolve_telemetry
from repro.utils.contracts import shape_contract
from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.timing import Timer
from repro.utils.validation import as_matrix, as_vector

#: Engine default when ``RunSpec.n_batches`` is None.
DEFAULT_N_BATCHES = 5


class RemboBO:
    """Random-embedding batch BO for failure detection (Algorithm 1).

    Parameters
    ----------
    batch_size:
        Points per batch ``n_b`` (the paper uses 19 for the UVLO, 70 for
        the LDO).
    embedding_dim:
        Fixed embedding dimension ``d``.  When None, Algorithm 2 selects it
        from the initial dataset.
    dimension_candidates / dimension_trials / dimension_tolerance:
        Forwarded to :func:`select_embedding_dimension` when
        ``embedding_dim`` is None.
    weights:
        Preset pBO weights; defaults to an even ladder over [0, 1].
    surrogate:
        Engine-level surrogate choice (spec / kind string / mapping);
        ``spec.surrogate`` on an individual run overrides it.
    stop_on_failure:
        Terminate at the end of the first batch containing a failure.
    """

    def __init__(
        self,
        batch_size: int,
        embedding_dim: int | None = None,
        dimension_candidates: Sequence[int] | None = None,
        dimension_trials: int = 5,
        dimension_tolerance: float = 0.1,
        weights: Sequence[float] | None = None,
        kernel_factory: KernelFactory | None = None,
        noise_variance: float = 1e-4,
        tune_every: int = 1,
        n_restarts: int = 2,
        acquisition_optimizer_factory: OptimizerFactory | None = None,
        stop_on_failure: bool = False,
        seed: SeedLike = None,
        n_jobs: int = 1,
        *,
        surrogate: SurrogateLike = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if embedding_dim is not None and embedding_dim < 1:
            raise ValueError(f"embedding_dim must be >= 1, got {embedding_dim}")
        self.batch_size = int(batch_size)
        self.embedding_dim = embedding_dim
        self.dimension_candidates = dimension_candidates
        self.dimension_trials = int(dimension_trials)
        self.dimension_tolerance = float(dimension_tolerance)
        self.weights = (
            np.asarray(list(weights), dtype=float)
            if weights is not None
            else pbo_weights(self.batch_size)
        )
        if self.weights.shape[0] != self.batch_size:
            raise ValueError(
                f"{self.weights.shape[0]} weights given for batch size {self.batch_size}"
            )
        if np.any(self.weights < 0) or np.any(self.weights > 1):
            raise ValueError("weights must lie in [0, 1]")
        self.kernel_factory = kernel_factory
        self.noise_variance = float(noise_variance)
        self.tune_every = int(tune_every)
        self.n_restarts = int(n_restarts)
        self.surrogate = coerce_surrogate_spec(surrogate)
        self.acquisition_optimizer_factory = (
            acquisition_optimizer_factory or default_acquisition_optimizer
        )
        self.stop_on_failure = bool(stop_on_failure)
        self.n_jobs = int(n_jobs)
        self._rng = as_generator(seed)

    def solve(
        self,
        *,
        objective: Objective,
        spec: RunSpec | None = None,
        policy: RuntimePolicy | None = None,
        telemetry: TelemetryLike = None,
        rng: SeedLike = None,
    ) -> RunResult:
        """Execute Algorithm 1; returns the full evaluation log.

        The result's ``extra`` dict carries the fitted
        :class:`RandomEmbedding` (``"embedding"``) and, when Algorithm 2
        ran, its :class:`DimensionSelectionResult` (``"dimension_selection"``).
        ``telemetry`` additionally receives ``dimension_selection`` /
        ``embedding_setup`` spans and a per-iteration ``clip_fraction``
        attribute (how much of ``A z`` the projection ``p_Ω`` moved).
        """
        objective = require_objective(objective, type(self).__name__)
        spec = spec if spec is not None else RunSpec()
        tele = resolve_telemetry(telemetry)
        tracer = tele.tracer
        lower, upper, box = resolve_bounds(objective, spec.bounds)
        D = lower.shape[0]
        base_rng = as_generator(rng) if rng is not None else self._rng
        rng_init, rng_dimsel, rng_embed, rng_model = spawn(base_rng, 4)
        n_batches = (
            spec.n_batches if spec.n_batches is not None else DEFAULT_N_BATCHES
        )
        threshold = spec.threshold

        recorder = RunRecorder(method="REMBO-pBO")
        broker = make_broker(
            objective,
            policy,
            recorder=recorder,
            method="REMBO-pBO",
            telemetry=tele,
        )

        timer = Timer().start()
        # initial dataset D_0, sampled (or supplied) in the original space
        if spec.initial_data is not None:
            X = as_matrix(spec.initial_data[0], D).copy()
            y = as_vector(spec.initial_data[1], X.shape[0]).copy()
            recorder.record_initial(X, y)
        else:
            with tracer.span("init_design", n_init=spec.n_init) as span:
                X0 = uniform_initial_design(box, spec.n_init, seed=rng_init)
                batch = broker.evaluate_batch(X0)
                span.set("n_evaluated", batch.n_evaluated)
            recorder.mark_initial()
            X, y = batch.X, batch.y
        if y.size == 0:
            raise ValueError(
                "no initial evaluations survived the failure policy; "
                "cannot fit a surrogate"
            )

        # Algorithm 1, line 1: select the embedding dimension from D_0
        selection: DimensionSelectionResult | None = None
        if self.embedding_dim is not None:
            d = int(self.embedding_dim)
            if d > D:
                raise ValueError(f"embedding_dim {d} exceeds problem dim {D}")
        else:
            candidates = self.dimension_candidates or _default_candidates(D)
            with tracer.span(
                "dimension_selection", n_candidates=len(list(candidates))
            ) as span:
                selection = select_embedding_dimension(
                    X,
                    y,
                    dims=candidates,
                    n_trials=self.dimension_trials,
                    tolerance=self.dimension_tolerance,
                    seed=rng_dimsel,
                )
                d = selection.selected_dim
                span.set("selected_dim", d)

        # line 2: sample the random matrix A
        # line 3: initial model in the embedded space via the pseudo-inverse
        with tracer.span("embedding_setup", D=D, d=d):
            embedding = RandomEmbedding(D, d, bounds=box, seed=rng_embed)
            z_box = embedding.z_bounds()
            z_lower, z_upper = z_box[:, 0], z_box[:, 1]
            Z = embedding.to_embedded(X)
            Z = np.clip(Z, z_lower, z_upper)
        manager = SurrogateManager(
            d,
            kernel_factory=self.kernel_factory,
            noise_variance=self.noise_variance,
            tune_every=self.tune_every,
            n_restarts=self.n_restarts,
            seed=rng_model,
            surrogate=(
                spec.surrogate if spec.surrogate is not None else self.surrogate
            ),
        )
        recorder.model_dim = d

        # lines 5-15: batched sequential design
        for iteration in range(n_batches):
            with tracer.span("iteration", index=iteration) as it_span:
                with tracer.span("gp_fit", n_train=int(y.size)) as fit_span:
                    gp = manager.refit(Z, y)
                    annotate_gp_fit(fit_span, manager)
                with tracer.span("acq_opt") as acq_span:
                    proposal = propose_batch(
                        gp,
                        self.weights,
                        z_box,
                        optimizer_factory=self.acquisition_optimizer_factory,
                        n_jobs=self.n_jobs,
                    )
                    acq_span.set("fevals", proposal.n_evaluations)
                recorder.add_acquisition(proposal.n_evaluations)
                new_Z = np.clip(proposal.X, z_lower, z_upper)
                # x = p_Omega(A z), Eq. 11; clip_fraction is the telemetry
                # signal for the embedding pressing against the box
                new_X, clip_fraction = embedding.project(new_Z)
                it_span.set("clip_fraction", clip_fraction)
                batch = broker.evaluate_batch(new_X)
                it_span.set("n_evaluated", batch.n_evaluated)
            if batch.n_evaluated:
                # under the skip policy only evaluated rows (batch.index)
                # enter the model — keep Z aligned with X row for row
                Z = np.vstack([Z, new_Z[batch.index]])
                X = np.vstack([X, batch.X])
                y = np.concatenate([y, batch.y])
            if (
                self.stop_on_failure
                and threshold is not None
                and batch.n_evaluated
                and np.min(batch.y) < threshold
            ):
                break
        timer.stop()

        extra: dict = {"embedding": embedding, "embedding_dim": d}
        if selection is not None:
            extra["dimension_selection"] = selection
        return recorder.finalize(
            total_seconds=timer.elapsed,
            eval_seconds=broker.stats.eval_seconds,
            Z=Z,
            extra=extra,
        )



def _default_candidates(D: int) -> list[int]:
    """A coarse dimension ladder so Algorithm 2 stays cheap for large D."""
    if D <= 12:
        return list(range(1, D + 1))
    ladder = sorted({1, 2, 4, 6, 8, 12, 16, 20, 25, 30, 40, 50, D})
    return [d for d in ladder if d <= D]
