"""Specification handling (paper Eq. 1-2).

The paper folds every check into the canonical form "failure iff
``y(x) < T``" with smaller-is-worse orientation.  Real specs come in both
polarities (quiescent current must stay *below* 12 mA; the paper's
"undershoot < 0.40 V" fails when undershoot is *large*), so
:class:`Specification` performs the orientation flip once, at the boundary,
and everything downstream works in minimization units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Specification:
    """A named pass/fail criterion on a scalar circuit performance.

    Parameters
    ----------
    name:
        Human-readable spec name (e.g. ``"quiescent current"``).
    threshold:
        The spec limit in natural units.
    failure_when:
        ``"above"`` — the circuit fails when the performance exceeds the
        threshold (e.g. quiescent current over 12 mA); ``"below"`` — fails
        when it drops under the threshold.
    units:
        Display units for table rendering.
    """

    name: str
    threshold: float
    failure_when: str = "above"
    units: str = ""

    def __post_init__(self) -> None:
        if self.failure_when not in ("above", "below"):
            raise ValueError(
                f"failure_when must be 'above' or 'below', got {self.failure_when!r}"
            )

    # -- canonical minimization form (Eq. 1: failure iff y < T) -------------

    @property
    def minimization_threshold(self) -> float:
        """The ``T`` of Eq. 1 after orientation folding."""
        return -self.threshold if self.failure_when == "above" else self.threshold

    def to_minimization(self, value):
        """Map a natural-units performance into minimization orientation."""
        value = np.asarray(value, dtype=float)
        out = -value if self.failure_when == "above" else value
        return float(out) if out.ndim == 0 else out

    def from_minimization(self, value):
        """Inverse of :meth:`to_minimization` (it is an involution)."""
        return self.to_minimization(value)

    def is_failure(self, value) -> np.ndarray | bool:
        """Pass/fail of a natural-units performance value."""
        value = np.asarray(value, dtype=float)
        out = value > self.threshold if self.failure_when == "above" else value < self.threshold
        return bool(out) if out.ndim == 0 else out

    def wrap_objective(
        self, performance: Callable[[np.ndarray], float]
    ) -> Callable[[np.ndarray], float]:
        """Wrap a natural-units performance function into Eq. 2 form."""

        def objective(x: np.ndarray) -> float:
            return self.to_minimization(performance(x))

        return objective

    def format_value(self, minimized_value: float) -> str:
        """Render a minimization-orientation value back in natural units."""
        natural = self.from_minimization(minimized_value)
        return f"{natural:.4g}{self.units}"
