"""The consolidated entry point for running a failure-detection campaign.

Everything a campaign needs — the objective, an engine, runtime wiring and
observability — meets in one documented place::

    from repro.bo import RemboBO, RunSpec
    from repro.campaign import Campaign
    from repro.runtime import RuntimePolicy
    from repro.telemetry import TelemetryConfig

    campaign = Campaign(
        objective=testbench.objective("vth_plus"),
        engine=RemboBO(batch_size=19, seed=7),
        policy=RuntimePolicy.shared(ledger_path="runs/uvlo.jsonl"),
        telemetry=TelemetryConfig(trace_path="runs/uvlo.trace.jsonl"),
        seed=7,
    )
    outcome = campaign.run(RunSpec(n_init=20, n_batches=10, threshold=T))
    outcome.run.summarize(T)          # table row
    outcome.metrics["counters"]       # broker counters
    # per-phase breakdown: python -m repro.telemetry.report runs/uvlo.trace.jsonl

The campaign opens the root ``campaign`` span (every engine span nests
under it), materializes/owns the telemetry lifecycle when handed a
:class:`~repro.telemetry.TelemetryConfig`, and re-seeds the engine per run
so repeated ``run()`` calls of one campaign are independent replicas of
the same seeded experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.bo.engine import EngineProtocol, RunSpec
from repro.bo.records import RunResult
from repro.runtime.broker import RuntimePolicy
from repro.runtime.objective import Objective, require_objective
from repro.telemetry.config import (
    Telemetry,
    TelemetryConfig,
    TelemetryLike,
    resolve_telemetry,
)
from repro.utils.rng import SeedLike


@dataclass
class CampaignResult:
    """One campaign run: the evaluation log plus its observability artifacts."""

    run: RunResult
    spec: RunSpec
    metrics: dict[str, Any] = field(default_factory=dict)
    trace_path: Path | None = None
    ledger_path: Path | None = None

    @property
    def method(self) -> str:
        return self.run.method


class Campaign:
    """Bind an objective to an engine, runtime policy and telemetry.

    Parameters
    ----------
    objective:
        An :class:`~repro.runtime.objective.Objective` (wrap plain
        callables with :class:`~repro.runtime.objective.FunctionObjective`).
    engine:
        Any :class:`~repro.bo.engine.EngineProtocol` implementation —
        the BO engines or the sampling baselines.
    policy:
        Optional shared :class:`~repro.runtime.broker.RuntimePolicy`
        (cache / ledger / failure policy).
    telemetry:
        ``None`` (off), a :class:`~repro.telemetry.TelemetryConfig`
        (materialized fresh and closed per :meth:`run` — each run gets its
        own complete trace file), or a live
        :class:`~repro.telemetry.Telemetry` the caller owns.
    seed:
        When given, each :meth:`run` re-seeds the engine with this value,
        making repeated runs bitwise-identical replicas; when None the
        engine's own constructor seed advances across runs.
    """

    def __init__(
        self,
        objective: Objective,
        engine: EngineProtocol,
        *,
        policy: RuntimePolicy | None = None,
        telemetry: TelemetryLike = None,
        seed: SeedLike = None,
    ) -> None:
        self.objective = require_objective(objective, "Campaign")
        if not isinstance(engine, EngineProtocol):
            raise TypeError(
                f"engine must implement solve(objective=..., spec=...), "
                f"got {type(engine).__name__}"
            )
        self.engine = engine
        self.policy = policy
        self.telemetry = telemetry
        self.seed = seed

    def run(self, spec: RunSpec | None = None, **overrides: Any) -> CampaignResult:
        """Execute the engine once under the campaign's wiring.

        ``spec`` defaults to ``RunSpec()``; keyword overrides patch
        individual fields (``campaign.run(n_batches=10, threshold=T)``).
        """
        if spec is None:
            spec = RunSpec(**overrides)
        elif overrides:
            spec = replace(spec, **overrides)

        owns_telemetry = isinstance(self.telemetry, TelemetryConfig)
        tele: Telemetry = resolve_telemetry(self.telemetry)
        try:
            with tele.tracer.span(
                "campaign",
                engine=type(self.engine).__name__,
                cache_key=self.objective.cache_key,
            ) as span:
                result = self.engine.solve(
                    objective=self.objective,
                    spec=spec,
                    policy=self.policy,
                    telemetry=tele,
                    rng=self.seed,
                )
                span.set("method", result.method)
                span.set("n_evaluations", result.n_evaluations)
            metrics = tele.snapshot()
            trace_path = getattr(tele.tracer, "path", None)
        finally:
            if owns_telemetry:
                tele.close()

        ledger = self.policy.ledger if self.policy is not None else None
        ledger_path = Path(ledger.path) if ledger is not None else None
        return CampaignResult(
            run=result,
            spec=spec,
            metrics=metrics,
            trace_path=trace_path,
            ledger_path=ledger_path,
        )


__all__ = ["Campaign", "CampaignResult"]
