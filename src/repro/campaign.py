"""The consolidated entry point for running a failure-detection campaign.

Everything a campaign needs — the objective, an engine, runtime wiring and
observability — meets in one documented place::

    from repro.bo import RemboBO, RunSpec
    from repro.campaign import Campaign
    from repro.runtime import RuntimePolicy
    from repro.telemetry import TelemetryConfig

    campaign = Campaign(
        objective=testbench.objective("vth_plus"),
        engine=RemboBO(batch_size=19, seed=7),
        policy=RuntimePolicy.shared(ledger_path="runs/uvlo.jsonl"),
        telemetry=TelemetryConfig(trace_path="runs/uvlo.trace.jsonl"),
        seed=7,
    )
    outcome = campaign.run(RunSpec(n_init=20, n_batches=10, threshold=T))
    outcome.run.summarize(T)          # table row
    outcome.metrics["counters"]       # broker counters
    # per-phase breakdown: python -m repro.telemetry.report runs/uvlo.trace.jsonl

The same wiring is expressed declaratively by :class:`CampaignSpec` — a
keyword-only, validated description of one campaign that both
:class:`Campaign` and the ``repro.serve`` scheduler consume through the
single :func:`run_campaign_spec` code path.  ``Campaign`` is a thin
convenience wrapper over a spec; the scheduler submits specs directly.

The run opens the root ``campaign`` span (every engine span nests under
it), materializes/owns the telemetry lifecycle when handed a
:class:`~repro.telemetry.TelemetryConfig`, and re-seeds the engine per run
so repeated ``run()`` calls of one campaign are independent replicas of
the same seeded experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Union

from repro.bo.engine import EngineProtocol, RunSpec
from repro.bo.records import RunResult
from repro.gp.surrogate import SurrogateLike, coerce_surrogate_spec
from repro.runtime.broker import RuntimePolicy
from repro.runtime.objective import Objective, require_objective
from repro.telemetry.config import (
    Telemetry,
    TelemetryConfig,
    TelemetryLike,
    resolve_telemetry,
)
from repro.utils.rng import SeedLike

#: An engine instance, or a zero-argument factory producing a fresh one.
#: Factories matter to the scheduler: resubmitting or resuming a spec must
#: never reuse a solver whose internal state an earlier run advanced.
EngineLike = Union[EngineProtocol, Callable[[], EngineProtocol]]


@dataclass
class CampaignResult:
    """One campaign run: the evaluation log plus its observability artifacts."""

    run: RunResult
    spec: RunSpec
    metrics: dict[str, Any] = field(default_factory=dict)
    trace_path: Path | None = None
    ledger_path: Path | None = None
    name: str = "campaign"

    @property
    def method(self) -> str:
        return self.run.method


@dataclass(frozen=True, kw_only=True)
class CampaignSpec:
    """A validated, declarative description of one campaign.

    One spec object drives both entry points: ``Campaign(...)`` wraps one
    for interactive use, and the ``repro.serve`` scheduler accepts a list
    of them as jobs.  All fields are keyword-only; validation happens in
    ``__post_init__`` so a malformed spec fails at construction, not
    mid-queue.

    Parameters
    ----------
    objective:
        An :class:`~repro.runtime.objective.Objective` (wrap plain
        callables with :class:`~repro.runtime.objective.FunctionObjective`).
    engine:
        An :class:`~repro.bo.engine.EngineProtocol` instance, or a
        zero-argument factory returning a fresh one.  Prefer factories
        when submitting to the scheduler: each (re)run then gets a
        pristine engine.
    run_spec:
        The :class:`~repro.bo.engine.RunSpec` the engine solves under.
    policy:
        Optional shared :class:`~repro.runtime.broker.RuntimePolicy`
        (cache / ledger / failure policy).  The scheduler overrides this
        per job with its shared-cache policy.
    telemetry:
        ``None`` (off), a :class:`~repro.telemetry.TelemetryConfig`
        (materialized fresh and closed per run), or a live
        :class:`~repro.telemetry.Telemetry` the caller owns.
    seed:
        When given, each run re-seeds the engine with this value, making
        repeated runs bitwise-identical replicas; when None the engine's
        own constructor seed advances across runs.
    name:
        Identifies the campaign in ledgers, spans and scheduler results.
        Must be non-empty and filesystem-safe (no path separators) —
        the scheduler derives per-campaign artifact filenames from it.
    priority:
        Scheduler queue priority; higher runs first.  Ignored by
        :class:`Campaign`.
    surrogate:
        Campaign-level surrogate choice (spec / kind string / field
        mapping, see :func:`~repro.gp.surrogate.make_surrogate`).  Applied
        to runs whose :class:`RunSpec` does not pick its own surrogate;
        validated here so an unknown kind fails at construction with an
        error naming the allowed ones.
    """

    objective: Objective
    engine: EngineLike
    run_spec: RunSpec = field(default_factory=RunSpec)
    policy: RuntimePolicy | None = None
    telemetry: TelemetryLike = None
    seed: SeedLike = None
    name: str = "campaign"
    priority: int = 0
    surrogate: SurrogateLike = None

    def __post_init__(self) -> None:
        require_objective(self.objective, "CampaignSpec")
        object.__setattr__(
            self, "surrogate", coerce_surrogate_spec(self.surrogate)
        )
        if not isinstance(self.engine, EngineProtocol) and not callable(
            self.engine
        ):
            raise TypeError(
                f"engine must implement solve(objective=..., spec=...) or "
                f"be a zero-argument factory, got {type(self.engine).__name__}"
            )
        if not isinstance(self.run_spec, RunSpec):
            raise TypeError(
                f"run_spec must be a RunSpec, got {type(self.run_spec).__name__}"
            )
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("name must be a non-empty string")
        if any(sep in self.name for sep in ("/", "\\", "\x00")):
            raise ValueError(
                f"name {self.name!r} must be filesystem-safe "
                f"(no path separators)"
            )
        if not isinstance(self.priority, int) or isinstance(
            self.priority, bool
        ):
            raise TypeError(
                f"priority must be an int, got {type(self.priority).__name__}"
            )

    def make_engine(self) -> EngineProtocol:
        """A ready-to-solve engine: the instance itself, or a fresh one
        from the factory."""
        if isinstance(self.engine, EngineProtocol):
            return self.engine
        engine = self.engine()
        if not isinstance(engine, EngineProtocol):
            raise TypeError(
                f"engine factory for campaign {self.name!r} returned "
                f"{type(engine).__name__}, which does not implement "
                f"solve(objective=..., spec=...)"
            )
        return engine


def run_campaign_spec(
    cspec: CampaignSpec,
    run_spec: RunSpec | None = None,
    *,
    policy: RuntimePolicy | None = None,
    telemetry: TelemetryLike = None,
) -> CampaignResult:
    """Execute one :class:`CampaignSpec` — the single campaign code path.

    ``run_spec`` / ``policy`` / ``telemetry`` override the spec's own
    fields when given; the scheduler uses this to inject its per-job
    ledger policy (wired to the shared persistent cache) and the shared
    telemetry without rebuilding specs.
    """
    spec = run_spec if run_spec is not None else cspec.run_spec
    if cspec.surrogate is not None and spec.surrogate is None:
        spec = replace(spec, surrogate=cspec.surrogate)
    pol = policy if policy is not None else cspec.policy
    tele_like = telemetry if telemetry is not None else cspec.telemetry
    engine = cspec.make_engine()

    owns_telemetry = isinstance(tele_like, TelemetryConfig)
    tele: Telemetry = resolve_telemetry(tele_like)
    try:
        with tele.tracer.span(
            "campaign",
            campaign=cspec.name,
            engine=type(engine).__name__,
            cache_key=cspec.objective.cache_key,
        ) as span:
            result = engine.solve(
                objective=cspec.objective,
                spec=spec,
                policy=pol,
                telemetry=tele,
                rng=cspec.seed,
            )
            span.set("method", result.method)
            span.set("n_evaluations", result.n_evaluations)
        metrics = tele.snapshot()
        trace_path = getattr(tele.tracer, "path", None)
    finally:
        if owns_telemetry:
            tele.close()

    ledger = pol.ledger if pol is not None else None
    ledger_path = Path(ledger.path) if ledger is not None else None
    return CampaignResult(
        run=result,
        spec=spec,
        metrics=metrics,
        trace_path=trace_path,
        ledger_path=ledger_path,
        name=cspec.name,
    )


class Campaign:
    """Bind an objective to an engine, runtime policy and telemetry.

    A thin wrapper over :class:`CampaignSpec`: construction builds (and
    validates) a spec, :meth:`run` hands it to :func:`run_campaign_spec`.
    The parameters are those of :class:`CampaignSpec` minus ``priority``
    (which only the scheduler consumes).  For engines, the wrapper keeps
    the historical instance-only contract so ``campaign.engine`` is
    always a solver, never a factory.
    """

    def __init__(
        self,
        objective: Objective,
        engine: EngineProtocol,
        *,
        policy: RuntimePolicy | None = None,
        telemetry: TelemetryLike = None,
        seed: SeedLike = None,
        name: str = "campaign",
        surrogate: SurrogateLike = None,
    ) -> None:
        require_objective(objective, "Campaign")
        if not isinstance(engine, EngineProtocol):
            raise TypeError(
                f"engine must implement solve(objective=..., spec=...), "
                f"got {type(engine).__name__}"
            )
        self.spec = CampaignSpec(
            objective=objective,
            engine=engine,
            policy=policy,
            telemetry=telemetry,
            seed=seed,
            name=name,
            surrogate=surrogate,
        )

    @property
    def objective(self) -> Objective:
        return self.spec.objective

    @property
    def engine(self) -> EngineProtocol:
        return self.spec.make_engine()

    @property
    def policy(self) -> RuntimePolicy | None:
        return self.spec.policy

    @property
    def telemetry(self) -> TelemetryLike:
        return self.spec.telemetry

    @property
    def seed(self) -> SeedLike:
        return self.spec.seed

    def run(self, spec: RunSpec | None = None, **overrides: Any) -> CampaignResult:
        """Execute the engine once under the campaign's wiring.

        ``spec`` defaults to ``RunSpec()``; keyword overrides patch
        individual fields (``campaign.run(n_batches=10, threshold=T)``).
        """
        if spec is None:
            spec = RunSpec(**overrides)
        elif overrides:
            spec = replace(spec, **overrides)
        return run_campaign_spec(self.spec, run_spec=spec)


__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignSpec",
    "EngineLike",
    "run_campaign_spec",
]
