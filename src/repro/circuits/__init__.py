"""Circuit substrates: behavioral testbenches and the MNA simulator.

``repro.circuits.behavioral`` holds the calibrated UVLO and LDO models the
benchmark tables run on; ``repro.circuits.mna`` is a from-scratch
SPICE-style engine (netlist, nonlinear DC, transient, sweep) with
transistor-level demo versions of both circuits.
"""

from repro.circuits.behavioral import (
    CircuitTestbench,
    LDOTestbench,
    UVLOTestbench,
    VariationParameter,
)

__all__ = [
    "CircuitTestbench",
    "VariationParameter",
    "UVLOTestbench",
    "LDOTestbench",
]
