"""Calibrated behavioral testbenches for the paper's two circuits."""

from repro.circuits.behavioral.base import (
    CircuitTestbench,
    VariationParameter,
    soft_step,
)
from repro.circuits.behavioral.ldo import LDOTestbench
from repro.circuits.behavioral.uvlo import UVLOTestbench

__all__ = [
    "CircuitTestbench",
    "VariationParameter",
    "soft_step",
    "UVLOTestbench",
    "LDOTestbench",
]
