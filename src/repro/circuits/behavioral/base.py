"""Common infrastructure for behavioral circuit testbenches.

A *testbench* binds a normalized variation space to one or more named
circuit performances with pass/fail specifications.  The variation space
follows the paper's convention (Section 5.1): every process parameter is
normalized so that ``[-1, 1]`` spans its ``±4σ`` range, and the failure
search region Ω is the resulting unit hypercube.

The behavioral testbenches substitute for the paper's proprietary 90 nm
PDK + SPICE setup; see DESIGN.md §2 for the substitution argument.  Each
model is a deterministic closed-form map from the normalized variations to
a performance value, built from circuit-theory sensitivities, with (i) a
low effective dimensionality and (ii) sharply-bounded rare failure regions
— the two properties the paper's evaluation depends on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.bo.spec import Specification
from repro.runtime.objective import Objective
from repro.utils.contracts import shape_contract
from repro.utils.validation import as_float_array, unit_cube_bounds


@dataclass(frozen=True)
class VariationParameter:
    """One normalized process-variation axis.

    ``sigma`` is the physical standard deviation; a normalized coordinate
    ``u ∈ [-1, 1]`` maps to a physical deviation ``4 σ u`` (±4σ range).
    """

    name: str
    sigma: float
    units: str = ""

    def physical(self, normalized: float) -> float:
        return 4.0 * self.sigma * float(normalized)


class CircuitTestbench(abc.ABC):
    """A circuit with named performances over a normalized variation cube."""

    #: Ordered variation parameters; defines the dimensionality D.
    parameters: tuple[VariationParameter, ...]
    #: Pass/fail criteria keyed by performance name.
    specs: dict[str, Specification]

    @property
    def dim(self) -> int:
        return len(self.parameters)

    @property
    def parameter_names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def bounds(self) -> np.ndarray:
        """The failure search region Ω = [-1, 1]^D."""
        return unit_cube_bounds(self.dim)

    @shape_contract("x: a(D,) -> (D,)")
    def _check(self, x) -> np.ndarray:
        x = as_float_array(x, "x")
        if x.shape != (self.dim,):
            raise ValueError(
                f"expected a ({self.dim},) variation vector, got shape {x.shape}"
            )
        if np.any(np.abs(x) > 1.0 + 1e-9):
            raise ValueError("variation coordinates must lie in [-1, 1]")
        return np.clip(x, -1.0, 1.0)

    @shape_contract("X: a(n, D) -> (n, D)")
    def _check_batch(self, X) -> np.ndarray:
        X = as_float_array(X, "X")
        if X.ndim != 2 or X.shape[1] != self.dim:
            raise ValueError(
                f"expected a (n, {self.dim}) variation block, got shape "
                f"{X.shape}"
            )
        if np.any(np.abs(X) > 1.0 + 1e-9):
            raise ValueError("variation coordinates must lie in [-1, 1]")
        return np.clip(X, -1.0, 1.0)

    @abc.abstractmethod
    def performance(self, name: str, x) -> float:
        """Evaluate the named performance (natural units) at variation ``x``."""

    @shape_contract("X: a(n, D) -> (n,)")
    def performance_batch(self, name: str, X) -> np.ndarray:
        """Evaluate the named performance over a ``(n, D)`` block.

        The base implementation loops :meth:`performance` row by row;
        closed-form behavioral testbenches override it with a genuinely
        vectorized map (same equations over columns) so chunked broker
        dispatch pays one array pipeline per batch instead of per point.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.array(
            [float(self.performance(name, x)) for x in X], dtype=float
        )

    def objective(self, name: str) -> "TestbenchObjective":
        """Minimization-orientation objective for the named spec (Eq. 2)."""
        return TestbenchObjective(self, name)

    def threshold(self, name: str) -> float:
        """The minimization threshold ``T`` for the named spec (Eq. 1)."""
        return self.specs[name].minimization_threshold

    def is_failure(self, name: str, x) -> bool:
        """Pass/fail of one variation point against the named spec."""
        return bool(self.specs[name].is_failure(self.performance(name, x)))


class TestbenchObjective(Objective):
    """A testbench performance as a runtime :class:`Objective`.

    The vectorized :meth:`evaluate` maps each variation row through
    ``spec.to_minimization(performance(name, x))`` (paper Eq. 2) —
    arithmetic identical to the legacy ``spec.wrap_objective`` closure.
    The stable ``cache_key`` (testbench class + spec name) is what lets
    the evaluation runtime cache and deduplicate simulations across
    methods sharing a testbench.
    """

    def __init__(self, testbench: CircuitTestbench, name: str) -> None:
        if name not in testbench.specs:
            raise KeyError(
                f"unknown spec {name!r}; options: {sorted(testbench.specs)}"
            )
        self.testbench = testbench
        self.name = name
        self._spec = testbench.specs[name]

    @property
    def dim(self) -> int:
        return self.testbench.dim

    @property
    def bounds(self) -> np.ndarray:
        return self.testbench.bounds()

    @property
    def cache_key(self) -> str:
        return f"{type(self.testbench).__name__}:{self.name}"

    @property
    def threshold(self) -> float:
        """The minimization threshold ``T`` for this spec (Eq. 1)."""
        return self._spec.minimization_threshold

    @property
    def prefers_batch(self) -> bool:
        """Closed-form testbenches welcome chunked vectorized dispatch."""
        return True

    def evaluate(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        perf = self.testbench.performance_batch(self.name, X)
        out = self._spec.to_minimization(np.asarray(perf, dtype=float))
        return np.asarray(out, dtype=float).reshape(X.shape[0])


def soft_step(margin, width: float):
    """A smooth 0→1 switch: ≈0 for margin ≫ 0, ≈1 for margin ≪ 0.

    Models operating-region bifurcations (a bias device dropping out of
    saturation, a mirror collapsing): a sharp but C∞ transition of the
    stated ``width``.  Accepts scalars or arrays.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    z = np.clip(np.asarray(margin, dtype=float) / width, -60.0, 60.0)
    out = 1.0 / (1.0 + np.exp(z))
    return float(out) if out.ndim == 0 else out


def corner_stress(x, onset: float = 0.5):
    """Saturating deep-corner stress response, per normalized coordinate.

    ``g(x) = sign(x) · max(|x| − onset, 0) / (1 − onset)`` — zero inside
    the ``±onset`` band, ramping linearly to ±1 at the ``±4σ`` cube faces.
    Models threshold phenomena of deep process corners (saturation-margin
    loss, junction-leakage onset, mobility degradation): a device
    contributes to an operating-point collapse only once its deviation is
    *large*, and the contribution saturates at the corner.

    This shape is what couples the failure mechanism to the geometry of
    the paper's method: points proposed through a clipped random embedding
    have many coordinates pinned at ±1 (full stress), while center-out
    search in the full-dimensional cube moves a handful of coordinates at
    a time and never accumulates stress.  Accepts scalars or arrays.
    """
    if not 0.0 <= onset < 1.0:
        raise ValueError(f"onset must lie in [0, 1), got {onset}")
    arr = np.asarray(x, dtype=float)
    out = np.sign(arr) * np.maximum(np.abs(arr) - onset, 0.0) / (1.0 - onset)
    return float(out) if out.ndim == 0 else out


def local_halo(margin, width: float):
    """A strictly local degradation halo: 1 for ``margin ≤ 0``, Gaussian
    roll-off ``exp(−margin²/(2 width²))`` for ``margin > 0``.

    Unlike :func:`soft_step`, whose exponential tail leaves a faint but
    *globally monotone* ramp that a surrogate can ratchet along from
    anywhere in the cube, the Gaussian tail is numerically dead a few
    widths out: degradation physics that genuinely switch on only near the
    operating-region boundary.  ``C¹`` at zero (both sides have zero
    slope).  Accepts scalars or arrays.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    m = np.asarray(margin, dtype=float)
    z = np.clip(m / width, 0.0, 60.0)
    out = np.where(m <= 0.0, 1.0, np.exp(-0.5 * z**2))
    return float(out) if out.ndim == 0 else out
