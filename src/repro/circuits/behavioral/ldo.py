"""Behavioral model of the low-dropout regulator (60 params, 3 specs).

The paper's second testbench [8]: a fully on-chip LDO with an error
amplifier (M1-M5), a buffer / fast transient loop (M6-M8, M10-M12), a
large PMOS pass device (M9), and a bias / reference network (M13-M20).
Twenty transistors, each with three varying parameters — channel length,
threshold voltage and gate-oxide thickness — give the paper's
60-dimensional verification problem.

Variation layout: ``x[3i] = ΔL``, ``x[3i+1] = ΔVth``, ``x[3i+2] = Δtox``
for device ``i ∈ 0..19`` (M1..M20), each normalized so ``[-1, 1]`` spans
``±4σ`` (4σ: 10 % of L, 60 mV of Vth, 6 % of tox).

Three verified specs with the paper's thresholds (Table 2):

* **quiescent current** — fails above 12 mA (nominal ≈ 5 mA),
* **undershoot** — fails above 0.40 V (nominal ≈ 0.15 V),
* **load regulation** — fails above 50 % (nominal ≈ 18 %).

Each spec follows the same physics template validated on the UVLO model:

* a *smooth* part from first-order sensitivities (mismatch, mobility and
  loop-gain shifts) whose worst case stays well below the spec limit,
* a *collapse margin* — the saturation/headroom margin of the relevant
  internal node, a **dense** weighted combination of the *corner-stress*
  response of all 60 normalized coordinates (only deviations beyond ~2σ
  contribute; see :func:`repro.circuits.behavioral.base.corner_stress`).
  No sparse subset of parameters moves it appreciably; eroding it needs a
  coherent deep-corner excursion, which boundary-clipped embedded
  proposals produce by construction and centre-out full-dimensional
  search essentially never does,
* a *strictly local degradation halo* (Gaussian roll-off) plus a sharp
  collapse ``soft_step`` that carries the performance across the spec
  limit only when the margin goes negative — the rare failure.

The three margins share the bias-network coordinates (one physical bias
generator feeds everything) but with different weight profiles, so the
three specs fail in different corners of the same low-dimensional
effective subspace — consistent with the paper selecting one embedding
dimension (d̃ = 30) for all three specs.
"""

from __future__ import annotations

import numpy as np

from repro.bo.spec import Specification
from repro.circuits.behavioral.base import (
    CircuitTestbench,
    VariationParameter,
    corner_stress,
    local_halo,
    soft_step,
)
from repro.utils.contracts import shape_contract

#: 4σ spreads: fractional channel length, threshold voltage (V), fractional tox.
_L_SPREAD = 0.10
_VTH_SPREAD = 0.060
_TOX_SPREAD = 0.06

_N_DEVICES = 20
_DIM = 3 * _N_DEVICES

# Device-group indices (0-based; device i is "M{i+1}").
_ERROR_AMP = (0, 1, 2, 3, 4)  # M1-M5: diff pair, mirror load, tail
_BUFFER = (5, 6, 7, 9, 10, 11)  # M6-M8, M10-M12: buffer / fast loop
_PASS = 8  # M9: pass PMOS
_BIAS = (12, 13, 14, 15)  # M13-M16: bias generator
_REFERENCE = (16, 17, 18, 19)  # M17-M20: reference / startup


@shape_contract("-> (60,)")
def _dense_direction(
    group_weights: dict[str, tuple[float, float, float]],
    signs_seed: int,
) -> np.ndarray:
    """Build a dense 60-coordinate margin direction from per-group weights.

    ``group_weights`` maps group name → (w_L, w_Vth, w_tox) magnitudes for
    every device in that group.  Signs alternate deterministically (seeded)
    so the direction is not axis- or orthant-aligned in any obvious way —
    the "hidden" transformed-space structure of the paper's Section 4.
    """
    groups = {
        "error_amp": _ERROR_AMP,
        "buffer": _BUFFER,
        "pass": (_PASS,),
        "bias": _BIAS,
        "reference": _REFERENCE,
    }
    rng = np.random.default_rng(signs_seed)
    w = np.zeros(_DIM)
    for name, devices in groups.items():
        w_l, w_v, w_t = group_weights[name]
        for device in devices:
            sign_l, sign_v, sign_t = rng.choice([-1.0, 1.0], size=3)
            w[3 * device + 0] = sign_l * w_l
            w[3 * device + 1] = sign_v * w_v
            w[3 * device + 2] = sign_t * w_t
    return w


# -- margin directions (fixed at import; deterministic) ----------------------

#: Quiescent current: dominated by the bias generator and pass leakage.
_IQ_DIRECTION = _dense_direction(
    {
        "error_amp": (0.02, 0.04, 0.02),
        "buffer": (0.02, 0.04, 0.02),
        "pass": (0.06, 0.10, 0.05),
        "bias": (0.07, 0.12, 0.05),
        "reference": (0.03, 0.06, 0.03),
    },
    signs_seed=101,
)
_IQ_MARGIN_NOM = 1.02

#: Undershoot: dominated by the buffer / fast-loop bias headroom.
_US_DIRECTION = _dense_direction(
    {
        "error_amp": (0.03, 0.06, 0.03),
        "buffer": (0.06, 0.11, 0.05),
        "pass": (0.05, 0.08, 0.04),
        "bias": (0.04, 0.07, 0.03),
        "reference": (0.02, 0.04, 0.02),
    },
    signs_seed=202,
)
_US_MARGIN_NOM = 1.05

#: Load regulation: dominated by pass-device gate drive and loop gain.
_LR_DIRECTION = _dense_direction(
    {
        "error_amp": (0.05, 0.09, 0.04),
        "buffer": (0.02, 0.04, 0.02),
        "pass": (0.08, 0.12, 0.06),
        "bias": (0.04, 0.06, 0.03),
        "reference": (0.03, 0.05, 0.02),
    },
    signs_seed=303,
)
_LR_MARGIN_NOM = 1.00

#: Degradation shapes per spec: (ramp amplitude, ramp width, jump, jump width).
_IQ_SHAPE = (3.2, 0.40, 7.5, 0.06)  # mA
_US_SHAPE = (0.13, 0.40, 0.30, 0.06)  # V
_LR_SHAPE = (13.0, 0.40, 30.0, 0.06)  # %


def _degradation(margin, shape: tuple[float, float, float, float]):
    """Strictly-local degradation halo plus collapse jump (UVLO recipe).

    Elementwise — accepts a scalar margin or a ``(n,)`` block of margins.
    """
    ramp_amp, ramp_width, jump_amp, jump_width = shape
    return ramp_amp * local_halo(margin, ramp_width) + jump_amp * soft_step(
        margin, jump_width
    )


class LDOTestbench(CircuitTestbench):
    """The 60-dimensional LDO verification problem (paper Table 2)."""

    PERFORMANCES = ("quiescent_current", "undershoot", "load_regulation")

    def __init__(self) -> None:
        params: list[VariationParameter] = []
        for i in range(1, _N_DEVICES + 1):
            params.append(
                VariationParameter(f"M{i}.L", sigma=_L_SPREAD / 4.0, units="frac")
            )
            params.append(
                VariationParameter(f"M{i}.Vth", sigma=_VTH_SPREAD / 4.0, units="V")
            )
            params.append(
                VariationParameter(f"M{i}.tox", sigma=_TOX_SPREAD / 4.0, units="frac")
            )
        self.parameters = tuple(params)
        self.specs = {
            "quiescent_current": Specification(
                name="Quiescent current",
                threshold=12.0,
                failure_when="above",
                units="mA",
            ),
            "undershoot": Specification(
                name="Undershoot",
                threshold=0.40,
                failure_when="above",
                units="V",
            ),
            "load_regulation": Specification(
                name="Load regulation",
                threshold=50.0,
                failure_when="above",
                units="%",
            ),
        }

    # -- variation views (columns of a checked (n, 60) block) -----------------

    @staticmethod
    def _dl(X: np.ndarray) -> np.ndarray:
        return _L_SPREAD * X[:, 0::3]

    @staticmethod
    def _dvth(X: np.ndarray) -> np.ndarray:
        return _VTH_SPREAD * X[:, 1::3]

    @staticmethod
    def _dtox(X: np.ndarray) -> np.ndarray:
        return _TOX_SPREAD * X[:, 2::3]

    def _as_batch(self, x) -> np.ndarray:
        return self._check_batch(np.atleast_2d(np.asarray(x, dtype=float)))

    # -- margins (saturation / headroom of the relevant internal node) ---------

    # einsum, not matmul, for the margin contractions: BLAS gemv is not
    # bitwise batch-size-invariant, and row-vs-chunk broker dispatch must
    # produce identical floats for the same variation row

    def iq_margin_batch(self, X) -> np.ndarray:
        return _IQ_MARGIN_NOM - np.einsum(
            "nd,d->n", corner_stress(self._as_batch(X)), _IQ_DIRECTION
        )

    def undershoot_margin_batch(self, X) -> np.ndarray:
        return _US_MARGIN_NOM - np.einsum(
            "nd,d->n", corner_stress(self._as_batch(X)), _US_DIRECTION
        )

    def load_regulation_margin_batch(self, X) -> np.ndarray:
        return _LR_MARGIN_NOM - np.einsum(
            "nd,d->n", corner_stress(self._as_batch(X)), _LR_DIRECTION
        )

    def iq_margin(self, x) -> float:
        return float(self.iq_margin_batch(self._check(x)[None, :])[0])

    def undershoot_margin(self, x) -> float:
        return float(self.undershoot_margin_batch(self._check(x)[None, :])[0])

    def load_regulation_margin(self, x) -> float:
        return float(self.load_regulation_margin_batch(self._check(x)[None, :])[0])

    # -- performances -----------------------------------------------------------

    def quiescent_current_batch(self, X) -> np.ndarray:
        """Quiescent current in mA for a ``(n, 60)`` block."""
        X = self._as_batch(X)
        dl, dvth, dtox = self._dl(X), self._dvth(X), self._dtox(X)
        # weak-inversion bias generator: first-order smooth sensitivities
        v_drive = -(
            0.45 * dvth[:, 12] + 0.40 * dvth[:, 13]
            + 0.30 * dvth[:, 14] + 0.25 * dvth[:, 15]
        )
        geometry = 1.0 - 0.5 * dl[:, 12] + 0.4 * dl[:, 13] - 0.3 * dl[:, 14]
        mirror = 3.0 * geometry * np.exp(v_drive / 0.11)
        fixed = 2.0 * (1.0 + 0.6 * np.mean(dtox[:, :8], axis=1))
        smooth = fixed + mirror  # ≈ 5 mA nominal, ≤ ~9.5 mA at corners
        # cascode headroom erosion multiplies the mirror leg
        return smooth + _degradation(self.iq_margin_batch(X), _IQ_SHAPE)

    def undershoot_batch(self, X) -> np.ndarray:
        """Load-step undershoot in volts for a ``(n, 60)`` block."""
        X = self._as_batch(X)
        dl, dvth, dtox = self._dl(X), self._dvth(X), self._dtox(X)
        slew_loss = (
            0.25 * (dvth[:, 5] + dvth[:, 6]) / _VTH_SPREAD * 0.012
            + 0.30 * (dl[:, 5] + dl[:, 8]) / _L_SPREAD * 0.010
            + 0.25 * (dtox[:, 5] + dtox[:, 8]) / _TOX_SPREAD * 0.008
        )
        smooth = 0.15 + slew_loss  # ≈ 0.15 ± 0.05 V
        return smooth + _degradation(self.undershoot_margin_batch(X), _US_SHAPE)

    def load_regulation_batch(self, X) -> np.ndarray:
        """Load regulation in percent for a ``(n, 60)`` block."""
        X = self._as_batch(X)
        dl, dvth = self._dl(X), self._dvth(X)
        log_gain_loss = (
            0.10 * (dvth[:, 0] + dvth[:, 1]) / _VTH_SPREAD * 0.5
            + 0.12 * dvth[:, 8] / _VTH_SPREAD * 0.5
            + 0.10 * (dl[:, 0] + dl[:, 8]) / _L_SPREAD * 0.5
        )
        smooth = 18.0 * np.exp(np.clip(log_gain_loss, -1.0, 1.0) * 0.35)
        return smooth + _degradation(
            self.load_regulation_margin_batch(X), _LR_SHAPE
        )

    def quiescent_current(self, x) -> float:
        """Quiescent current in mA (nominal ≈ 5, fails above 12)."""
        return float(self.quiescent_current_batch(self._check(x)[None, :])[0])

    def undershoot(self, x) -> float:
        """Load-step undershoot in volts (nominal ≈ 0.15, fails above 0.40)."""
        return float(self.undershoot_batch(self._check(x)[None, :])[0])

    def load_regulation(self, x) -> float:
        """Load regulation in percent (nominal ≈ 18, fails above 50)."""
        return float(self.load_regulation_batch(self._check(x)[None, :])[0])

    # -- testbench API ------------------------------------------------------------

    _BATCH_PERFORMANCES = {
        "quiescent_current": "quiescent_current_batch",
        "undershoot": "undershoot_batch",
        "load_regulation": "load_regulation_batch",
    }

    def performance(self, name: str, x) -> float:
        if name == "quiescent_current":
            return self.quiescent_current(x)
        if name == "undershoot":
            return self.undershoot(x)
        if name == "load_regulation":
            return self.load_regulation(x)
        raise KeyError(
            f"unknown performance {name!r}; options: {self.PERFORMANCES}"
        )

    def performance_batch(self, name: str, X) -> np.ndarray:
        method = self._BATCH_PERFORMANCES.get(name)
        if method is None:
            raise KeyError(
                f"unknown performance {name!r}; options: {self.PERFORMANCES}"
            )
        return getattr(self, method)(X)
