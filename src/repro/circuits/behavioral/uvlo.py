"""Behavioral model of the CMOS under-voltage lockout circuit (19 params).

The paper's first testbench [4]: a UVLO built from a resistor divider
(R1-R3), a bandgap-style reference stack, a hysteretic comparator and an
output buffer — 16 transistors plus 3 resistors.  The verified performance
is the offset of the turn-off threshold voltage, ``|ΔV_THL|``, with spec
``|ΔV_THL| < 0.9 V``; the paper notes the threshold "may undergo dramatic
fluctuations even with small parametric variations".

The behavioral map below derives ``ΔV_THL`` from the circuit equations of
that topology:

* the divider ratio ``(R2+R3)/(R1+R2+R3)`` sets the nominal threshold
  ``V_THL = (V_REF + V_os) / ratio − V_hyst/2`` — resistor variations act
  *ratiometrically* (common variation cancels), which is one source of the
  parametric redundancy the paper's Section 4 exploits;
* the comparator input offset ``V_os`` is a mismatch-weighted sum of the
  input pair / load mirror / second-stage length deviations;
* the reference voltage shifts with the reference-stack mismatch;
* the comparator tail-current bias runs through the M6/M7 mirror from the
  M8 reference leg.  When resistor and bias-leg variations conspire to
  push the mirror out of saturation the tail current collapses, the
  Schmitt hysteresis disappears and the threshold jumps by roughly the
  full hysteresis window plus the regeneration error — a sharp but smooth
  bifurcation (``soft_step``) that creates the rare failure region.

Only a handful of weighted parameter *combinations* drive the output, so
the effective dimensionality is far below 19 — exactly the premise of the
paper's random-embedding method.
"""

from __future__ import annotations

import numpy as np

from repro.bo.spec import Specification
from repro.circuits.behavioral.base import (
    CircuitTestbench,
    VariationParameter,
    corner_stress,
    local_halo,
    soft_step,
)

#: 4σ fractional spread of the polysilicon resistors (Section 5.1 bounds).
_RESISTOR_SPREAD = 0.08
#: 4σ fractional spread of the transistor channel lengths.
_LENGTH_SPREAD = 0.10

#: Nominal element values (resistors in relative units, voltages in volts).
_R1_NOM, _R2_NOM, _R3_NOM = 1.0, 1.0, 0.5
_VREF_NOM = 1.20
_VHYST_NOM = 0.25

#: Comparator-offset sensitivities (volts per unit fractional ΔL).
_OFFSET_INPUT_PAIR = 0.55  # M1/M2
_OFFSET_LOAD_MIRROR = 0.28  # M3/M4
_OFFSET_SECOND_STAGE = 0.12  # M9/M10
#: Reference-stack sensitivity (volts per unit fractional ΔL of M13/M14).
_VREF_MISMATCH = 0.40
#: Hysteresis-leg sensitivity (fraction per unit fractional ΔL of M15/M16).
_HYST_SENS = 0.35

#: Bias-collapse direction.  The saturation margin of the comparator tail
#: mirror depends on the supply headroom (all three divider resistors),
#: and on the threshold/length shift of *every* transistor in the bias
#: chain and comparator stack — a **dense** combination over all 19
#: normalized coordinates with mixed signs.  This density is the paper's
#: "parametric redundancy only identifiable in a transformed space"
#: (Section 4.1): no single coordinate, and no sparse subset, moves the
#: margin appreciably.  Eroding it requires coherent movement along the
#: whole direction — a distance of ~√D in the variation cube, which an
#: evaluation-capped optimizer cannot cover in 19 dimensions but easily
#: covers in an 8-dimensional embedded box (and boundary clipping of the
#: embedded proposals supplies large coherent excursions for free).
_BIAS_WEIGHTS = np.array(
    [
        -0.13, 0.07, 0.06,  # r1 (headroom loss), r2, r3
        0.08, -0.07,  # M1, M2 input pair
        0.12, 0.11,  # M3, M4 mirror load
        0.17, 0.16, 0.15, 0.14,  # M5-M8 tail + bias chain
        0.10, -0.09,  # M9, M10 second stage
        0.11, 0.10,  # M11, M12 output inverter
        -0.08, 0.08,  # M13, M14 reference stack
        0.13, 0.12,  # M15, M16 hysteresis leg
    ]
)
_BIAS_MARGIN_NOM = 1.08
_BIAS_STEP_WIDTH = 0.06
#: Threshold jump when the hysteresis collapses (volts).
_COLLAPSE_JUMP = 0.75
#: Pre-collapse gain degradation: amplitude (volts) and margin width.  The
#: comparator gain starts sagging *before* the mirror leaves saturation,
#: producing a halo around the failure region that a surrogate can latch
#: onto once any sample lands at a moderately eroded margin — which
#: boundary-clipped embedded proposals do far more often than interior
#: (centre-out) search in the full 19-D space.
_GAIN_SAG_AMPLITUDE = 0.65
_GAIN_SAG_WIDTH = 0.40


class UVLOTestbench(CircuitTestbench):
    """The 19-dimensional UVLO verification problem (paper Table 1).

    Variation order: ``[r1, r2, r3, l1, ..., l16]``; each coordinate is
    normalized so ``[-1, 1]`` spans ``±4σ``.
    """

    def __init__(self) -> None:
        resistors = [
            VariationParameter(f"R{i}", sigma=_RESISTOR_SPREAD / 4.0, units="frac")
            for i in (1, 2, 3)
        ]
        lengths = [
            VariationParameter(f"L{i}", sigma=_LENGTH_SPREAD / 4.0, units="frac")
            for i in range(1, 17)
        ]
        self.parameters = tuple(resistors + lengths)
        self.specs = {
            "delta_vthl": Specification(
                name="|ΔV_THL|",
                threshold=0.9,
                failure_when="above",
                units="V",
            )
        }

    # -- circuit equations ---------------------------------------------------
    # every helper maps a (n, 19) variation block to per-row quantities;
    # the scalar API wraps the single row in a 1-point batch

    def _resistors(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        r1 = _R1_NOM * (1.0 + _RESISTOR_SPREAD * X[:, 0])
        r2 = _R2_NOM * (1.0 + _RESISTOR_SPREAD * X[:, 1])
        r3 = _R3_NOM * (1.0 + _RESISTOR_SPREAD * X[:, 2])
        return r1, r2, r3

    def _lengths(self, X: np.ndarray) -> np.ndarray:
        """Fractional channel-length deviations of M1..M16, ``(n, 16)``."""
        return _LENGTH_SPREAD * X[:, 3:19]

    def _divider_ratio(self, r1, r2, r3):
        return (r2 + r3) / (r1 + r2 + r3)

    def _reference(self, dl: np.ndarray) -> np.ndarray:
        # M13/M14 stack mismatch shifts the reference
        return _VREF_NOM + _VREF_MISMATCH * (dl[:, 12] - dl[:, 13]) * _VREF_NOM / 4.0

    def _comparator_offset(self, dl: np.ndarray) -> np.ndarray:
        return (
            _OFFSET_INPUT_PAIR * (dl[:, 0] - dl[:, 1])
            + _OFFSET_LOAD_MIRROR * (dl[:, 2] - dl[:, 3])
            + _OFFSET_SECOND_STAGE * (dl[:, 8] - dl[:, 9])
        ) * 0.10

    def _bias_margin(self, X: np.ndarray) -> np.ndarray:
        """Saturation margin of the comparator tail bias mirror.

        Driven by the *corner-stress* response of every coordinate: only
        deviations beyond ~2σ contribute (threshold phenomena), and only a
        coherent deep-corner combination can erode the nominal margin to
        collapse.  Positive in the nominal corner.
        """
        # einsum, not matmul: BLAS gemv is not bitwise batch-size-invariant,
        # and row-vs-chunk broker dispatch must produce identical floats
        return _BIAS_MARGIN_NOM - np.einsum(
            "nd,d->n", corner_stress(X), _BIAS_WEIGHTS
        )

    def _hysteresis(self, dl, collapse, r2, r3):
        leg = 1.0 + _HYST_SENS * (dl[:, 14] - dl[:, 15])
        tap = (r3 / (r2 + r3)) / (_R3_NOM / (_R2_NOM + _R3_NOM))
        return _VHYST_NOM * leg * tap * (1.0 - collapse)

    def delta_vthl_batch(self, X) -> np.ndarray:
        """Signed ``ΔV_THL`` (volts) for a ``(n, 19)`` variation block."""
        X = self._check_batch(np.atleast_2d(np.asarray(X, dtype=float)))
        r1, r2, r3 = self._resistors(X)
        dl = self._lengths(X)

        ratio = self._divider_ratio(r1, r2, r3)
        ratio_nom = self._divider_ratio(_R1_NOM, _R2_NOM, _R3_NOM)
        v_ref = self._reference(dl)
        v_os = self._comparator_offset(dl)

        margin = self._bias_margin(X)
        collapse = soft_step(margin, _BIAS_STEP_WIDTH)
        # the comparator gain sags before the mirror drops out of saturation
        # referenced to the nominal margin so ΔV_THL is exactly 0 at x = 0
        gain_sag = _GAIN_SAG_AMPLITUDE * (
            local_halo(margin, _GAIN_SAG_WIDTH)
            - local_halo(_BIAS_MARGIN_NOM, _GAIN_SAG_WIDTH)
        )

        v_hyst = self._hysteresis(dl, collapse, r2, r3)
        v_thl_nom = _VREF_NOM / ratio_nom - 0.5 * _VHYST_NOM
        smooth = (v_ref + v_os) / ratio - 0.5 * v_hyst - v_thl_nom
        # a weakening comparator amplifies the threshold error in whichever
        # direction the residual offset already points: the sag and the
        # collapse jump grow the *magnitude* of the offset
        direction = np.where(smooth >= 0.0, 1.0, -1.0)
        return smooth + direction * (gain_sag + _COLLAPSE_JUMP * collapse)

    def delta_vthl(self, x) -> float:
        """The signed turn-off-threshold offset ``ΔV_THL`` in volts."""
        x = self._check(x)
        return float(self.delta_vthl_batch(x[None, :])[0])

    # -- testbench API ---------------------------------------------------------

    def performance(self, name: str, x) -> float:
        if name != "delta_vthl":
            raise KeyError(f"unknown performance {name!r}; only 'delta_vthl'")
        return abs(self.delta_vthl(x))

    def performance_batch(self, name: str, X) -> np.ndarray:
        if name != "delta_vthl":
            raise KeyError(f"unknown performance {name!r}; only 'delta_vthl'")
        return np.abs(self.delta_vthl_batch(X))
