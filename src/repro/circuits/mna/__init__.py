"""A from-scratch MNA circuit simulator (netlist → DC / sweep / transient).

Substitutes for the paper's proprietary SPICE flow so the library's
circuit-facing code path (netlist in, measured performance out) is real;
see DESIGN.md §2.
"""

from repro.circuits.mna.dc import ConvergenceError, DCSolution, solve_dc
from repro.circuits.mna.elements import (
    Capacitor,
    CurrentSource,
    Diode,
    Element,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.circuits.mna.measure import (
    overshoot,
    settles_within,
    threshold_crossings,
    undershoot,
)
from repro.circuits.mna.mosfet import MOSFET, MOSParams, level1_current
from repro.circuits.mna.netlist import GROUND, Circuit, MNASystem, StampContext
from repro.circuits.mna.objective import (
    MNAObjective,
    ldo_demo_objective,
    uvlo_demo_objective,
)
from repro.circuits.mna.sweep import SweepResult, sweep_source
from repro.circuits.mna.transient import TransientResult, solve_transient

__all__ = [
    "Circuit",
    "MNASystem",
    "StampContext",
    "GROUND",
    "Element",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "MOSFET",
    "MOSParams",
    "level1_current",
    "solve_dc",
    "DCSolution",
    "ConvergenceError",
    "solve_transient",
    "TransientResult",
    "sweep_source",
    "SweepResult",
    "MNAObjective",
    "ldo_demo_objective",
    "uvlo_demo_objective",
    "threshold_crossings",
    "undershoot",
    "overshoot",
    "settles_within",
]
