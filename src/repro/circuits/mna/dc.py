"""Nonlinear DC operating-point solver: damped Newton with continuation.

The solve ladder mirrors SPICE practice:

1. plain Newton-Raphson with per-iteration voltage-step damping,
2. gmin stepping — solve with a large shunt conductance to ground on every
   node, then relax it geometrically, warm-starting each stage,
3. source stepping — ramp all independent sources from zero.

Convergence is declared on both the voltage update norm and the KCL
residual of the final assembled system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mna.netlist import Circuit, StampContext


class ConvergenceError(RuntimeError):
    """Raised when every continuation strategy fails to converge."""


@dataclass
class DCSolution:
    """A converged operating point."""

    circuit: Circuit
    x: np.ndarray
    iterations: int
    strategy: str

    def voltage(self, node: str) -> float:
        return self.circuit.voltage(self.x, node)

    def branch_current(self, element) -> float:
        """Branch current of a voltage-source-like element."""
        if element.branch is None:
            raise ValueError(f"{element.name} has no branch current")
        return float(self.x[self.circuit.n_nodes + element.branch])


def _newton(
    circuit: Circuit,
    x0: np.ndarray,
    max_iterations: int,
    v_tol: float,
    damping: float,
    source_scale: float = 1.0,
    gmin: float = 0.0,
) -> tuple[np.ndarray, int] | None:
    """One Newton solve; returns ``(x, iterations)`` or None on failure."""
    x = x0.copy()
    for iteration in range(1, max_iterations + 1):
        ctx = StampContext(x=x, mode="dc", source_scale=source_scale, gmin=gmin)
        system = circuit.assemble(ctx)
        try:
            x_new = np.linalg.solve(system.G, system.rhs)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(x_new)):
            return None
        delta = x_new - x
        # damp the voltage updates only; branch currents follow freely
        nv = circuit.n_nodes
        step = np.abs(delta[:nv]).max(initial=0.0)
        if step > damping:
            delta[:nv] *= damping / step
        x = x + delta
        if step < v_tol:
            return x, iteration
    return None


def solve_dc(
    circuit: Circuit,
    x0: np.ndarray | None = None,
    max_iterations: int = 150,
    v_tol: float = 1e-9,
    damping: float = 0.6,
) -> DCSolution:
    """Find the DC operating point, escalating through continuation.

    Raises :class:`ConvergenceError` if plain Newton, gmin stepping and
    source stepping all fail.
    """
    size = circuit.size
    if x0 is None:
        x0 = np.zeros(size)
    elif x0.shape != (size,):
        raise ValueError(f"x0 must have shape ({size},), got {x0.shape}")

    result = _newton(circuit, x0, max_iterations, v_tol, damping)
    if result is not None:
        return DCSolution(circuit, result[0], result[1], "newton")

    # gmin stepping: relax a global shunt from strong to negligible
    x = x0.copy()
    total_iterations = 0
    ok = True
    for gmin in (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 0.0):
        result = _newton(
            circuit, x, max_iterations, v_tol, damping, gmin=gmin
        )
        if result is None:
            ok = False
            break
        x, iters = result
        total_iterations += iters
    if ok:
        return DCSolution(circuit, x, total_iterations, "gmin-stepping")

    # source stepping: ramp the independent sources from zero
    x = np.zeros(size)
    total_iterations = 0
    for scale in np.linspace(0.1, 1.0, 10):
        result = _newton(
            circuit, x, max_iterations, v_tol, damping, source_scale=float(scale)
        )
        if result is None:
            raise ConvergenceError(
                f"DC solve failed for {circuit!r} at source scale {scale:.2f}"
            )
        x, iters = result
        total_iterations += iters
    return DCSolution(circuit, x, total_iterations, "source-stepping")
