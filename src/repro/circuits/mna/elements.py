"""Linear and weakly-nonlinear circuit elements with their MNA stamps.

Every element subclasses :class:`Element`, names its terminals at
construction, gets node indices resolved by :meth:`Circuit.add`, and
implements ``stamp``.  Time-varying sources take a callable ``value(t)``;
source-stepping continuation scales all independent sources through
``ctx.source_scale``.
"""

from __future__ import annotations

import abc
from typing import Callable, Union

import numpy as np

from repro.circuits.mna.netlist import Circuit, MNASystem, StampContext

Waveform = Union[float, Callable[[float], float]]


def _evaluate(value: Waveform, t: float) -> float:
    return float(value(t)) if callable(value) else float(value)


class Element(abc.ABC):
    """Base class: terminal bookkeeping plus the stamp interface."""

    #: Number of MNA branch-current unknowns the element contributes.
    N_BRANCHES = 0

    def __init__(self, name: str, *node_names: str) -> None:
        self.name = name
        self.node_names = node_names
        self.nodes: tuple[int, ...] = ()
        self.branch: int | None = None

    def bind(self, circuit: Circuit) -> None:
        self.nodes = tuple(circuit.node(n) for n in self.node_names)

    @abc.abstractmethod
    def stamp(self, system: MNASystem, ctx: StampContext) -> None: ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {', '.join(self.node_names)})"


class Resistor(Element):
    """Two-terminal linear resistor."""

    def __init__(self, name: str, n1: str, n2: str, resistance: float) -> None:
        if resistance <= 0:
            raise ValueError(f"{name}: resistance must be positive, got {resistance}")
        super().__init__(name, n1, n2)
        self.resistance = float(resistance)

    def stamp(self, system: MNASystem, ctx: StampContext) -> None:
        system.add_conductance(*self.nodes, 1.0 / self.resistance)


class Capacitor(Element):
    """Linear capacitor; open in DC, backward-Euler companion in transient."""

    def __init__(self, name: str, n1: str, n2: str, capacitance: float) -> None:
        if capacitance <= 0:
            raise ValueError(
                f"{name}: capacitance must be positive, got {capacitance}"
            )
        super().__init__(name, n1, n2)
        self.capacitance = float(capacitance)

    def _v(self, x: np.ndarray) -> float:
        n1, n2 = self.nodes
        v1 = 0.0 if n1 < 0 else float(x[n1])
        v2 = 0.0 if n2 < 0 else float(x[n2])
        return v1 - v2

    def stamp(self, system: MNASystem, ctx: StampContext) -> None:
        if ctx.mode != "tran" or ctx.dt <= 0.0:
            return  # open circuit in DC
        g = self.capacitance / ctx.dt
        v_prev = self._v(ctx.x_prev) if ctx.x_prev is not None else 0.0
        n1, n2 = self.nodes
        system.add_conductance(n1, n2, g)
        system.add_current(n1, g * v_prev)
        system.add_current(n2, -g * v_prev)


class CurrentSource(Element):
    """Independent current source: ``value`` amps flow from n+ through the
    external circuit into n- (SPICE convention: the source *pulls* from n+)."""

    def __init__(self, name: str, n_plus: str, n_minus: str, value: Waveform) -> None:
        super().__init__(name, n_plus, n_minus)
        self.value = value

    def stamp(self, system: MNASystem, ctx: StampContext) -> None:
        current = ctx.source_scale * _evaluate(self.value, ctx.time)
        n_plus, n_minus = self.nodes
        system.add_current(n_plus, -current)
        system.add_current(n_minus, current)


class VoltageSource(Element):
    """Independent voltage source with an MNA branch current."""

    N_BRANCHES = 1

    def __init__(self, name: str, n_plus: str, n_minus: str, value: Waveform) -> None:
        super().__init__(name, n_plus, n_minus)
        self.value = value

    def stamp(self, system: MNASystem, ctx: StampContext) -> None:
        n_plus, n_minus = self.nodes
        row = system.branch_row(self.branch)
        if n_plus >= 0:
            system.G[n_plus, row] += 1.0
            system.G[row, n_plus] += 1.0
        if n_minus >= 0:
            system.G[n_minus, row] -= 1.0
            system.G[row, n_minus] -= 1.0
        system.rhs[row] += ctx.source_scale * _evaluate(self.value, ctx.time)


class VCVS(Element):
    """Voltage-controlled voltage source (ideal): ``v_out = gain · v_ctrl``."""

    N_BRANCHES = 1

    def __init__(
        self,
        name: str,
        out_plus: str,
        out_minus: str,
        ctrl_plus: str,
        ctrl_minus: str,
        gain: float,
    ) -> None:
        super().__init__(name, out_plus, out_minus, ctrl_plus, ctrl_minus)
        self.gain = float(gain)

    def stamp(self, system: MNASystem, ctx: StampContext) -> None:
        op, om, cp, cn = self.nodes
        row = system.branch_row(self.branch)
        if op >= 0:
            system.G[op, row] += 1.0
            system.G[row, op] += 1.0
        if om >= 0:
            system.G[om, row] -= 1.0
            system.G[row, om] -= 1.0
        if cp >= 0:
            system.G[row, cp] -= self.gain
        if cn >= 0:
            system.G[row, cn] += self.gain


class VCCS(Element):
    """Voltage-controlled current source (SPICE G element convention):
    a current ``gm · v_ctrl`` flows from out+ *through the source* to out-,
    i.e. it leaves the external circuit at out+ and re-enters at out-."""

    def __init__(
        self,
        name: str,
        out_plus: str,
        out_minus: str,
        ctrl_plus: str,
        ctrl_minus: str,
        gm: float,
    ) -> None:
        super().__init__(name, out_plus, out_minus, ctrl_plus, ctrl_minus)
        self.gm = float(gm)

    def stamp(self, system: MNASystem, ctx: StampContext) -> None:
        op, om, cp, cn = self.nodes
        system.add_transconductance(op, om, cp, cn, self.gm)


class Diode(Element):
    """Shockley diode with Newton companion model and junction limiting."""

    def __init__(
        self,
        name: str,
        anode: str,
        cathode: str,
        saturation_current: float = 1e-14,
        emission: float = 1.0,
        temperature_voltage: float = 0.02585,
    ) -> None:
        if saturation_current <= 0 or emission <= 0:
            raise ValueError(f"{name}: diode parameters must be positive")
        super().__init__(name, anode, cathode)
        self.i_s = float(saturation_current)
        self.n_vt = float(emission) * float(temperature_voltage)
        #: critical voltage for junction limiting
        self.v_crit = self.n_vt * np.log(self.n_vt / (np.sqrt(2.0) * self.i_s))

    def _vd(self, x: np.ndarray) -> float:
        a, c = self.nodes
        va = 0.0 if a < 0 else float(x[a])
        vc = 0.0 if c < 0 else float(x[c])
        return va - vc

    def limited_voltage(self, vd: float) -> float:
        """Clamp the linearization point the way SPICE limits junctions."""
        return min(vd, self.v_crit + self.n_vt)

    def stamp(self, system: MNASystem, ctx: StampContext) -> None:
        vd = self.limited_voltage(self._vd(ctx.x))
        exp_term = np.exp(np.clip(vd / self.n_vt, -100.0, 80.0))
        i_d = self.i_s * (exp_term - 1.0)
        g_d = max(self.i_s * exp_term / self.n_vt, 1e-12)
        i_eq = i_d - g_d * vd
        a, c = self.nodes
        system.add_conductance(a, c, g_d)
        system.add_current(a, -i_eq)
        system.add_current(c, i_eq)
