"""An MNA-simulated low-dropout regulator (engine demonstration).

A transistor-level LDO in the spirit of the paper's testbench [8]: a
five-transistor error amplifier, a PMOS pass device, a feedback divider,
output capacitor and a steppable load.  The three paper specs are measured
the way a SPICE bench would: quiescent current from the supply branch at
light load, load regulation from a DC load sweep, and undershoot from a
backward-Euler transient of a load-current step.

Like :mod:`repro.circuits.mna.uvlo_demo`, this exists to exercise the full
netlist → solve → measure path; the headline tables use the calibrated
behavioral testbench (DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.mna.dc import solve_dc
from repro.circuits.mna.elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.circuits.mna.measure import undershoot as undershoot_of
from repro.circuits.mna.mosfet import MOSFET, MOSParams
from repro.circuits.mna.netlist import Circuit
from repro.utils.validation import as_float_array

#: Normalized-variation dimensionality of the demo bench.
LDO_DEMO_DIM = 9


class LDODemo:
    """Build and measure the MNA LDO for one variation vector.

    Variation layout (±4σ over ``[-1, 1]``):
    ``[vth_M1, vth_M2, vth_mirror, vth_pass, l_pass, r_f1, r_f2, r_tail,
    vth_tail]``.
    """

    VDD = 3.3
    VREF = 1.2

    def __init__(self, x=None) -> None:
        if x is None:
            x = np.zeros(LDO_DEMO_DIM)
        x = as_float_array(x, "x")
        if x.shape != (LDO_DEMO_DIM,):
            raise ValueError(f"x must have shape ({LDO_DEMO_DIM},), got {x.shape}")
        self.x = np.clip(x, -1.0, 1.0)
        self.circuit, self.vdd_source, self.load_source = self._build()

    def _build(self) -> tuple[Circuit, VoltageSource, CurrentSource]:
        x = self.x
        dvth = 0.06 * x[:4]  # ±60 mV
        dl_pass = 0.10 * x[4]
        dr = 0.06 * x[5:8]
        dvth_tail = 0.06 * x[8]

        c = Circuit("ldo-demo")
        vdd = c.add(VoltageSource("VDD", "vdd", "0", self.VDD))
        c.add(VoltageSource("VREF", "ref", "0", self.VREF))

        nmos = lambda dv, w=20e-6: MOSParams(
            vth=0.5 + dv, kp=2e-4, w=w, l=1e-6, lambda_=0.02
        )
        pmos = lambda dv, w=40e-6, l=1e-6: MOSParams(
            vth=0.5 + dv, kp=1e-4, w=w, l=l, lambda_=0.02
        )

        # error amplifier: M1 senses the feedback tap, M2 the reference;
        # PMOS mirror diode-connected on M1's side; NMOS tail current leg
        c.add(MOSFET("M1", "d1", "fb", "tail", nmos(dvth[0])))
        c.add(MOSFET("M2", "ea", "ref", "tail", nmos(dvth[1])))
        c.add(MOSFET("M3", "d1", "d1", "vdd", pmos(dvth[2]), polarity="pmos"))
        c.add(MOSFET("M4", "ea", "d1", "vdd", pmos(dvth[2]), polarity="pmos"))
        c.add(MOSFET("M5", "tail", "bias", "0", nmos(dvth_tail, w=10e-6)))
        c.add(Resistor("Rb1", "vdd", "bias", 200e3 * (1 + dr[2])))
        c.add(Resistor("Rb2", "bias", "0", 100e3))

        # pass device and feedback divider (vout nominal = 2 * VREF)
        c.add(
            MOSFET(
                "MP",
                "vout",
                "ea",
                "vdd",
                pmos(dvth[3], w=2000e-6, l=1e-6 * (1 + dl_pass)),
                polarity="pmos",
            )
        )
        c.add(Resistor("Rf1", "vout", "fb", 100e3 * (1 + dr[0])))
        c.add(Resistor("Rf2", "fb", "0", 100e3 * (1 + dr[1])))

        # output network: capacitor plus a steppable load current
        c.add(Capacitor("Cout", "vout", "0", 1e-9))
        load = c.add(CurrentSource("ILOAD", "vout", "0", 1e-3))
        return c, vdd, load

    # -- measurements -----------------------------------------------------------

    def output_voltage(self, load_current: float = 1e-3) -> float:
        self.load_source.value = load_current
        return solve_dc(self.circuit).voltage("vout")

    def quiescent_current(self, load_current: float = 1e-4) -> float:
        """Supply current minus the delivered load current (amps)."""
        self.load_source.value = load_current
        solution = solve_dc(self.circuit)
        supply = -solution.branch_current(self.vdd_source)
        return float(supply - load_current)

    def load_regulation(
        self, i_light: float = 1e-4, i_heavy: float = 20e-3
    ) -> float:
        """Percent output droop from light to heavy load."""
        v_light = self.output_voltage(i_light)
        v_heavy = self.output_voltage(i_heavy)
        return float(100.0 * (v_light - v_heavy) / max(v_light, 1e-9))

    def undershoot(
        self,
        i_light: float = 1e-4,
        i_heavy: float = 20e-3,
        t_stop: float = 2e-6,
        dt: float = 2e-8,
    ) -> float:
        """Output droop (volts) for a light→heavy load-current step."""
        from repro.circuits.mna.transient import solve_transient

        self.load_source.value = i_light
        x0 = solve_dc(self.circuit).x
        v_nom = self.circuit.voltage(x0, "vout")
        self.load_source.value = lambda t: i_heavy if t > 2e-7 else i_light
        try:
            result = solve_transient(self.circuit, t_stop=t_stop, dt=dt, x0=x0)
            return undershoot_of(result.voltage("vout"), v_nom)
        finally:
            self.load_source.value = i_light
