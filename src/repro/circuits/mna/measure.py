"""Waveform measurements used by the MNA testbenches.

Small, dependency-free post-processing of sweep/transient waveforms:
threshold crossings (with linear interpolation), undershoot/overshoot and
settling checks.
"""

from __future__ import annotations

import numpy as np


def threshold_crossings(
    x: np.ndarray, wave: np.ndarray, level: float, direction: str = "rising"
) -> np.ndarray:
    """Interpolated ``x`` positions where ``wave`` crosses ``level``.

    ``direction`` is ``"rising"``, ``"falling"`` or ``"both"``.
    """
    x = np.asarray(x, dtype=float)
    wave = np.asarray(wave, dtype=float)
    if x.shape != wave.shape or x.ndim != 1:
        raise ValueError("x and wave must be 1-D arrays of equal length")
    if direction not in ("rising", "falling", "both"):
        raise ValueError(f"unknown direction {direction!r}")
    above = wave >= level
    flips = np.flatnonzero(above[1:] != above[:-1])
    crossings = []
    for i in flips:
        rising = not above[i]
        if direction == "rising" and not rising:
            continue
        if direction == "falling" and rising:
            continue
        # linear interpolation between samples i and i+1
        w0, w1 = wave[i], wave[i + 1]
        frac = (level - w0) / (w1 - w0)
        crossings.append(x[i] + frac * (x[i + 1] - x[i]))
    return np.asarray(crossings)


def undershoot(wave: np.ndarray, nominal: float) -> float:
    """Maximum droop of ``wave`` below ``nominal`` (non-negative)."""
    wave = np.asarray(wave, dtype=float)
    return float(max(nominal - wave.min(), 0.0))


def overshoot(wave: np.ndarray, nominal: float) -> float:
    """Maximum excursion of ``wave`` above ``nominal`` (non-negative)."""
    wave = np.asarray(wave, dtype=float)
    return float(max(wave.max() - nominal, 0.0))


def settles_within(
    time: np.ndarray,
    wave: np.ndarray,
    target: float,
    tolerance: float,
    after: float = 0.0,
) -> bool:
    """True when the waveform stays within ``target ± tolerance`` past ``after``."""
    time = np.asarray(time, dtype=float)
    wave = np.asarray(wave, dtype=float)
    mask = time >= after
    if not np.any(mask):
        raise ValueError("no samples after the requested settle start")
    return bool(np.all(np.abs(wave[mask] - target) <= tolerance))
