"""Level-1 (square-law) MOSFET with Newton companion-model stamping.

The classic SPICE level-1 equations with channel-length modulation:

* cutoff   (``v_gs ≤ V_th``):  ``I_D = 0``
* triode   (``v_ds < v_gs − V_th``):
  ``I_D = k (W/L) ((v_gs − V_th) v_ds − v_ds²/2)(1 + λ v_ds)``
* saturation:
  ``I_D = (k/2)(W/L)(v_gs − V_th)²(1 + λ v_ds)``

Polarity handling covers PMOS through sign folding, and the device is
treated as symmetric: when the model-polarity ``v_ds`` goes negative the
drain and source roles swap.  A small off-conductance keeps the Jacobian
nonsingular in cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mna.elements import Element
from repro.circuits.mna.netlist import MNASystem, StampContext

#: Conductance floor (cutoff leakage) to keep the Newton Jacobian regular.
_G_OFF = 1e-9


@dataclass(frozen=True)
class MOSParams:
    """Level-1 parameter set (SI units; ``kp`` is μ·Cox in A/V²)."""

    vth: float = 0.5
    kp: float = 2e-4
    w: float = 10e-6
    l: float = 1e-6
    lambda_: float = 0.05

    def __post_init__(self) -> None:
        if self.kp <= 0 or self.w <= 0 or self.l <= 0:
            raise ValueError("kp, w and l must be positive")
        if self.lambda_ < 0:
            raise ValueError("lambda_ must be non-negative")

    @property
    def beta(self) -> float:
        """The gain factor ``kp · W / L``."""
        return self.kp * self.w / self.l

    def scaled(self, dl: float = 0.0, dvth: float = 0.0, dkp: float = 0.0) -> "MOSParams":
        """A process-varied copy: fractional ΔL, absolute ΔVth, fractional Δkp."""
        return MOSParams(
            vth=self.vth + dvth,
            kp=self.kp * (1.0 + dkp),
            w=self.w,
            l=self.l * (1.0 + dl),
            lambda_=self.lambda_ / max(1.0 + dl, 1e-6),
        )


def level1_current(params: MOSParams, vgs: float, vds: float) -> tuple[float, float, float]:
    """``(I_D, gm, gds)`` of the NMOS-polarity level-1 model at ``vgs, vds ≥ 0``."""
    vov = vgs - params.vth
    beta = params.beta
    clm = 1.0 + params.lambda_ * vds
    if vov <= 0.0:
        return 0.0, 0.0, _G_OFF
    if vds < vov:  # triode
        i_d = beta * (vov * vds - 0.5 * vds**2) * clm
        gm = beta * vds * clm
        gds = (
            beta * (vov - vds) * clm
            + beta * (vov * vds - 0.5 * vds**2) * params.lambda_
        )
    else:  # saturation
        i_d = 0.5 * beta * vov**2 * clm
        gm = beta * vov * clm
        gds = 0.5 * beta * vov**2 * params.lambda_
    return i_d, gm, max(gds, _G_OFF)


class MOSFET(Element):
    """Three-terminal (D, G, S) level-1 MOSFET, NMOS or PMOS."""

    def __init__(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        params: MOSParams | None = None,
        polarity: str = "nmos",
    ) -> None:
        if polarity not in ("nmos", "pmos"):
            raise ValueError(f"{name}: polarity must be 'nmos' or 'pmos'")
        super().__init__(name, drain, gate, source)
        self.params = params if params is not None else MOSParams()
        self.sign = 1.0 if polarity == "nmos" else -1.0
        self.polarity = polarity

    def _voltages(self, x: np.ndarray) -> tuple[float, float, float]:
        d, g, s = self.nodes
        vd = 0.0 if d < 0 else float(x[d])
        vg = 0.0 if g < 0 else float(x[g])
        vs = 0.0 if s < 0 else float(x[s])
        return vd, vg, vs

    def operating_point(self, x: np.ndarray) -> dict[str, float]:
        """Model-polarity ``vgs``, ``vds``, drain current and small-signal gains."""
        vd, vg, vs = self._voltages(x)
        vgs = self.sign * (vg - vs)
        vds = self.sign * (vd - vs)
        swapped = vds < 0.0
        if swapped:  # symmetric device: exchange drain and source roles
            vgs = vgs - vds
            vds = -vds
        i_d, gm, gds = level1_current(self.params, vgs, vds)
        return {
            "vgs": vgs,
            "vds": vds,
            "id": i_d,
            "gm": gm,
            "gds": gds,
            "swapped": float(swapped),
            "saturated": float(vds >= max(vgs - self.params.vth, 0.0)),
        }

    def stamp(self, system: MNASystem, ctx: StampContext) -> None:
        d, g, s = self.nodes
        op = self.operating_point(ctx.x)
        if op["swapped"]:
            d, s = s, d
        gm, gds = op["gm"], op["gds"]
        # actual terminal current out of the (effective) drain node
        vd, vg_, vs = self._voltages(ctx.x)
        if op["swapped"]:
            vd, vs = vs, vd
        # linearization in raw node voltages: the sign folding cancels in
        # the derivatives, so gm/gds stamp with NMOS orientation on the
        # effective terminals
        i_actual = self.sign * op["id"]
        i_eq = i_actual - gm * (vg_ - vs) - gds * (vd - vs)
        system.add_transconductance(d, s, g, s, gm)
        system.add_conductance(d, s, gds)
        if d >= 0:
            system.rhs[d] -= i_eq
        if s >= 0:
            system.rhs[s] += i_eq
