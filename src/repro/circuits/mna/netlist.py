"""Netlist container and the MNA system assembled from it.

Modified nodal analysis: unknowns are the non-ground node voltages plus one
branch current per voltage-source-like element.  Nonlinear devices stamp
linearized companion models around the present solution estimate, so the
same assembly routine serves DC Newton iterations and transient steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

GROUND = "0"


@dataclass
class StampContext:
    """Everything an element may need while stamping.

    Attributes
    ----------
    x:
        Present solution estimate ``[v_nodes..., i_branches...]``.
    mode:
        ``"dc"`` or ``"tran"``.
    time / dt:
        Transient time point and step (0 for DC).
    x_prev:
        Previous accepted transient solution (None in DC).
    source_scale:
        Multiplier on independent sources, used by source-stepping
        continuation (1.0 in normal operation).
    gmin:
        Shunt conductance added from every device node to ground by the
        devices that request it (gmin-stepping continuation).
    """

    x: np.ndarray
    mode: str = "dc"
    time: float = 0.0
    dt: float = 0.0
    x_prev: np.ndarray | None = None
    source_scale: float = 1.0
    gmin: float = 0.0


class MNASystem:
    """The linear(ized) system ``G @ x = rhs`` being assembled."""

    def __init__(self, n_nodes: int, n_branches: int) -> None:
        size = n_nodes + n_branches
        self.n_nodes = n_nodes
        self.n_branches = n_branches
        self.G = np.zeros((size, size))
        self.rhs = np.zeros(size)

    # node index -1 is ground: its row/column are simply dropped

    def add_conductance(self, i: int, j: int, g: float) -> None:
        """Stamp a two-terminal conductance between nodes ``i`` and ``j``."""
        if i >= 0:
            self.G[i, i] += g
        if j >= 0:
            self.G[j, j] += g
        if i >= 0 and j >= 0:
            self.G[i, j] -= g
            self.G[j, i] -= g

    def add_transconductance(
        self, out_p: int, out_n: int, ctrl_p: int, ctrl_n: int, gm: float
    ) -> None:
        """Stamp a VCCS: current ``gm·(v_cp − v_cn)`` from ``out_p`` to ``out_n``."""
        for out, sign_out in ((out_p, 1.0), (out_n, -1.0)):
            if out < 0:
                continue
            if ctrl_p >= 0:
                self.G[out, ctrl_p] += sign_out * gm
            if ctrl_n >= 0:
                self.G[out, ctrl_n] -= sign_out * gm

    def add_current(self, i: int, value: float) -> None:
        """Inject ``value`` amps *into* node ``i``."""
        if i >= 0:
            self.rhs[i] += value

    def branch_row(self, branch: int) -> int:
        return self.n_nodes + branch


class Circuit:
    """A flat netlist: named nodes plus a list of element instances."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._node_index: dict[str, int] = {}
        self.elements: list = []
        self._n_branches = 0

    # -- topology ------------------------------------------------------------

    def node(self, name: str) -> int:
        """Return (creating on first use) the index of node ``name``.

        The ground node ``"0"`` (alias ``"gnd"``) maps to index ``-1``.
        """
        if name in (GROUND, "gnd", "GND"):
            return -1
        if name not in self._node_index:
            self._node_index[name] = len(self._node_index)
        return self._node_index[name]

    @property
    def n_nodes(self) -> int:
        return len(self._node_index)

    @property
    def n_branches(self) -> int:
        return self._n_branches

    @property
    def size(self) -> int:
        return self.n_nodes + self._n_branches

    def node_names(self) -> list[str]:
        names = [""] * self.n_nodes
        for name, idx in self._node_index.items():
            names[idx] = name
        return names

    def add(self, element):
        """Register an element; resolves its node names and branch index."""
        element.bind(self)
        if element.N_BRANCHES:
            element.branch = self._n_branches
            self._n_branches += element.N_BRANCHES
        self.elements.append(element)
        return element

    # -- assembly ------------------------------------------------------------

    def assemble(self, ctx: StampContext) -> MNASystem:
        """Build the MNA system at the linearization point in ``ctx``."""
        system = MNASystem(self.n_nodes, self._n_branches)
        if ctx.gmin > 0.0:
            for i in range(self.n_nodes):
                system.G[i, i] += ctx.gmin
        for element in self.elements:
            element.stamp(system, ctx)
        return system

    def voltage(self, x: np.ndarray, name: str) -> float:
        """Node voltage of ``name`` in a solution vector (0.0 for ground)."""
        idx = self.node(name)
        return 0.0 if idx < 0 else float(x[idx])

    def __repr__(self) -> str:
        return (
            f"Circuit({self.title!r}, nodes={self.n_nodes}, "
            f"elements={len(self.elements)})"
        )
