"""Netlist-level MNA measurements as runtime :class:`Objective` s.

The behavioral testbenches vectorize their closed-form equations over a
whole ``(n, D)`` block, so chunked broker dispatch pays one array pipeline
per batch.  An MNA measurement cannot vectorize that way — every row is an
independent netlist build plus Newton continuation — but it still speaks
the same batch protocol: :meth:`MNAObjective.evaluate` accepts a ``(n, D)``
block and resolves it row by row.

``prefers_batch`` is deliberately ``False`` here: a Newton solve is the
failure-prone kind of evaluation the broker's per-point timeout/retry
machinery exists for, and chunked dispatch would turn one non-convergent
row into a whole-chunk fallback.  Row dispatch keeps fault isolation
per simulation (see DESIGN.md §12 for the dispatch-selection rules).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bo.spec import Specification
from repro.runtime.objective import Objective, stable_callable_name
from repro.utils.validation import as_matrix, unit_cube_bounds


class MNAObjective(Objective):
    """One MNA-measured performance as a cache-addressable objective.

    Parameters
    ----------
    measure:
        Row callable ``measure(x: (dim,)) -> float`` returning the
        performance in natural units (build netlist, solve, measure).
    dim:
        Dimensionality of the normalized variation space (the bounds are
        the unit hypercube, matching the demo benches).
    spec:
        Optional :class:`~repro.bo.spec.Specification`; when given,
        values are mapped through ``spec.to_minimization`` (paper Eq. 2)
        so the objective is in minimization orientation.
    cache_key:
        Stable identity for the result cache/ledger; defaults to the
        measure's qualified name plus ``dim``.
    """

    def __init__(
        self,
        measure: Callable,
        dim: int,
        spec: Specification | None = None,
        cache_key: str | None = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._measure = measure
        self._dim = int(dim)
        self._spec = spec
        if cache_key is None:
            name = stable_callable_name(measure)
            suffix = f":{spec.name}" if spec is not None else ""
            cache_key = f"mna.{name}{suffix}[d={self._dim}]"
        self._cache_key = str(cache_key)

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def bounds(self) -> np.ndarray:
        return unit_cube_bounds(self._dim)

    @property
    def cache_key(self) -> str:
        return self._cache_key

    @property
    def prefers_batch(self) -> bool:
        """Row dispatch: per-simulation fault isolation beats chunking."""
        return False

    @property
    def threshold(self) -> float | None:
        """Minimization threshold ``T`` when a spec is attached (Eq. 1)."""
        if self._spec is None:
            return None
        return self._spec.minimization_threshold

    def evaluate(self, X) -> np.ndarray:
        X = as_matrix(np.asarray(X, dtype=float), self._dim)
        values = np.array([float(self._measure(x)) for x in X], dtype=float)
        if self._spec is None:
            return values
        return np.asarray(
            self._spec.to_minimization(values), dtype=float
        ).reshape(X.shape[0])


def ldo_demo_objective(
    measure: str = "load_regulation", spec: Specification | None = None
) -> MNAObjective:
    """The MNA LDO demo's named measure as an :class:`MNAObjective`."""
    from repro.circuits.mna.ldo_demo import LDO_DEMO_DIM, LDODemo

    if not callable(getattr(LDODemo, measure, None)):
        raise KeyError(f"LDODemo has no measure {measure!r}")

    def run(x: np.ndarray) -> float:
        return float(getattr(LDODemo(x), measure)())

    return MNAObjective(
        run,
        dim=LDO_DEMO_DIM,
        spec=spec,
        cache_key=f"LDODemo:{measure}",
    )


def uvlo_demo_objective(spec: Specification | None = None) -> MNAObjective:
    """``|ΔV_THL|`` of the MNA UVLO demo as an :class:`MNAObjective`."""
    from repro.circuits.mna.uvlo_demo import (
        UVLO_DEMO_DIM,
        uvlo_demo_threshold_offset,
    )

    return MNAObjective(
        uvlo_demo_threshold_offset,
        dim=UVLO_DEMO_DIM,
        spec=spec,
        cache_key="UVLODemo:delta_vthl",
    )


__all__ = ["MNAObjective", "ldo_demo_objective", "uvlo_demo_objective"]
