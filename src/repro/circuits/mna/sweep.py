"""DC sweep of an independent source, with operating-point continuation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mna.dc import DCSolution, solve_dc
from repro.circuits.mna.elements import VoltageSource
from repro.circuits.mna.netlist import Circuit


@dataclass
class SweepResult:
    """All operating points of a DC sweep."""

    circuit: Circuit
    values: np.ndarray
    states: np.ndarray  # (n_points, circuit.size)

    def voltage(self, node: str) -> np.ndarray:
        idx = self.circuit.node(node)
        if idx < 0:
            return np.zeros(self.values.shape[0])
        return self.states[:, idx]


def sweep_source(
    circuit: Circuit,
    source: VoltageSource,
    values,
    **solve_kwargs,
) -> SweepResult:
    """Sweep ``source`` over ``values``, warm-starting each point.

    Warm starting from the previous operating point both speeds the solve
    and tracks the correct branch through hysteretic regions (sweeping up
    versus down a Schmitt-trigger input lands on different states, which is
    exactly how the UVLO thresholds are measured).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    original = source.value
    states = np.empty((values.size, circuit.size))
    x_prev: np.ndarray | None = None
    try:
        for i, value in enumerate(values):
            source.value = float(value)
            solution: DCSolution = solve_dc(circuit, x0=x_prev, **solve_kwargs)
            states[i] = solution.x
            x_prev = solution.x
    finally:
        source.value = original
    return SweepResult(circuit, values.copy(), states)
