"""Fixed-step transient analysis (backward Euler) with Newton per step.

Backward Euler is unconditionally stable and free of trapezoidal ringing,
which suits the stiff, strongly-nonlinear step responses (load steps on a
regulator, supply ramps on a UVLO) the testbenches exercise.  Accuracy is
controlled by the step size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.mna.dc import ConvergenceError, solve_dc
from repro.circuits.mna.netlist import Circuit, StampContext


@dataclass
class TransientResult:
    """Waveforms of a transient run."""

    circuit: Circuit
    time: np.ndarray
    states: np.ndarray  # (n_steps + 1, circuit.size)

    def voltage(self, node: str) -> np.ndarray:
        """The full waveform of one node voltage."""
        idx = self.circuit.node(node)
        if idx < 0:
            return np.zeros(self.time.shape[0])
        return self.states[:, idx]


def _newton_step(
    circuit: Circuit,
    x_guess: np.ndarray,
    x_prev: np.ndarray,
    time: float,
    dt: float,
    max_iterations: int,
    v_tol: float,
    damping: float,
) -> np.ndarray | None:
    x = x_guess.copy()
    for _ in range(max_iterations):
        ctx = StampContext(
            x=x, mode="tran", time=time, dt=dt, x_prev=x_prev
        )
        system = circuit.assemble(ctx)
        try:
            x_new = np.linalg.solve(system.G, system.rhs)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(x_new)):
            return None
        delta = x_new - x
        nv = circuit.n_nodes
        step = np.abs(delta[:nv]).max(initial=0.0)
        if step > damping:
            delta[:nv] *= damping / step
        x = x + delta
        if step < v_tol:
            return x
    return None


def solve_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    x0: np.ndarray | None = None,
    max_iterations: int = 100,
    v_tol: float = 1e-7,
    damping: float = 1.0,
) -> TransientResult:
    """Integrate from a DC operating point (or ``x0``) to ``t_stop``.

    The initial condition defaults to the DC solution at ``t = 0`` (with
    time-varying sources evaluated at zero).  On a non-convergent step the
    step is retried at half size up to four times before raising.
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    if x0 is None:
        x0 = solve_dc(circuit).x

    times = [0.0]
    states = [x0.copy()]
    t = 0.0
    x = x0.copy()
    while t < t_stop - 1e-15:
        step = min(dt, t_stop - t)
        x_next = None
        sub = step
        for _ in range(5):
            x_next = _newton_step(
                circuit, x, x, t + sub, sub, max_iterations, v_tol, damping
            )
            if x_next is not None:
                break
            sub *= 0.5
        if x_next is None:
            raise ConvergenceError(
                f"transient step failed at t={t:.3e} for {circuit!r}"
            )
        t += sub
        x = x_next
        times.append(t)
        states.append(x.copy())
    return TransientResult(circuit, np.asarray(times), np.asarray(states))
