"""An MNA-simulated under-voltage-lockout circuit (engine demonstration).

A transistor-level UVLO in the spirit of the paper's testbench [4],
simulated with the from-scratch MNA engine: supply divider with a
hysteresis leg, five-transistor comparator against a reference, inverting
second stage, and a hysteresis switch closing the loop.  The turn-off
threshold is measured exactly the way a SPICE bench would — sweep the
supply down with operating-point continuation and find where the output
flips.

This demo exists to exercise the netlist → solve → measure code path end
to end (the headline tables use the calibrated behavioral testbenches; see
DESIGN.md §2).  A small normalized variation vector maps onto resistor
values and threshold voltages so the bench plugs into the same failure-
detection drivers.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.mna.dc import solve_dc
from repro.circuits.mna.elements import Resistor, VoltageSource
from repro.circuits.mna.measure import threshold_crossings
from repro.circuits.mna.mosfet import MOSFET, MOSParams
from repro.circuits.mna.netlist import Circuit
from repro.circuits.mna.sweep import sweep_source
from repro.utils.validation import as_float_array

#: Normalized-variation dimensionality of the demo bench.
UVLO_DEMO_DIM = 8


class UVLODemo:
    """Build and measure the MNA UVLO for one variation vector.

    Variation layout (each coordinate spans ±4σ over ``[-1, 1]``):
    ``[r1, r2, r3, vth_M1, vth_M2, vth_mirror, vth_stage2, vth_hyst]``.
    """

    VDD_MAX = 3.3
    VREF = 1.20

    def __init__(self, x=None) -> None:
        if x is None:
            x = np.zeros(UVLO_DEMO_DIM)
        x = as_float_array(x, "x")
        if x.shape != (UVLO_DEMO_DIM,):
            raise ValueError(f"x must have shape ({UVLO_DEMO_DIM},), got {x.shape}")
        self.x = np.clip(x, -1.0, 1.0)
        self.circuit, self.vdd_source = self._build()

    def _build(self) -> tuple[Circuit, VoltageSource]:
        x = self.x
        r = 0.06 * x[:3]  # ±6 % resistors
        dvth = 0.06 * x[3:]  # ±60 mV thresholds

        c = Circuit("uvlo-demo")
        vdd = c.add(VoltageSource("VDD", "vdd", "0", self.VDD_MAX))
        c.add(VoltageSource("VREF", "ref", "0", self.VREF))

        # supply divider: vdd - R1 - div - R2 - tap - R3 - gnd
        c.add(Resistor("R1", "vdd", "div", 100e3 * (1 + r[0])))
        c.add(Resistor("R2", "div", "tap", 80e3 * (1 + r[1])))
        c.add(Resistor("R3", "tap", "0", 70e3 * (1 + r[2])))

        nmos = lambda dv: MOSParams(vth=0.5 + dv, kp=2e-4, w=20e-6, l=1e-6, lambda_=0.02)
        pmos = lambda dv: MOSParams(vth=0.5 + dv, kp=1e-4, w=40e-6, l=1e-6, lambda_=0.02)

        # comparator: NMOS pair (M1 at the reference, M2 at the divider),
        # PMOS mirror load diode-connected on M1's side, resistor tail.
        # With the divider above the reference, M2 pulls "cmp" low.
        c.add(MOSFET("M1", "d1", "ref", "tail", nmos(dvth[0])))
        c.add(MOSFET("M2", "cmp", "div", "tail", nmos(dvth[1])))
        c.add(Resistor("Rtail", "tail", "0", 40e3))
        c.add(MOSFET("M4", "d1", "d1", "vdd", pmos(dvth[2]), polarity="pmos"))
        c.add(MOSFET("M5", "cmp", "d1", "vdd", pmos(dvth[2]), polarity="pmos"))

        # second stage: PMOS common source -> "ok" output (high when the
        # supply is above threshold, low in lockout)
        c.add(MOSFET("M6", "ok", "cmp", "vdd", pmos(dvth[3]), polarity="pmos"))
        c.add(Resistor("Rout", "ok", "0", 200e3))

        # inverter producing the active-low lockout flag "okb"
        c.add(MOSFET("M9", "okb", "ok", "vdd", pmos(dvth[3]), polarity="pmos"))
        c.add(MOSFET("M10", "okb", "ok", "0", nmos(dvth[4])))

        # hysteresis: in lockout ("okb" high) the NMOS switch shorts R3,
        # lowering the divider tap so the supply must climb further to turn
        # back on — the turn-on threshold sits above the turn-off threshold
        c.add(MOSFET("M8", "tap", "okb", "0", nmos(dvth[4])))
        return c, vdd

    # -- measurements ----------------------------------------------------------

    def output_vs_vdd(self, vdd_values) -> np.ndarray:
        """The "ok" output along a supply sweep (continuation-tracked)."""
        sweep = sweep_source(self.circuit, self.vdd_source, vdd_values)
        return sweep.voltage("ok")

    def turn_off_threshold(self, n_points: int = 111) -> float:
        """``V_THL``: the supply at which "ok" collapses on a downward sweep."""
        vdd = np.linspace(self.VDD_MAX, 0.8, n_points)
        ok = self.output_vs_vdd(vdd)
        level = 0.5 * self.VDD_MAX
        crossings = threshold_crossings(vdd, ok, level, direction="both")
        if crossings.size == 0:
            return float(vdd[-1])  # never turned off inside the sweep
        return float(crossings[0])

    def turn_on_threshold(self, n_points: int = 111) -> float:
        """``V_THH``: the supply at which "ok" rises on an upward sweep."""
        vdd = np.linspace(0.8, self.VDD_MAX, n_points)
        ok = self.output_vs_vdd(vdd)
        level = 0.5 * self.VDD_MAX
        crossings = threshold_crossings(vdd, ok, level, direction="both")
        if crossings.size == 0:
            return float(vdd[-1])
        return float(crossings[0])

    def hysteresis(self) -> float:
        """``V_THH − V_THL`` (positive for a healthy Schmitt loop)."""
        return self.turn_on_threshold() - self.turn_off_threshold()


def uvlo_demo_threshold_offset(x) -> float:
    """``|ΔV_THL|`` of the demo bench versus the nominal circuit (volts).

    This is the demo counterpart of the behavioral UVLO objective; it runs
    two full supply sweeps per call, so keep budgets modest.
    """
    nominal = UVLODemo().turn_off_threshold()
    return abs(UVLODemo(x).turn_off_threshold() - nominal)
