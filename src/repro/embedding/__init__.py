"""Random embedding and embedding-dimension selection (paper Section 4)."""

from repro.embedding.dimension_selection import (
    DimensionSelectionResult,
    default_gp_factory,
    pick_flat_dimension,
    select_embedding_dimension,
)
from repro.embedding.random_embedding import RandomEmbedding, clip_to_box

__all__ = [
    "RandomEmbedding",
    "clip_to_box",
    "select_embedding_dimension",
    "pick_flat_dimension",
    "DimensionSelectionResult",
    "default_gp_factory",
]
