"""Embedding-dimension selection (paper Algorithm 2, Section 4.3).

A small dataset sampled in the *original* space is reused across all
candidate embedding dimensions: for each ``d``, ``n_trials`` random matrices
are drawn, the inputs are mapped down via the pseudo-inverse (Eq. 12), a GP
is trained on the mapped data, and its MSE is recorded.  The averaged MSE
as a function of ``d`` decreases until ``d`` reaches the (unknown)
effective dimension ``d_e`` and then flattens; the selector picks the
smallest ``d`` on the flat part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro._typing import ArrayLike, FloatArray, IntArray
from repro.embedding.random_embedding import RandomEmbedding
from repro.utils.contracts import shape_contract
from repro.gp.hyperopt import fit_hyperparameters
from repro.gp.model import GaussianProcess
from repro.gp.standardize import Standardizer
from repro.gp.surrogate import SurrogateModel, make_surrogate
from repro.kernels.stationary import Matern52
from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.validation import as_matrix, as_vector


def default_gp_factory(dim: int) -> SurrogateModel:
    """The library-default surrogate: Matérn-5/2 with isotropic lengthscale.

    Isotropic (non-ARD) keeps the per-dimension GP fit cheap, matching the
    "small amount of data" regime Algorithm 2 is meant for.  Routed through
    :func:`~repro.gp.surrogate.make_surrogate` like every other
    engine-internal construction path.
    """
    return make_surrogate(
        "exact",
        dim,
        kernel_factory=lambda d: Matern52(dim=d),
        noise_variance=1e-4,
    )


@dataclass
class DimensionSelectionResult:
    """Outcome of Algorithm 2.

    Attributes
    ----------
    selected_dim:
        The chosen embedding dimension ``d̃``.
    dims:
        Candidate dimensions evaluated.
    mse:
        Averaged MSE per candidate dimension (same order as ``dims``).
    normalized_mse:
        ``mse`` min-max normalized to [0, 1] (the paper's Fig. 6 scaling).
    n_trials:
        Random matrices averaged per dimension.
    """

    selected_dim: int
    dims: IntArray
    mse: FloatArray
    normalized_mse: FloatArray
    n_trials: int


def _normalize(mse: FloatArray) -> FloatArray:
    lo, hi = float(np.min(mse)), float(np.max(mse))
    if hi - lo < 1e-300:
        return np.zeros_like(mse)
    return (mse - lo) / (hi - lo)


@shape_contract("mse: a(k,)")
def pick_flat_dimension(
    dims: Sequence[int], mse: ArrayLike, tolerance: float = 0.1
) -> int:
    """Pick the smallest ``d`` where the MSE has stopped decreasing.

    Implements the paper's line-10 rule ("pick the smallest d̃ where MSE
    stops decreasing from the plot"): after min-max normalization, the
    running-minimum curve is scanned and the smallest dimension whose
    normalized MSE is within ``tolerance`` of the remaining achievable
    minimum is returned.  ``tolerance`` encodes the paper's accuracy /
    dimension-reduction trade-off (they pick d̃=8 for the UVLO even though
    the literal minimum sits at 16).
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must lie in [0, 1), got {tolerance}")
    dims_arr = np.asarray(list(dims), dtype=int)
    mse_arr = np.asarray(mse, dtype=float)
    if dims_arr.shape != mse_arr.shape:
        raise ValueError("dims and mse must have matching lengths")
    if dims_arr.size == 0:
        raise ValueError("no candidate dimensions given")
    norm = _normalize(mse_arr)
    floor = float(np.min(norm))
    for d, value in zip(dims_arr, norm):
        if value <= floor + tolerance:
            return int(d)
    return int(dims_arr[-1])  # pragma: no cover - loop always hits the minimum


@shape_contract("X: a(n, D), y: a(n,) | a(n, 1)")
def select_embedding_dimension(
    X: ArrayLike,
    y: ArrayLike,
    dims: Sequence[int] | None = None,
    n_trials: int = 5,
    gp_factory: Callable[[int], SurrogateModel] | None = None,
    criterion: str = "training_mse",
    tolerance: float = 0.1,
    tune_hyperparameters: bool = True,
    seed: SeedLike = None,
) -> DimensionSelectionResult:
    """Run Algorithm 2 on the initial dataset ``(X, y)``.

    Parameters
    ----------
    X, y:
        Initial samples in the original ``D``-dimensional space and their
        simulated performances (the dataset ``D_0`` shared by all BO runs).
    dims:
        Candidate embedding dimensions; defaults to ``1..D``.
    n_trials:
        Random matrices per dimension (the paper's ``T``); their MSEs are
        averaged to damp the variance of a single random embedding.
    gp_factory:
        Builds the GP surrogate for a given embedded dimensionality.
    criterion:
        ``"training_mse"`` (the paper's line 6) or ``"loo"`` for
        leave-one-out MSE, a less optimistic variant.
    tolerance:
        Flatness tolerance of :func:`pick_flat_dimension`.
    tune_hyperparameters:
        Fit GP hyperparameters per trial (recommended; Algorithm 2's models
        are meaningless with arbitrary fixed lengthscales).
    """
    X_arr = as_matrix(X)
    y_arr = as_vector(y, X_arr.shape[0])
    D = X_arr.shape[1]
    if dims is None:
        dims = list(range(1, D + 1))
    dims = [int(d) for d in dims]
    if any(d < 1 or d > D for d in dims):
        raise ValueError(f"candidate dims must lie in [1, {D}]")
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if criterion not in ("training_mse", "loo"):
        raise ValueError(f"unknown criterion {criterion!r}")
    if gp_factory is None:
        gp_factory = default_gp_factory

    rng = as_generator(seed)
    standardizer = Standardizer()
    y_std = standardizer.fit_transform(y_arr)

    mse_per_dim = np.empty(len(dims))
    for j, d in enumerate(dims):
        trial_rngs = spawn(rng, n_trials)
        trial_mse = np.empty(n_trials)
        for i, trial_rng in enumerate(trial_rngs):
            embedding = RandomEmbedding(D, d, seed=trial_rng)
            Z = embedding.to_embedded(X_arr)
            gp = gp_factory(d)
            gp.fit(Z, y_std)
            if tune_hyperparameters:
                fit_hyperparameters(gp, n_restarts=2, seed=trial_rng)
            if criterion == "loo":
                if not isinstance(gp, GaussianProcess):
                    raise TypeError(
                        "criterion='loo' needs the exact GaussianProcess "
                        "(the LOO identity reads the full posterior "
                        f"precision); factory built {type(gp).__name__}"
                    )
                trial_mse[i] = gp.loo_mse()
            else:
                pred = gp.predict(Z)
                trial_mse[i] = float(np.mean((pred.mean - y_std) ** 2))
        mse_per_dim[j] = float(np.mean(trial_mse))

    selected = pick_flat_dimension(dims, mse_per_dim, tolerance=tolerance)
    return DimensionSelectionResult(
        selected_dim=selected,
        dims=np.asarray(dims, dtype=int),
        mse=mse_per_dim,
        normalized_mse=_normalize(mse_per_dim),
        n_trials=n_trials,
    )
