"""Random embedding for high-dimensional BO (paper Section 4.1-4.2).

Following Wang et al. [21] as adopted by the paper: a random matrix
``A ∈ R^{D×d}`` with i.i.d. N(0,1) entries embeds a ``d``-dimensional
search box ``Z = [-√d, √d]^d`` into the original space; any point with an
effective subspace of dimension ``d_e ≤ d`` keeps its optimum reachable
through the embedding with probability 1.  Candidates ``z`` map to the
original variation space via ``x = p_Ω(A z)`` (Eq. 11), where ``p_Ω``
clips coordinate-wise onto the hypercube ``Ω``; the reverse map used by
the dimension-selection procedure is the pseudo-inverse ``z = A† x``
(Eq. 12).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro._typing import ArrayLike, FloatArray
from repro.utils.contracts import shape_contract
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import as_matrix, check_bounds, unit_cube_bounds


@shape_contract(
    "X: a(n, D) | a(D,), lower: a(D,), upper: a(D,) -> (n, D) | (D,)"
)
def clip_to_box(
    X: ArrayLike, lower: ArrayLike, upper: ArrayLike
) -> FloatArray:
    """The projection ``p_Ω``: coordinate-wise clipping onto a box."""
    return np.clip(np.asarray(X, dtype=float), lower, upper)


class RandomEmbedding:
    """A sampled ``D×d`` Gaussian embedding between ``Z`` and ``Ω``.

    Parameters
    ----------
    original_dim:
        Dimensionality ``D`` of the variation space.
    embedded_dim:
        Embedding dimensionality ``d`` (``1 ≤ d ≤ D``).
    bounds:
        Box ``Ω`` in the original space; defaults to ``[-1, 1]^D`` as in the
        paper's normalized variation space.
    seed:
        Seed or generator used to draw the matrix ``A``.
    """

    def __init__(
        self,
        original_dim: int,
        embedded_dim: int,
        bounds: ArrayLike | None = None,
        seed: SeedLike = None,
    ) -> None:
        if original_dim < 1:
            raise ValueError(f"original_dim must be >= 1, got {original_dim}")
        if not 1 <= embedded_dim <= original_dim:
            raise ValueError(
                f"embedded_dim must lie in [1, {original_dim}], got {embedded_dim}"
            )
        self.original_dim = int(original_dim)
        self.embedded_dim = int(embedded_dim)
        if bounds is None:
            bounds = unit_cube_bounds(self.original_dim)
        self.lower, self.upper = check_bounds(bounds, self.original_dim)
        rng = as_generator(seed)
        self.matrix: FloatArray = rng.standard_normal(
            (self.original_dim, self.embedded_dim)
        )
        self._pinv: FloatArray | None = None

    @property
    def pinv(self) -> FloatArray:
        """The Moore-Penrose pseudo-inverse ``A†`` of Eq. 12, via QR.

        A Gaussian ``A`` has full column rank with probability 1, so
        ``A = QR`` gives ``A† = R⁻¹Qᵀ``.  The textbook normal-equation form
        ``(AᵀA)⁻¹Aᵀ`` squares the condition number of ``A`` and loses half
        the significant digits exactly when an embedding draw comes out
        nearly rank-deficient — the regime where the dimension-selection
        procedure needs the reverse map most.
        """
        if self._pinv is None:
            A = self.matrix
            Q, R = np.linalg.qr(A)
            self._pinv = solve_triangular(R, Q.T, lower=False, check_finite=False)
        return self._pinv

    def z_bounds(self) -> FloatArray:
        """The embedded search box ``[-√d, √d]^d`` of Section 4.2."""
        half = np.sqrt(self.embedded_dim)
        d = self.embedded_dim
        return np.column_stack([-half * np.ones(d), half * np.ones(d)])

    @shape_contract("Z: a(n, d) | a(d,) -> (n, D) | (D,)")
    def to_original(self, Z: ArrayLike) -> FloatArray:
        """Map embedded points to the variation space: ``x = p_Ω(A z)``.

        Accepts a single ``(d,)`` vector or a ``(n, d)`` batch and returns
        the matching shape.
        """
        Z_arr = np.asarray(Z, dtype=float)
        single = Z_arr.ndim == 1
        Z_mat = as_matrix(Z_arr, self.embedded_dim, name="z")
        X = clip_to_box(Z_mat @ self.matrix.T, self.lower, self.upper)
        return X[0] if single else X

    def project(self, Z: ArrayLike) -> tuple[FloatArray, float]:
        """Like :meth:`to_original`, plus the clipped-coordinate fraction.

        The second return is the fraction of coordinates of ``A z`` that
        fell outside ``Ω`` and were moved by ``p_Ω`` — the telemetry
        signal for how hard the embedding is pressing against the box
        (persistently high fractions mean the embedded box ``Z`` maps
        mostly onto faces of ``Ω`` and the effective search space shrinks).
        """
        Z_arr = np.asarray(Z, dtype=float)
        single = Z_arr.ndim == 1
        Z_mat = as_matrix(Z_arr, self.embedded_dim, name="z")
        raw = Z_mat @ self.matrix.T
        X = clip_to_box(raw, self.lower, self.upper)
        clipped = float(np.mean(raw != X)) if raw.size else 0.0
        return (X[0] if single else X), clipped

    def to_original_unclipped(self, Z: ArrayLike) -> FloatArray:
        """``A z`` without the projection, for diagnostics and ablations."""
        Z_arr = np.asarray(Z, dtype=float)
        single = Z_arr.ndim == 1
        Z_mat = as_matrix(Z_arr, self.embedded_dim, name="z")
        X = Z_mat @ self.matrix.T
        return X[0] if single else X

    @shape_contract("X: a(n, D) | a(D,) -> (n, d) | (d,)")
    def to_embedded(self, X: ArrayLike) -> FloatArray:
        """Map original-space points down via the pseudo-inverse (Eq. 12)."""
        X_arr = np.asarray(X, dtype=float)
        single = X_arr.ndim == 1
        X_mat = as_matrix(X_arr, self.original_dim, name="x")
        Z = X_mat @ self.pinv.T
        return Z[0] if single else Z

    def __repr__(self) -> str:
        return (
            f"RandomEmbedding(D={self.original_dim}, d={self.embedded_dim})"
        )
