"""Experiment harness: table/figure runners mirroring the paper's Section 5."""

from repro.experiments.ablation import (
    AblationRow,
    acquisition_weight_ablation,
    embedding_dimension_sweep,
    kernel_ablation,
    projection_ablation,
)
from repro.experiments.config import ExperimentConfig, ldo_config, uvlo_config
from repro.experiments.figures import (
    DimensionSelectionCurve,
    EmbeddingIllustration,
    OptimizerScalingResult,
    dimension_selection_curve,
    embedding_illustration,
    optimizer_scaling,
)
from repro.experiments.methods import METHOD_ORDER, run_method, shared_initial_data
from repro.experiments.tables import (
    TableResult,
    TableRow,
    format_table,
    run_table,
)

__all__ = [
    "ExperimentConfig",
    "uvlo_config",
    "ldo_config",
    "METHOD_ORDER",
    "run_method",
    "shared_initial_data",
    "run_table",
    "format_table",
    "TableResult",
    "TableRow",
    "optimizer_scaling",
    "OptimizerScalingResult",
    "embedding_illustration",
    "EmbeddingIllustration",
    "dimension_selection_curve",
    "DimensionSelectionCurve",
    "AblationRow",
    "embedding_dimension_sweep",
    "acquisition_weight_ablation",
    "kernel_ablation",
    "projection_ablation",
]
