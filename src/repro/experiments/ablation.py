"""Ablation studies on the design choices DESIGN.md calls out.

Each function runs a small controlled comparison on a testbench spec and
returns rows for the benchmark harness:

* :func:`embedding_dimension_sweep` — Algorithm 2's pick versus over- and
  under-compressed embedding dimensions (DESIGN choice 1).
* :func:`acquisition_weight_ablation` — the multi-weight pBO batch versus
  a single-weight LCB batch (DESIGN choice 2).
* :func:`projection_ablation` — the clip projection ``p_Ω`` versus
  rejecting out-of-box images (DESIGN choice 3).
* :func:`kernel_ablation` — ARD versus isotropic kernels in the embedded
  space (DESIGN choice 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acquisition.optimize import default_acquisition_optimizer
from repro.bo.engine import RunSpec
from repro.bo.records import RunResult
from repro.bo.rembo import RemboBO
from repro.circuits.behavioral.base import CircuitTestbench
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import shared_initial_data
from repro.kernels.stationary import Matern52


@dataclass
class AblationRow:
    """One variant's outcome."""

    variant: str
    worst_value: float
    n_failures: int
    first_failure_index: int | None
    total_seconds: float


def _summary_row(variant: str, result: RunResult, threshold: float) -> AblationRow:
    summary = result.summarize(threshold)
    return AblationRow(
        variant=variant,
        worst_value=result.best_y,
        n_failures=summary.n_failures,
        first_failure_index=summary.first_failure_index,
        total_seconds=result.total_seconds,
    )


def _run_rembo(
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
    initial_data,
    **overrides,
) -> RunResult:
    kwargs = dict(
        batch_size=cfg.batch_size,
        embedding_dim=cfg.embedding_dim,
        kernel_factory=cfg.kernel_factory(),
        noise_variance=cfg.noise_variance,
        tune_every=cfg.tune_every_batch,
        acquisition_optimizer_factory=lambda dim: default_acquisition_optimizer(
            dim, global_budget=cfg.global_budget, local_budget=cfg.local_budget
        ),
        seed=cfg.seed,
    )
    kwargs.update(overrides)
    engine = RemboBO(**kwargs)
    return engine.solve(
        objective=testbench.objective(spec_name),
        spec=RunSpec(
            bounds=testbench.bounds(),
            n_batches=cfg.n_batches,
            threshold=testbench.threshold(spec_name),
            initial_data=initial_data,
        ),
    )


def embedding_dimension_sweep(
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
    dims=None,
) -> list[AblationRow]:
    """Run the proposed method at several fixed embedding dimensions."""
    if dims is None:
        base = cfg.embedding_dim or 8
        dims = sorted({max(2, base // 4), max(2, base // 2), base, min(testbench.dim, base * 2)})
    initial = shared_initial_data(testbench, spec_name, cfg)
    threshold = testbench.threshold(spec_name)
    rows = []
    for d in dims:
        result = _run_rembo(
            testbench, spec_name, cfg, initial, embedding_dim=int(d)
        )
        rows.append(_summary_row(f"d={d}", result, threshold))
    return rows


def acquisition_weight_ablation(
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
) -> list[AblationRow]:
    """Multi-weight pBO ladder versus a single repeated LCB-style weight."""
    initial = shared_initial_data(testbench, spec_name, cfg)
    threshold = testbench.threshold(spec_name)
    multi = _run_rembo(testbench, spec_name, cfg, initial)
    single = _run_rembo(
        testbench,
        spec_name,
        cfg,
        initial,
        weights=np.full(cfg.batch_size, 0.5),
    )
    return [
        _summary_row("multi-weight ladder", multi, threshold),
        _summary_row("single weight w=0.5", single, threshold),
    ]


def kernel_ablation(
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
) -> list[AblationRow]:
    """ARD versus isotropic Matérn-5/2 in the embedded space."""
    initial = shared_initial_data(testbench, spec_name, cfg)
    threshold = testbench.threshold(spec_name)
    iso = _run_rembo(
        testbench, spec_name, cfg, initial,
        kernel_factory=lambda dim: Matern52(dim=dim),
    )
    ard = _run_rembo(
        testbench, spec_name, cfg, initial,
        kernel_factory=lambda dim: Matern52(dim=dim, ard=True),
    )
    return [
        _summary_row("isotropic Matern-5/2", iso, threshold),
        _summary_row("ARD Matern-5/2", ard, threshold),
    ]


def projection_ablation(
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
) -> list[AblationRow]:
    """Clip projection ``p_Ω`` versus ray-rescaling out-of-box images.

    Ray rescaling maps ``A z`` outside Ω to the boundary point along the
    ray from the origin, ``x = A z / ‖A z‖_∞`` — it keeps iterates inside
    Ω but destroys the coordinate-wise saturation (corner concentration)
    that clipping provides.
    """
    initial = shared_initial_data(testbench, spec_name, cfg)
    threshold = testbench.threshold(spec_name)
    clip = _run_rembo(testbench, spec_name, cfg, initial)

    from repro.embedding.random_embedding import RandomEmbedding

    original_to_original = RandomEmbedding.to_original

    def ray_rescaled(self, Z):
        Z_arr = np.asarray(Z, dtype=float)
        single = Z_arr.ndim == 1
        Z_mat = Z_arr[None, :] if single else Z_arr
        raw = Z_mat @ self.matrix.T
        scale = np.maximum(np.abs(raw).max(axis=1, keepdims=True), 1.0)
        X = raw / scale
        return X[0] if single else X

    RandomEmbedding.to_original = ray_rescaled
    try:
        rescale = _run_rembo(testbench, spec_name, cfg, initial)
    finally:
        RandomEmbedding.to_original = original_to_original
    return [
        _summary_row("clip projection p_Omega", clip, threshold),
        _summary_row("ray rescaling", rescale, threshold),
    ]
