"""Experiment configurations mirroring the paper's Section 5 setups.

Budgets follow the paper exactly for the BO family (5+5×19 for the UVLO,
50+5×70 for the LDO); the pure-sampling budgets (MC 20 000 / 649 000,
SSS 1 000 / 6 000) default to scaled-down counts so a table regenerates in
minutes, with the original ratios preserved and the scaling recorded in
the output.  Use :meth:`ExperimentConfig.scaled` to shrink everything for
smoke runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kernels.stationary import Matern52


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for one table reproduction."""

    #: Initial (shared) simulation samples for every BO method.
    n_init: int
    #: Sequential budget of single-point BO (EI/PI/LCB).
    n_sequential: int
    #: Batch size and batch count of pBO and the proposed method.
    batch_size: int
    n_batches: int
    #: Monte-Carlo simulation budget.
    mc_samples: int
    #: SSS simulations per sigma scale (scales fixed at the ladder below).
    sss_samples_per_scale: int
    sss_scales: tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0)
    #: Embedding dimension for the proposed method; None runs Algorithm 2.
    embedding_dim: int | None = None
    dimension_trials: int = 5
    #: Fixed acquisition-evaluation caps (paper Section 3: capped to force
    #: completion; identical for every BO method and every dimension).
    global_budget: int = 400
    local_budget: int = 150
    #: Hyperparameter tuning cadence (sequential refits once per point, so
    #: high-dimensional sequential BO tunes less often, as any practical
    #: implementation must).
    tune_every_sequential: int = 10
    tune_every_batch: int = 1
    #: Use ARD lengthscales ("ard") or a shared one ("iso", the BayesOpt
    #: default the paper's baselines used).
    kernel: str = "iso"
    noise_variance: float = 1e-4
    seed: int = 2019

    def kernel_factory(self):
        if self.kernel == "iso":
            return lambda dim: Matern52(dim=dim)
        if self.kernel == "ard":
            return lambda dim: Matern52(dim=dim, ard=True)
        raise ValueError(f"unknown kernel {self.kernel!r}")

    @property
    def bo_budget(self) -> int:
        """Total simulations of a sequential BO run."""
        return self.n_init + self.n_sequential

    def scaled(self, factor: float) -> "ExperimentConfig":
        """Shrink the sampling budgets (BO budgets stay paper-exact)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return replace(
            self,
            mc_samples=max(20, int(self.mc_samples * factor)),
            sss_samples_per_scale=max(
                10, int(self.sss_samples_per_scale * factor)
            ),
        )


def uvlo_config(**overrides) -> ExperimentConfig:
    """Table 1 setup: 19-D UVLO, 5 init + 95 sequential / 5×19 batches.

    The paper's MC budget is 20 000 (kept); SSS is 1 000 across its scale
    ladder.
    """
    defaults = dict(
        n_init=5,
        n_sequential=95,
        batch_size=19,
        n_batches=5,
        mc_samples=20_000,
        sss_samples_per_scale=166,  # ≈ 1000 total over 6 scales
        embedding_dim=8,  # the paper's d̃_UVLO
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def ldo_config(**overrides) -> ExperimentConfig:
    """Table 2 setup: 60-D LDO, 50 init + 350 sequential / 5×70 batches.

    The paper's MC budget is 649 000; the default here is 50 000 (13×
    smaller, ratio recorded in the harness output) so the full table
    regenerates in minutes.
    """
    defaults = dict(
        n_init=50,
        n_sequential=350,
        batch_size=70,
        n_batches=5,
        mc_samples=50_000,
        sss_samples_per_scale=500,  # ≈ 3000 total over 6 scales
        embedding_dim=30,  # the paper's d̃_LDO

        tune_every_sequential=25,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)
