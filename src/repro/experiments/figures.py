"""Figure reproductions: Fig. 2 (optimizer scaling), Fig. 3 (embedding
illustration) and Fig. 6 (embedding-dimension selection curves).

Each function returns the numeric series the corresponding figure plots;
the benchmark scripts print them as aligned tables (this library renders
no graphics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.behavioral.base import CircuitTestbench
from repro.embedding.dimension_selection import select_embedding_dimension
from repro.embedding.random_embedding import RandomEmbedding
from repro.experiments.config import ExperimentConfig
from repro.optim.cobyla import Cobyla
from repro.optim.direct import Direct
from repro.synthetic.functions import ysyn
from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.validation import unit_cube_bounds


# -- Fig. 2: function evaluations per optimization vs dimension -------------


@dataclass
class OptimizerScalingResult:
    """Evaluations-to-converge per optimizer per dimension (Fig. 2)."""

    dims: np.ndarray
    evaluations: dict[str, np.ndarray]  # optimizer name -> per-dim counts


def optimizer_scaling(
    dims=(2, 5, 10, 20, 30, 40, 50, 60),
    n_repeats: int = 3,
    f_target: float = 0.05,
    max_evaluations: int = 200_000,
    seed: SeedLike = None,
) -> OptimizerScalingResult:
    """Reproduce Fig. 2 on the paper's Eq. 10 objective.

    For each dimension ``D``, a random target ``c`` inside the box is
    drawn and each optimizer runs until ``y_syn`` falls below ``f_target``
    (the optimum is 0); the consumed evaluation count is averaged over
    ``n_repeats`` draws.  Both counts grow super-linearly in ``D``, which
    is the paper's Section 3 argument.
    """
    rng = as_generator(seed)
    dims = np.asarray(list(dims), dtype=int)
    counts: dict[str, list[float]] = {"DIRECT-L": [], "COBYLA": []}
    for D in dims:
        bounds = unit_cube_bounds(int(D))
        per_method = {"DIRECT-L": [], "COBYLA": []}
        for child in spawn(rng, n_repeats):
            c = child.uniform(-0.8, 0.8, size=int(D))
            fun = ysyn(c)
            direct = Direct(
                max_evaluations=max_evaluations,
                max_iterations=10**7,
                f_target=f_target,
            )
            result = direct.minimize(fun, bounds)
            per_method["DIRECT-L"].append(result.n_evaluations)
            cobyla = Cobyla(max_evaluations=max_evaluations, rho_end=1e-8)
            counting = _until_target(fun, f_target)
            cobyla.minimize(counting, bounds)
            per_method["COBYLA"].append(counting.evaluations_at_target or counting.n)
        for name in counts:
            counts[name].append(float(np.mean(per_method[name])))
    return OptimizerScalingResult(
        dims=dims,
        evaluations={k: np.asarray(v) for k, v in counts.items()},
    )


class _until_target:
    """Record the evaluation index at which the target was first reached."""

    def __init__(self, fun, target: float) -> None:
        self.fun = fun
        self.target = target
        self.n = 0
        self.evaluations_at_target: int | None = None

    def __call__(self, x):
        value = self.fun(x)
        self.n += 1
        if self.evaluations_at_target is None and value <= self.target:
            self.evaluations_at_target = self.n
        return value


# -- Fig. 3: a 2-D function with a 1-D effective subspace --------------------


@dataclass
class EmbeddingIllustration:
    """Series for the Fig. 3 illustration."""

    z: np.ndarray
    x_points: np.ndarray  # the 1-D embedding line mapped into 2-D
    y_along_embedding: np.ndarray
    y_optimum_2d: float
    y_optimum_embedded: float


def embedding_illustration(
    n_points: int = 201, seed: SeedLike = None
) -> EmbeddingIllustration:
    """A 2-D objective depending only on ``x_1``, searched along a random
    1-D embedding: the embedded line attains the true optimum (Fig. 3)."""

    def objective(x) -> float:
        return float((x[0] - 0.3) ** 2)  # depends on x1 only; optimum 0

    embedding = RandomEmbedding(2, 1, seed=seed)
    z_lo, z_hi = embedding.z_bounds()[0]
    z = np.linspace(z_lo, z_hi, n_points)
    x_points = embedding.to_original(z[:, None])
    values = np.array([objective(x) for x in x_points])
    return EmbeddingIllustration(
        z=z,
        x_points=x_points,
        y_along_embedding=values,
        y_optimum_2d=0.0,
        y_optimum_embedded=float(values.min()),
    )


# -- Fig. 6: normalized MSE vs embedding dimension ---------------------------


@dataclass
class DimensionSelectionCurve:
    """One Fig. 6 curve: normalized averaged MSE per candidate dimension."""

    label: str
    dims: np.ndarray
    normalized_mse: np.ndarray
    selected_dim: int


def dimension_selection_curve(
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
    dims=None,
    n_init: int | None = None,
    seed: SeedLike = None,
) -> DimensionSelectionCurve:
    """Run Algorithm 2 for one spec and return its Fig. 6 curve.

    Uses ``cfg.n_init`` samples (5 for the UVLO, 50 for the LDO, as in the
    paper's Section 5.2) unless ``n_init`` overrides it.
    """
    from repro.bo.engine import uniform_initial_design

    rng = as_generator(seed if seed is not None else cfg.seed)
    objective = testbench.objective(spec_name)
    n = n_init if n_init is not None else cfg.n_init
    X = uniform_initial_design(testbench.bounds(), n, seed=rng)
    y = np.array([objective(x) for x in X])
    if dims is None:
        D = testbench.dim
        dims = [d for d in (1, 2, 4, 6, 8, 10, 12, 16, 20, 25, 30, 40, 50, D) if d <= D]
    result = select_embedding_dimension(
        X, y, dims=dims, n_trials=cfg.dimension_trials, seed=rng
    )
    return DimensionSelectionCurve(
        label=f"{type(testbench).__name__}/{spec_name}",
        dims=result.dims,
        normalized_mse=result.normalized_mse,
        selected_dim=result.selected_dim,
    )
