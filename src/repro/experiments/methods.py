"""Method registry: every row of the paper's Tables 1-2 as a runnable.

``build_engine(name, cfg)`` constructs the engine/sampler behind one table
row; ``run_method(name, ...)`` executes one (method, spec) cell through the
shared :meth:`solve` entry point and returns the full :class:`RunResult`;
``METHOD_ORDER`` fixes the paper's row order.  All BO methods share the
same initial dataset (as the paper's setups do) and the same
acquisition-evaluation caps; the proposed method differs only by operating
through the random embedding.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.acquisition.optimize import default_acquisition_optimizer
from repro.bo.batch import BatchBO
from repro.bo.engine import EngineProtocol, RunSpec, uniform_initial_design
from repro.bo.loop import SequentialBO
from repro.bo.records import RunResult
from repro.bo.rembo import RemboBO
from repro.circuits.behavioral.base import CircuitTestbench
from repro.experiments.config import ExperimentConfig
from repro.runtime.broker import EvaluationBroker, RuntimePolicy
from repro.sampling.monte_carlo import MonteCarloSampler
from repro.sampling.sss import ScaledSigmaSampler
from repro.telemetry.config import TelemetryLike
from repro.utils.rng import SeedLike

#: Paper row order in Tables 1-2.
METHOD_ORDER = ("MC", "SSS", "EI", "PI", "LCB", "pBO", "This work")


def _acq_factory(cfg: ExperimentConfig) -> Callable:
    return lambda dim: default_acquisition_optimizer(
        dim, global_budget=cfg.global_budget, local_budget=cfg.local_budget
    )


def build_engine(
    name: str, cfg: ExperimentConfig, seed: SeedLike = None
) -> EngineProtocol:
    """Construct the engine/sampler behind one :data:`METHOD_ORDER` row.

    The returned object satisfies :class:`EngineProtocol`; run it via
    ``solve(objective=..., spec=...)`` or hand it to a
    :class:`~repro.campaign.Campaign`.
    """
    seed = cfg.seed if seed is None else seed
    if name == "MC":
        return MonteCarloSampler(cfg.mc_samples, seed=seed)
    if name == "SSS":
        return ScaledSigmaSampler(
            cfg.sss_samples_per_scale, scales=cfg.sss_scales, seed=seed
        )
    if name in ("EI", "PI", "LCB"):
        return SequentialBO(
            acquisition=name.lower(),
            kernel_factory=cfg.kernel_factory(),
            noise_variance=cfg.noise_variance,
            tune_every=cfg.tune_every_sequential,
            acquisition_optimizer_factory=_acq_factory(cfg),
            seed=seed,
        )
    if name == "pBO":
        return BatchBO(
            batch_size=cfg.batch_size,
            kernel_factory=cfg.kernel_factory(),
            noise_variance=cfg.noise_variance,
            tune_every=cfg.tune_every_batch,
            acquisition_optimizer_factory=_acq_factory(cfg),
            seed=seed,
        )
    if name == "This work":
        return RemboBO(
            batch_size=cfg.batch_size,
            embedding_dim=cfg.embedding_dim,
            dimension_trials=cfg.dimension_trials,
            kernel_factory=cfg.kernel_factory(),
            noise_variance=cfg.noise_variance,
            tune_every=cfg.tune_every_batch,
            acquisition_optimizer_factory=_acq_factory(cfg),
            seed=seed,
        )
    raise ValueError(f"unknown method {name!r}; options: {METHOD_ORDER}")


def method_spec(
    name: str,
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
    initial_data: tuple[np.ndarray, np.ndarray] | None = None,
) -> RunSpec:
    """The :class:`RunSpec` one table cell runs under."""
    bounds = testbench.bounds()
    threshold = testbench.threshold(spec_name)
    if name in ("MC", "SSS"):
        return RunSpec(bounds=bounds, threshold=threshold)
    if name in ("EI", "PI", "LCB"):
        return RunSpec(
            bounds=bounds,
            n_init=cfg.n_init,
            budget=cfg.bo_budget,
            threshold=threshold,
            initial_data=initial_data,
        )
    if name in ("pBO", "This work"):
        return RunSpec(
            bounds=bounds,
            n_init=cfg.n_init,
            n_batches=cfg.n_batches,
            threshold=threshold,
            initial_data=initial_data,
        )
    raise ValueError(f"unknown method {name!r}; options: {METHOD_ORDER}")


def shared_initial_data(
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
    runtime: RuntimePolicy | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The initial dataset D_0 shared by every BO method (paper §5.1).

    Routed through the evaluation runtime so a shared ``runtime`` caches
    the initial simulations: every method reusing this design (or
    re-evaluating the same points) is then served without re-simulating.
    Pass ``RuntimePolicy.shared(cache_path=...)`` to persist the initial
    simulations in an on-disk :meth:`ResultCache.open` store that later
    campaigns (or the ``repro.serve`` scheduler) can reuse.
    """
    objective = testbench.objective(spec_name)
    X = uniform_initial_design(testbench.bounds(), cfg.n_init, seed=cfg.seed)
    policy = runtime if runtime is not None else RuntimePolicy.shared()
    broker = EvaluationBroker(
        objective,
        config=policy.config,
        cache=policy.cache,
        ledger=policy.ledger,
        campaign={"method": "initial_design", "spec": spec_name},
    )
    batch = broker.evaluate_batch(X)
    if batch.n_evaluated != X.shape[0]:
        raise RuntimeError(
            "initial design lost points to the skip policy; the shared "
            "dataset must be complete"
        )
    return batch.X, batch.y


def run_method(
    name: str,
    testbench: CircuitTestbench,
    spec_name: str,
    cfg: ExperimentConfig,
    initial_data: tuple[np.ndarray, np.ndarray] | None = None,
    seed: SeedLike = None,
    runtime: RuntimePolicy | None = None,
    telemetry: TelemetryLike = None,
) -> RunResult:
    """Execute one method against one spec and return its evaluation log.

    ``runtime`` threads a shared :class:`RuntimePolicy` (cache / ledger /
    failure policy) through the method's evaluations; methods sharing a
    policy never re-simulate a point any of them has already evaluated.
    ``telemetry`` receives the engine's spans and broker metrics.
    """
    objective = testbench.objective(spec_name)
    engine = build_engine(name, cfg, seed=seed)
    if name not in ("MC", "SSS") and initial_data is None:
        initial_data = shared_initial_data(
            testbench, spec_name, cfg, runtime=runtime
        )
    spec = method_spec(name, testbench, spec_name, cfg, initial_data=initial_data)
    return engine.solve(
        objective=objective, spec=spec, policy=runtime, telemetry=telemetry
    )
