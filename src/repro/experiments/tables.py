"""Table 1 / Table 2 reproduction: run every method, render paper rows.

``run_table`` executes the full method set of the paper against every
spec of a testbench and returns structured rows; ``format_table`` renders
them in the paper's column layout (Spec, Target, Method, # Sim, Worst
Case, 1st Failure Hit, Runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bo.records import FailureSummary, RunResult
from repro.circuits.behavioral.base import CircuitTestbench
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import METHOD_ORDER, run_method, shared_initial_data
from repro.runtime.broker import RuntimePolicy
from repro.utils.parallel import parallel_map
from repro.utils.rng import spawn
from repro.utils.tables import format_count, format_sim_budget, render_table
from repro.utils.timing import format_duration


@dataclass
class TableRow:
    """One (spec, method) cell group of a results table."""

    spec_name: str
    target: str
    method: str
    sim_budget: str
    worst_case: str
    first_failure: str
    runtime: str
    summary: FailureSummary
    result: RunResult | None = None
    repeat: int = 0


@dataclass
class TableResult:
    """A completed table reproduction."""

    testbench_name: str
    rows: list[TableRow] = field(default_factory=list)

    def row(self, spec_name: str, method: str) -> TableRow:
        for row in self.rows:
            if row.spec_name == spec_name and row.method == method:
                return row
        raise KeyError(f"no row for ({spec_name!r}, {method!r})")

    def detected(self, spec_name: str, method: str) -> bool:
        return self.row(spec_name, method).summary.detected


def _sim_budget_label(method: str, cfg: ExperimentConfig, n_sims: int) -> str:
    if method in ("MC", "SSS"):
        return format_count(n_sims)
    if method in ("EI", "PI", "LCB"):
        return format_sim_budget(cfg.n_init, cfg.n_sequential)
    return format_sim_budget(
        cfg.n_init, cfg.batch_size * cfg.n_batches, batch=cfg.batch_size
    )


def _run_cell(task) -> RunResult:
    """Execute one (spec, method, repeat) cell (process-pool safe)."""
    testbench, spec_name, method, cfg, init, seed, runtime = task
    result = run_method(
        method, testbench, spec_name, cfg, initial_data=init, seed=seed,
        runtime=runtime,
    )
    result.method = method
    return result


def run_table(
    testbench: CircuitTestbench,
    cfg: ExperimentConfig,
    methods=METHOD_ORDER,
    specs: list[str] | None = None,
    keep_results: bool = False,
    verbose: bool = False,
    repeats: int = 1,
    n_jobs: int = 1,
    runtime: RuntimePolicy | None = None,
) -> TableResult:
    """Run ``methods`` × ``specs`` (× ``repeats``) and collect paper rows.

    With ``repeats == 1`` (default) every cell runs at ``cfg.seed``, exactly
    as before.  ``repeats > 1`` derives one independent seed stream per cell
    via :func:`repro.utils.rng.spawn` from ``cfg.seed`` — the streams depend
    only on cell order, so results are bit-identical for any ``n_jobs``.
    Cells are mutually independent; ``n_jobs > 1`` fans them out across a
    process pool.

    ``runtime`` threads a shared :class:`RuntimePolicy` through every cell.
    The policy pickles by value into worker tasks, so with ``n_jobs > 1``
    each worker gets a *copy* of the cache (hits within a cell still work,
    but cross-cell sharing needs ``n_jobs=1``).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    spec_names = specs if specs is not None else list(testbench.specs)
    table = TableResult(testbench_name=type(testbench).__name__)

    tasks = []
    labels: list[tuple[str, str, int]] = []
    cell_rng = np.random.default_rng(cfg.seed)
    for spec_name in spec_names:
        init = shared_initial_data(testbench, spec_name, cfg, runtime=runtime)
        for method in methods:
            if repeats == 1:
                seeds = [None]  # run_method falls back to cfg.seed
            else:
                seeds = spawn(cell_rng, repeats)
            for repeat, seed in enumerate(seeds):
                tasks.append(
                    (testbench, spec_name, method, cfg, init, seed, runtime)
                )
                labels.append((spec_name, method, repeat))

    results = parallel_map(_run_cell, tasks, n_jobs=n_jobs)

    for (spec_name, method, repeat), result in zip(labels, results):
        spec = testbench.specs[spec_name]
        summary = result.summarize(testbench.threshold(spec_name))
        summary.method = method
        row = TableRow(
            spec_name=spec_name,
            target=f"{spec.threshold:g}{spec.units}",
            method=method,
            sim_budget=_sim_budget_label(method, cfg, result.n_evaluations),
            worst_case=spec.format_value(result.best_y),
            first_failure=(
                str(summary.first_failure_index)
                if summary.detected
                else "-"
            ),
            runtime=format_duration(result.total_seconds),
            summary=summary,
            result=result if keep_results else None,
            repeat=repeat,
        )
        table.rows.append(row)
        if verbose:
            print(
                f"[{table.testbench_name}/{spec_name}] {method}: "
                f"worst={row.worst_case} first={row.first_failure} "
                f"({row.runtime})"
            )
    return table


def format_table(table: TableResult, title: str | None = None) -> str:
    """Render in the paper's Tables 1-2 layout."""
    headers = [
        "Spec",
        "Target",
        "Method",
        "# Sim",
        "Worst Case",
        "1st Failure Hit",
        "Runtime",
    ]
    rows = [
        [
            row.spec_name,
            row.target,
            row.method,
            row.sim_budget,
            row.worst_case,
            row.first_failure,
            row.runtime,
        ]
        for row in table.rows
    ]
    return render_table(headers, rows, title=title or table.testbench_name)
