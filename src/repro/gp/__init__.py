"""Gaussian-process surrogate modeling (paper Section 2.2.1, Eqs. 3-8)."""

from repro.gp.evaluator import MarginalLikelihoodEvaluator
from repro.gp.hyperopt import HyperoptResult, fit_hyperparameters
from repro.gp.mean import ConstantMean, MeanFunction, ZeroMean
from repro.gp.model import GaussianProcess, GPPrediction
from repro.gp.standardize import Standardizer

__all__ = [
    "GaussianProcess",
    "GPPrediction",
    "MarginalLikelihoodEvaluator",
    "fit_hyperparameters",
    "HyperoptResult",
    "MeanFunction",
    "ZeroMean",
    "ConstantMean",
    "Standardizer",
]
