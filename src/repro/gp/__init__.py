"""Gaussian-process surrogate modeling (paper Section 2.2.1, Eqs. 3-8)."""

from repro.gp.evaluator import MarginalLikelihoodEvaluator
from repro.gp.hyperopt import HyperoptResult, fit_hyperparameters
from repro.gp.mean import ConstantMean, MeanFunction, ZeroMean
from repro.gp.model import GaussianProcess, GPPrediction, symmetrize
from repro.gp.sparse import SparseGaussianProcess, select_inducing_points
from repro.gp.standardize import Standardizer
from repro.gp.surrogate import (
    SURROGATE_KINDS,
    SurrogateLike,
    SurrogateModel,
    SurrogateSpec,
    coerce_surrogate_spec,
    make_surrogate,
    surrogate_kind_of,
)

__all__ = [
    "GaussianProcess",
    "GPPrediction",
    "MarginalLikelihoodEvaluator",
    "SURROGATE_KINDS",
    "SparseGaussianProcess",
    "SurrogateLike",
    "SurrogateModel",
    "SurrogateSpec",
    "coerce_surrogate_spec",
    "fit_hyperparameters",
    "HyperoptResult",
    "make_surrogate",
    "MeanFunction",
    "ZeroMean",
    "ConstantMean",
    "select_inducing_points",
    "Standardizer",
    "surrogate_kind_of",
    "symmetrize",
]
