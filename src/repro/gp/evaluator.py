"""Side-effect-free marginal-likelihood evaluation for hyperparameter search.

``fit_hyperparameters`` evaluates the log marginal likelihood and its
gradient at hundreds of candidate hyperparameter vectors.  Doing that
through the ``GaussianProcess.theta`` setter refits the *model* on every
trial point (and historically could leave it inconsistent when a trial
Cholesky failed mid-refit).  :class:`MarginalLikelihoodEvaluator` instead
works on a cloned kernel plus a private :class:`KernelWorkspace`, so each
evaluation costs one Gram rescale, one Cholesky, and one ``K⁻¹`` — and the
GP itself is only touched once, when the winning theta is committed.

The linear algebra goes straight to the LAPACK primitives (``dpotrf`` /
``dpotrs`` / ``dpotri``) with a persistent ``alpha alpha^T - K^{-1}``
buffer, skipping the scipy wrapper overhead and the per-evaluation (n, n)
allocations that would otherwise dominate at moderate n.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve

from repro.backends import compiled_ops
from repro.gp.model import (
    GaussianProcess,
    _potrf,
    _potri,
    _potrs,
    chol_with_jitter,
    inv_from_cholesky,
)
from repro.telemetry.profile import profiled
from repro.utils.contracts import shape_contract

_LOG_2PI = np.log(2.0 * np.pi)


class MarginalLikelihoodEvaluator:
    """Evaluates ``(lml, grad)`` at arbitrary theta without mutating the GP.

    The evaluator snapshots the training inputs (into a reusable kernel
    workspace) and the mean-adjusted labels at construction time; the source
    GP must not gain data while the evaluator is in use.
    """

    def __init__(self, gp: GaussianProcess) -> None:
        if not gp.is_fitted:
            raise RuntimeError("fit the GP on data before evaluating theta")
        self.kernel = gp.kernel.clone()
        self.train_noise = gp.train_noise
        self.noise_variance = gp.noise_variance
        self.residual = gp.y_train - gp.mean(gp.X_train)
        self.ws = self.kernel.make_workspace(gp.X_train)
        self._residual_col = np.asfortranarray(self.residual[:, None], dtype=float)
        self._inner: np.ndarray | None = None

    @profiled("gp.evaluator.lml")
    @shape_contract("theta: a(p,) -> (), (p,)")
    def evaluate(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """Fused Eq. 8 value and gradient at ``theta``.

        Shares one Cholesky and one ``K⁻¹`` between the value and every
        gradient component; raises ``LinAlgError`` when the Gram matrix is
        not positive definite even with jitter (callers treat that as a
        penalty point).
        """
        theta = np.asarray(theta, dtype=float)
        kernel = self.kernel
        n_kernel = kernel.n_params
        kernel.theta = theta[:n_kernel]
        noise = (
            float(np.exp(theta[-1])) if self.train_noise else self.noise_variance
        )
        corr_state = getattr(kernel, "corr_state", None)
        if corr_state is not None:
            # prime g and dg together so the kernel computes them fused
            # (one sqrt/exp sweep) instead of in two passes
            corr_state(self.ws, need_dg=True)
        K = kernel.gram(self.ws)
        diag = np.einsum("ii->i", K)
        diag += noise
        if _potrf is not None:
            chol, info = _potrf(K, lower=1, clean=1)
            if info != 0:  # singular without jitter: climb the ladder
                chol = chol_with_jitter(K)
            alpha = _potrs(chol, self._residual_col, lower=1)[0].ravel()
        else:  # pragma: no cover - scipy always ships lapack
            chol = chol_with_jitter(K)
            alpha = cho_solve((chol, True), self.residual, check_finite=False)
        n = self.residual.shape[0]
        log_det = 2.0 * np.sum(np.log(np.einsum("ii->i", chol)))
        lml = float(
            -0.5 * self.residual @ alpha - 0.5 * log_det - 0.5 * n * _LOG_2PI
        )
        inner = self._inner
        if inner is None or inner.shape[0] != n:
            inner = self._inner = np.empty((n, n))
        if _potri is not None:
            # dpotri fills only the lower triangle of K^{-1} (the strict
            # upper stays zero from the factor), so subtract it plus its
            # transpose and repair the doubly-subtracted diagonal; the
            # factor is dead at this point, so invert it in place
            inv, info = _potri(chol, lower=1, overwrite_c=1)
            if info != 0:  # pragma: no cover - factor is already validated
                raise np.linalg.LinAlgError(f"dpotri failed with info={info}")
            ops = compiled_ops()
            if ops is not None:
                # compiled backend: the outer product, the triangular
                # mirror and the subtraction fuse into one parallel pass
                ops.assemble_inner(alpha, inv, inner)
            else:
                np.multiply(alpha[:, None], alpha[None, :], out=inner)
                inner -= inv
                inner -= inv.T
                np.einsum("ii->i", inner)[...] += np.einsum("ii->i", inv)
        else:  # pragma: no cover - scipy always ships lapack
            np.multiply(alpha[:, None], alpha[None, :], out=inner)
            inner -= inv_from_cholesky(chol)
        grads = kernel.gradient_inner_products(self.ws, inner)
        if self.train_noise:
            trace = float(np.einsum("ii->", inner))
            grads = np.concatenate([grads, [0.5 * noise * trace]])
        return lml, np.asarray(grads, dtype=float)
