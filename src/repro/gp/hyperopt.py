"""GP hyperparameter fitting by maximizing the log marginal likelihood.

Multi-start L-BFGS-B over the log-hyperparameter vector, using the analytic
gradient of Eq. 8.  Restart count is deliberately small — the paper notes GP
hyperparameter tuning is itself a cost center (Section 3), so the default
mirrors a practical BO inner loop rather than an exhaustive fit.

The search accepts any :class:`~repro.gp.surrogate.SurrogateModel`.  An
exact :class:`~repro.gp.model.GaussianProcess` is scored through a
:class:`~repro.gp.evaluator.MarginalLikelihoodEvaluator`, which fuses the
likelihood value and gradient into one evaluation over a cached kernel
workspace and never mutates the GP mid-search; other surrogates that expose
a side-effect-free ``evaluate_theta`` (the sparse GP's variational bound)
are scored through that, and the legacy path that refits the model per
evaluation is kept behind ``fused=False`` as a reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.optimize import minimize

from repro.gp.evaluator import MarginalLikelihoodEvaluator
from repro.gp.model import GaussianProcess
from repro.gp.surrogate import SurrogateModel
from repro.telemetry.profile import profiled
from repro.utils.rng import SeedLike, as_generator


@dataclass
class HyperoptResult:
    """Outcome of one marginal-likelihood maximization."""

    theta: np.ndarray
    log_marginal_likelihood: float
    n_restarts: int
    n_evaluations: int


@profiled("gp.hyperopt.fit")
def fit_hyperparameters(
    gp: SurrogateModel,
    n_restarts: int = 3,
    seed: SeedLike = None,
    max_iter: int = 100,
    fused: bool = True,
) -> HyperoptResult:
    """Fit ``gp``'s hyperparameters in place and return the best result.

    The first start is the current hyperparameter vector; the remaining
    starts are drawn uniformly inside the log-space bounds.  The model is
    left conditioned at the best hyperparameters found.

    With ``fused=True`` (default) trial points are scored without mutating
    the model: an exact :class:`GaussianProcess` goes through a
    :class:`MarginalLikelihoodEvaluator` (one Cholesky and one ``K⁻¹`` per
    evaluation over a cached workspace), and any other surrogate exposing
    ``evaluate_theta(theta) -> (lml, grad)`` is scored through that hook.
    ``fused=False`` uses the original refit-per-evaluation path (kept as a
    numerical reference).
    """
    if not gp.is_fitted:
        raise RuntimeError("fit the GP on data before tuning hyperparameters")
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    rng = as_generator(seed)
    bounds = gp.theta_bounds()
    lower, upper = bounds[:, 0], bounds[:, 1]
    evaluations = 0
    evaluate: Callable[[np.ndarray], tuple[float, np.ndarray]] | None = None
    if fused:
        if isinstance(gp, GaussianProcess):
            evaluate = MarginalLikelihoodEvaluator(gp).evaluate
        else:
            hook = getattr(gp, "evaluate_theta", None)
            if callable(hook):
                evaluate = hook

    def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
        nonlocal evaluations
        evaluations += 1
        if evaluate is not None:
            try:
                lml, grad = evaluate(theta)
            except np.linalg.LinAlgError:
                return 1e25, np.zeros_like(theta)
            if not np.isfinite(lml):
                return 1e25, np.zeros_like(theta)
            return -lml, -grad
        previous = gp.theta.copy()
        try:
            gp.theta = theta
            lml = gp.log_marginal_likelihood()
            grad = gp.log_marginal_likelihood_gradient()
        except np.linalg.LinAlgError:
            # the setter may have mutated the kernel before the refit
            # failed; restore the last consistent state before penalizing
            gp.theta = previous
            return 1e25, np.zeros_like(theta)
        if not np.isfinite(lml):
            return 1e25, np.zeros_like(theta)
        return -lml, -grad

    starts = [gp.theta.copy()]
    for _ in range(n_restarts - 1):
        starts.append(rng.uniform(lower, upper))

    best_theta = gp.theta.copy()
    best_lml = -np.inf
    for start in starts:
        start = np.clip(start, lower, upper)
        result = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            bounds=list(zip(lower, upper)),
            options={"maxiter": max_iter},
        )
        if np.isfinite(result.fun) and -result.fun > best_lml:
            best_lml = -result.fun
            best_theta = result.x.copy()

    gp.theta = best_theta
    return HyperoptResult(
        theta=best_theta,
        log_marginal_likelihood=best_lml,
        n_restarts=n_restarts,
        n_evaluations=evaluations,
    )
