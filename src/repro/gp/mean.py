"""Prior mean functions for the GP surrogate.

The paper sets ``m(x) = 0`` (Section 2.2.1); the constant mean is provided
for users who standardize less aggressively.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.contracts import shape_contract
from repro.utils.validation import as_matrix


class MeanFunction(abc.ABC):
    """Prior mean ``m(x)`` of the GP."""

    @abc.abstractmethod
    def __call__(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the mean at each row of ``X``; returns shape ``(n,)``."""


class ZeroMean(MeanFunction):
    """The paper's default prior mean ``m(x) = 0``."""

    @shape_contract("X: a(n, d) | a(d,) -> (n,)")
    def __call__(self, X: np.ndarray) -> np.ndarray:
        return np.zeros(as_matrix(X).shape[0])


class ConstantMean(MeanFunction):
    """Constant prior mean ``m(x) = c``."""

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    @shape_contract("X: a(n, d) | a(d,) -> (n,)")
    def __call__(self, X: np.ndarray) -> np.ndarray:
        return np.full(as_matrix(X).shape[0], self.value)
