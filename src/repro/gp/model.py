"""Exact Gaussian-process regression (paper Eqs. 3-8).

The model implements the standard conjugate GP machinery on top of a
Cholesky factorization of ``K + sigma0^2 I``:

* posterior mean and variance at test points (Eqs. 5-7),
* the log marginal likelihood and its analytic gradient with respect to the
  kernel hyperparameters and the log noise variance (Eq. 8),
* leave-one-out cross-validation residuals (used by the embedding-dimension
  selector as a less optimistic alternative to training MSE).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

from repro._typing import ArrayLike, FloatArray
from repro.gp.mean import MeanFunction, ZeroMean
from repro.kernels.base import Kernel, KernelWorkspace
from repro.telemetry.profile import profiled
from repro.utils.contracts import shape_contract
from repro.utils.validation import as_matrix, as_vector

#: Diagonal jitter ladder tried when the Gram matrix is numerically singular.
_JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4)

try:  # resolve the LAPACK factorization/inverse routines once, not per call
    from scipy.linalg.lapack import get_lapack_funcs as _get_lapack_funcs

    _potrf, _potrs, _potri = _get_lapack_funcs(
        ("potrf", "potrs", "potri"), (np.empty((1, 1)),)
    )
except ImportError:  # pragma: no cover - scipy always ships lapack
    _potrf = _potrs = _potri = None


@shape_contract("A: (n, n) -> (n, n)")
def chol_with_jitter(A: np.ndarray) -> np.ndarray:
    """Lower Cholesky of ``A``, climbing the jitter ladder in place.

    ``A`` must already include the noise term on its diagonal and is mutated
    (jitter is accumulated onto the diagonal between attempts) — callers pass
    a freshly built matrix.  Raises ``LinAlgError`` if even the largest
    jitter fails.
    """
    diag = np.einsum("ii->i", A)
    added = 0.0
    last_error: Exception | None = None
    for jitter in _JITTERS:
        if jitter != added:
            diag += jitter - added
            added = jitter
        try:
            # The jittered entry point itself.
            return cholesky(A, lower=True, check_finite=False)  # numlint: disable=NL103
        except np.linalg.LinAlgError as exc:  # pragma: no cover - rare
            last_error = exc
    raise np.linalg.LinAlgError(
        "Gram matrix is not positive definite even with jitter"
    ) from last_error


@shape_contract("cov: (n, n) -> (n, n)")
def symmetrize(cov: FloatArray, jitter: float = 0.0) -> FloatArray:
    """Return ``½(C + Cᵀ)`` plus optional diagonal jitter.

    Posterior covariances assembled as ``K** − vᵀv`` (exact) or
    ``K** − vᵀv + wᵀw`` (sparse) are symmetric only up to floating-point
    round-off, and ``rng.multivariate_normal(..., method="cholesky")`` is
    exactly the kind of consumer that trips on the asymmetric low-order
    bits.  Every covariance-returning path shares this one helper so the
    PSD hygiene cannot drift between implementations.
    """
    out = 0.5 * (cov + cov.T)
    if jitter:
        diag = np.einsum("ii->i", out)
        diag += jitter
    return out


@shape_contract("chol: (n, n) -> (n, n)")
def inv_from_cholesky(chol: np.ndarray) -> np.ndarray:
    """Full inverse ``A^{-1}`` from the lower Cholesky factor of ``A``.

    Uses LAPACK ``dpotri`` (n^3/3 flops) instead of ``cho_solve`` against an
    identity matrix (n^3 flops); falls back to the latter if the LAPACK
    routine is unavailable.  ``chol`` must have an explicitly zeroed strict
    upper triangle (as every factor produced in this module does), which
    makes the symmetrization a plain transpose-add instead of a masked copy.
    """
    if _potri is None:  # pragma: no cover - scipy always ships lapack
        return cho_solve((chol, True), np.eye(chol.shape[0]))
    inv, info = _potri(chol, lower=True)
    if info != 0:  # pragma: no cover - factor is already validated
        raise np.linalg.LinAlgError(f"dpotri failed with info={info}")
    # dpotri fills only the lower triangle; the upper stays zero from chol
    out = inv + inv.T
    np.einsum("ii->i", out)[:] = np.einsum("ii->i", inv)
    return out


@dataclass
class GPPrediction:
    """Posterior prediction at a batch of test points."""

    mean: FloatArray
    variance: FloatArray

    @property
    def std(self) -> FloatArray:
        return np.sqrt(np.maximum(self.variance, 0.0))


class GaussianProcess:
    """Exact GP regression with explicit Gaussian observation noise.

    Parameters
    ----------
    kernel:
        Prior covariance function.
    noise_variance:
        The intrinsic noise ``sigma_0^2`` of Eq. 4.
    mean:
        Prior mean function; defaults to zero as in the paper.
    train_noise:
        When True, the log noise variance is appended to the hyperparameter
        vector exposed through :attr:`theta` and fitted jointly with the
        kernel parameters.
    """

    def __init__(
        self,
        kernel: Kernel,
        noise_variance: float = 1e-6,
        mean: MeanFunction | None = None,
        train_noise: bool = True,
    ) -> None:
        if noise_variance <= 0:
            raise ValueError(
                f"noise_variance must be positive, got {noise_variance}"
            )
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.mean = mean if mean is not None else ZeroMean()
        self.train_noise = bool(train_noise)
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._ws: KernelWorkspace | None = None
        self._K_inv: np.ndarray | None = None
        self._theta_fitted: np.ndarray | None = None

    def __getstate__(self) -> dict[str, Any]:
        # the workspace caches O(n^2 dim) tensors rebuilt lazily on demand;
        # dropping them keeps pickles (process-pool payloads) small
        state = self.__dict__.copy()
        state["_ws"] = None
        state["_K_inv"] = None
        return state

    @property
    def _workspace(self) -> KernelWorkspace:
        if self._ws is None:
            assert self._X is not None, "GP has not been fitted"
            self._ws = self.kernel.make_workspace(self._X)
        return self._ws

    # -- hyperparameter vector ----------------------------------------------

    @property
    def theta(self) -> np.ndarray:
        """Kernel log-hyperparameters, plus log noise when ``train_noise``."""
        theta = self.kernel.theta
        if self.train_noise:
            theta = np.concatenate([theta, [np.log(self.noise_variance)]])
        return theta

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        n_kernel = self.kernel.n_params
        expected = n_kernel + (1 if self.train_noise else 0)
        if value.shape != (expected,):
            raise ValueError(
                f"theta must have shape ({expected},), got {value.shape}"
            )
        self.kernel.theta = value[:n_kernel]
        if self.train_noise:
            self.noise_variance = float(np.exp(value[-1]))
        if self._X is not None:
            self._refit()

    def theta_bounds(self) -> np.ndarray:
        bounds = self.kernel.theta_bounds()
        if self.train_noise:
            noise_bounds = np.array([[np.log(1e-10), np.log(1e2)]], dtype=float)
            bounds = np.vstack([bounds, noise_bounds])
        return bounds

    # -- fitting --------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._chol is not None

    @property
    def n_train(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    @property
    def X_train(self) -> FloatArray:
        if self._X is None:
            raise RuntimeError("GP has not been fitted")
        return self._X

    @property
    def y_train(self) -> FloatArray:
        if self._y is None:
            raise RuntimeError("GP has not been fitted")
        return self._y

    def fit(self, X: ArrayLike, y: ArrayLike) -> "GaussianProcess":
        """Condition the GP on training data ``(X, y)``."""
        X_arr = as_matrix(X)
        self._X = X_arr
        self._y = as_vector(y, X_arr.shape[0])
        self._ws = None
        self._refit()
        return self

    def add_data(self, X: ArrayLike, y: ArrayLike) -> "GaussianProcess":
        """Append observations and re-condition (sequential BO update).

        When the hyperparameters are unchanged since the last factorization,
        the Cholesky factor is extended by a rank-``k`` block update in
        O(n^2 k) instead of refactorizing from scratch in O(n^3); an exact
        full refit is the fallback whenever the update is numerically
        infeasible or the hyperparameters moved.
        """
        X_arr = as_matrix(X)
        y_arr = as_vector(y, X_arr.shape[0])
        if self._X is None:
            return self.fit(X_arr, y_arr)
        if X_arr.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"new points have dim {X_arr.shape[1]}, "
                f"model has {self._X.shape[1]}"
            )
        assert self._y is not None
        y_all = np.concatenate([self._y, y_arr])
        if self._try_append_points(X_arr):
            self._y = y_all
            self._refresh_alpha()
            return self
        self._X = np.vstack([self._X, X_arr])
        self._y = y_all
        self._ws = None
        self._refit()
        return self

    def set_labels(self, y: ArrayLike) -> "GaussianProcess":
        """Replace the training labels, keeping inputs and factorization.

        Only the residual solve is redone (O(n^2)); used when labels are
        re-standardized after a batch of new observations.
        """
        if self._X is None:
            raise RuntimeError("GP has not been fitted")
        self._y = as_vector(y, self._X.shape[0])
        self._refresh_alpha()
        return self

    def _try_append_points(self, X_new: np.ndarray) -> bool:
        """Extend ``_chol`` by a rank-k block update; False means refit."""
        if self._chol is None or self._theta_fitted is None:
            return False
        if not np.array_equal(self.theta, self._theta_fitted):
            return False
        ws = self._workspace
        n, k = ws.n, X_new.shape[0]
        B = self.kernel.cross(ws, X_new)  # (n, k)
        C = self.kernel(X_new)
        C_diag = np.einsum("ii->i", C)
        C_diag += self.noise_variance
        L21T = solve_triangular(self._chol, B, lower=True, check_finite=False)  # (n, k)
        S = C - L21T.T @ L21T
        try:
            # Fail fast: a jittered retry would mask an ill-conditioned
            # Schur complement that the exact-refit fallback handles better.
            L22 = cholesky(S, lower=True, check_finite=False)  # numlint: disable=NL103
        except np.linalg.LinAlgError:
            return False
        L = np.zeros((n + k, n + k))
        L[:n, :n] = self._chol
        L[n:, :n] = L21T.T
        L[n:, n:] = L22
        self._chol = L
        self._ws = self.kernel.extend_workspace(ws, X_new)
        self._X = self._ws.X
        return True

    def _refresh_alpha(self) -> None:
        assert self._X is not None and self._y is not None
        residual = self._y - self.mean(self._X)
        self._alpha = cho_solve((self._chol, True), residual, check_finite=False)
        self._K_inv = None

    def _refit(self) -> None:
        K = self.kernel.gram(self._workspace)
        # gram() returns a fresh matrix: add noise (and any jitter) in place
        # on its diagonal instead of allocating identity matrices per attempt
        diag = np.einsum("ii->i", K)
        diag += self.noise_variance
        self._chol = chol_with_jitter(K)
        self._theta_fitted = self.theta.copy()
        self._refresh_alpha()

    # -- prediction -------------------------------------------------------------

    @profiled("gp.model.predict")
    def predict(self, X: ArrayLike) -> GPPrediction:
        """Posterior mean and variance at test points (Eqs. 5-7)."""
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        assert self._X is not None
        X_arr = as_matrix(X, self._X.shape[1])
        k_star = self.kernel.cross(self._workspace, X_arr)  # (n_train, n_test)
        mean = self.mean(X_arr) + k_star.T @ self._alpha
        v = solve_triangular(self._chol, k_star, lower=True, check_finite=False)
        variance = self.kernel.diag(X_arr) - np.sum(v**2, axis=0)
        return GPPrediction(mean=mean, variance=np.maximum(variance, 0.0))

    def predict_cov(self, X: ArrayLike) -> tuple[FloatArray, FloatArray]:
        """Posterior mean and full covariance matrix at test points."""
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        assert self._X is not None
        X_arr = as_matrix(X, self._X.shape[1])
        k_star = self.kernel.cross(self._workspace, X_arr)
        mean = self.mean(X_arr) + k_star.T @ self._alpha
        v = solve_triangular(self._chol, k_star, lower=True, check_finite=False)
        cov = self.kernel(X_arr) - v.T @ v
        return mean, symmetrize(cov)

    def sample_posterior(
        self, X: ArrayLike, n_samples: int, rng: np.random.Generator
    ) -> FloatArray:
        """Draw joint posterior samples; returns shape ``(n_samples, n_test)``."""
        mean, cov = self.predict_cov(X)
        cov = symmetrize(cov, jitter=1e-10)
        return rng.multivariate_normal(mean, cov, size=n_samples, method="cholesky")

    # -- evidence ----------------------------------------------------------------

    def log_marginal_likelihood(self) -> float:
        """Eq. 8 evaluated at the current hyperparameters."""
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        assert self._X is not None and self._y is not None
        residual = self._y - self.mean(self._X)
        n = residual.shape[0]
        log_det = 2.0 * np.sum(np.log(np.diag(self._chol)))
        return float(
            -0.5 * residual @ self._alpha
            - 0.5 * log_det
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def log_marginal_likelihood_gradient(self) -> FloatArray:
        """Analytic gradient of Eq. 8 with respect to :attr:`theta`.

        Uses the standard identity
        ``dL/dθ_j = ½ tr((α αᵀ − K⁻¹) ∂K/∂θ_j)`` with ``α = K⁻¹ (y − m)``.

        This is the reference two-pass path; hyperparameter fitting uses the
        fused :meth:`log_marginal_likelihood_value_and_gradient` instead.
        """
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        assert self._X is not None
        n = self._X.shape[0]
        K_inv = cho_solve((self._chol, True), np.eye(n))
        outer = np.outer(self._alpha, self._alpha)
        inner = outer - K_inv
        grads = []
        for dK in self.kernel.gradients(self._X):
            grads.append(0.5 * np.sum(inner * dK))
        if self.train_noise:
            # d(K + σ² I)/d(log σ²) = σ² I
            grads.append(0.5 * self.noise_variance * np.trace(inner))
        return np.asarray(grads, dtype=float)

    def _posterior_precision(self) -> FloatArray:
        """``(K + σ² I)^{-1}``, cached until the factorization changes."""
        if self._K_inv is None:
            assert self._chol is not None, "GP has not been fitted"
            self._K_inv = inv_from_cholesky(self._chol)
        return self._K_inv

    def log_marginal_likelihood_value_and_gradient(
        self,
    ) -> tuple[float, FloatArray]:
        """Eq. 8 and its θ-gradient sharing one Cholesky and one ``K⁻¹``.

        The gradient contraction is delegated to
        :meth:`Kernel.gradient_inner_products`, which for stationary kernels
        collapses all per-lengthscale traces into a handful of BLAS calls on
        workspace-cached tensors instead of materializing each ``∂K/∂θ_j``.
        """
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        value = self.log_marginal_likelihood()
        K_inv = self._posterior_precision()
        inner = np.outer(self._alpha, self._alpha)
        inner -= K_inv
        grads = self.kernel.gradient_inner_products(self._workspace, inner)
        if self.train_noise:
            noise_grad = 0.5 * self.noise_variance * np.trace(inner)
            grads = np.concatenate([grads, [noise_grad]])
        return value, np.asarray(grads, dtype=float)

    # -- diagnostics -----------------------------------------------------------

    def training_mse(self) -> float:
        """Mean squared error of the posterior mean at the training inputs.

        This is the quantity averaged in the paper's Algorithm 2 (line 6):
        with observation noise the GP does not interpolate, so the training
        MSE measures how much signal survives a given embedding.
        """
        assert self._X is not None and self._y is not None
        pred = self.predict(self._X)
        return float(np.mean((pred.mean - self._y) ** 2))

    def loo_residuals(self) -> FloatArray:
        """Leave-one-out residuals via the Sundararajan-Keerthi identity.

        ``r_i = α_i / (K⁻¹)_{ii}`` gives the LOO prediction error without
        refitting n models.
        """
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        assert self._alpha is not None
        diag = np.diag(self._posterior_precision())
        return self._alpha / np.maximum(diag, 1e-300)

    def loo_mse(self) -> float:
        """Leave-one-out cross-validation mean squared error."""
        return float(np.mean(self.loo_residuals() ** 2))
