"""Exact Gaussian-process regression (paper Eqs. 3-8).

The model implements the standard conjugate GP machinery on top of a
Cholesky factorization of ``K + sigma0^2 I``:

* posterior mean and variance at test points (Eqs. 5-7),
* the log marginal likelihood and its analytic gradient with respect to the
  kernel hyperparameters and the log noise variance (Eq. 8),
* leave-one-out cross-validation residuals (used by the embedding-dimension
  selector as a less optimistic alternative to training MSE).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import cho_factor, cho_solve, cholesky, solve_triangular

from repro.gp.mean import MeanFunction, ZeroMean
from repro.kernels.base import Kernel
from repro.utils.validation import as_matrix, as_vector

#: Diagonal jitter ladder tried when the Gram matrix is numerically singular.
_JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4)


@dataclass
class GPPrediction:
    """Posterior prediction at a batch of test points."""

    mean: np.ndarray
    variance: np.ndarray

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.variance, 0.0))


class GaussianProcess:
    """Exact GP regression with explicit Gaussian observation noise.

    Parameters
    ----------
    kernel:
        Prior covariance function.
    noise_variance:
        The intrinsic noise ``sigma_0^2`` of Eq. 4.
    mean:
        Prior mean function; defaults to zero as in the paper.
    train_noise:
        When True, the log noise variance is appended to the hyperparameter
        vector exposed through :attr:`theta` and fitted jointly with the
        kernel parameters.
    """

    def __init__(
        self,
        kernel: Kernel,
        noise_variance: float = 1e-6,
        mean: MeanFunction | None = None,
        train_noise: bool = True,
    ) -> None:
        if noise_variance <= 0:
            raise ValueError(
                f"noise_variance must be positive, got {noise_variance}"
            )
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.mean = mean if mean is not None else ZeroMean()
        self.train_noise = bool(train_noise)
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None

    # -- hyperparameter vector ----------------------------------------------

    @property
    def theta(self) -> np.ndarray:
        """Kernel log-hyperparameters, plus log noise when ``train_noise``."""
        theta = self.kernel.theta
        if self.train_noise:
            theta = np.concatenate([theta, [np.log(self.noise_variance)]])
        return theta

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        n_kernel = self.kernel.n_params
        expected = n_kernel + (1 if self.train_noise else 0)
        if value.shape != (expected,):
            raise ValueError(
                f"theta must have shape ({expected},), got {value.shape}"
            )
        self.kernel.theta = value[:n_kernel]
        if self.train_noise:
            self.noise_variance = float(np.exp(value[-1]))
        if self._X is not None:
            self._refit()

    def theta_bounds(self) -> np.ndarray:
        bounds = self.kernel.theta_bounds()
        if self.train_noise:
            noise_bounds = np.array([[np.log(1e-10), np.log(1e2)]])
            bounds = np.vstack([bounds, noise_bounds])
        return bounds

    # -- fitting --------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._chol is not None

    @property
    def n_train(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    @property
    def X_train(self) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("GP has not been fitted")
        return self._X

    @property
    def y_train(self) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("GP has not been fitted")
        return self._y

    def fit(self, X, y) -> "GaussianProcess":
        """Condition the GP on training data ``(X, y)``."""
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        self._X = X
        self._y = y
        self._refit()
        return self

    def add_data(self, X, y) -> "GaussianProcess":
        """Append observations and re-condition (sequential BO update)."""
        X = as_matrix(X)
        y = as_vector(y, X.shape[0])
        if self._X is None:
            return self.fit(X, y)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"new points have dim {X.shape[1]}, model has {self._X.shape[1]}"
            )
        self._X = np.vstack([self._X, X])
        self._y = np.concatenate([self._y, y])
        self._refit()
        return self

    def _refit(self) -> None:
        K = self.kernel(self._X)
        n = K.shape[0]
        base = K + self.noise_variance * np.eye(n)
        last_error: Exception | None = None
        for jitter in _JITTERS:
            try:
                self._chol = cholesky(base + jitter * np.eye(n), lower=True)
                break
            except np.linalg.LinAlgError as exc:  # pragma: no cover - rare
                last_error = exc
        else:  # pragma: no cover - pathological kernels only
            raise np.linalg.LinAlgError(
                "Gram matrix is not positive definite even with jitter"
            ) from last_error
        residual = self._y - self.mean(self._X)
        self._alpha = cho_solve((self._chol, True), residual)

    # -- prediction -------------------------------------------------------------

    def predict(self, X) -> GPPrediction:
        """Posterior mean and variance at test points (Eqs. 5-7)."""
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        X = as_matrix(X, self._X.shape[1])
        k_star = self.kernel(self._X, X)  # (n_train, n_test)
        mean = self.mean(X) + k_star.T @ self._alpha
        v = solve_triangular(self._chol, k_star, lower=True)
        variance = self.kernel.diag(X) - np.sum(v**2, axis=0)
        return GPPrediction(mean=mean, variance=np.maximum(variance, 0.0))

    def predict_cov(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and full covariance matrix at test points."""
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        X = as_matrix(X, self._X.shape[1])
        k_star = self.kernel(self._X, X)
        mean = self.mean(X) + k_star.T @ self._alpha
        v = solve_triangular(self._chol, k_star, lower=True)
        cov = self.kernel(X) - v.T @ v
        return mean, cov

    def sample_posterior(self, X, n_samples: int, rng) -> np.ndarray:
        """Draw joint posterior samples; returns shape ``(n_samples, n_test)``."""
        mean, cov = self.predict_cov(X)
        cov = cov + 1e-10 * np.eye(cov.shape[0])
        return rng.multivariate_normal(mean, cov, size=n_samples, method="cholesky")

    # -- evidence ----------------------------------------------------------------

    def log_marginal_likelihood(self) -> float:
        """Eq. 8 evaluated at the current hyperparameters."""
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        residual = self._y - self.mean(self._X)
        n = residual.shape[0]
        log_det = 2.0 * np.sum(np.log(np.diag(self._chol)))
        return float(
            -0.5 * residual @ self._alpha
            - 0.5 * log_det
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def log_marginal_likelihood_gradient(self) -> np.ndarray:
        """Analytic gradient of Eq. 8 with respect to :attr:`theta`.

        Uses the standard identity
        ``dL/dθ_j = ½ tr((α αᵀ − K⁻¹) ∂K/∂θ_j)`` with ``α = K⁻¹ (y − m)``.
        """
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        n = self._X.shape[0]
        K_inv = cho_solve((self._chol, True), np.eye(n))
        outer = np.outer(self._alpha, self._alpha)
        inner = outer - K_inv
        grads = []
        for dK in self.kernel.gradients(self._X):
            grads.append(0.5 * np.sum(inner * dK))
        if self.train_noise:
            # d(K + σ² I)/d(log σ²) = σ² I
            grads.append(0.5 * self.noise_variance * np.trace(inner))
        return np.asarray(grads)

    # -- diagnostics -----------------------------------------------------------

    def training_mse(self) -> float:
        """Mean squared error of the posterior mean at the training inputs.

        This is the quantity averaged in the paper's Algorithm 2 (line 6):
        with observation noise the GP does not interpolate, so the training
        MSE measures how much signal survives a given embedding.
        """
        pred = self.predict(self._X)
        return float(np.mean((pred.mean - self._y) ** 2))

    def loo_residuals(self) -> np.ndarray:
        """Leave-one-out residuals via the Sundararajan-Keerthi identity.

        ``r_i = α_i / (K⁻¹)_{ii}`` gives the LOO prediction error without
        refitting n models.
        """
        if not self.is_fitted:
            raise RuntimeError("GP has not been fitted")
        n = self._X.shape[0]
        K_inv = cho_solve((self._chol, True), np.eye(n))
        diag = np.diag(K_inv)
        return self._alpha / np.maximum(diag, 1e-300)

    def loo_mse(self) -> float:
        """Leave-one-out cross-validation mean squared error."""
        return float(np.mean(self.loo_residuals() ** 2))
