"""Sparse inducing-point GP regression (DTC predictions, VFE evidence).

The exact GP's O(n³) refit and O(n²) memory cap campaign length; this model
replaces the full Gram factorization with an ``m``-point inducing
approximation (Quiñonero-Candela & Rasmussen 2005; Titsias 2009):

* **fit** is O(n m²): one Cholesky of ``K_uu`` (m×m), one triangular solve
  against the m×n cross-covariance, and one m×m information-matrix
  Cholesky,
* **predict** is O(m²) per test point and never touches an n×n matrix,
* **evidence** is the variational (Titsias) lower bound
  ``log N(y | m(X), Q_ff + σ²I) − σ⁻²/2 · tr(K_ff − Q_ff)`` where
  ``Q_ff = K_fu K_uu⁻¹ K_uf``, evaluated in O(n m²) via Woodbury.

With ``m >= n`` the inducing set *is* the training set, ``Q_ff = K_ff``,
the trace term vanishes, and every quantity — posterior mean, variance,
full covariance, and the evidence — reduces algebraically to the exact GP.
That identity is what the 1e-8 equivalence harness in
``tests/test_gp_sparse.py`` pins, so the sparse path is a checkable
superset of the exact one rather than a silently different model.

Inducing points are initialized from per-dimension data quantiles and
refined by a few deterministic Lloyd (k-means) iterations — no RNG, so
ledger replay and campaign resume stay bitwise.  Incremental
:meth:`SparseGaussianProcess.add_data` extends the cached factors in
O(k m² + m³) and re-selects the inducing set only when coverage degrades:
a new point whose best normalized kernel correlation to the inducing set
falls below ``reselect_coverage`` counts as uncovered, and once the
uncovered fraction of the dataset exceeds ``reselect_fraction`` the
inducing set is rebuilt from the full data.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.linalg import solve_triangular

from repro._typing import ArrayLike, FloatArray
from repro.gp.mean import MeanFunction, ZeroMean
from repro.gp.model import GPPrediction, chol_with_jitter, symmetrize
from repro.kernels.base import Kernel
from repro.telemetry.profile import profiled
from repro.utils.contracts import shape_contract
from repro.utils.validation import as_matrix, as_vector

#: Central-difference step for the finite-difference evidence gradient.
#: Hyperparameters live in log space, so an absolute step is well-scaled.
_FD_STEP = 1e-4


@shape_contract("X: (n, d), m: k -> (k, d)")
def select_inducing_points(
    X: ArrayLike, m: int, n_iters: int = 10
) -> FloatArray:
    """Pick ``m`` inducing points via data quantiles + k-means refinement.

    Initialization places point ``i`` at the per-dimension
    ``(i + 0.5) / m`` quantile of the data (a monotone space-filling curve
    through the empirical marginals), then runs up to ``n_iters``
    deterministic Lloyd iterations so the points spread over the actual
    data clusters instead of the quantile diagonal.  Centers that lose all
    members keep their previous position.  No RNG anywhere — the same data
    always yields the same inducing set, which keeps ledger replay and
    campaign resume bitwise.  Requires ``m <= n``.
    """
    X_arr = as_matrix(X)
    n = X_arr.shape[0]
    if not 1 <= m <= n:
        raise ValueError(f"m must lie in [1, {n}], got {m}")
    if n_iters < 0:
        raise ValueError(f"n_iters must be >= 0, got {n_iters}")
    if m == n:
        return X_arr.copy()
    levels = (np.arange(m, dtype=float) + 0.5) / m
    Z = np.quantile(X_arr, levels, axis=0)
    x_sq = np.einsum("ij,ij->i", X_arr, X_arr)
    for _ in range(n_iters):
        # assignment step on plain squared Euclidean distance
        d2 = x_sq[:, None] - 2.0 * (X_arr @ Z.T)
        d2 += np.einsum("ij,ij->i", Z, Z)[None, :]
        assign = np.argmin(d2, axis=1)
        Z_next = Z.copy()
        for j in np.unique(assign):
            Z_next[j] = X_arr[assign == j].mean(axis=0)
        if np.allclose(Z_next, Z, rtol=0.0, atol=1e-12):
            break
        Z = Z_next
    return Z


class SparseGaussianProcess:
    """Inducing-point GP with the same engine-facing surface as the exact GP.

    Implements :class:`~repro.gp.surrogate.SurrogateModel`.  Construction
    mirrors :class:`~repro.gp.model.GaussianProcess` plus the sparse knobs;
    prefer building instances through
    :func:`~repro.gp.surrogate.make_surrogate`.

    Parameters
    ----------
    kernel:
        Prior covariance function.
    noise_variance:
        Observation noise ``σ₀²``.
    mean:
        Prior mean function; defaults to zero.
    train_noise:
        Append log noise variance to :attr:`theta` and fit it jointly.
    m:
        Inducing-point budget, clamped to ``n`` at fit time (``m >= n``
        reproduces the exact GP).
    inducing_points:
        Explicit inducing locations.  When given, ``m`` is ignored and the
        set is never re-selected — used by equivalence and parity tests.
    reselect_coverage / reselect_fraction / kmeans_iters:
        Re-selection policy; see the module docstring.
    """

    def __init__(
        self,
        kernel: Kernel,
        noise_variance: float = 1e-6,
        mean: MeanFunction | None = None,
        train_noise: bool = True,
        m: int = 256,
        inducing_points: ArrayLike | None = None,
        reselect_coverage: float = 0.25,
        reselect_fraction: float = 0.10,
        kmeans_iters: int = 10,
    ) -> None:
        if noise_variance <= 0:
            raise ValueError(
                f"noise_variance must be positive, got {noise_variance}"
            )
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        if not 0.0 <= reselect_coverage <= 1.0:
            raise ValueError(
                f"reselect_coverage must lie in [0, 1], "
                f"got {reselect_coverage}"
            )
        if not 0.0 < reselect_fraction <= 1.0:
            raise ValueError(
                f"reselect_fraction must lie in (0, 1], "
                f"got {reselect_fraction}"
            )
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.mean = mean if mean is not None else ZeroMean()
        self.train_noise = bool(train_noise)
        self.m = int(m)
        self.reselect_coverage = float(reselect_coverage)
        self.reselect_fraction = float(reselect_fraction)
        self.kmeans_iters = int(kmeans_iters)
        self._fixed_Z = (
            as_matrix(inducing_points) if inducing_points is not None else None
        )
        #: How many times :meth:`add_data` rebuilt the inducing set.
        self.n_reselections = 0
        self._X: FloatArray | None = None
        self._y: FloatArray | None = None
        self._Z: FloatArray | None = None
        self._Luu: FloatArray | None = None
        self._LB: FloatArray | None = None
        self._V: FloatArray | None = None
        self._c: FloatArray | None = None
        self._trace_gap = 0.0
        self._n_uncovered = 0
        self._theta_fitted: FloatArray | None = None

    def __getstate__(self) -> dict[str, Any]:
        # factors rebuild in O(n m^2) on demand; dropping them keeps pickles
        # (process-pool payloads) small, mirroring the exact GP
        state = self.__dict__.copy()
        for key in ("_Luu", "_LB", "_V", "_c"):
            state[key] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        if self._X is not None:
            self._factorize()

    # -- hyperparameter vector ----------------------------------------------

    @property
    def theta(self) -> FloatArray:
        """Kernel log-hyperparameters, plus log noise when ``train_noise``."""
        theta = self.kernel.theta
        if self.train_noise:
            theta = np.concatenate([theta, [np.log(self.noise_variance)]])
        return theta

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        n_kernel = self.kernel.n_params
        expected = n_kernel + (1 if self.train_noise else 0)
        if value.shape != (expected,):
            raise ValueError(
                f"theta must have shape ({expected},), got {value.shape}"
            )
        self.kernel.theta = value[:n_kernel]
        if self.train_noise:
            self.noise_variance = float(np.exp(value[-1]))
        if self._X is not None:
            self._factorize()

    def theta_bounds(self) -> FloatArray:
        bounds = self.kernel.theta_bounds()
        if self.train_noise:
            noise_bounds = np.array([[np.log(1e-10), np.log(1e2)]], dtype=float)
            bounds = np.vstack([bounds, noise_bounds])
        return bounds

    # -- state --------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._LB is not None

    @property
    def n_train(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    @property
    def X_train(self) -> FloatArray:
        if self._X is None:
            raise RuntimeError("sparse GP has not been fitted")
        return self._X

    @property
    def y_train(self) -> FloatArray:
        if self._y is None:
            raise RuntimeError("sparse GP has not been fitted")
        return self._y

    @property
    def inducing_points(self) -> FloatArray:
        if self._Z is None:
            raise RuntimeError("sparse GP has not been fitted")
        return self._Z

    @property
    def n_inducing(self) -> int:
        return 0 if self._Z is None else self._Z.shape[0]

    # -- fitting -------------------------------------------------------------

    def fit(self, X: ArrayLike, y: ArrayLike) -> "SparseGaussianProcess":
        """Condition on ``(X, y)``, (re)selecting the inducing set."""
        X_arr = as_matrix(X)
        self._X = X_arr
        self._y = as_vector(y, X_arr.shape[0])
        self._Z = self._choose_inducing(X_arr)
        self._factorize()
        return self

    def add_data(self, X: ArrayLike, y: ArrayLike) -> "SparseGaussianProcess":
        """Append observations; re-select inducing points only on demand.

        The common case extends the cached factors in O(k m² + m³): new
        cross-covariance columns plus a refreshed m×m information Cholesky.
        A full inducing-set rebuild happens only when (a) the
        hyperparameters moved since the last factorization, (b) the
        inducing budget is not yet exhausted (the set must grow with the
        data), or (c) the coverage monitor trips.
        """
        X_arr = as_matrix(X)
        y_arr = as_vector(y, X_arr.shape[0])
        if self._X is None:
            return self.fit(X_arr, y_arr)
        if X_arr.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"new points have dim {X_arr.shape[1]}, "
                f"model has {self._X.shape[1]}"
            )
        assert self._y is not None and self._Z is not None
        X_all = np.vstack([self._X, X_arr])
        y_all = np.concatenate([self._y, y_arr])
        theta_moved = self._theta_fitted is None or not np.array_equal(
            self.theta, self._theta_fitted
        )
        budget_open = self._fixed_Z is None and self._Z.shape[0] < min(
            self.m, X_all.shape[0]
        )
        self._X = X_all
        self._y = y_all
        if theta_moved or budget_open:
            # hyperparameters changed, or the inducing budget is not yet
            # exhausted and the set must track the grown data
            self._Z = self._choose_inducing(X_all)
            self._factorize()
            return self
        Kuf_new = self.kernel(self._Z, X_arr)  # (m, k)
        if self._monitor_coverage(Kuf_new, X_arr):
            self._Z = self._choose_inducing(X_all)
            self.n_reselections += 1
            self._factorize()
            return self
        self._extend_factors(Kuf_new, X_arr)
        return self

    def set_labels(self, y: ArrayLike) -> "SparseGaussianProcess":
        """Replace training labels, keeping inputs and cached factors."""
        if self._X is None:
            raise RuntimeError("sparse GP has not been fitted")
        self._y = as_vector(y, self._X.shape[0])
        self._refresh_information_vector()
        return self

    def _choose_inducing(self, X: FloatArray) -> FloatArray:
        if self._fixed_Z is not None:
            if self._fixed_Z.shape[1] != X.shape[1]:
                raise ValueError(
                    f"inducing points have dim {self._fixed_Z.shape[1]}, "
                    f"data has {X.shape[1]}"
                )
            return self._fixed_Z
        m_eff = min(self.m, X.shape[0])
        if m_eff == X.shape[0]:
            return X.copy()
        return select_inducing_points(X, m_eff, n_iters=self.kmeans_iters)

    def _factorize(self) -> None:
        """Full O(n m²) refactorization at the current ``Z`` and theta."""
        assert self._X is not None and self._Z is not None
        kernel = self.kernel
        Kuu = kernel(self._Z)
        self._Luu = chol_with_jitter(Kuu)
        Kuf = kernel(self._Z, self._X)  # (m, n)
        self._V = solve_triangular(
            self._Luu, Kuf, lower=True, check_finite=False
        )
        self._trace_gap = max(
            float(
                np.sum(kernel.diag(self._X))
                - np.einsum("ij,ij->", self._V, self._V)
            ),
            0.0,
        )
        self._refresh_information_factor()
        self._n_uncovered = self._count_uncovered(Kuf, self._X)
        self._theta_fitted = self.theta.copy()

    def _refresh_information_factor(self) -> None:
        """``LB = chol(I + σ⁻² V Vᵀ)`` plus the information vector."""
        assert self._V is not None
        B = (self._V @ self._V.T) / self.noise_variance
        diag = np.einsum("ii->i", B)
        diag += 1.0
        self._LB = chol_with_jitter(B)
        self._refresh_information_vector()

    def _refresh_information_vector(self) -> None:
        assert self._X is not None and self._y is not None
        assert self._V is not None and self._LB is not None
        residual = self._y - self.mean(self._X)
        self._c = solve_triangular(
            self._LB, self._V @ residual, lower=True, check_finite=False
        )

    def _extend_factors(self, Kuf_new: FloatArray, X_new: FloatArray) -> None:
        """Incremental update for ``k`` appended points: O(k m² + m³)."""
        assert self._Luu is not None and self._V is not None
        V_new = solve_triangular(
            self._Luu, Kuf_new, lower=True, check_finite=False
        )
        self._V = np.hstack([self._V, V_new])
        self._trace_gap = max(
            self._trace_gap
            + float(
                np.sum(self.kernel.diag(X_new))
                - np.einsum("ij,ij->", V_new, V_new)
            ),
            0.0,
        )
        self._refresh_information_factor()

    # -- coverage monitoring -------------------------------------------------

    def _coverage(self, Kuf: FloatArray, X: FloatArray) -> FloatArray:
        """Best normalized kernel correlation of each data point to ``Z``."""
        assert self._Z is not None
        diag_u = np.maximum(self.kernel.diag(self._Z), 1e-300)
        diag_f = np.maximum(self.kernel.diag(X), 1e-300)
        corr = Kuf / np.sqrt(diag_u)[:, None]
        corr /= np.sqrt(diag_f)[None, :]
        return np.max(corr, axis=0)

    def _count_uncovered(self, Kuf: FloatArray, X: FloatArray) -> int:
        if self.reselect_coverage <= 0.0 or self._fixed_Z is not None:
            return 0
        return int(np.sum(self._coverage(Kuf, X) < self.reselect_coverage))

    def _monitor_coverage(
        self, Kuf_new: FloatArray, X_new: FloatArray
    ) -> bool:
        """Fold new points into the uncovered count; True means re-select."""
        if self._fixed_Z is not None or self.reselect_coverage <= 0.0:
            return False
        assert self._X is not None
        self._n_uncovered += self._count_uncovered(Kuf_new, X_new)
        return self._n_uncovered > self.reselect_fraction * self._X.shape[0]

    # -- prediction ----------------------------------------------------------

    @profiled("gp.sparse.predict")
    def predict(self, X: ArrayLike) -> GPPrediction:
        """DTC posterior mean and variance in O(m²) per test point."""
        X_arr, v, w = self._test_solves(X)
        assert self._c is not None
        mean = self.mean(X_arr) + (w.T @ self._c) / self.noise_variance
        variance = (
            self.kernel.diag(X_arr)
            - np.einsum("ij,ij->j", v, v)
            + np.einsum("ij,ij->j", w, w)
        )
        return GPPrediction(mean=mean, variance=np.maximum(variance, 0.0))

    def predict_cov(self, X: ArrayLike) -> tuple[FloatArray, FloatArray]:
        """Posterior mean and full covariance matrix at test points."""
        X_arr, v, w = self._test_solves(X)
        assert self._c is not None
        mean = self.mean(X_arr) + (w.T @ self._c) / self.noise_variance
        cov = self.kernel(X_arr) - v.T @ v + w.T @ w
        return mean, symmetrize(cov)

    def sample_posterior(
        self, X: ArrayLike, n_samples: int, rng: np.random.Generator
    ) -> FloatArray:
        """Draw joint posterior samples; returns ``(n_samples, n_test)``."""
        mean, cov = self.predict_cov(X)
        cov = symmetrize(cov, jitter=1e-10)
        return rng.multivariate_normal(
            mean, cov, size=n_samples, method="cholesky"
        )

    def _test_solves(
        self, X: ArrayLike
    ) -> tuple[FloatArray, FloatArray, FloatArray]:
        if not self.is_fitted:
            raise RuntimeError("sparse GP has not been fitted")
        assert self._X is not None and self._Z is not None
        assert self._Luu is not None and self._LB is not None
        X_arr = as_matrix(X, self._X.shape[1])
        Kus = self.kernel(self._Z, X_arr)  # (m, n_test)
        v = solve_triangular(self._Luu, Kus, lower=True, check_finite=False)
        w = solve_triangular(self._LB, v, lower=True, check_finite=False)
        return X_arr, v, w

    # -- evidence ------------------------------------------------------------

    def log_marginal_likelihood(self) -> float:
        """The variational (Titsias) evidence lower bound.

        ``log N(y | m(X), Q_ff + σ²I) − σ⁻²/2 · tr(K_ff − Q_ff)``; equal to
        the exact Eq. 8 evidence whenever ``Q_ff = K_ff`` (``m >= n``).
        """
        if not self.is_fitted:
            raise RuntimeError("sparse GP has not been fitted")
        assert self._X is not None and self._y is not None
        assert self._LB is not None and self._c is not None
        residual = self._y - self.mean(self._X)
        n = residual.shape[0]
        noise = self.noise_variance
        quad = (residual @ residual) / noise - (self._c @ self._c) / noise**2
        log_det = n * np.log(noise) + 2.0 * np.sum(
            np.log(np.einsum("ii->i", self._LB))
        )
        return float(
            -0.5 * (quad + log_det + n * np.log(2.0 * np.pi))
            - 0.5 * self._trace_gap / noise
        )

    def evaluate_theta(self, theta: np.ndarray) -> tuple[float, FloatArray]:
        """Side-effect-free evidence value and gradient at ``theta``.

        The value is the variational bound recomputed on a cloned kernel;
        the gradient is a central finite difference over the (small)
        log-hyperparameter vector — ``2p`` extra O(n m²) bound evaluations,
        which keeps the kernel API free of cross-covariance derivatives.
        Raises ``LinAlgError`` when a trial factorization fails, which
        hyperparameter search treats as a penalty point.
        """
        theta = np.asarray(theta, dtype=float)
        value = self._bound_at(theta)
        grad = np.empty_like(theta)
        for j in range(theta.shape[0]):
            step = np.zeros_like(theta)
            step[j] = _FD_STEP
            grad[j] = (
                self._bound_at(theta + step) - self._bound_at(theta - step)
            ) / (2.0 * _FD_STEP)
        return value, grad

    def log_marginal_likelihood_gradient(self) -> FloatArray:
        """Finite-difference gradient of the bound at the current theta."""
        return self.evaluate_theta(self.theta)[1]

    def log_marginal_likelihood_value_and_gradient(
        self,
    ) -> tuple[float, FloatArray]:
        return self.evaluate_theta(self.theta)

    def _bound_at(self, theta: np.ndarray) -> float:
        """The variational bound at arbitrary theta, without mutating self."""
        if not self.is_fitted:
            raise RuntimeError("sparse GP has not been fitted")
        assert self._X is not None and self._y is not None
        assert self._Z is not None
        kernel = self.kernel.clone()
        n_kernel = kernel.n_params
        kernel.theta = np.asarray(theta[:n_kernel], dtype=float)
        noise = (
            float(np.exp(theta[-1]))
            if self.train_noise
            else self.noise_variance
        )
        Luu = chol_with_jitter(kernel(self._Z))
        V = solve_triangular(
            Luu, kernel(self._Z, self._X), lower=True, check_finite=False
        )
        trace_gap = max(
            float(np.sum(kernel.diag(self._X)) - np.einsum("ij,ij->", V, V)),
            0.0,
        )
        B = (V @ V.T) / noise
        diag = np.einsum("ii->i", B)
        diag += 1.0
        LB = chol_with_jitter(B)
        residual = self._y - self.mean(self._X)
        c = solve_triangular(LB, V @ residual, lower=True, check_finite=False)
        n = residual.shape[0]
        quad = (residual @ residual) / noise - (c @ c) / noise**2
        log_det = n * np.log(noise) + 2.0 * np.sum(
            np.log(np.einsum("ii->i", LB))
        )
        return float(
            -0.5 * (quad + log_det + n * np.log(2.0 * np.pi))
            - 0.5 * trace_gap / noise
        )


__all__ = ["SparseGaussianProcess", "select_inducing_points"]
