"""Label standardization for GP training.

Circuit performances arrive in volts, amps or percent; the GP's zero prior
mean and unit-scale kernels expect roughly standardized labels.  The
transform is affine, so failure thresholds map through it exactly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_vector


class Standardizer:
    """Affine map ``y -> (y - mean) / scale`` fitted on training labels.

    A degenerate (constant) label set falls back to unit scale so that the
    inverse transform stays well-defined.
    """

    def __init__(self) -> None:
        self.mean_: float | None = None
        self.scale_: float | None = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, y) -> "Standardizer":
        y = as_vector(y)
        if y.shape[0] == 0:
            raise ValueError("cannot fit a standardizer on an empty label set")
        self.mean_ = float(np.mean(y))
        scale = float(np.std(y))
        self.scale_ = scale if scale > 1e-12 else 1.0
        return self

    def transform(self, y) -> np.ndarray:
        self._require_fitted()
        return (as_vector(y) - self.mean_) / self.scale_

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, y) -> np.ndarray:
        self._require_fitted()
        return as_vector(y) * self.scale_ + self.mean_

    def transform_scalar(self, value: float) -> float:
        """Map a single threshold (e.g. the spec target ``T``)."""
        self._require_fitted()
        return (float(value) - self.mean_) / self.scale_

    def inverse_transform_scalar(self, value: float) -> float:
        self._require_fitted()
        return float(value) * self.scale_ + self.mean_

    def scale_variance(self, variance) -> np.ndarray:
        """Map a posterior variance back to the original label units."""
        self._require_fitted()
        return np.asarray(variance, dtype=float) * self.scale_**2

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("standardizer has not been fitted")
