"""Label standardization for GP training.

Circuit performances arrive in volts, amps or percent; the GP's zero prior
mean and unit-scale kernels expect roughly standardized labels.  The
transform is affine, so failure thresholds map through it exactly.
"""

from __future__ import annotations

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.utils.validation import as_vector


class Standardizer:
    """Affine map ``y -> (y - mean) / scale`` fitted on training labels.

    A degenerate (constant) label set falls back to unit scale so that the
    inverse transform stays well-defined.
    """

    def __init__(self) -> None:
        self.mean_: float | None = None
        self.scale_: float | None = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, y: ArrayLike) -> "Standardizer":
        y_arr = as_vector(y)
        if y_arr.shape[0] == 0:
            raise ValueError("cannot fit a standardizer on an empty label set")
        self.mean_ = float(np.mean(y_arr))
        scale = float(np.std(y_arr))
        self.scale_ = scale if scale > 1e-12 else 1.0
        return self

    def transform(self, y: ArrayLike) -> FloatArray:
        mean, scale = self._require_fitted()
        return (as_vector(y) - mean) / scale

    def fit_transform(self, y: ArrayLike) -> FloatArray:
        return self.fit(y).transform(y)

    def inverse_transform(self, y: ArrayLike) -> FloatArray:
        mean, scale = self._require_fitted()
        return as_vector(y) * scale + mean

    def transform_scalar(self, value: float) -> float:
        """Map a single threshold (e.g. the spec target ``T``)."""
        mean, scale = self._require_fitted()
        return (float(value) - mean) / scale

    def inverse_transform_scalar(self, value: float) -> float:
        mean, scale = self._require_fitted()
        return float(value) * scale + mean

    def scale_variance(self, variance: ArrayLike) -> FloatArray:
        """Map a posterior variance back to the original label units."""
        _, scale = self._require_fitted()
        return np.asarray(variance, dtype=float) * scale**2

    def _require_fitted(self) -> tuple[float, float]:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("standardizer has not been fitted")
        return self.mean_, self.scale_
