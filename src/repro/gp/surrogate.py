"""The pluggable surrogate-model layer: protocol, spec, and factory.

Every BO engine consumes its model through the :class:`SurrogateModel`
protocol — the exact :class:`~repro.gp.model.GaussianProcess` (O(n³) fit,
O(n²) memory) and the inducing-point
:class:`~repro.gp.sparse.SparseGaussianProcess` (O(nm²) fit, O(m²)
predict) are interchangeable behind it.  Which one a run uses is a
*declarative* choice carried by :class:`SurrogateSpec`, which travels
through ``RunSpec`` / ``CampaignSpec`` / the serve job schema and is
materialized exactly once, by :func:`make_surrogate`.

``kind="auto"`` defers the choice to data volume: the manager builds the
exact GP while ``n < switch_at`` and switches to the sparse path at the
threshold, which is what lets long-horizon campaigns outgrow the exact
Cholesky without a config change.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Callable, Protocol, Union, runtime_checkable

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.gp.model import GaussianProcess, GPPrediction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.base import Kernel

KernelFactory = Callable[[int], "Kernel"]

#: Surrogate kinds :func:`make_surrogate` can build.
SURROGATE_KINDS = ("exact", "sparse", "auto")

#: Default inducing-point count for the sparse surrogate.
DEFAULT_INDUCING = 256

#: Default ``n`` at which ``kind="auto"`` switches exact → sparse.
DEFAULT_SWITCH_AT = 1024


@runtime_checkable
class SurrogateModel(Protocol):
    """What every GP-like surrogate exposes to the engines.

    The protocol is extracted from the historical ``GaussianProcess``
    surface: conditioning (:meth:`fit` / :meth:`add_data` /
    :meth:`set_labels`), posterior queries (:meth:`predict` /
    :meth:`predict_cov` / :meth:`sample_posterior`), the evidence and its
    gradient for hyperparameter fitting, and the flat log-hyperparameter
    vector ``theta`` with its box bounds.  Implementations may additionally
    offer a side-effect-free ``evaluate_theta(theta) -> (lml, grad)``,
    which :func:`~repro.gp.hyperopt.fit_hyperparameters` prefers over
    refitting through the ``theta`` setter.
    """

    # -- conditioning -------------------------------------------------------

    def fit(self, X: ArrayLike, y: ArrayLike) -> "SurrogateModel": ...

    def add_data(self, X: ArrayLike, y: ArrayLike) -> "SurrogateModel": ...

    def set_labels(self, y: ArrayLike) -> "SurrogateModel": ...

    # -- posterior ----------------------------------------------------------

    def predict(self, X: ArrayLike) -> GPPrediction: ...

    def predict_cov(self, X: ArrayLike) -> tuple[FloatArray, FloatArray]: ...

    def sample_posterior(
        self, X: ArrayLike, n_samples: int, rng: np.random.Generator
    ) -> FloatArray: ...

    # -- evidence -----------------------------------------------------------

    def log_marginal_likelihood(self) -> float: ...

    def log_marginal_likelihood_gradient(self) -> FloatArray: ...

    def log_marginal_likelihood_value_and_gradient(
        self,
    ) -> tuple[float, FloatArray]: ...

    # -- hyperparameters ----------------------------------------------------

    @property
    def theta(self) -> FloatArray: ...

    @theta.setter
    def theta(self, value: np.ndarray) -> None: ...

    def theta_bounds(self) -> FloatArray: ...

    # -- state --------------------------------------------------------------

    @property
    def is_fitted(self) -> bool: ...

    @property
    def n_train(self) -> int: ...

    @property
    def X_train(self) -> FloatArray: ...

    @property
    def y_train(self) -> FloatArray: ...


@dataclass(frozen=True)
class SurrogateSpec:
    """Declarative description of which surrogate a run should use.

    Parameters
    ----------
    kind:
        ``"exact"`` (full-rank GP), ``"sparse"`` (inducing-point GP), or
        ``"auto"`` (exact below ``switch_at`` training points, sparse at
        or above it).
    m:
        Inducing-point budget for the sparse surrogate; ``None`` means
        :data:`DEFAULT_INDUCING`.  Clamped to ``n`` at fit time — with
        ``m >= n`` the sparse model is algebraically the exact GP.
    switch_at:
        The ``n`` threshold of ``kind="auto"``.
    noise_variance:
        Overrides the caller-side default observation noise when given.
    reselect_coverage:
        Kernel-correlation floor under which a training point counts as
        uncovered by the current inducing set.
    reselect_fraction:
        Fraction of uncovered training points that triggers inducing-point
        re-selection on :meth:`SparseGaussianProcess.add_data`.
    kmeans_iters:
        Lloyd refinement iterations for inducing-point selection.
    """

    kind: str = "exact"
    m: int | None = None
    switch_at: int = DEFAULT_SWITCH_AT
    noise_variance: float | None = None
    reselect_coverage: float = 0.25
    reselect_fraction: float = 0.10
    kmeans_iters: int = 10

    def __post_init__(self) -> None:
        if self.kind not in SURROGATE_KINDS:
            raise ValueError(
                f"unknown surrogate kind {self.kind!r}; "
                f"allowed kinds: {', '.join(SURROGATE_KINDS)}"
            )
        if self.m is not None and self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.switch_at < 1:
            raise ValueError(f"switch_at must be >= 1, got {self.switch_at}")
        if self.noise_variance is not None and self.noise_variance <= 0:
            raise ValueError(
                f"noise_variance must be positive, got {self.noise_variance}"
            )
        if not 0.0 <= self.reselect_coverage <= 1.0:
            raise ValueError(
                f"reselect_coverage must lie in [0, 1], got {self.reselect_coverage}"
            )
        if not 0.0 < self.reselect_fraction <= 1.0:
            raise ValueError(
                f"reselect_fraction must lie in (0, 1], got {self.reselect_fraction}"
            )
        if self.kmeans_iters < 0:
            raise ValueError(
                f"kmeans_iters must be >= 0, got {self.kmeans_iters}"
            )

    def resolve_kind(self, n: int) -> str:
        """The concrete kind ("exact" or "sparse") for an ``n``-point fit."""
        if self.kind == "auto":
            return "sparse" if n >= self.switch_at else "exact"
        return self.kind


#: Anything a ``surrogate=`` argument accepts: a spec, a kind string, a
#: mapping of :class:`SurrogateSpec` fields, or None (caller default).
SurrogateLike = Union["SurrogateSpec", str, Mapping, None]

_SPEC_FIELDS = tuple(f.name for f in fields(SurrogateSpec))


def coerce_surrogate_spec(value: SurrogateLike) -> SurrogateSpec | None:
    """Normalize a ``surrogate=`` argument into a validated spec (or None).

    Strings name a kind (``"sparse"``); mappings supply
    :class:`SurrogateSpec` fields (``{"kind": "sparse", "m": 256}``).
    Unknown kinds and unknown keys raise ``ValueError`` naming the allowed
    values.
    """
    if value is None:
        return None
    if isinstance(value, SurrogateSpec):
        return value
    if isinstance(value, str):
        return SurrogateSpec(kind=value)
    if isinstance(value, Mapping):
        unknown = set(value) - set(_SPEC_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown surrogate keys: {sorted(unknown)}; "
                f"allowed keys: {', '.join(_SPEC_FIELDS)}"
            )
        return SurrogateSpec(**dict(value))
    raise TypeError(
        f"surrogate must be a SurrogateSpec, a kind string "
        f"({', '.join(SURROGATE_KINDS)}), a mapping of spec fields, or None; "
        f"got {type(value).__name__}"
    )


def make_surrogate(
    spec: SurrogateLike,
    dim: int,
    *,
    kernel_factory: "KernelFactory | None" = None,
    noise_variance: float = 1e-4,
    n: int | None = None,
) -> SurrogateModel:
    """Materialize one surrogate model from a declarative spec.

    This is the single construction path the engines use — direct
    ``GaussianProcess(...)`` calls remain supported for library users, but
    everything reachable from ``RunSpec``/``CampaignSpec``/job files goes
    through here so new surrogate kinds are one registry entry away.

    Parameters
    ----------
    spec:
        A :class:`SurrogateSpec`, kind string, field mapping, or None
        (exact GP with library defaults).
    dim:
        Input dimensionality the kernel is built for.
    kernel_factory:
        ``dim -> Kernel``; defaults to Matérn-5/2 with ARD.
    noise_variance:
        Observation noise, unless the spec overrides it.
    n:
        Current training-set size, used to resolve ``kind="auto"``
        (``None`` counts as 0, i.e. exact).
    """
    resolved = coerce_surrogate_spec(spec) or SurrogateSpec()
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    kind = resolved.resolve_kind(0 if n is None else int(n))
    factory = kernel_factory if kernel_factory is not None else _default_kernel
    kernel = factory(dim)
    noise = (
        resolved.noise_variance
        if resolved.noise_variance is not None
        else noise_variance
    )
    if kind == "exact":
        return GaussianProcess(kernel, noise_variance=noise)
    from repro.gp.sparse import SparseGaussianProcess

    return SparseGaussianProcess(
        kernel,
        noise_variance=noise,
        m=resolved.m if resolved.m is not None else DEFAULT_INDUCING,
        reselect_coverage=resolved.reselect_coverage,
        reselect_fraction=resolved.reselect_fraction,
        kmeans_iters=resolved.kmeans_iters,
    )


def surrogate_kind_of(model: SurrogateModel) -> str:
    """The spec-level kind string a live model corresponds to."""
    from repro.gp.sparse import SparseGaussianProcess

    return "sparse" if isinstance(model, SparseGaussianProcess) else "exact"


def _default_kernel(dim: int) -> "Kernel":
    from repro.kernels.stationary import Matern52

    return Matern52(dim=dim, ard=True)


__all__ = [
    "DEFAULT_INDUCING",
    "DEFAULT_SWITCH_AT",
    "SURROGATE_KINDS",
    "SurrogateLike",
    "SurrogateModel",
    "SurrogateSpec",
    "coerce_surrogate_spec",
    "make_surrogate",
    "surrogate_kind_of",
]
