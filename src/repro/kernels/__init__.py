"""Covariance functions for the GP surrogate (paper Section 2.2.1)."""

from repro.kernels.base import Kernel, KernelWorkspace, pairwise_sq_dists
from repro.kernels.composite import ProductKernel, ScaledKernel, SumKernel
from repro.kernels.stationary import (
    RBF,
    Matern12,
    Matern32,
    Matern52,
    RationalQuadratic,
    SquaredExponential,
    StationaryKernel,
    WhiteNoise,
)

__all__ = [
    "Kernel",
    "KernelWorkspace",
    "pairwise_sq_dists",
    "StationaryKernel",
    "SquaredExponential",
    "RBF",
    "Matern12",
    "Matern32",
    "Matern52",
    "RationalQuadratic",
    "WhiteNoise",
    "SumKernel",
    "ProductKernel",
    "ScaledKernel",
]
