"""Kernel (covariance function) interface and hyperparameter plumbing.

Kernels expose their tunable hyperparameters as an unconstrained flat vector
(``theta``) holding *log*-transformed positive parameters, which is what the
marginal-likelihood optimizer in :mod:`repro.gp` works with.  Gradients of
the Gram matrix with respect to each ``theta`` entry are provided so that GP
hyperparameter fitting can use analytic derivatives (paper Eq. 8).

Kernels also support a per-dataset :class:`KernelWorkspace`: marginal-
likelihood fitting evaluates the Gram matrix and its gradients hundreds of
times at different hyperparameters over the *same* training inputs, so the
input-dependent structure (pairwise squared differences) is cached once and
rescaled per evaluation instead of being rebuilt from ``X``.
"""

from __future__ import annotations

import abc
import copy
from typing import Any

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.utils.contracts import shape_contract
from repro.utils.validation import as_matrix


class KernelWorkspace:
    """Per-dataset cache of input-dependent kernel structure.

    The workspace is opaque to callers: it stores the training inputs plus a
    ``cache`` dict that each kernel class fills lazily with whatever derived
    tensors it needs (per-dimension squared differences for ARD kernels,
    scaled-input caches for cross-covariances, ...).  Hyperparameter values
    are *never* baked into the required entries, so one workspace serves
    every theta evaluated during a hyperparameter fit.
    """

    __slots__ = ("X", "cache")

    def __init__(self, X: ArrayLike) -> None:
        self.X: FloatArray = as_matrix(X)
        self.cache: dict[str, Any] = {}

    @property
    def n(self) -> int:
        return self.X.shape[0]


class Kernel(abc.ABC):
    """Abstract covariance function ``k(x, x')``.

    Subclasses implement :meth:`__call__` returning the cross Gram matrix and
    :meth:`gradients` returning ``d K / d theta_j`` for each hyperparameter.
    """

    @property
    @abc.abstractmethod
    def theta(self) -> FloatArray:
        """The unconstrained (log-space) hyperparameter vector."""

    @theta.setter
    @abc.abstractmethod
    def theta(self, value: ArrayLike) -> None: ...

    @property
    def n_params(self) -> int:
        """Number of tunable hyperparameters."""
        return self.theta.shape[0]

    @abc.abstractmethod
    def __call__(
        self, X: ArrayLike, Z: ArrayLike | None = None
    ) -> FloatArray:
        """Return the Gram matrix ``K[i, j] = k(X[i], Z[j])`` (``Z=X`` if None)."""

    @abc.abstractmethod
    def diag(self, X: ArrayLike) -> FloatArray:
        """Return ``k(x_i, x_i)`` for each row, cheaper than ``diag(K(X, X))``."""

    @abc.abstractmethod
    def gradients(self, X: ArrayLike) -> list[FloatArray]:
        """Return ``[dK/dtheta_0, ...]`` evaluated at the training inputs."""

    @abc.abstractmethod
    def theta_bounds(self) -> FloatArray:
        """Return ``(n_params, 2)`` log-space box bounds for optimization."""

    def clone(self) -> "Kernel":
        """Return an independent copy (same hyperparameter values)."""
        return copy.deepcopy(self)

    # -- per-dataset workspaces --------------------------------------------
    #
    # The defaults fall back to the plain ``X``-based evaluation so that any
    # kernel (composites included) works with workspace-driven callers; the
    # stationary family overrides them with cached-tensor fast paths.

    def make_workspace(self, X: ArrayLike) -> KernelWorkspace:
        """Build a reusable evaluation workspace for the inputs ``X``."""
        return KernelWorkspace(X)

    def extend_workspace(
        self, ws: KernelWorkspace, X_new: ArrayLike
    ) -> KernelWorkspace:
        """Return a workspace for ``[ws.X; X_new]``, reusing cached blocks."""
        return self.make_workspace(np.vstack([ws.X, as_matrix(X_new)]))

    def gram(self, ws: KernelWorkspace) -> FloatArray:
        """Training Gram matrix at the current hyperparameters.

        Always returns a freshly allocated matrix the caller may mutate.
        """
        return self(ws.X)

    def gradients_ws(self, ws: KernelWorkspace) -> list[FloatArray]:
        """``[dK/dtheta_j, ...]`` over the workspace inputs."""
        return self.gradients(ws.X)

    def cross(self, ws: KernelWorkspace, Z: ArrayLike) -> FloatArray:
        """Cross Gram matrix ``k(ws.X, Z)`` (the prediction hot path)."""
        return self(ws.X, Z)

    def gradient_inner_products(
        self, ws: KernelWorkspace, inner: FloatArray
    ) -> FloatArray:
        """``0.5 * sum(inner * dK/dtheta_j)`` for each hyperparameter.

        This is the contraction the marginal-likelihood gradient needs
        (``inner = alpha alpha^T - K^{-1}``); computing it directly lets
        subclasses avoid materializing each ``dK/dtheta_j``.
        """
        return np.array(
            [0.5 * np.sum(inner * dK) for dK in self.gradients_ws(ws)],
            dtype=float,
        )

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other: "Kernel") -> "Kernel":
        from repro.kernels.composite import SumKernel

        return SumKernel(self, other)

    def __mul__(self, other: "Kernel") -> "Kernel":
        from repro.kernels.composite import ProductKernel

        return ProductKernel(self, other)


@shape_contract("X: a(n, d), Z: a(m, d), lengthscales: (*,) -> (n, m)")
def pairwise_sq_dists(
    X: ArrayLike, Z: ArrayLike, lengthscales: FloatArray
) -> FloatArray:
    """Squared Euclidean distances between scaled rows of ``X`` and ``Z``.

    ``lengthscales`` may be a scalar array of shape ``(1,)`` (isotropic) or
    per-dimension of shape ``(dim,)`` (ARD).  Distances are clipped at zero
    to guard against negative round-off.
    """
    Xs = as_matrix(X) / lengthscales
    Zs = as_matrix(Z) / lengthscales
    sq = Xs @ Zs.T
    sq *= -2.0
    sq += np.einsum("ij,ij->i", Xs, Xs)[:, None]
    sq += np.einsum("ij,ij->i", Zs, Zs)[None, :]
    return np.maximum(sq, 0.0, out=sq)
