"""Kernel (covariance function) interface and hyperparameter plumbing.

Kernels expose their tunable hyperparameters as an unconstrained flat vector
(``theta``) holding *log*-transformed positive parameters, which is what the
marginal-likelihood optimizer in :mod:`repro.gp` works with.  Gradients of
the Gram matrix with respect to each ``theta`` entry are provided so that GP
hyperparameter fitting can use analytic derivatives (paper Eq. 8).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import as_matrix


class Kernel(abc.ABC):
    """Abstract covariance function ``k(x, x')``.

    Subclasses implement :meth:`__call__` returning the cross Gram matrix and
    :meth:`gradients` returning ``d K / d theta_j`` for each hyperparameter.
    """

    @property
    @abc.abstractmethod
    def theta(self) -> np.ndarray:
        """The unconstrained (log-space) hyperparameter vector."""

    @theta.setter
    @abc.abstractmethod
    def theta(self, value: np.ndarray) -> None: ...

    @property
    def n_params(self) -> int:
        """Number of tunable hyperparameters."""
        return self.theta.shape[0]

    @abc.abstractmethod
    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        """Return the Gram matrix ``K[i, j] = k(X[i], Z[j])`` (``Z=X`` if None)."""

    @abc.abstractmethod
    def diag(self, X: np.ndarray) -> np.ndarray:
        """Return ``k(x_i, x_i)`` for each row, cheaper than ``diag(K(X, X))``."""

    @abc.abstractmethod
    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        """Return ``[dK/dtheta_0, ...]`` evaluated at the training inputs."""

    @abc.abstractmethod
    def theta_bounds(self) -> np.ndarray:
        """Return ``(n_params, 2)`` log-space box bounds for optimization."""

    def clone(self) -> "Kernel":
        """Return an independent copy (same hyperparameter values)."""
        import copy

        return copy.deepcopy(self)

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other: "Kernel") -> "Kernel":
        from repro.kernels.composite import SumKernel

        return SumKernel(self, other)

    def __mul__(self, other: "Kernel") -> "Kernel":
        from repro.kernels.composite import ProductKernel

        return ProductKernel(self, other)


def pairwise_sq_dists(
    X: np.ndarray, Z: np.ndarray, lengthscales: np.ndarray
) -> np.ndarray:
    """Squared Euclidean distances between scaled rows of ``X`` and ``Z``.

    ``lengthscales`` may be a scalar array of shape ``(1,)`` (isotropic) or
    per-dimension of shape ``(dim,)`` (ARD).  Distances are clipped at zero
    to guard against negative round-off.
    """
    X = as_matrix(X)
    Z = as_matrix(Z)
    Xs = X / lengthscales
    Zs = Z / lengthscales
    sq = (
        np.sum(Xs**2, axis=1)[:, None]
        + np.sum(Zs**2, axis=1)[None, :]
        - 2.0 * Xs @ Zs.T
    )
    return np.maximum(sq, 0.0)
