"""Kernel algebra: sums, products and constant scalings.

Composite kernels concatenate their children's hyperparameter vectors, so
they slot into the same marginal-likelihood optimization as any base kernel.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel


class _BinaryKernel(Kernel):
    """Shared plumbing for two-child composite kernels."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        if not isinstance(left, Kernel) or not isinstance(right, Kernel):
            raise TypeError("composite kernels combine Kernel instances")
        self.left = left
        self.right = right

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        n_left = self.left.n_params
        expected = n_left + self.right.n_params
        if value.shape != (expected,):
            raise ValueError(
                f"theta must have shape ({expected},), got {value.shape}"
            )
        self.left.theta = value[:n_left]
        self.right.theta = value[n_left:]

    def theta_bounds(self) -> np.ndarray:
        return np.vstack([self.left.theta_bounds(), self.right.theta_bounds()])


class SumKernel(_BinaryKernel):
    """``k(x, x') = k_left(x, x') + k_right(x, x')``."""

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Z) + self.right(X, Z)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        return self.left.gradients(X) + self.right.gradients(X)


class ProductKernel(_BinaryKernel):
    """``k(x, x') = k_left(x, x') * k_right(x, x')``."""

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Z) * self.right(X, Z)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        k_left = self.left(X)
        k_right = self.right(X)
        grads = [g * k_right for g in self.left.gradients(X)]
        grads.extend(k_left * g for g in self.right.gradients(X))
        return grads


class ScaledKernel(Kernel):
    """``k(x, x') = scale * k_inner(x, x')`` with a *fixed* scale.

    Unlike the signal variance of a stationary kernel, ``scale`` here is not
    a hyperparameter — use it to freeze relative weights in composites.
    """

    def __init__(self, inner: Kernel, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.inner = inner
        self.scale = float(scale)

    @property
    def theta(self) -> np.ndarray:
        return self.inner.theta

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self.inner.theta = value

    def theta_bounds(self) -> np.ndarray:
        return self.inner.theta_bounds()

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        return self.scale * self.inner(X, Z)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.scale * self.inner.diag(X)

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        return [self.scale * g for g in self.inner.gradients(X)]
