"""Stationary covariance functions with optional ARD lengthscales.

The paper's GP surrogate (Section 2.2.1) uses the squared-exponential or
Matérn families; all of them are provided here with analytic gradients with
respect to log-hyperparameters so that marginal-likelihood fitting is exact.
"""

from __future__ import annotations

import numpy as np

from repro.backends import compiled_ops
from repro.kernels.base import Kernel, KernelWorkspace, pairwise_sq_dists
from repro.utils.contracts import shape_contract
from repro.utils.validation import as_matrix

_SQRT3 = np.sqrt(3.0)
_SQRT5 = np.sqrt(5.0)


class StationaryKernel(Kernel):
    """Base class for kernels of the form ``variance * g(r)``.

    Parameters
    ----------
    dim:
        Input dimensionality.  Required when ``ard=True``.
    variance:
        Signal variance (the kernel value at zero distance).
    lengthscale:
        Scalar lengthscale, or per-dimension vector when ``ard=True``.
    ard:
        Use one lengthscale per input dimension (automatic relevance
        determination).
    """

    def __init__(
        self,
        dim: int | None = None,
        variance: float = 1.0,
        lengthscale: float | np.ndarray = 1.0,
        ard: bool = False,
    ) -> None:
        if variance <= 0:
            raise ValueError(f"variance must be positive, got {variance}")
        self.dim = dim
        self.ard = bool(ard)
        ls = np.atleast_1d(np.asarray(lengthscale, dtype=float))
        if self.ard:
            if dim is None:
                raise ValueError("dim is required for an ARD kernel")
            if ls.shape[0] == 1:
                ls = np.full(dim, ls[0])
            if ls.shape[0] != dim:
                raise ValueError(
                    f"lengthscale has {ls.shape[0]} entries, expected {dim}"
                )
        elif ls.shape[0] != 1:
            raise ValueError("non-ARD kernel takes a scalar lengthscale")
        if np.any(ls <= 0):
            raise ValueError("lengthscales must be positive")
        self.variance = float(variance)
        self.lengthscales = ls

    # -- hyperparameter vector: [log variance, log lengthscales...] --------

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate(
            [[np.log(self.variance)], np.log(self.lengthscales)]
        )

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        expected = 1 + self.lengthscales.shape[0]
        if value.shape != (expected,):
            raise ValueError(
                f"theta must have shape ({expected},), got {value.shape}"
            )
        self.variance = float(np.exp(value[0]))
        self.lengthscales = np.exp(value[1:])

    def theta_bounds(self) -> np.ndarray:
        n_ls = self.lengthscales.shape[0]
        bounds = np.empty((1 + n_ls, 2))
        bounds[0] = (np.log(1e-6), np.log(1e6))
        bounds[1:] = (np.log(1e-3), np.log(1e3))
        return bounds

    # -- distance helpers ---------------------------------------------------

    def _scaled_sq_dists(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return pairwise_sq_dists(X, Z, self.lengthscales)

    def _per_dim_sq_dists(self, X: np.ndarray) -> list[np.ndarray]:
        """``u_k[i,j] = (x_ik - x_jk)^2 / l_k^2`` for each ARD dimension."""
        X = as_matrix(X)
        out = []
        for k in range(X.shape[1]):
            d = (X[:, k][:, None] - X[:, k][None, :]) / self.lengthscales[k]
            out.append(d**2)
        return out

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = as_matrix(X)
        return np.full(X.shape[0], self.variance)

    # -- subclass hooks ------------------------------------------------------

    def _g(self, sq: np.ndarray) -> np.ndarray:
        """Correlation as a function of the scaled squared distance."""
        raise NotImplementedError

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        """Derivative of the correlation w.r.t. the scaled squared distance."""
        raise NotImplementedError

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X = as_matrix(X, self.dim)
        if Z is None:
            # exact zeros on the self-Gram diagonal: the O(eps) cancellation
            # noise of the distance formula is amplified unboundedly by the
            # sqrt in the non-smooth Matern kernels
            sq = self._scaled_sq_dists(X, X)
            np.fill_diagonal(sq, 0.0)
            return self.variance * self._g(sq)
        Z = as_matrix(Z, self.dim)
        return self.variance * self._g(self._scaled_sq_dists(X, Z))

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        X = as_matrix(X, self.dim)
        sq = self._scaled_sq_dists(X, X)
        np.fill_diagonal(sq, 0.0)
        g = self._g(sq)
        dg = self._dg_dsq(sq)
        grads = [self.variance * g]  # d/d log variance
        if self.ard:
            # d sq / d log l_k = -2 u_k
            for u in self._per_dim_sq_dists(X):
                grads.append(self.variance * dg * (-2.0 * u))
        else:
            grads.append(self.variance * dg * (-2.0 * sq))
        grads.extend(self._extra_gradients(sq))
        return grads

    def _extra_gradients(self, sq: np.ndarray) -> list[np.ndarray]:
        """Gradients of hyperparameters beyond variance/lengthscales.

        Receives the scaled squared distances already computed by
        :meth:`gradients`, so subclasses with extra shape parameters (e.g.
        the rational quadratic's ``alpha``) need not rebuild them.
        """
        return []

    def _dg_from_g(self, sq: np.ndarray, g: np.ndarray) -> np.ndarray | None:
        """Recover ``dg/d(sq)`` from an already-computed ``g``, or None.

        For every kernel in this family the derivative is an algebraic
        function of the correlation itself, so reusing ``g`` skips the
        transcendental (``exp``/``pow``) re-evaluation that dominates
        :meth:`_dg_dsq`.  Subclasses return None to fall back.
        """
        return None

    @shape_contract(
        "sq: (n, n), g_out: (n, n), dg_out?: (n, n), scratch: (n, n)",
        check_finite=False,  # out/scratch buffers hold uninitialized memory
    )
    def _corr_into(
        self,
        sq: np.ndarray,
        g_out: np.ndarray,
        dg_out: np.ndarray | None,
        scratch: np.ndarray,
    ) -> None:
        """Fill ``g_out`` (and ``dg_out`` when given) from ``sq >= 0``.

        The default delegates to the allocating hooks; subclasses on the
        hyperopt hot path override it with a fully fused, buffer-reusing
        computation (``scratch`` is a same-shape work array).
        """
        g_out[...] = self._g(sq)
        if dg_out is not None:
            dg = self._dg_from_g(sq, g_out)
            dg_out[...] = self._dg_dsq(sq) if dg is None else dg

    def _shape_key(self) -> bytes:
        """Cache-key fragment for shape hyperparameters beyond lengthscales."""
        return b""

    # -- workspace fast paths ----------------------------------------------
    #
    # Marginal-likelihood fitting calls ``gram`` and then
    # ``gradient_inner_products`` at the *same* hyperparameters, hundreds of
    # times per fit.  The workspace memoizes the scaled squared distances
    # (keyed by lengthscales) and the correlation matrix / its derivative
    # (keyed by lengthscales + shape parameters) in persistent buffers so
    # each is computed exactly once per theta evaluation with no large
    # allocations.  Buffer contents are only valid until the next
    # evaluation at a different theta; no caller retains them longer.

    def make_workspace(self, X: np.ndarray) -> KernelWorkspace:
        return KernelWorkspace(as_matrix(X, self.dim))

    @staticmethod
    def _ws_buffer(ws: KernelWorkspace, name: str) -> np.ndarray:
        buf = ws.cache.get(name)
        if buf is None:
            buf = ws.cache[name] = np.empty((ws.n, ws.n))
        return buf

    def _ws_scaled_sq(self, ws: KernelWorkspace) -> np.ndarray:
        """Scaled squared distances at the current lengthscales (memoized)."""
        key = self.lengthscales.tobytes()
        if ws.cache.get("sq_key") != key:
            X = ws.X
            Xs = X / self.lengthscales
            rn = np.einsum("ij,ij->i", Xs, Xs)
            sq = self._ws_buffer(ws, "sq_buf")
            np.matmul(Xs, Xs.T, out=sq)
            np.multiply(sq, -2.0, out=sq)
            np.add(sq, rn[:, None], out=sq)
            np.add(sq, rn[None, :], out=sq)
            np.maximum(sq, 0.0, out=sq)
            np.fill_diagonal(sq, 0.0)
            ws.cache["sq_key"] = key
        return ws.cache["sq_buf"]

    def corr_state(
        self, ws: KernelWorkspace, need_dg: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """``(sq, g, dg)`` at the current hyperparameters (memoized).

        ``dg`` is computed lazily (and only when requested) so Gram-only
        callers — prediction refits, incremental updates — never pay for
        it.  Callers that know upfront they need the gradient (the
        marginal-likelihood evaluator) request ``need_dg=True`` before the
        first Gram evaluation so ``g`` and ``dg`` are computed fused.
        """
        sq = self._ws_scaled_sq(ws)
        key = ws.cache["sq_key"] + self._shape_key()
        g = self._ws_buffer(ws, "g_buf")
        if ws.cache.get("corr_key") != key:
            ws.cache["corr_key"] = key
            dg = self._ws_buffer(ws, "dg_buf") if need_dg else None
            self._corr_into(sq, g, dg, self._ws_buffer(ws, "tmp_buf"))
            ws.cache["corr_has_dg"] = need_dg
        elif need_dg and not ws.cache.get("corr_has_dg"):
            dg = self._ws_buffer(ws, "dg_buf")
            from_g = self._dg_from_g(sq, g)
            dg[...] = self._dg_dsq(sq) if from_g is None else from_g
            ws.cache["corr_has_dg"] = True
        dg = ws.cache["dg_buf"] if ws.cache.get("corr_has_dg") else None
        return sq, g, dg

    def gram(self, ws: KernelWorkspace) -> np.ndarray:
        _, g, _ = self.corr_state(ws)
        return self.variance * g

    def gradient_inner_products(
        self, ws: KernelWorkspace, inner: np.ndarray
    ) -> np.ndarray:
        sq, g, dg = self.corr_state(ws, need_dg=True)
        n_ls = self.lengthscales.shape[0]
        out = np.empty(1 + (n_ls if self.ard else 1))
        out[0] = 0.5 * self.variance * np.vdot(inner, g)
        W = self._ws_buffer(ws, "w_buf")
        np.multiply(inner, dg, out=W)
        X = ws.X
        ops = compiled_ops()
        if ops is not None:
            # compiled backend: one parallel O(n^2 d) sweep over the
            # literal (x_ik - x_jk)^2 differences, no GEMM intermediates
            vec = ops.ard_grad_vec(W, X)
        else:
            X2 = ws.cache.get("X2")
            if X2 is None:
                X2 = ws.cache["X2"] = X * X
            # <W, (x_ik - x_jk)^2> for every dimension k at once, via the
            # expansion sum_ij W_ij (x_ik^2 + x_jk^2 - 2 x_ik x_jk): only
            # O(n^2 d) GEMM work on (n, d) operands instead of a dense
            # (d, n, n) difference tensor sweep
            rc = W.sum(axis=0)
            rc += W.sum(axis=1)
            vec = X2.T @ rc
            vec -= 2.0 * np.einsum("ik,ik->k", X, W @ X)
        invl2 = self.lengthscales**-2.0
        if self.ard:
            # 0.5 tr(inner dK_k) = -v / l_k^2 * <inner * dg, diff2_k>
            out[1:] = -self.variance * invl2 * vec
        else:
            out[1] = -self.variance * float(invl2[0]) * vec.sum()
        extras = self._extra_gradients(sq)
        if extras:
            out = np.concatenate(
                [out, [0.5 * np.vdot(inner, dK) for dK in extras]]
            )
        return out

    def cross(self, ws: KernelWorkspace, Z: np.ndarray) -> np.ndarray:
        Z = as_matrix(Z, self.dim)
        key = self.lengthscales.tobytes()
        if ws.cache.get("cross_key") != key:
            Xs = ws.X / self.lengthscales
            ws.cache["cross_key"] = key
            ws.cache["cross_Xs"] = Xs
            ws.cache["cross_xs_sq"] = np.einsum("ij,ij->i", Xs, Xs)
        Xs = ws.cache["cross_Xs"]
        xs_sq = ws.cache["cross_xs_sq"]
        Zs = Z / self.lengthscales
        zs_sq = np.einsum("ij,ij->i", Zs, Zs)
        sq = xs_sq[:, None] + zs_sq[None, :] - 2.0 * (Xs @ Zs.T)
        np.maximum(sq, 0.0, out=sq)
        return self.variance * self._g(sq)


class SquaredExponential(StationaryKernel):
    """Squared-exponential (RBF) kernel ``v * exp(-r^2 / 2)``."""

    def _g(self, sq: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * sq)

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        return -0.5 * np.exp(-0.5 * sq)

    def _dg_from_g(self, sq: np.ndarray, g: np.ndarray) -> np.ndarray:
        return -0.5 * g

    @shape_contract(
        "sq: (n, n), g_out: (n, n), dg_out?: (n, n), scratch: (n, n)",
        check_finite=False,  # out/scratch buffers hold uninitialized memory
    )
    def _corr_into(
        self,
        sq: np.ndarray,
        g_out: np.ndarray,
        dg_out: np.ndarray | None,
        scratch: np.ndarray,
    ) -> None:
        ops = compiled_ops()
        if ops is not None:
            if dg_out is None:
                ops.rbf_corr(sq, g_out)
            else:
                ops.rbf_corr_grad(sq, g_out, dg_out)
            return
        np.multiply(sq, -0.5, out=g_out)
        np.exp(g_out, out=g_out)
        if dg_out is not None:
            np.multiply(g_out, -0.5, out=dg_out)


#: Common alias for :class:`SquaredExponential`.
RBF = SquaredExponential


def _safe_sqrt(sq: np.ndarray) -> np.ndarray:
    return np.sqrt(np.maximum(sq, 0.0))


class Matern12(StationaryKernel):
    """Matérn ν=1/2 (exponential) kernel ``v * exp(-r)``."""

    def _g(self, sq: np.ndarray) -> np.ndarray:
        return np.exp(-_safe_sqrt(sq))

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        r = _safe_sqrt(sq)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(r > 0, -np.exp(-r) / (2.0 * np.maximum(r, 1e-300)), 0.0)
        return out

    def _dg_from_g(self, sq: np.ndarray, g: np.ndarray) -> np.ndarray:
        r = _safe_sqrt(sq)
        return np.where(r > 0, -g / (2.0 * np.maximum(r, 1e-300)), 0.0)


class Matern32(StationaryKernel):
    """Matérn ν=3/2 kernel ``v * (1 + √3 r) exp(-√3 r)``."""

    def _g(self, sq: np.ndarray) -> np.ndarray:
        r = _safe_sqrt(sq)
        return (1.0 + _SQRT3 * r) * np.exp(-_SQRT3 * r)

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        # dg/d(sq) = (dg/dr) / (2r) = -3 r exp(-√3 r) / (2r) = -1.5 exp(-√3 r)
        r = _safe_sqrt(sq)
        return -1.5 * np.exp(-_SQRT3 * r)

    def _dg_from_g(self, sq: np.ndarray, g: np.ndarray) -> np.ndarray:
        # exp(-√3 r) = g / (1 + √3 r), and the denominator is >= 1
        return -1.5 * g / (1.0 + _SQRT3 * _safe_sqrt(sq))


class Matern52(StationaryKernel):
    """Matérn ν=5/2 kernel ``v * (1 + √5 r + 5 r²/3) exp(-√5 r)``."""

    def _g(self, sq: np.ndarray) -> np.ndarray:
        r = _safe_sqrt(sq)
        return (1.0 + _SQRT5 * r + (5.0 / 3.0) * sq) * np.exp(-_SQRT5 * r)

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        # dg/dr = -(5r/3)(1 + √5 r) exp(-√5 r); dg/dsq = dg/dr / (2r)
        r = _safe_sqrt(sq)
        return -(5.0 / 6.0) * (1.0 + _SQRT5 * r) * np.exp(-_SQRT5 * r)

    def _dg_from_g(self, sq: np.ndarray, g: np.ndarray) -> np.ndarray:
        # exp(-√5 r) = g / (1 + √5 r + 5 sq / 3), denominator >= 1
        sr = _safe_sqrt(sq)
        sr *= _SQRT5
        sr += 1.0
        den = sq * (5.0 / 3.0)
        den += sr
        out = np.multiply(sr, g, out=sr)
        out *= -(5.0 / 6.0)
        out /= den
        return out

    @shape_contract(
        "sq: (n, n), g_out: (n, n), dg_out?: (n, n), scratch: (n, n)",
        check_finite=False,  # out/scratch buffers hold uninitialized memory
    )
    def _corr_into(
        self,
        sq: np.ndarray,
        g_out: np.ndarray,
        dg_out: np.ndarray | None,
        scratch: np.ndarray,
    ) -> None:
        ops = compiled_ops()
        if ops is not None:
            if dg_out is None:
                ops.matern52_corr(sq, g_out)
            else:
                ops.matern52_corr_grad(sq, g_out, dg_out)
            return
        # Fully fused: one sqrt and one exp shared between g and dg, every
        # intermediate kept in the provided buffers.
        np.sqrt(sq, out=scratch)
        np.multiply(scratch, -_SQRT5, out=g_out)
        np.exp(g_out, out=g_out)  # e = exp(-√5 r)
        np.multiply(scratch, _SQRT5, out=scratch)
        scratch += 1.0  # p = 1 + √5 r
        if dg_out is not None:
            np.multiply(scratch, g_out, out=dg_out)
            dg_out *= -(5.0 / 6.0)  # dg = -(5/6) p e
            np.multiply(sq, g_out, out=scratch)
            scratch *= 5.0 / 3.0  # (5/3) sq e
            np.multiply(dg_out, -(6.0 / 5.0), out=g_out)  # p e
            g_out += scratch  # g = (p + 5/3 sq) e
        else:
            np.multiply(scratch, g_out, out=scratch)  # p e
            np.multiply(sq, g_out, out=g_out)
            g_out *= 5.0 / 3.0
            g_out += scratch


class RationalQuadratic(StationaryKernel):
    """Rational-quadratic kernel ``v * (1 + r²/(2α))^{-α}``.

    Behaves like a scale mixture of SE kernels; ``alpha`` is an extra
    hyperparameter appended to the end of ``theta``.
    """

    def __init__(
        self,
        dim: int | None = None,
        variance: float = 1.0,
        lengthscale: float | np.ndarray = 1.0,
        ard: bool = False,
        alpha: float = 1.0,
    ) -> None:
        super().__init__(dim=dim, variance=variance, lengthscale=lengthscale, ard=ard)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate(
            [[np.log(self.variance)], np.log(self.lengthscales), [np.log(self.alpha)]]
        )

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        expected = 2 + self.lengthscales.shape[0]
        if value.shape != (expected,):
            raise ValueError(
                f"theta must have shape ({expected},), got {value.shape}"
            )
        self.variance = float(np.exp(value[0]))
        self.lengthscales = np.exp(value[1:-1])
        self.alpha = float(np.exp(value[-1]))

    def theta_bounds(self) -> np.ndarray:
        base = super().theta_bounds()
        alpha_bounds = np.array([[np.log(1e-2), np.log(1e2)]], dtype=float)
        return np.vstack([base, alpha_bounds])

    def _g(self, sq: np.ndarray) -> np.ndarray:
        return (1.0 + sq / (2.0 * self.alpha)) ** (-self.alpha)

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        return -0.5 * (1.0 + sq / (2.0 * self.alpha)) ** (-self.alpha - 1.0)

    def _dg_from_g(self, sq: np.ndarray, g: np.ndarray) -> np.ndarray:
        return -0.5 * g / (1.0 + sq / (2.0 * self.alpha))

    def _shape_key(self) -> bytes:
        return np.float64(self.alpha).tobytes()

    def _extra_gradients(self, sq: np.ndarray) -> list[np.ndarray]:
        # reuses the scaled squared distances the base class just computed
        s = 1.0 + sq / (2.0 * self.alpha)
        # dK/d(alpha) = v * s^{-alpha} * (-log s + sq / (2 alpha s))
        dk_dalpha = (
            self.variance
            * s ** (-self.alpha)
            * (-np.log(s) + sq / (2.0 * self.alpha * s))
        )
        return [self.alpha * dk_dalpha]  # chain rule to log alpha


class WhiteNoise(Kernel):
    """White-noise kernel ``v * 1[x == x']`` (by index, for training inputs).

    The cross Gram matrix against distinct test points is zero; the diagonal
    carries the noise variance.  Used mainly to build composite kernels in
    tests — the GP model itself carries an explicit noise term.
    """

    def __init__(self, variance: float = 1.0) -> None:
        if variance <= 0:
            raise ValueError(f"variance must be positive, got {variance}")
        self.variance = float(variance)

    @property
    def theta(self) -> np.ndarray:
        return np.array([np.log(self.variance)], dtype=float)

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        if value.shape != (1,):
            raise ValueError(f"theta must have shape (1,), got {value.shape}")
        self.variance = float(np.exp(value[0]))

    def theta_bounds(self) -> np.ndarray:
        return np.array([[np.log(1e-9), np.log(1e3)]], dtype=float)

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X = as_matrix(X)
        if Z is None:
            return self.variance * np.eye(X.shape[0])
        Z = as_matrix(Z)
        return np.zeros((X.shape[0], Z.shape[0]))

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = as_matrix(X)
        return np.full(X.shape[0], self.variance)

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        X = as_matrix(X)
        return [self.variance * np.eye(X.shape[0])]
