"""Stationary covariance functions with optional ARD lengthscales.

The paper's GP surrogate (Section 2.2.1) uses the squared-exponential or
Matérn families; all of them are provided here with analytic gradients with
respect to log-hyperparameters so that marginal-likelihood fitting is exact.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, pairwise_sq_dists
from repro.utils.validation import as_matrix

_SQRT3 = np.sqrt(3.0)
_SQRT5 = np.sqrt(5.0)


class StationaryKernel(Kernel):
    """Base class for kernels of the form ``variance * g(r)``.

    Parameters
    ----------
    dim:
        Input dimensionality.  Required when ``ard=True``.
    variance:
        Signal variance (the kernel value at zero distance).
    lengthscale:
        Scalar lengthscale, or per-dimension vector when ``ard=True``.
    ard:
        Use one lengthscale per input dimension (automatic relevance
        determination).
    """

    def __init__(
        self,
        dim: int | None = None,
        variance: float = 1.0,
        lengthscale: float | np.ndarray = 1.0,
        ard: bool = False,
    ) -> None:
        if variance <= 0:
            raise ValueError(f"variance must be positive, got {variance}")
        self.dim = dim
        self.ard = bool(ard)
        ls = np.atleast_1d(np.asarray(lengthscale, dtype=float))
        if self.ard:
            if dim is None:
                raise ValueError("dim is required for an ARD kernel")
            if ls.shape[0] == 1:
                ls = np.full(dim, ls[0])
            if ls.shape[0] != dim:
                raise ValueError(
                    f"lengthscale has {ls.shape[0]} entries, expected {dim}"
                )
        elif ls.shape[0] != 1:
            raise ValueError("non-ARD kernel takes a scalar lengthscale")
        if np.any(ls <= 0):
            raise ValueError("lengthscales must be positive")
        self.variance = float(variance)
        self.lengthscales = ls

    # -- hyperparameter vector: [log variance, log lengthscales...] --------

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate(
            [[np.log(self.variance)], np.log(self.lengthscales)]
        )

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        expected = 1 + self.lengthscales.shape[0]
        if value.shape != (expected,):
            raise ValueError(
                f"theta must have shape ({expected},), got {value.shape}"
            )
        self.variance = float(np.exp(value[0]))
        self.lengthscales = np.exp(value[1:])

    def theta_bounds(self) -> np.ndarray:
        n_ls = self.lengthscales.shape[0]
        bounds = np.empty((1 + n_ls, 2))
        bounds[0] = (np.log(1e-6), np.log(1e6))
        bounds[1:] = (np.log(1e-3), np.log(1e3))
        return bounds

    # -- distance helpers ---------------------------------------------------

    def _scaled_sq_dists(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return pairwise_sq_dists(X, Z, self.lengthscales)

    def _per_dim_sq_dists(self, X: np.ndarray) -> list[np.ndarray]:
        """``u_k[i,j] = (x_ik - x_jk)^2 / l_k^2`` for each ARD dimension."""
        X = as_matrix(X)
        out = []
        for k in range(X.shape[1]):
            d = (X[:, k][:, None] - X[:, k][None, :]) / self.lengthscales[k]
            out.append(d**2)
        return out

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = as_matrix(X)
        return np.full(X.shape[0], self.variance)

    # -- subclass hooks ------------------------------------------------------

    def _g(self, sq: np.ndarray) -> np.ndarray:
        """Correlation as a function of the scaled squared distance."""
        raise NotImplementedError

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        """Derivative of the correlation w.r.t. the scaled squared distance."""
        raise NotImplementedError

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X = as_matrix(X, self.dim)
        if Z is None:
            # exact zeros on the self-Gram diagonal: the O(eps) cancellation
            # noise of the distance formula is amplified unboundedly by the
            # sqrt in the non-smooth Matern kernels
            sq = self._scaled_sq_dists(X, X)
            np.fill_diagonal(sq, 0.0)
            return self.variance * self._g(sq)
        Z = as_matrix(Z, self.dim)
        return self.variance * self._g(self._scaled_sq_dists(X, Z))

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        X = as_matrix(X, self.dim)
        sq = self._scaled_sq_dists(X, X)
        np.fill_diagonal(sq, 0.0)
        g = self._g(sq)
        dg = self._dg_dsq(sq)
        grads = [self.variance * g]  # d/d log variance
        if self.ard:
            # d sq / d log l_k = -2 u_k
            for u in self._per_dim_sq_dists(X):
                grads.append(self.variance * dg * (-2.0 * u))
        else:
            grads.append(self.variance * dg * (-2.0 * sq))
        return grads


class SquaredExponential(StationaryKernel):
    """Squared-exponential (RBF) kernel ``v * exp(-r^2 / 2)``."""

    def _g(self, sq: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * sq)

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        return -0.5 * np.exp(-0.5 * sq)


#: Common alias for :class:`SquaredExponential`.
RBF = SquaredExponential


def _safe_sqrt(sq: np.ndarray) -> np.ndarray:
    return np.sqrt(np.maximum(sq, 0.0))


class Matern12(StationaryKernel):
    """Matérn ν=1/2 (exponential) kernel ``v * exp(-r)``."""

    def _g(self, sq: np.ndarray) -> np.ndarray:
        return np.exp(-_safe_sqrt(sq))

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        r = _safe_sqrt(sq)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(r > 0, -np.exp(-r) / (2.0 * np.maximum(r, 1e-300)), 0.0)
        return out


class Matern32(StationaryKernel):
    """Matérn ν=3/2 kernel ``v * (1 + √3 r) exp(-√3 r)``."""

    def _g(self, sq: np.ndarray) -> np.ndarray:
        r = _safe_sqrt(sq)
        return (1.0 + _SQRT3 * r) * np.exp(-_SQRT3 * r)

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        # dg/d(sq) = (dg/dr) / (2r) = -3 r exp(-√3 r) / (2r) = -1.5 exp(-√3 r)
        r = _safe_sqrt(sq)
        return -1.5 * np.exp(-_SQRT3 * r)


class Matern52(StationaryKernel):
    """Matérn ν=5/2 kernel ``v * (1 + √5 r + 5 r²/3) exp(-√5 r)``."""

    def _g(self, sq: np.ndarray) -> np.ndarray:
        r = _safe_sqrt(sq)
        return (1.0 + _SQRT5 * r + (5.0 / 3.0) * sq) * np.exp(-_SQRT5 * r)

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        # dg/dr = -(5r/3)(1 + √5 r) exp(-√5 r); dg/dsq = dg/dr / (2r)
        r = _safe_sqrt(sq)
        return -(5.0 / 6.0) * (1.0 + _SQRT5 * r) * np.exp(-_SQRT5 * r)


class RationalQuadratic(StationaryKernel):
    """Rational-quadratic kernel ``v * (1 + r²/(2α))^{-α}``.

    Behaves like a scale mixture of SE kernels; ``alpha`` is an extra
    hyperparameter appended to the end of ``theta``.
    """

    def __init__(
        self,
        dim: int | None = None,
        variance: float = 1.0,
        lengthscale: float | np.ndarray = 1.0,
        ard: bool = False,
        alpha: float = 1.0,
    ) -> None:
        super().__init__(dim=dim, variance=variance, lengthscale=lengthscale, ard=ard)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate(
            [[np.log(self.variance)], np.log(self.lengthscales), [np.log(self.alpha)]]
        )

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        expected = 2 + self.lengthscales.shape[0]
        if value.shape != (expected,):
            raise ValueError(
                f"theta must have shape ({expected},), got {value.shape}"
            )
        self.variance = float(np.exp(value[0]))
        self.lengthscales = np.exp(value[1:-1])
        self.alpha = float(np.exp(value[-1]))

    def theta_bounds(self) -> np.ndarray:
        base = super().theta_bounds()
        alpha_bounds = np.array([[np.log(1e-2), np.log(1e2)]])
        return np.vstack([base, alpha_bounds])

    def _g(self, sq: np.ndarray) -> np.ndarray:
        return (1.0 + sq / (2.0 * self.alpha)) ** (-self.alpha)

    def _dg_dsq(self, sq: np.ndarray) -> np.ndarray:
        return -0.5 * (1.0 + sq / (2.0 * self.alpha)) ** (-self.alpha - 1.0)

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        grads = super().gradients(X)
        X = as_matrix(X, self.dim)
        sq = self._scaled_sq_dists(X, X)
        s = 1.0 + sq / (2.0 * self.alpha)
        # dK/d(alpha) = v * s^{-alpha} * (-log s + sq / (2 alpha s))
        dk_dalpha = (
            self.variance
            * s ** (-self.alpha)
            * (-np.log(s) + sq / (2.0 * self.alpha * s))
        )
        grads.append(self.alpha * dk_dalpha)  # chain rule to log alpha
        return grads


class WhiteNoise(Kernel):
    """White-noise kernel ``v * 1[x == x']`` (by index, for training inputs).

    The cross Gram matrix against distinct test points is zero; the diagonal
    carries the noise variance.  Used mainly to build composite kernels in
    tests — the GP model itself carries an explicit noise term.
    """

    def __init__(self, variance: float = 1.0) -> None:
        if variance <= 0:
            raise ValueError(f"variance must be positive, got {variance}")
        self.variance = float(variance)

    @property
    def theta(self) -> np.ndarray:
        return np.array([np.log(self.variance)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        if value.shape != (1,):
            raise ValueError(f"theta must have shape (1,), got {value.shape}")
        self.variance = float(np.exp(value[0]))

    def theta_bounds(self) -> np.ndarray:
        return np.array([[np.log(1e-9), np.log(1e3)]])

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X = as_matrix(X)
        if Z is None:
            return self.variance * np.eye(X.shape[0])
        Z = as_matrix(Z)
        return np.zeros((X.shape[0], Z.shape[0]))

    def diag(self, X: np.ndarray) -> np.ndarray:
        X = as_matrix(X)
        return np.full(X.shape[0], self.variance)

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        X = as_matrix(X)
        return [self.variance * np.eye(X.shape[0])]
