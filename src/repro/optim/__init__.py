"""Derivative-free optimizers (paper Sections 3 and 5.1).

``Direct`` (DIRECT / DIRECT-L) and ``Cobyla`` mirror the paper's NLopt
back-ends; ``NelderMead``, ``CmaEs``, ``RandomSearch`` and the composition
drivers support ablations and the Fig. 2 scaling study.
"""

from repro.optim.base import CountingObjective, Objective, Optimizer
from repro.optim.cmaes import CmaEs
from repro.optim.cobyla import Cobyla
from repro.optim.direct import Direct
from repro.optim.multistart import GlobalLocalOptimizer, MultiStartOptimizer
from repro.optim.nelder_mead import NelderMead
from repro.optim.random_search import RandomSearch
from repro.optim.result import OptimizationResult

__all__ = [
    "Objective",
    "Optimizer",
    "CountingObjective",
    "OptimizationResult",
    "Direct",
    "Cobyla",
    "NelderMead",
    "CmaEs",
    "RandomSearch",
    "GlobalLocalOptimizer",
    "MultiStartOptimizer",
]
