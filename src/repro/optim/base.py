"""Optimizer interface shared by the global and local search methods."""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.optim.result import OptimizationResult
from repro.utils.validation import check_bounds

Objective = Callable[[np.ndarray], float]


class Optimizer(abc.ABC):
    """A bounded, derivative-free minimizer.

    Subclasses implement :meth:`_minimize` on validated bounds; the public
    :meth:`minimize` handles bound normalization and sanity checks.
    """

    @abc.abstractmethod
    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult: ...

    def minimize(
        self,
        fun: Objective,
        bounds,
        x0: np.ndarray | None = None,
    ) -> OptimizationResult:
        """Minimize ``fun`` over the box ``bounds``.

        ``bounds`` is ``(dim, 2)`` rows of ``(lo, hi)``.  ``x0`` (optional)
        seeds optimizers that support warm starts; it is clipped into the
        box.
        """
        lower, upper = check_bounds(bounds)
        if x0 is not None:
            x0 = np.clip(np.asarray(x0, dtype=float), lower, upper)
            if x0.shape != lower.shape:
                raise ValueError(
                    f"x0 has shape {x0.shape}, bounds cover {lower.shape[0]} dims"
                )
        return self._minimize(fun, lower, upper, x0)


class CountingObjective:
    """Wrap an objective to count evaluations and track the best point.

    Used both by optimizers that need a best-so-far trace and by the Fig. 2
    benchmark, which reports evaluations-per-optimization versus dimension.
    """

    def __init__(self, fun: Objective) -> None:
        self._fun = fun
        self.n_evaluations = 0
        self.best_x: np.ndarray | None = None
        self.best_f = np.inf
        self.history: list[tuple[int, float]] = []

    def __call__(self, x: np.ndarray) -> float:
        value = float(self._fun(np.asarray(x, dtype=float)))
        self.n_evaluations += 1
        if value < self.best_f:
            self.best_f = value
            self.best_x = np.array(x, dtype=float)
            self.history.append((self.n_evaluations, value))
        return value

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        """Score a ``(m, dim)`` batch, counting each row in order.

        Objectives exposing a batched ``evaluate(X) -> (m,)`` method (the
        acquisition functions) are called once for the whole batch; plain
        callables fall back to a row-by-row loop.  Best-so-far bookkeeping
        is identical to ``m`` sequential :meth:`__call__`\\ s.
        """
        X = np.asarray(X, dtype=float)
        batch = getattr(self._fun, "evaluate", None)
        if batch is not None:
            values = np.asarray(batch(X), dtype=float)
        else:
            values = np.array([float(self._fun(x)) for x in X], dtype=float)
        for i in range(X.shape[0]):
            self.n_evaluations += 1
            value = float(values[i])
            if value < self.best_f:
                self.best_f = value
                self.best_x = np.array(X[i], dtype=float)
                self.history.append((self.n_evaluations, value))
        return values
