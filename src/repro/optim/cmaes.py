"""A compact (mu/mu_w, lambda)-CMA-ES for box-bounded minimization.

Provided as an extension optimizer (not used by the paper) so ablation
benches can compare acquisition-optimization back-ends.  Implements the
standard rank-mu + rank-one covariance update with cumulative step-size
adaptation (Hansen's tutorial parameterization) and resampling-free bound
handling by clipping with a penalty on the clip distance.
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import CountingObjective, Objective, Optimizer
from repro.optim.result import OptimizationResult
from repro.utils.rng import SeedLike, as_generator


class CmaEs(Optimizer):
    """Covariance-matrix-adaptation evolution strategy over a box."""

    def __init__(
        self,
        max_evaluations: int = 5000,
        population: int | None = None,
        sigma0: float = 0.3,
        seed: SeedLike = None,
        f_tolerance: float = 1e-12,
    ) -> None:
        if max_evaluations < 2:
            raise ValueError(f"max_evaluations must be >= 2, got {max_evaluations}")
        if not 0 < sigma0 <= 1:
            raise ValueError(f"sigma0 must be in (0, 1], got {sigma0}")
        self.max_evaluations = int(max_evaluations)
        self.population = population
        self.sigma0 = float(sigma0)
        self.f_tolerance = float(f_tolerance)
        self._rng = as_generator(seed)

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        dim = lower.shape[0]
        span = upper - lower
        counted = CountingObjective(fun)
        rng = self._rng

        lam = self.population or 4 + int(3 * np.log(dim))
        lam = max(lam, 4)
        mu = lam // 2
        weights = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
        weights /= weights.sum()
        mu_eff = 1.0 / np.sum(weights**2)

        # strategy parameters (Hansen's defaults)
        c_sigma = (mu_eff + 2.0) / (dim + mu_eff + 5.0)
        d_sigma = 1.0 + 2.0 * max(0.0, np.sqrt((mu_eff - 1.0) / (dim + 1.0)) - 1.0) + c_sigma
        c_c = (4.0 + mu_eff / dim) / (dim + 4.0 + 2.0 * mu_eff / dim)
        c_1 = 2.0 / ((dim + 1.3) ** 2 + mu_eff)
        c_mu = min(
            1.0 - c_1,
            2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((dim + 2.0) ** 2 + mu_eff),
        )
        chi_n = np.sqrt(dim) * (1.0 - 1.0 / (4.0 * dim) + 1.0 / (21.0 * dim**2))

        # state, expressed in normalized [0, 1] coordinates
        mean = (
            (np.clip(x0, lower, upper) - lower) / span
            if x0 is not None
            else np.full(dim, 0.5)
        )
        sigma = self.sigma0
        C = np.eye(dim)
        p_sigma = np.zeros(dim)
        p_c = np.zeros(dim)

        iteration = 0
        message = "evaluation budget exhausted"
        success = False
        while counted.n_evaluations + lam <= self.max_evaluations:
            iteration += 1
            # eigendecomposition for sampling (dim is small in our use)
            eigvals, B = np.linalg.eigh(C)
            eigvals = np.maximum(eigvals, 1e-20)
            D = np.sqrt(eigvals)

            zs = rng.standard_normal((lam, dim))
            ys = zs * D @ B.T  # y_k = B D z_k
            xs = mean + sigma * ys
            xs_clipped = np.clip(xs, 0.0, 1.0)
            penalties = np.sum((xs - xs_clipped) ** 2, axis=1)
            fs = np.array(
                [counted(lower + xc * span) for xc in xs_clipped], dtype=float
            ) + penalties

            order = np.argsort(fs)
            y_sel = ys[order[:mu]]
            y_w = weights @ y_sel
            mean = np.clip(mean + sigma * y_w, 0.0, 1.0)

            # cumulative step-size adaptation
            inv_sqrt_y = (y_w @ B) / D @ B.T
            p_sigma = (1.0 - c_sigma) * p_sigma + np.sqrt(
                c_sigma * (2.0 - c_sigma) * mu_eff
            ) * inv_sqrt_y
            sigma *= np.exp(
                (c_sigma / d_sigma) * (np.linalg.norm(p_sigma) / chi_n - 1.0)
            )
            sigma = float(np.clip(sigma, 1e-12, 1.0))

            h_sigma = (
                np.linalg.norm(p_sigma)
                / np.sqrt(1.0 - (1.0 - c_sigma) ** (2.0 * iteration))
                < (1.4 + 2.0 / (dim + 1.0)) * chi_n
            )
            p_c = (1.0 - c_c) * p_c + h_sigma * np.sqrt(
                c_c * (2.0 - c_c) * mu_eff
            ) * y_w

            rank_mu = sum(w * np.outer(y, y) for w, y in zip(weights, y_sel))
            C = (
                (1.0 - c_1 - c_mu) * C
                + c_1 * (np.outer(p_c, p_c) + (not h_sigma) * c_c * (2.0 - c_c) * C)
                + c_mu * rank_mu
            )
            C = 0.5 * (C + C.T)

            if fs[order[mu - 1]] - fs[order[0]] < self.f_tolerance and sigma < 1e-8:
                message, success = "population converged", True
                break

        if counted.best_x is None:
            # budget too small for one generation: evaluate the mean
            counted(lower + mean * span)
        return OptimizationResult(
            x=counted.best_x,
            fun=counted.best_f,
            n_evaluations=counted.n_evaluations,
            n_iterations=iteration,
            success=success,
            message=message,
            history=list(counted.history),
        )
