"""COBYLA-style local optimization by linear approximation (Powell 1994).

The paper polishes DIRECT-L's global candidates with NLopt's COBYLA.  This
module implements the same scheme from scratch for box-bounded problems:

* keep a simplex of ``n + 1`` interpolation points,
* build a linear model of the objective by interpolation over the simplex,
* take a trust-region step of radius ``rho`` against the model gradient,
* repair simplex geometry when it degenerates, and shrink ``rho`` when the
  model stops producing descent, until ``rho`` reaches ``rho_end``.

Like Powell's original, the cost of each ``rho`` level is ``O(n)``
evaluations (the simplex must span ``R^n``), which is what makes the
function-evaluation count grow super-linearly with dimension in Fig. 2.

Like :class:`~repro.optim.direct.Direct`, the search is a coroutine
(:meth:`Cobyla.search`) that yields candidate batches — a whole simplex
per geometry step, a single trust-region candidate otherwise — and
receives their objective values.  :meth:`minimize` drives the coroutine
against one objective; the pBO proposal path drives many coroutines in
lockstep so every round's candidate union shares a single GP posterior
evaluation.
"""

from __future__ import annotations

import warnings
from typing import Generator

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.optim.base import CountingObjective, Objective, Optimizer
from repro.optim.direct import SearchOutcome
from repro.optim.result import OptimizationResult


class Cobyla(Optimizer):
    """Linear-approximation trust-region minimizer over a box.

    Parameters
    ----------
    rho_begin:
        Initial trust-region radius, as a fraction of the shortest box side.
    rho_end:
        Final radius; convergence is declared when ``rho`` shrinks below it.
    max_evaluations:
        Objective evaluation budget.
    """

    def __init__(
        self,
        rho_begin: float = 0.25,
        rho_end: float = 1e-6,
        max_evaluations: int = 5000,
    ) -> None:
        if not 0 < rho_end < rho_begin:
            raise ValueError(
                f"need 0 < rho_end < rho_begin, got {rho_end}, {rho_begin}"
            )
        if max_evaluations < 2:
            raise ValueError(f"max_evaluations must be >= 2, got {max_evaluations}")
        self.rho_begin = float(rho_begin)
        self.rho_end = float(rho_end)
        self.max_evaluations = int(max_evaluations)

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        counted = CountingObjective(fun)
        engine = self.search(lower, upper, x0=x0)
        points = next(engine)
        outcome: SearchOutcome
        while True:
            values = counted.evaluate(points)
            try:
                points = engine.send(np.asarray(values, dtype=float))
            except StopIteration as stop:
                outcome = stop.value
                break
        return OptimizationResult(
            x=counted.best_x,
            fun=counted.best_f,
            n_evaluations=counted.n_evaluations,
            n_iterations=outcome.n_iterations,
            success=outcome.success,
            message=outcome.message,
            history=list(counted.history),
        )

    def search(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> Generator[np.ndarray, np.ndarray, SearchOutcome]:
        """Coroutine over the box yielding candidate batches.

        Each ``yield`` produces an ``(m, dim)`` array of points *in the
        original coordinates* (unlike :meth:`Direct.search`, which works
        on the unit cube); the caller sends back the ``(m,)`` objective
        values.  Geometry steps yield the whole rebuilt simplex at once,
        trust-region steps a single candidate; a caller tracking
        best-so-far state over the batches sees exactly the sequence a
        point-at-a-time evaluation would have produced.  Returns a
        :class:`~repro.optim.direct.SearchOutcome` via ``StopIteration``.
        """
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        dim = lower.shape[0]
        span = upper - lower
        rho = self.rho_begin * float(np.min(span))
        rho_end = self.rho_end * float(np.min(span))

        if x0 is None:
            x0 = 0.5 * (lower + upper)
        x0 = np.clip(np.asarray(x0, dtype=float), lower, upper)

        count = 0

        def clip(x: np.ndarray) -> np.ndarray:
            return np.clip(x, lower, upper)

        def simplex_vertices(anchor: np.ndarray, radius: float) -> np.ndarray:
            """Anchor plus one offset vertex per coordinate direction."""
            vertices = [anchor.copy()]
            for k in range(dim):
                step = np.zeros(dim)
                step[k] = radius if anchor[k] + radius <= upper[k] else -radius
                vertices.append(clip(anchor + step))
            return np.array(vertices, dtype=float)

        budget_left = lambda n: count + n <= self.max_evaluations

        if not budget_left(dim + 1):
            # budget cannot even hold a simplex; fall back to evaluating x0
            yield x0[None, :]
            count += 1
            return SearchOutcome(
                message="evaluation budget below simplex size",
                success=False,
                n_iterations=0,
            )

        # one batched yield per simplex: lockstep callers score the whole
        # simplex in a single posterior evaluation instead of dim + 1
        V = simplex_vertices(x0, rho)
        f = np.asarray((yield V), dtype=float)
        count += V.shape[0]
        iteration = 0
        message = "evaluation budget exhausted"
        success = False

        while budget_left(1):
            iteration += 1
            order = np.argsort(f)
            V, f = V[order], f[order]
            best = V[0]

            # linear interpolation model: S g = df.  S is square (dim + 1
            # vertices), so one LU factorization both solves the system and
            # exposes degeneracy through the magnitude of its pivots — far
            # cheaper than the SVD an lstsq/matrix_rank pair would run.
            S = V[1:] - V[0]
            df = f[1:] - f[0]
            tol = 1e-12 * max(rho, 1e-300)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")  # exact-singular LU warns
                lu, piv = lu_factor(S, check_finite=False)
            pivots = np.abs(np.einsum("ii->i", lu))
            degenerate = bool(pivots.min() <= tol)
            grad_norm = 0.0
            if not degenerate:
                g = lu_solve((lu, piv), df, check_finite=False)
                grad_norm = float(np.linalg.norm(g))
            if grad_norm < 1e-14 or degenerate:
                # geometry step: rebuild the simplex around the incumbent
                if rho <= rho_end:
                    message, success = "rho converged", True
                    break
                rho *= 0.5
                if not budget_left(dim + 1):
                    break
                V = simplex_vertices(best, rho)
                f = np.asarray((yield V), dtype=float)
                count += V.shape[0]
                continue

            candidate = clip(best - rho * g / grad_norm)
            if np.allclose(candidate, best):
                # step blocked by the bounds; treat as no descent (and do
                # not spend an evaluation on it)
                f_new = np.inf
            else:
                f_new = float(
                    np.asarray((yield candidate[None, :]), dtype=float)[0]
                )
                count += 1

            if f_new < f[0]:
                # descent: replace the worst vertex, keep the radius
                V[-1], f[-1] = candidate, f_new
            elif f_new < f[-1]:
                # mild progress: still improves the simplex
                V[-1], f[-1] = candidate, f_new
                rho *= 0.5
            else:
                rho *= 0.5
            if rho <= rho_end:
                message, success = "rho converged", True
                break

        return SearchOutcome(
            message=message, success=success, n_iterations=iteration
        )
