"""COBYLA-style local optimization by linear approximation (Powell 1994).

The paper polishes DIRECT-L's global candidates with NLopt's COBYLA.  This
module implements the same scheme from scratch for box-bounded problems:

* keep a simplex of ``n + 1`` interpolation points,
* build a linear model of the objective by interpolation over the simplex,
* take a trust-region step of radius ``rho`` against the model gradient,
* repair simplex geometry when it degenerates, and shrink ``rho`` when the
  model stops producing descent, until ``rho`` reaches ``rho_end``.

Like Powell's original, the cost of each ``rho`` level is ``O(n)``
evaluations (the simplex must span ``R^n``), which is what makes the
function-evaluation count grow super-linearly with dimension in Fig. 2.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.optim.base import CountingObjective, Objective, Optimizer
from repro.optim.result import OptimizationResult


class Cobyla(Optimizer):
    """Linear-approximation trust-region minimizer over a box.

    Parameters
    ----------
    rho_begin:
        Initial trust-region radius, as a fraction of the shortest box side.
    rho_end:
        Final radius; convergence is declared when ``rho`` shrinks below it.
    max_evaluations:
        Objective evaluation budget.
    """

    def __init__(
        self,
        rho_begin: float = 0.25,
        rho_end: float = 1e-6,
        max_evaluations: int = 5000,
    ) -> None:
        if not 0 < rho_end < rho_begin:
            raise ValueError(
                f"need 0 < rho_end < rho_begin, got {rho_end}, {rho_begin}"
            )
        if max_evaluations < 2:
            raise ValueError(f"max_evaluations must be >= 2, got {max_evaluations}")
        self.rho_begin = float(rho_begin)
        self.rho_end = float(rho_end)
        self.max_evaluations = int(max_evaluations)

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        dim = lower.shape[0]
        span = upper - lower
        counted = CountingObjective(fun)
        rho = self.rho_begin * float(np.min(span))
        rho_end = self.rho_end * float(np.min(span))

        if x0 is None:
            x0 = 0.5 * (lower + upper)

        def clip(x: np.ndarray) -> np.ndarray:
            return np.clip(x, lower, upper)

        def build_simplex(anchor: np.ndarray, radius: float) -> tuple:
            """Anchor plus one offset vertex per coordinate direction."""
            vertices = [anchor.copy()]
            for k in range(dim):
                step = np.zeros(dim)
                step[k] = radius if anchor[k] + radius <= upper[k] else -radius
                vertices.append(clip(anchor + step))
            V = np.array(vertices, dtype=float)
            # one batched call: objectives with a vectorized ``evaluate``
            # (the acquisition functions) score the whole simplex in a
            # single posterior evaluation instead of dim + 1 of them
            f = np.asarray(counted.evaluate(V), dtype=float)
            return V, f

        budget_left = lambda n: counted.n_evaluations + n <= self.max_evaluations

        if not budget_left(dim + 1):
            # budget cannot even hold a simplex; fall back to evaluating x0
            f0 = counted(x0)
            return OptimizationResult(
                x=x0,
                fun=f0,
                n_evaluations=counted.n_evaluations,
                n_iterations=0,
                success=False,
                message="evaluation budget below simplex size",
                history=list(counted.history),
            )

        V, f = build_simplex(clip(x0), rho)
        iteration = 0
        message = "evaluation budget exhausted"
        success = False

        while budget_left(1):
            iteration += 1
            order = np.argsort(f)
            V, f = V[order], f[order]
            best, worst = V[0], V[-1]

            # linear interpolation model: S g = df.  S is square (dim + 1
            # vertices), so one LU factorization both solves the system and
            # exposes degeneracy through the magnitude of its pivots — far
            # cheaper than the SVD an lstsq/matrix_rank pair would run.
            S = V[1:] - V[0]
            df = f[1:] - f[0]
            tol = 1e-12 * max(rho, 1e-300)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")  # exact-singular LU warns
                lu, piv = lu_factor(S, check_finite=False)
            pivots = np.abs(np.einsum("ii->i", lu))
            degenerate = bool(pivots.min() <= tol)
            grad_norm = 0.0
            if not degenerate:
                g = lu_solve((lu, piv), df, check_finite=False)
                grad_norm = float(np.linalg.norm(g))
            if grad_norm < 1e-14 or degenerate:
                # geometry step: rebuild the simplex around the incumbent
                if rho <= rho_end:
                    message, success = "rho converged", True
                    break
                rho *= 0.5
                if not budget_left(dim + 1):
                    break
                V, f = build_simplex(best, rho)
                continue

            candidate = clip(best - rho * g / grad_norm)
            if np.allclose(candidate, best):
                # step blocked by the bounds; treat as no descent
                f_new = np.inf
            else:
                f_new = counted(candidate)

            if f_new < f[0]:
                # descent: replace the worst vertex, keep the radius
                V[-1], f[-1] = candidate, f_new
            elif f_new < f[-1]:
                # mild progress: still improves the simplex
                V[-1], f[-1] = candidate, f_new
                rho *= 0.5
            else:
                rho *= 0.5
            if rho <= rho_end:
                message, success = "rho converged", True
                break

        return OptimizationResult(
            x=counted.best_x,
            fun=counted.best_f,
            n_evaluations=counted.n_evaluations,
            n_iterations=iteration,
            success=success,
            message=message,
            history=list(counted.history),
        )
