"""DIRECT and DIRECT-L global optimization (Jones et al.; Gablonsky & Kelley).

The paper optimizes its acquisition functions with NLopt's ``DIRECT_L``;
this is a from-scratch implementation of the same algorithm family:

* the space is normalized to the unit cube and recursively trisected,
* each iteration selects *potentially optimal* hyperrectangles — the lower
  convex hull of (size, best-f) groups — and divides them,
* the locally-biased variant (``DIRECT-L``) measures rectangle size by the
  longest side, keeps at most one rectangle per size group, and trisects a
  single longest side per division, which biases the search toward local
  refinement and keeps the number of divisions per iteration small.

Only box bounds are supported, which is all acquisition optimization needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.optim.base import CountingObjective, Objective, Optimizer
from repro.optim.result import OptimizationResult

#: Epsilon of the potentially-optimal test (standard DIRECT magic constant).
_EPS = 1e-4


@dataclass
class _Rect:
    """A hyperrectangle in the normalized unit cube."""

    center: np.ndarray
    f: float
    levels: np.ndarray  # trisection count per dimension; side_k = 3^-levels_k
    size: float = field(default=0.0)  # cached size measure, set by Direct

    def side_lengths(self) -> np.ndarray:
        return 3.0 ** (-self.levels.astype(float))


class Direct(Optimizer):
    """DIRECT / DIRECT-L over a box.

    Parameters
    ----------
    max_evaluations:
        Objective evaluation budget.
    max_iterations:
        Cap on outer divide-select iterations.
    locally_biased:
        True (default) gives DIRECT-L, matching the paper's choice.
    f_target:
        Optional early-stop threshold: terminate once ``f <= f_target``.
    size_tolerance:
        Stop when the best rectangle's size measure falls below this.
    """

    def __init__(
        self,
        max_evaluations: int = 2000,
        max_iterations: int = 1000,
        locally_biased: bool = True,
        f_target: float | None = None,
        size_tolerance: float = 1e-8,
    ) -> None:
        if max_evaluations < 1:
            raise ValueError(f"max_evaluations must be >= 1, got {max_evaluations}")
        self.max_evaluations = int(max_evaluations)
        self.max_iterations = int(max_iterations)
        self.locally_biased = bool(locally_biased)
        self.f_target = f_target
        self.size_tolerance = float(size_tolerance)

    # -- geometry helpers --------------------------------------------------

    def _size(self, rect: _Rect) -> float:
        sides = rect.side_lengths()
        if self.locally_biased:
            return float(np.max(sides))  # longest side (Gablonsky)
        return float(0.5 * np.linalg.norm(sides))  # half-diagonal (Jones)

    @staticmethod
    def _potentially_optimal(
        groups: list[tuple[float, float, int]], f_best: float
    ) -> list[int]:
        """Lower-convex-hull selection over per-size (size, f, rect_index).

        ``groups`` must be sorted by size ascending with one entry per
        distinct size (the group's minimum f).  Returns rectangle indices.
        """
        hull: list[tuple[float, float, int]] = []
        for point in groups:
            while len(hull) >= 2:
                (d1, f1, _), (d2, f2, _) = hull[-2], hull[-1]
                d3, f3, _ = point
                # keep the lower hull: pop if hull[-1] lies above chord 1-3
                if (f2 - f1) * (d3 - d1) >= (f3 - f1) * (d2 - d1):
                    hull.pop()
                else:
                    break
            hull.append(point)
        # drop small rectangles whose potential improvement is negligible
        threshold = f_best - _EPS * abs(f_best)
        kept: list[int] = []
        for j, (d_j, f_j, idx) in enumerate(hull):
            if j + 1 < len(hull):
                d_next, f_next, _ = hull[j + 1]
                slope = (f_next - f_j) / max(d_next - d_j, 1e-300)
                if f_j - slope * d_j > threshold:
                    continue
            kept.append(idx)
        if not kept:  # always divide at least the largest rectangle
            kept = [hull[-1][2]]
        return kept

    # -- main loop -----------------------------------------------------------

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        dim = lower.shape[0]
        span = upper - lower
        counted = CountingObjective(fun)

        def eval_unit(u: np.ndarray) -> float:
            return counted(lower + u * span)

        center = np.full(dim, 0.5)
        root = _Rect(center=center, f=eval_unit(center), levels=np.zeros(dim, dtype=int))
        root.size = self._size(root)
        rects: list[_Rect] = [root]
        message = "max iterations reached"
        success = False
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            if self._done(counted):
                message, success = self._stop_reason(counted)
                break

            # group rectangles by (cached) size measure, per-size minimum
            by_size: dict[float, tuple[float, int]] = {}
            for i, rect in enumerate(rects):
                size = round(rect.size, 12)
                best = by_size.get(size)
                if best is None or rect.f < best[0]:
                    by_size[size] = (rect.f, i)
            groups = sorted(
                (size, f, idx) for size, (f, idx) in by_size.items()
            )
            if groups[-1][0] < self.size_tolerance:
                message, success = "size tolerance reached", True
                break

            selected = self._potentially_optimal(groups, counted.best_f)
            budget_exhausted = False
            for rect_idx in selected:
                if self._done(counted):
                    budget_exhausted = True
                    break
                self._divide(rects, rect_idx, eval_unit, counted)
            if budget_exhausted:
                message, success = self._stop_reason(counted)
                break
        else:
            iteration = self.max_iterations

        if counted.best_x is None:  # pragma: no cover - budget >= 1 guards this
            raise RuntimeError("DIRECT made no evaluations")
        if self._done(counted) and not success:
            message, success = self._stop_reason(counted)
        return OptimizationResult(
            x=counted.best_x,
            fun=counted.best_f,
            n_evaluations=counted.n_evaluations,
            n_iterations=iteration,
            success=success,
            message=message,
            history=list(counted.history),
        )

    def _done(self, counted: CountingObjective) -> bool:
        # a division costs two evaluations, so one remaining slot is as
        # exhausted as zero — without this the loop would spin eval-free
        if counted.n_evaluations + 2 > self.max_evaluations:
            return True
        return self.f_target is not None and counted.best_f <= self.f_target

    def _stop_reason(self, counted: CountingObjective) -> tuple[str, bool]:
        if self.f_target is not None and counted.best_f <= self.f_target:
            return "f_target reached", True
        return "evaluation budget exhausted", False

    def _divide(
        self,
        rects: list[_Rect],
        rect_idx: int,
        eval_unit,
        counted: CountingObjective,
    ) -> None:
        """Trisect ``rects[rect_idx]`` along its longest side(s)."""
        rect = rects[rect_idx]
        min_level = int(np.min(rect.levels))
        longest = np.flatnonzero(rect.levels == min_level)
        if self.locally_biased:
            longest = longest[:1]  # single longest side (DIRECT-L)

        delta = 3.0 ** (-(min_level + 1))
        samples: list[tuple[int, float, float, np.ndarray, np.ndarray]] = []
        for k in longest:
            if counted.n_evaluations + 2 > self.max_evaluations:
                break
            plus = rect.center.copy()
            plus[k] += delta
            minus = rect.center.copy()
            minus[k] -= delta
            f_plus = eval_unit(plus)
            f_minus = eval_unit(minus)
            samples.append((int(k), f_plus, f_minus, plus, minus))
        if not samples:
            return

        # divide best-w dimension first so it receives the largest children
        samples.sort(key=lambda item: min(item[1], item[2]))
        levels = rect.levels.copy()
        for k, f_plus, f_minus, plus, minus in samples:
            levels[k] += 1
            for child_center, child_f in ((plus, f_plus), (minus, f_minus)):
                child = _Rect(center=child_center, f=child_f, levels=levels.copy())
                child.size = self._size(child)
                rects.append(child)
        rect.levels = levels
        rect.size = self._size(rect)
