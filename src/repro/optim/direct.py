"""DIRECT and DIRECT-L global optimization (Jones et al.; Gablonsky & Kelley).

The paper optimizes its acquisition functions with NLopt's ``DIRECT_L``;
this is a from-scratch implementation of the same algorithm family:

* the space is normalized to the unit cube and recursively trisected,
* each iteration selects *potentially optimal* hyperrectangles — the lower
  convex hull of (size, best-f) groups — and divides them,
* the locally-biased variant (``DIRECT-L``) measures rectangle size by the
  longest side, keeps at most one rectangle per size group, and trisects a
  single longest side per division, which biases the search toward local
  refinement and keeps the number of divisions per iteration small.

Only box bounds are supported, which is all acquisition optimization needs.

The search is implemented as a coroutine (:meth:`Direct.search`) that yields
whole *batches* of unit-cube candidates and receives their objective values:
when no ``f_target`` is set, every division of an iteration collapses into a
single batch (budget gating is deterministic at two evaluations per
division), otherwise one batch per divided rectangle so the early-stop check
between rectangles keeps its sequential semantics.  :meth:`minimize` drives
the coroutine against a single objective; the BO proposal path drives
several coroutines in lockstep to share surrogate predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.optim.base import CountingObjective, Objective, Optimizer
from repro.optim.result import OptimizationResult

#: Epsilon of the potentially-optimal test (standard DIRECT magic constant).
_EPS = 1e-4

#: Longest-side measures 3^-level, precomputed: the selection loop touches
#: every live rectangle each iteration and must not re-derive powers.
_POW3 = 3.0 ** (-np.arange(64, dtype=float))


def _pow3(level: int) -> float:
    global _POW3
    if level >= _POW3.size:
        _POW3 = 3.0 ** (-np.arange(2 * level, dtype=float))
    return float(_POW3[level])


@dataclass
class SearchOutcome:
    """Terminal state of one :meth:`Direct.search` coroutine run."""

    message: str
    success: bool
    n_iterations: int


@dataclass(slots=True)
class _Rect:
    """A hyperrectangle in the normalized unit cube."""

    center: np.ndarray
    f: float
    levels: np.ndarray  # trisection count per dimension; side_k = 3^-levels_k
    size: float = field(default=0.0)  # cached size measure, set by Direct
    size_key: float = field(default=0.0)  # size rounded for grouping, ditto
    min_level: int = field(default=0)  # cached min(levels), ditto

    def side_lengths(self) -> np.ndarray:
        return 3.0 ** (-self.levels.astype(float))


class Direct(Optimizer):
    """DIRECT / DIRECT-L over a box.

    Parameters
    ----------
    max_evaluations:
        Objective evaluation budget.
    max_iterations:
        Cap on outer divide-select iterations.
    locally_biased:
        True (default) gives DIRECT-L, matching the paper's choice.
    f_target:
        Optional early-stop threshold: terminate once ``f <= f_target``.
    size_tolerance:
        Stop when the best rectangle's size measure falls below this.
    """

    def __init__(
        self,
        max_evaluations: int = 2000,
        max_iterations: int = 1000,
        locally_biased: bool = True,
        f_target: float | None = None,
        size_tolerance: float = 1e-8,
    ) -> None:
        if max_evaluations < 1:
            raise ValueError(f"max_evaluations must be >= 1, got {max_evaluations}")
        self.max_evaluations = int(max_evaluations)
        self.max_iterations = int(max_iterations)
        self.locally_biased = bool(locally_biased)
        self.f_target = f_target
        self.size_tolerance = float(size_tolerance)

    # -- geometry helpers --------------------------------------------------

    def _size(self, rect: _Rect) -> float:
        if self.locally_biased:
            return _pow3(rect.min_level)  # longest side (Gablonsky)
        sides = rect.side_lengths()
        return float(0.5 * np.linalg.norm(sides))  # half-diagonal (Jones)

    def _set_size(self, rect: _Rect) -> None:
        """Cache the size measure and its rounded grouping key on the rect.

        The selection loop groups every live rectangle per iteration; caching
        ``round(size, 12)`` here keeps that loop free of number formatting,
        and caching ``min(levels)`` spares the division planner per-rect
        array reductions.
        """
        rect.min_level = int(rect.levels.min())
        rect.size = self._size(rect)
        rect.size_key = round(rect.size, 12)

    @staticmethod
    def _potentially_optimal(
        groups: list[tuple[float, float, int]], f_best: float
    ) -> list[int]:
        """Lower-convex-hull selection over per-size (size, f, rect_index).

        ``groups`` must be sorted by size ascending with one entry per
        distinct size (the group's minimum f).  Returns rectangle indices.
        """
        hull: list[tuple[float, float, int]] = []
        for point in groups:
            while len(hull) >= 2:
                (d1, f1, _), (d2, f2, _) = hull[-2], hull[-1]
                d3, f3, _ = point
                # keep the lower hull: pop if hull[-1] lies above chord 1-3
                if (f2 - f1) * (d3 - d1) >= (f3 - f1) * (d2 - d1):
                    hull.pop()
                else:
                    break
            hull.append(point)
        # drop small rectangles whose potential improvement is negligible
        threshold = f_best - _EPS * abs(f_best)
        kept: list[int] = []
        for j, (d_j, f_j, idx) in enumerate(hull):
            if j + 1 < len(hull):
                d_next, f_next, _ = hull[j + 1]
                slope = (f_next - f_j) / max(d_next - d_j, 1e-300)
                if f_j - slope * d_j > threshold:
                    continue
            kept.append(idx)
        if not kept:  # always divide at least the largest rectangle
            kept = [hull[-1][2]]
        return kept

    # -- main loop -----------------------------------------------------------

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        dim = lower.shape[0]
        span = upper - lower
        counted = CountingObjective(fun)
        engine = self.search(dim)
        points = next(engine)
        outcome: SearchOutcome
        while True:
            values = counted.evaluate(lower + points * span)
            try:
                points = engine.send(values)
            except StopIteration as stop:
                outcome = stop.value
                break
        if counted.best_x is None:  # pragma: no cover - budget >= 1 guards this
            raise RuntimeError("DIRECT made no evaluations")
        return OptimizationResult(
            x=counted.best_x,
            fun=counted.best_f,
            n_evaluations=counted.n_evaluations,
            n_iterations=outcome.n_iterations,
            success=outcome.success,
            message=outcome.message,
            history=list(counted.history),
        )

    def search(
        self, dim: int
    ) -> Generator[np.ndarray, np.ndarray, SearchOutcome]:
        """Coroutine over the unit cube yielding candidate batches.

        Each ``yield`` produces an ``(m, dim)`` array of centers to score;
        the caller sends back the ``(m,)`` objective values.  Values are
        consumed in batch order, so a caller tracking best-so-far state sees
        exactly the sequence a point-at-a-time evaluation would have
        produced.  Returns a :class:`SearchOutcome` via ``StopIteration``.
        """
        center = np.full(dim, 0.5)
        values = yield center[None, :]
        count = 1
        best_f = float(values[0])
        root = _Rect(center=center, f=best_f, levels=np.zeros(dim, dtype=int))
        self._set_size(root)
        rects: list[_Rect] = [root]
        # parallel scalar mirrors of rects: the per-iteration grouping pass
        # touches every live rectangle, and plain-float list iteration beats
        # per-rect attribute lookups there
        size_keys: list[float] = [root.size_key]
        fs: list[float] = [root.f]
        message = "max iterations reached"
        success = False
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            if self._done(count, best_f):
                message, success = self._stop_reason(best_f)
                break

            # group rectangles by (cached) size measure, per-size minimum
            by_size: dict[float, tuple[float, int]] = {}
            for i, (size, f) in enumerate(zip(size_keys, fs)):
                best = by_size.get(size)
                if best is None or f < best[0]:
                    by_size[size] = (f, i)
            groups = sorted(
                (size, f, idx) for size, (f, idx) in by_size.items()
            )
            if groups[-1][0] < self.size_tolerance:
                message, success = "size tolerance reached", True
                break

            selected = self._potentially_optimal(groups, best_f)
            budget_exhausted = False
            if self.f_target is None:
                # budget gating is deterministic at 2 evals per division, so
                # the whole iteration's divisions collapse into one batch
                plan: list[tuple[int, list[int]]] = []
                simulated = count
                for rect_idx in selected:
                    if simulated + 2 > self.max_evaluations:
                        budget_exhausted = True
                        break
                    pairs = []
                    for k in self._division_dims(rects[rect_idx]):
                        if simulated + 2 > self.max_evaluations:
                            break
                        pairs.append(k)
                        simulated += 2
                    plan.append((rect_idx, pairs))
                if plan:
                    points = self._planned_points(rects, plan)
                    values = yield points
                    count += points.shape[0]
                    best_f = min(best_f, float(np.min(values)))
                    self._apply_divisions(
                        rects, size_keys, fs, plan, points, values
                    )
                if budget_exhausted:
                    message, success = self._stop_reason(best_f)
                    break
            else:
                # f_target may trip between rectangles: one batch per rect
                for rect_idx in selected:
                    if self._done(count, best_f):
                        budget_exhausted = True
                        break
                    pairs = []
                    simulated = count
                    for k in self._division_dims(rects[rect_idx]):
                        if simulated + 2 > self.max_evaluations:
                            break
                        pairs.append(k)
                        simulated += 2
                    if not pairs:
                        continue
                    plan = [(rect_idx, pairs)]
                    points = self._planned_points(rects, plan)
                    values = yield points
                    count += points.shape[0]
                    best_f = min(best_f, float(np.min(values)))
                    self._apply_divisions(
                        rects, size_keys, fs, plan, points, values
                    )
                if budget_exhausted:
                    message, success = self._stop_reason(best_f)
                    break
        else:
            iteration = self.max_iterations

        if self._done(count, best_f) and not success:
            message, success = self._stop_reason(best_f)
        return SearchOutcome(
            message=message, success=success, n_iterations=iteration
        )

    def _done(self, count: int, best_f: float) -> bool:
        # a division costs two evaluations, so one remaining slot is as
        # exhausted as zero — without this the loop would spin eval-free
        if count + 2 > self.max_evaluations:
            return True
        return self.f_target is not None and best_f <= self.f_target

    def _stop_reason(self, best_f: float) -> tuple[str, bool]:
        if self.f_target is not None and best_f <= self.f_target:
            return "f_target reached", True
        return "evaluation budget exhausted", False

    def _division_dims(self, rect: _Rect) -> list[int]:
        """Longest-side dimensions eligible for trisection."""
        if self.locally_biased:
            # single longest side (DIRECT-L): argmin is its first occurrence
            return [int(np.argmin(rect.levels))]
        return [int(k) for k in np.flatnonzero(rect.levels == rect.min_level)]

    @staticmethod
    def _planned_points(
        rects: list[_Rect], plan: list[tuple[int, list[int]]]
    ) -> np.ndarray:
        """Candidate centers for a division plan, plus/minus per dimension."""
        points: list[np.ndarray] = []
        for rect_idx, pairs in plan:
            rect = rects[rect_idx]
            delta = 3.0 ** (-(rect.min_level + 1))
            for k in pairs:
                plus = rect.center.copy()
                plus[k] += delta
                minus = rect.center.copy()
                minus[k] -= delta
                points.append(plus)
                points.append(minus)
        return np.array(points, dtype=float)

    def _apply_divisions(
        self,
        rects: list[_Rect],
        size_keys: list[float],
        fs: list[float],
        plan: list[tuple[int, list[int]]],
        points: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Create the child rectangles for an evaluated division plan."""
        offset = 0
        for rect_idx, pairs in plan:
            rect = rects[rect_idx]
            samples: list[tuple[int, float, float, np.ndarray, np.ndarray]] = []
            for k in pairs:
                plus = points[offset]
                f_plus = float(values[offset])
                minus = points[offset + 1]
                f_minus = float(values[offset + 1])
                offset += 2
                samples.append((k, f_plus, f_minus, plus, minus))
            if not samples:
                continue
            # divide best-w dimension first so it gets the largest children
            samples.sort(key=lambda item: min(item[1], item[2]))
            levels = rect.levels.copy()
            for k, f_plus, f_minus, plus, minus in samples:
                levels[k] += 1
                # siblings share geometry: snapshot the levels once and
                # measure once, never mutated after a child is re-divided
                child_levels = levels.copy()
                for child_center, child_f in ((plus, f_plus), (minus, f_minus)):
                    child = _Rect(
                        center=child_center, f=child_f, levels=child_levels
                    )
                    self._set_size(child)
                    rects.append(child)
                    size_keys.append(child.size_key)
                    fs.append(child_f)
            rect.levels = levels
            self._set_size(rect)
            size_keys[rect_idx] = rect.size_key
