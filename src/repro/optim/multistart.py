"""Global-then-local composition, the paper's acquisition-optimization recipe.

Section 5.1: "DIRECT_L for global optimization and COBYLA for local
optimization".  :class:`GlobalLocalOptimizer` runs any global method for a
budget, then polishes the incumbent with any local method started there.
:class:`MultiStartOptimizer` restarts a local method from several random
points — a cheaper alternative used in ablations.
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import Objective, Optimizer
from repro.optim.result import OptimizationResult
from repro.utils.rng import SeedLike, as_generator


class GlobalLocalOptimizer(Optimizer):
    """Run ``global_optimizer`` then refine with ``local_optimizer``.

    Parameters
    ----------
    local_radius:
        When set, the local stage searches only the neighborhood
        ``incumbent ± local_radius · span`` (intersected with the box):
        the local optimizer *polishes within the global stage's basin*
        instead of being free to crawl across the whole domain.  This is
        what "local optimization" means in the paper's DIRECT_L + COBYLA
        stack — and it is what keeps a capped acquisition search in a
        high-dimensional space from teleporting to far corners the global
        stage never justified.
    """

    def __init__(
        self,
        global_optimizer: Optimizer,
        local_optimizer: Optimizer,
        local_radius: float | None = None,
    ) -> None:
        if local_radius is not None and not 0.0 < local_radius <= 1.0:
            raise ValueError(
                f"local_radius must lie in (0, 1], got {local_radius}"
            )
        self.global_optimizer = global_optimizer
        self.local_optimizer = local_optimizer
        self.local_radius = local_radius

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        bounds = np.column_stack([lower, upper])
        coarse = self.global_optimizer.minimize(fun, bounds, x0=x0)
        if self.local_radius is not None:
            radius = self.local_radius * (upper - lower)
            local_lower = np.maximum(lower, coarse.x - radius)
            local_upper = np.minimum(upper, coarse.x + radius)
            local_bounds = np.column_stack([local_lower, local_upper])
        else:
            local_bounds = bounds
        refined = self.local_optimizer.minimize(fun, local_bounds, x0=coarse.x)
        if refined.fun <= coarse.fun:
            best_x, best_f = refined.x, refined.fun
        else:
            best_x, best_f = coarse.x, coarse.fun
        return OptimizationResult(
            x=best_x,
            fun=best_f,
            n_evaluations=coarse.n_evaluations + refined.n_evaluations,
            n_iterations=coarse.n_iterations + refined.n_iterations,
            success=coarse.success or refined.success,
            message=f"global: {coarse.message}; local: {refined.message}",
            history=coarse.history
            + [
                (n + coarse.n_evaluations, f)
                for n, f in refined.history
                if f < coarse.fun
            ],
        )


class MultiStartOptimizer(Optimizer):
    """Restart a local optimizer from random starts, keep the best."""

    def __init__(
        self,
        local_optimizer: Optimizer,
        n_starts: int = 5,
        seed: SeedLike = None,
    ) -> None:
        if n_starts < 1:
            raise ValueError(f"n_starts must be >= 1, got {n_starts}")
        self.local_optimizer = local_optimizer
        self.n_starts = int(n_starts)
        self._rng = as_generator(seed)

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        bounds = np.column_stack([lower, upper])
        starts = [x0] if x0 is not None else []
        while len(starts) < self.n_starts:
            starts.append(self._rng.uniform(lower, upper))

        best: OptimizationResult | None = None
        total_evals = 0
        total_iters = 0
        for start in starts:
            result = self.local_optimizer.minimize(fun, bounds, x0=start)
            total_evals += result.n_evaluations
            total_iters += result.n_iterations
            if best is None or result.fun < best.fun:
                best = result
        assert best is not None
        return OptimizationResult(
            x=best.x,
            fun=best.fun,
            n_evaluations=total_evals,
            n_iterations=total_iters,
            success=best.success,
            message=f"best of {self.n_starts} starts: {best.message}",
        )
