"""Bounded Nelder-Mead simplex search.

An alternative gradient-free local optimizer used in ablations and as a
cross-check for :class:`repro.optim.cobyla.Cobyla`.  Reflection, expansion,
contraction and shrink follow the classic (1, 2, 0.5, 0.5) coefficients;
proposed points are clipped into the box.
"""

from __future__ import annotations

import numpy as np

from repro.optim.base import CountingObjective, Objective, Optimizer
from repro.optim.result import OptimizationResult


class NelderMead(Optimizer):
    """Classic downhill simplex with box clipping.

    Parameters
    ----------
    max_evaluations:
        Objective evaluation budget.
    f_tolerance:
        Convergence when the simplex f-spread falls below this.
    x_tolerance:
        Convergence when the simplex diameter falls below this.
    initial_scale:
        Starting simplex edge length as a fraction of each box side.
    """

    def __init__(
        self,
        max_evaluations: int = 5000,
        f_tolerance: float = 1e-10,
        x_tolerance: float = 1e-10,
        initial_scale: float = 0.1,
    ) -> None:
        if max_evaluations < 2:
            raise ValueError(f"max_evaluations must be >= 2, got {max_evaluations}")
        if not 0 < initial_scale <= 1:
            raise ValueError(f"initial_scale must be in (0, 1], got {initial_scale}")
        self.max_evaluations = int(max_evaluations)
        self.f_tolerance = float(f_tolerance)
        self.x_tolerance = float(x_tolerance)
        self.initial_scale = float(initial_scale)

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        dim = lower.shape[0]
        span = upper - lower
        counted = CountingObjective(fun)
        if x0 is None:
            x0 = 0.5 * (lower + upper)

        def clip(x: np.ndarray) -> np.ndarray:
            return np.clip(x, lower, upper)

        V = [clip(x0)]
        for k in range(dim):
            step = np.zeros(dim)
            delta = self.initial_scale * span[k]
            step[k] = delta if x0[k] + delta <= upper[k] else -delta
            V.append(clip(x0 + step))
        V = np.array(V, dtype=float)
        if counted.n_evaluations + dim + 1 > self.max_evaluations:
            f0 = counted(V[0])
            return OptimizationResult(
                x=V[0], fun=f0, n_evaluations=counted.n_evaluations,
                n_iterations=0, success=False,
                message="evaluation budget below simplex size",
                history=list(counted.history),
            )
        f = np.array([counted(v) for v in V], dtype=float)

        iteration = 0
        message = "evaluation budget exhausted"
        success = False
        while counted.n_evaluations < self.max_evaluations:
            iteration += 1
            order = np.argsort(f)
            V, f = V[order], f[order]
            if (f[-1] - f[0] < self.f_tolerance
                    and np.max(np.abs(V - V[0])) < self.x_tolerance):
                message, success = "simplex converged", True
                break

            centroid = np.mean(V[:-1], axis=0)
            reflected = clip(centroid + (centroid - V[-1]))
            f_r = counted(reflected)
            if f_r < f[0]:
                if counted.n_evaluations >= self.max_evaluations:
                    break
                expanded = clip(centroid + 2.0 * (centroid - V[-1]))
                f_e = counted(expanded)
                if f_e < f_r:
                    V[-1], f[-1] = expanded, f_e
                else:
                    V[-1], f[-1] = reflected, f_r
            elif f_r < f[-2]:
                V[-1], f[-1] = reflected, f_r
            else:
                if counted.n_evaluations >= self.max_evaluations:
                    break
                contracted = clip(centroid + 0.5 * (V[-1] - centroid))
                f_c = counted(contracted)
                if f_c < f[-1]:
                    V[-1], f[-1] = contracted, f_c
                else:
                    # shrink toward the best vertex
                    if counted.n_evaluations + dim > self.max_evaluations:
                        break
                    for i in range(1, dim + 1):
                        V[i] = clip(V[0] + 0.5 * (V[i] - V[0]))
                        f[i] = counted(V[i])

        return OptimizationResult(
            x=counted.best_x,
            fun=counted.best_f,
            n_evaluations=counted.n_evaluations,
            n_iterations=iteration,
            success=success,
            message=message,
            history=list(counted.history),
        )
