"""Uniform random search baseline over a box."""

from __future__ import annotations

import numpy as np

from repro.optim.base import CountingObjective, Objective, Optimizer
from repro.optim.result import OptimizationResult
from repro.utils.rng import SeedLike, as_generator


class RandomSearch(Optimizer):
    """Evaluate i.i.d. uniform points and keep the best.

    Serves as the weakest baseline for optimizer comparisons and as a
    robustness fallback inside acquisition optimization.
    """

    def __init__(self, max_evaluations: int = 1000, seed: SeedLike = None) -> None:
        if max_evaluations < 1:
            raise ValueError(f"max_evaluations must be >= 1, got {max_evaluations}")
        self.max_evaluations = int(max_evaluations)
        self._rng = as_generator(seed)

    def _minimize(
        self,
        fun: Objective,
        lower: np.ndarray,
        upper: np.ndarray,
        x0: np.ndarray | None,
    ) -> OptimizationResult:
        counted = CountingObjective(fun)
        if x0 is not None:
            counted(x0)
        while counted.n_evaluations < self.max_evaluations:
            counted(self._rng.uniform(lower, upper))
        return OptimizationResult(
            x=counted.best_x,
            fun=counted.best_f,
            n_evaluations=counted.n_evaluations,
            n_iterations=counted.n_evaluations,
            success=False,
            message="evaluation budget exhausted",
            history=list(counted.history),
        )
