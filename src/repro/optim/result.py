"""Common result record for every gradient-free optimizer in the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class OptimizationResult:
    """Outcome of a bounded minimization run.

    Attributes
    ----------
    x:
        Best point found.
    fun:
        Objective value at ``x``.
    n_evaluations:
        Number of objective evaluations consumed.
    n_iterations:
        Algorithm-level iterations (meaning differs per optimizer).
    success:
        True when the optimizer terminated by its own convergence test
        rather than by exhausting the evaluation budget.
    message:
        Human-readable termination reason.
    history:
        Optional best-so-far trace ``(n_evaluations_at_improvement, f)``.
    """

    x: np.ndarray
    fun: float
    n_evaluations: int
    n_iterations: int
    success: bool
    message: str = ""
    history: list[tuple[int, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.fun = float(self.fun)
