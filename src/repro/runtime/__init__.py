"""Fault-tolerant evaluation runtime: objectives, broker, cache, ledger.

Public surface of the evaluation layer described in DESIGN.md §10:

* :class:`Objective` / :class:`FunctionObjective` — the unified objective
  protocol every engine and sampler consumes;
* :class:`EvaluationBroker` / :class:`BrokerConfig` /
  :class:`RuntimePolicy` — dispatch, retry, timeout and failure policy;
* :class:`ResultCache` / :func:`point_digest` — content-addressed
  deduplication of simulations;
* :class:`RunLedger` / :func:`read_ledger` / :func:`resume` — JSONL event
  log doubling as the campaign checkpoint;
* :class:`FaultPlan` / :class:`FaultInjectingTestbench` — deterministic
  fault injection for testing the above.
"""

from repro.runtime.broker import (
    DISPATCH_MODES,
    FAILURE_POLICIES,
    BrokerConfig,
    BrokerStats,
    EvalBatch,
    EvaluationBroker,
    EvaluationError,
    NonFiniteResultError,
    RuntimePolicy,
    make_broker,
)
from repro.runtime.cache import (
    DEFAULT_DECIMALS,
    ResultCache,
    batch_digests,
    point_digest,
)
from repro.runtime.faults import (
    FaultInjectingObjective,
    FaultInjectingTestbench,
    FaultPlan,
    TransientSimulationError,
)
from repro.runtime.ledger import LEDGER_VERSION, LedgerReplay, RunLedger, read_ledger

#: Replay-verifier names resolved lazily so ``python -m repro.runtime.replay``
#: does not import the module twice (once here, once as ``__main__``).
_REPLAY_EXPORTS = frozenset(
    {
        "REPLAY_MODES",
        "Divergence",
        "ReplayReport",
        "truncate_mid_run",
        "verify_replay",
    }
)


def __getattr__(name: str):
    if name in _REPLAY_EXPORTS:
        from repro.runtime import replay

        return getattr(replay, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.runtime.objective import (
    FunctionObjective,
    Objective,
    require_objective,
    resolve_bounds,
    stable_callable_name,
)
from repro.runtime.resume import ResumeState, resume

__all__ = [
    "DEFAULT_DECIMALS",
    "FAILURE_POLICIES",
    "LEDGER_VERSION",
    "DISPATCH_MODES",
    "BrokerConfig",
    "BrokerStats",
    "EvalBatch",
    "EvaluationBroker",
    "EvaluationError",
    "Divergence",
    "FaultInjectingObjective",
    "FaultInjectingTestbench",
    "FaultPlan",
    "FunctionObjective",
    "LedgerReplay",
    "NonFiniteResultError",
    "Objective",
    "REPLAY_MODES",
    "ReplayReport",
    "ResultCache",
    "batch_digests",
    "ResumeState",
    "RunLedger",
    "RuntimePolicy",
    "TransientSimulationError",
    "make_broker",
    "point_digest",
    "read_ledger",
    "require_objective",
    "resolve_bounds",
    "resume",
    "stable_callable_name",
    "truncate_mid_run",
    "verify_replay",
]
