"""The evaluation broker: fault-tolerant dispatch of objective batches.

Every engine and sampler routes its objective calls through an
:class:`EvaluationBroker`.  The broker owns the concerns a bare function
call cannot express when each evaluation is an expensive, failure-prone
simulation:

* **dispatch** — a batch of points fans out across a
  :class:`~repro.utils.parallel.WorkerPool` (inline / thread / process)
  with a per-evaluation timeout;
* **retry** — transient failures (exceptions, timeouts, non-finite
  returns — the NaN quarantine) are retried up to ``max_retries`` times
  with exponential backoff plus deterministic jitter;
* **graceful degradation** — retry exhaustion resolves through a
  configurable failure policy: ``raise`` (default), ``skip`` (drop the
  point from the batch) or ``penalty`` (substitute a finite sentinel
  value);
* **deduplication** — results are stored in a content-addressed
  :class:`~repro.runtime.cache.ResultCache` keyed on ``(cache_key,
  rounded x)``, so repeated points never re-simulate.  Across *concurrent*
  brokers sharing one cache (the multi-campaign scheduler, DESIGN.md §15)
  the cache's single-flight claims extend the guarantee: a batch first
  claims ownership of each missing digest, simulates only the digests it
  won, and blocks on digests another broker is simulating right now —
  served as ``cache_hit`` events once the owner's value lands, so N
  campaigns racing over shared designs still produce
  ``duplicate_simulations == 0``;
* **audit + checkpoint** — every event is appended to an optional
  :class:`~repro.runtime.ledger.RunLedger`, which doubles as the resume
  checkpoint;
* **timing** — per-simulation durations accumulate into
  ``stats.eval_seconds``, giving :class:`~repro.bo.records.RunResult` its
  ``eval_seconds`` / ``overhead_seconds`` split.

Determinism: retries and caching are value-transparent — a campaign run
under transient fault injection produces exactly the ``X``/``y`` of the
fault-free run, and a cache hit returns the exact float the simulation
produced.  The backoff jitter draws from a broker-private seeded stream
that never touches engine RNG state.

Thread-sharing contract (DESIGN.md §13): the callables the broker submits
to its pool (``self._simulate`` / ``self._simulate_chunk``) touch only
locals and their arguments — *all* shared-state mutation (cache puts,
ledger appends, metric increments, ``stats`` bookkeeping) happens on the
dispatching thread after the pool joins the batch.  The shared collaborators
(:class:`~repro.runtime.cache.ResultCache`,
:class:`~repro.runtime.ledger.RunLedger`,
:class:`~repro.telemetry.metrics.MetricsRegistry`,
:class:`~repro.telemetry.trace.Tracer`) are each ``@thread_shared`` and
internally locked, so the broker itself is also safe to *call* from
multiple campaign threads (ROADMAP item 1) as long as each thread uses its
own broker instance over the shared cache/ledger/telemetry — broker
``stats`` are per-instance and unsynchronized by design.  The NL6xx lint
family (``tools/numlint/passes/concurrency.py``) checks the submitted
callables statically; the ``REPRO_SANITIZE=1`` race sanitizer checks the
shared objects at runtime.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro._typing import FloatArray, IntArray
from repro.runtime.cache import (
    CLAIM_HIT,
    CLAIM_INFLIGHT,
    CLAIM_OWNED,
    DEFAULT_DECIMALS,
    ResultCache,
)
from repro.runtime.ledger import LEDGER_VERSION, RunLedger
from repro.runtime.objective import Objective, require_objective
from repro.telemetry.config import TelemetryLike, resolve_telemetry
from repro.utils.parallel import POOL_KINDS, WorkerPool
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import as_matrix

#: Recognized failure policies.
FAILURE_POLICIES = ("raise", "skip", "penalty")

#: Recognized dispatch modes (see :attr:`BrokerConfig.dispatch`).
DISPATCH_MODES = ("auto", "row", "chunk")


class EvaluationError(RuntimeError):
    """An evaluation failed after exhausting its retry budget."""


class NonFiniteResultError(RuntimeError):
    """The objective returned NaN/inf — quarantined like any failure."""


@dataclass(frozen=True)
class BrokerConfig:
    """Dispatch, retry and failure-policy knobs for the broker.

    Parameters
    ----------
    timeout_seconds:
        Per-evaluation deadline; None disables.  Requires a non-inline
        executor to enforce (``executor="auto"`` picks threads when set).
    max_retries:
        Additional attempts after the first failure (0 = fail fast).
    backoff_seconds / backoff_factor / backoff_jitter:
        Retry round ``k`` sleeps ``backoff_seconds * backoff_factor**k``,
        scaled by a deterministic jitter in ``[1-j, 1+j]``.
    failure_policy:
        ``"raise"`` propagates an :class:`EvaluationError`; ``"skip"``
        drops the point from the batch; ``"penalty"`` substitutes
        ``penalty_value``.
    penalty_value:
        Required (finite) when ``failure_policy="penalty"`` — it enters
        ``RunResult.y``, so it must be a valid observation; pick something
        clearly uninteresting in minimization orientation (large).
    n_jobs:
        Worker width for dispatch parallelism (1 = sequential).
    executor:
        ``"auto"`` (inline unless a timeout or ``n_jobs>1`` needs a pool),
        or an explicit :data:`~repro.utils.parallel.POOL_KINDS` entry.
    cache_decimals:
        Rounding applied to points before content-addressing.
    dispatch:
        ``"row"`` makes one ``objective.evaluate((1, D))`` call per point
        (the historical behavior); ``"chunk"`` partitions each round's
        pending points into contiguous chunks and makes one vectorized
        ``objective.evaluate((k, D))`` call per chunk.  ``"auto"``
        (default) picks ``"chunk"`` when the objective declares
        :attr:`~repro.runtime.objective.Objective.prefers_batch` and no
        per-evaluation timeout is set, ``"row"`` otherwise.  Chunked
        dispatch preserves per-point ledger events, retry/failure policies
        and cached values; per-point durations become the chunk mean, and
        a chunk-level exception falls back to row-wise dispatch of that
        chunk within the same retry round (objectives whose *failures* are
        stateful per attempt should keep row dispatch).
    chunk_size:
        Maximum points per vectorized chunk; ``None`` splits each round
        evenly across ``n_jobs`` workers (one chunk total when
        ``n_jobs=1``).
    """

    timeout_seconds: float | None = None
    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    failure_policy: str = "raise"
    penalty_value: float | None = None
    n_jobs: int = 1
    executor: str = "auto"
    cache_decimals: int = DEFAULT_DECIMALS
    dispatch: str = "auto"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_seconds >= 0 and backoff_factor >= 1 required")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError(
                f"backoff_jitter must lie in [0, 1), got {self.backoff_jitter}"
            )
        if self.failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.failure_policy!r}"
            )
        if self.failure_policy == "penalty":
            if self.penalty_value is None or not math.isfinite(self.penalty_value):
                raise ValueError(
                    "failure_policy='penalty' requires a finite penalty_value "
                    "(it enters RunResult.y as an observation)"
                )
        if self.executor not in ("auto",) + POOL_KINDS:
            raise ValueError(
                f"executor must be 'auto' or one of {POOL_KINDS}, "
                f"got {self.executor!r}"
            )
        if self.dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_MODES}, "
                f"got {self.dispatch!r}"
            )
        if self.dispatch == "chunk" and self.timeout_seconds is not None:
            raise ValueError(
                "dispatch='chunk' cannot enforce a per-evaluation timeout "
                "(one vectorized call covers many points); use row dispatch "
                "or drop timeout_seconds"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1 when set, got {self.chunk_size}"
            )

    def resolve_executor(self) -> str:
        if self.executor != "auto":
            return self.executor
        if self.timeout_seconds is not None or self.n_jobs > 1:
            return "thread"
        return "inline"

    def resolve_dispatch(self, objective: object = None) -> str:
        """The concrete dispatch mode for ``objective`` (never ``"auto"``)."""
        if self.dispatch != "auto":
            return self.dispatch
        if self.timeout_seconds is not None:
            return "row"
        if getattr(objective, "prefers_batch", False):
            return "chunk"
        return "row"


@dataclass
class BrokerStats:
    """Counters accumulated across a broker's lifetime."""

    n_points: int = 0  # points requested through evaluate/evaluate_batch
    n_simulations: int = 0  # attempts actually dispatched to the objective
    n_completed: int = 0
    n_cache_hits: int = 0
    n_retries: int = 0
    n_attempt_failures: int = 0
    n_skipped: int = 0
    n_penalized: int = 0
    eval_seconds: float = 0.0  # summed duration of completed simulations


@dataclass
class EvalBatch:
    """Outcome of one batch: surviving points in submission order.

    Under ``raise``/``penalty`` policies ``X``/``y`` cover every submitted
    point; under ``skip`` dropped points are absent and ``index`` maps each
    surviving row back to its position in the submitted batch.
    """

    X: FloatArray
    y: FloatArray
    index: IntArray
    n_submitted: int

    @property
    def n_evaluated(self) -> int:
        return int(self.y.shape[0])


@dataclass
class _Pending:
    """One not-yet-resolved point within a batch."""

    pos: int
    eval_id: int
    x: FloatArray
    digest: str


class EvaluationBroker:
    """Routes every objective evaluation of a run; see module docstring.

    Parameters
    ----------
    objective:
        An :class:`~repro.runtime.objective.Objective` (wrap legacy
        callables explicitly with
        :class:`~repro.runtime.objective.FunctionObjective`).
    config:
        Dispatch/retry/policy knobs; defaults are zero-overhead inline
        execution with fail-fast semantics compatible with direct calls.
    cache:
        Shared result cache; None creates a private per-broker cache (still
        deduplicates within the run).
    ledger:
        Optional :class:`RunLedger` receiving every event; a campaign
        header is appended on construction.
    recorder:
        Optional :class:`~repro.bo.records.RunRecorder` fed every
        surviving evaluation, in order.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`.  Each completed
        simulation emits an ``evaluate`` span (worker-measured duration,
        parented under whatever span the dispatching thread has open, with
        the ledger ``id`` as attribute — the trace/ledger join key) and
        the metrics registry accumulates completed / cache-hit / retry /
        timeout / policy counters plus a duration histogram.
    seed:
        Stream for backoff jitter only (never touches caller RNG state).
    """

    def __init__(
        self,
        objective: Objective,
        config: BrokerConfig | None = None,
        cache: ResultCache | None = None,
        ledger: RunLedger | None = None,
        recorder: Any | None = None,
        campaign: dict[str, Any] | None = None,
        telemetry: TelemetryLike = None,
        seed: SeedLike = 0,
    ) -> None:
        self.objective = require_objective(objective, "EvaluationBroker")
        self.config = config if config is not None else BrokerConfig()
        self.telemetry = resolve_telemetry(telemetry)
        self._tracer = self.telemetry.tracer
        self._metrics = self.telemetry.metrics
        self.cache = (
            cache
            if cache is not None
            else ResultCache.in_memory(decimals=self.config.cache_decimals)
        )
        self.ledger = ledger
        self.recorder = recorder
        self.stats = BrokerStats()
        self._rng = as_generator(0 if seed is None else seed)
        self._next_id = 0
        if self.ledger is not None:
            header: dict[str, Any] = {
                "event": "campaign",
                "version": LEDGER_VERSION,
                "cache_key": self.objective.cache_key,
                "dim": self.objective.dim,
                "failure_policy": self.config.failure_policy,
                "max_retries": self.config.max_retries,
                "cache_decimals": self.cache.decimals,
            }
            if campaign:
                header.update(campaign)
            self.ledger.append(header)

    # -- internals -----------------------------------------------------------

    def _log(self, event: dict[str, Any]) -> None:
        if self.ledger is not None:
            self.ledger.append(event)

    def _simulate(self, x: FloatArray) -> tuple[float, float]:
        """One objective call: returns ``(value, seconds)``; quarantines NaN."""
        start = time.perf_counter()
        value = float(self.objective.evaluate(x[None, :])[0])
        seconds = time.perf_counter() - start
        if not math.isfinite(value):
            raise NonFiniteResultError(
                f"objective returned non-finite value {value!r}"
            )
        return value, seconds

    def _simulate_chunk(self, X: FloatArray) -> tuple[FloatArray, float]:
        """One vectorized objective call over a ``(k, dim)`` chunk.

        NaN rows are *not* raised here — they surface per point in
        :meth:`_run_chunks` so one bad row quarantines alone instead of
        failing its whole chunk.
        """
        start = time.perf_counter()
        out = np.asarray(self.objective.evaluate(X), dtype=float).reshape(-1)
        seconds = time.perf_counter() - start
        if out.shape[0] != X.shape[0]:
            raise ValueError(
                f"{type(self.objective).__name__}.evaluate returned "
                f"{out.shape[0]} values for {X.shape[0]} rows"
            )
        return out, seconds

    def _chunk_bounds(self, n: int) -> list[tuple[int, int]]:
        size = self.config.chunk_size
        if size is None:
            size = -(-n // max(1, self.config.n_jobs))  # ceil division
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]

    def _run_chunks(
        self, pool: WorkerPool, pending: list[_Pending]
    ) -> list[tuple[Any, BaseException | None]]:
        """Chunked vectorized dispatch of one retry round.

        Returns per-point ``(result, error)`` outcomes aligned with
        ``pending``, exactly the shape row-wise ``pool.run_tasks`` hands
        back — the bookkeeping loop (ledger events, retry/failure
        policies, stats) is shared between both dispatch modes.  A
        chunk-level exception re-dispatches that chunk row by row within
        the same round, so every point still resolves to one outcome per
        attempt; per-point seconds are the chunk mean (the total stays
        exact).
        """
        bounds = self._chunk_bounds(len(pending))
        chunk_outcomes = pool.run_tasks(
            self._simulate_chunk,
            [np.stack([p.x for p in pending[lo:hi]]) for lo, hi in bounds],
            timeout=None,
        )
        outcomes: list[tuple[Any, BaseException | None]] = []
        for (lo, hi), (result, error) in zip(bounds, chunk_outcomes):
            rows = pending[lo:hi]
            if error is not None:
                # mixed-health chunk: one raising row poisons the whole
                # vectorized call — fall back to row dispatch for it
                outcomes.extend(
                    pool.run_tasks(
                        self._simulate, [p.x for p in rows], timeout=None
                    )
                )
                continue
            out, seconds = result  # type: ignore[misc]
            per_point = seconds / max(1, len(rows))
            for i in range(len(rows)):
                value = float(out[i])
                if math.isfinite(value):
                    outcomes.append(((value, per_point), None))
                else:
                    outcomes.append(
                        (
                            None,
                            NonFiniteResultError(
                                f"objective returned non-finite value {value!r}"
                            ),
                        )
                    )
        return outcomes

    def _backoff_delay(self, attempt: int) -> float:
        delay = self.config.backoff_seconds * self.config.backoff_factor**attempt
        if self.config.backoff_jitter > 0.0:
            delay *= 1.0 + self.config.backoff_jitter * float(
                self._rng.uniform(-1.0, 1.0)
            )
        return delay

    def _record_hit(
        self,
        pos: int,
        eval_id: int,
        digest: str,
        value: float,
        values: list[float | None],
    ) -> None:
        """Bookkeeping for one point served without simulating here."""
        self.stats.n_cache_hits += 1
        self._metrics.counter("cache.hits").inc()
        values[pos] = value
        self._log(
            {"event": "cache_hit", "id": eval_id, "digest": digest, "y": value}
        )

    def _await_inflight(
        self,
        waiting: list[_Pending],
        values: list[float | None],
        dropped: list[bool],
        owned: set[str],
    ) -> tuple[int, int]:
        """Resolve points a concurrent broker claimed before this batch.

        Each point blocks until the owning broker publishes its value
        (served as a cache hit) or abandons the claim (this broker then
        races to re-claim and simulate it — the loop re-parks points that
        lose the race to a third broker).  Returns ``(hits, misses)`` for
        the batch's phase-span annotation.  Called only after this batch's
        own simulations resolved, so no broker ever waits while holding an
        unresolved claim — the fleet cannot deadlock on claims.
        """
        hits = misses = 0
        while waiting:
            parked: list[_Pending] = []
            claimed: list[_Pending] = []
            for p in waiting:
                value = self.cache.wait_for(p.digest)
                if value is not None:
                    hits += 1
                    self._record_hit(p.pos, p.eval_id, p.digest, value, values)
                    continue
                status, hit = self.cache.lookup_or_claim([p.digest])[0]
                if status == CLAIM_HIT:
                    hits += 1
                    self._record_hit(p.pos, p.eval_id, p.digest, hit, values)
                elif status == CLAIM_OWNED:
                    owned.add(p.digest)
                    misses += 1
                    self._metrics.counter("cache.misses").inc()
                    claimed.append(p)
                else:  # a third broker won the re-claim race; park again
                    parked.append(p)
            if claimed:
                self._run_rounds(claimed, values, dropped, owned)
            waiting = parked
        return hits, misses

    def _resolve_exhausted(
        self,
        pending: _Pending,
        error: BaseException,
        values: list[float | None],
        dropped: list[bool],
        owned: set[str],
    ) -> None:
        # terminal non-completion: release the single-flight claim *now* so
        # concurrent waiters re-claim immediately instead of blocking until
        # this batch's finally (two brokers skip-failing each other's
        # waited points would otherwise deadlock)
        self.cache.abandon_many((pending.digest,))
        owned.discard(pending.digest)
        policy = self.config.failure_policy
        if policy == "raise":
            raise EvaluationError(
                f"evaluation {pending.eval_id} failed after "
                f"{self.config.max_retries + 1} attempts: {error}"
            ) from error
        if policy == "skip":
            self.stats.n_skipped += 1
            self._metrics.counter("evaluations.skipped").inc()
            dropped[pending.pos] = True
            self._log({"event": "skipped", "id": pending.eval_id})
        else:  # penalty
            penalty = float(self.config.penalty_value)  # type: ignore[arg-type]
            self.stats.n_penalized += 1
            self._metrics.counter("evaluations.penalized").inc()
            values[pending.pos] = penalty
            self._log(
                {"event": "penalized", "id": pending.eval_id, "y": penalty}
            )

    # -- public API ----------------------------------------------------------

    def evaluate_batch(self, X: FloatArray) -> EvalBatch:
        """Evaluate a ``(n, dim)`` batch through cache, pool and policies."""
        X = as_matrix(X, self.objective.dim)
        n = X.shape[0]
        self.stats.n_points += n
        values: list[float | None] = [None] * n
        dropped = [False] * n

        pending: list[_Pending] = []
        waiting: list[_Pending] = []
        owned: set[str] = set()
        first_pos: dict[str, int] = {}
        duplicates: list[tuple[int, int, str]] = []  # (pos, eval_id, digest)
        # one vectorized rounding/hash pass over the whole block, and one
        # atomic lookup-or-claim for the block: hits resolve immediately,
        # missing digests are either claimed for this broker (simulate) or
        # already in flight under a concurrent broker (wait for its value)
        digests = self.cache.keys_for_batch(self.objective.cache_key, X)
        claims = self.cache.lookup_or_claim(digests)
        batch_hits = 0
        batch_misses = 0
        for pos in range(n):
            digest = digests[pos]
            eval_id = self._next_id
            self._next_id += 1
            status, hit = claims[pos]
            if status == CLAIM_HIT:
                batch_hits += 1
                self._record_hit(pos, eval_id, digest, hit, values)
            elif status == CLAIM_OWNED:
                first_pos[digest] = pos
                owned.add(digest)
                batch_misses += 1
                self._metrics.counter("cache.misses").inc()
                pending.append(_Pending(pos, eval_id, X[pos], digest))
            elif status == CLAIM_INFLIGHT:
                waiting.append(_Pending(pos, eval_id, X[pos], digest))
            else:  # CLAIM_REPEAT: same point again within this batch —
                # simulate once, mirror the first occurrence's outcome
                duplicates.append((pos, eval_id, digest))

        try:
            if pending:
                self._run_rounds(pending, values, dropped, owned)
            if waiting:
                # own simulations are done — block on concurrent owners
                # (waiting *after* simulating keeps the fleet deadlock-free:
                # nobody waits while holding an unresolved claim)
                wait_hits, wait_misses = self._await_inflight(
                    waiting, values, dropped, owned
                )
                batch_hits += wait_hits
                batch_misses += wait_misses
        finally:
            # release any claims still held (raise-policy exits, bugs in
            # the objective) so concurrent waiters can re-claim the points
            if owned:
                self.cache.abandon_many(owned)

        for pos, eval_id, digest in duplicates:
            lead = first_pos[digest]
            if dropped[lead]:
                self.stats.n_skipped += 1
                dropped[pos] = True
                self._log({"event": "skipped", "id": eval_id})
            elif digest in self.cache:  # completed (penalties are not cached)
                self.stats.n_cache_hits += 1
                batch_hits += 1
                self._metrics.counter("cache.hits").inc()
                values[pos] = values[lead]
                self._log(
                    {
                        "event": "cache_hit",
                        "id": eval_id,
                        "digest": digest,
                        "y": values[lead],
                    }
                )
            else:
                self.stats.n_penalized += 1
                values[pos] = values[lead]
                self._log(
                    {"event": "penalized", "id": eval_id, "y": values[lead]}
                )

        if n:
            # land the batch's hit/miss split on whatever phase span is
            # open (iteration / init_design): cache hits emit no evaluate
            # span, so this is how per-phase hit rates reach the report
            self._tracer.annotate("cache_hits", batch_hits)
            self._tracer.annotate("cache_misses", batch_misses)

        keep = [i for i in range(n) if not dropped[i]]
        y = np.array([values[i] for i in keep], dtype=float)
        batch = EvalBatch(
            X=X[keep].copy(),
            y=y,
            index=np.asarray(keep, dtype=np.int_),
            n_submitted=n,
        )
        if self.recorder is not None and batch.n_evaluated:
            self.recorder.extend(batch.X, batch.y)
        return batch

    def _run_rounds(
        self,
        pending: list[_Pending],
        values: list[float | None],
        dropped: list[bool],
        owned: set[str],
    ) -> None:
        kind = self.config.resolve_executor()
        dispatch = self.config.resolve_dispatch(self.objective)
        pool = WorkerPool(kind=kind, n_jobs=self.config.n_jobs)
        attempt = 0
        try:
            while pending:
                for p in pending:
                    self._log(
                        {
                            "event": "dispatched",
                            "id": p.eval_id,
                            "attempt": attempt,
                            "digest": p.digest,
                        }
                    )
                if dispatch == "chunk" and len(pending) > 1:
                    outcomes = self._run_chunks(pool, pending)
                else:
                    outcomes = pool.run_tasks(
                        self._simulate,
                        [p.x for p in pending],
                        timeout=self.config.timeout_seconds,
                    )
                failed: list[tuple[_Pending, BaseException]] = []
                timed_out = False
                for p, (result, error) in zip(pending, outcomes):
                    self.stats.n_simulations += 1
                    if error is None:
                        value, seconds = result  # type: ignore[misc]
                        self.stats.n_completed += 1
                        self.stats.eval_seconds += seconds
                        values[p.pos] = value
                        self.cache.put(p.digest, value)  # releases the claim
                        owned.discard(p.digest)
                        # worker-measured duration, parented under whatever
                        # span (iteration/init_design) is open right now —
                        # the id attribute is the trace<->ledger join key
                        self._tracer.record_span(
                            "evaluate",
                            seconds,
                            {"id": p.eval_id, "attempt": attempt, "y": value},
                        )
                        self._metrics.counter("evaluations.completed").inc()
                        self._metrics.histogram("evaluations.seconds").observe(
                            seconds
                        )
                        self._log(
                            {
                                "event": "completed",
                                "id": p.eval_id,
                                "attempt": attempt,
                                "digest": p.digest,
                                "x": [float(v) for v in p.x],
                                "y": value,
                                "seconds": seconds,
                                "cached": False,
                            }
                        )
                    else:
                        self.stats.n_attempt_failures += 1
                        self._metrics.counter("evaluations.attempt_failures").inc()
                        if isinstance(error, TimeoutError):
                            self._metrics.counter("evaluations.timeouts").inc()
                        timed_out = timed_out or isinstance(error, TimeoutError)
                        self._log(
                            {
                                "event": "failed",
                                "id": p.eval_id,
                                "attempt": attempt,
                                "error": type(error).__name__,
                                "message": str(error),
                            }
                        )
                        failed.append((p, error))
                if not failed:
                    return
                if attempt >= self.config.max_retries:
                    for p, error in failed:
                        self._resolve_exhausted(p, error, values, dropped, owned)
                    return
                delay = self._backoff_delay(attempt)
                self.stats.n_retries += len(failed)
                self._metrics.counter("evaluations.retries").inc(len(failed))
                for p, _ in failed:
                    self._log(
                        {
                            "event": "retried",
                            "id": p.eval_id,
                            "attempt": attempt + 1,
                            "backoff_seconds": delay,
                        }
                    )
                if delay > 0:
                    time.sleep(delay)
                if timed_out and kind != "inline":
                    # abandoned (timed-out) tasks still occupy workers;
                    # retries need a fresh pool or they queue behind the
                    # very hang that failed them
                    pool.close()
                    pool = WorkerPool(kind=kind, n_jobs=self.config.n_jobs)
                pending = [p for p, _ in failed]
                attempt += 1
        finally:
            pool.close()

    def evaluate(self, x: FloatArray) -> float | None:
        """Evaluate one point; returns None when the skip policy dropped it."""
        batch = self.evaluate_batch(np.asarray(x, dtype=float)[None, :])
        if batch.n_evaluated == 0:
            return None
        return float(batch.y[0])


@dataclass
class RuntimePolicy:
    """Bundled runtime wiring passed to every engine/sampler ``run(...)``.

    A policy owns what should be *shared across* runs — the broker config,
    a result cache (deduplicating evaluations between methods that share an
    initial design), and a ledger (one event stream for the whole
    campaign).  Each ``run`` builds its own broker from the policy via
    :func:`make_broker`.
    """

    config: BrokerConfig = field(default_factory=BrokerConfig)
    cache: ResultCache | None = None
    ledger: RunLedger | None = None

    @classmethod
    def shared(
        cls,
        ledger_path: str | Path | None = None,
        config: BrokerConfig | None = None,
        decimals: int | None = None,
        cache: ResultCache | None = None,
        cache_path: str | Path | None = None,
    ) -> "RuntimePolicy":
        """A policy with one shared cache (and optional ledger) for a campaign.

        ``cache`` reuses an existing store (e.g. the scheduler's persistent
        cross-campaign cache); ``cache_path`` opens a persistent
        :meth:`ResultCache.open` store at that directory.  Without either,
        a fresh in-memory cache is created.  When a cache is supplied, the
        policy's ``cache_decimals`` is aligned to it so brokers and
        resume agree on the digests.
        """
        if cache is not None and cache_path is not None:
            raise ValueError("pass cache or cache_path, not both")
        cfg = config if config is not None else BrokerConfig()
        if decimals is not None:
            cfg = replace(cfg, cache_decimals=decimals)
        if cache_path is not None:
            # ownership transfers to the returned policy; the caller scopes
            # the cache's lifetime through the policy it receives
            cache = ResultCache.open(  # numlint: disable=NL705
                cache_path,
                decimals=decimals if decimals is not None else None,
            )
        if cache is None:
            cache = ResultCache.in_memory(decimals=cfg.cache_decimals)
        elif cache.decimals != cfg.cache_decimals:
            cfg = replace(cfg, cache_decimals=cache.decimals)
        return cls(
            config=cfg,
            cache=cache,
            ledger=RunLedger(ledger_path) if ledger_path is not None else None,
        )


def make_broker(
    objective: Objective,
    runtime: RuntimePolicy | None = None,
    recorder: Any | None = None,
    method: str = "",
    telemetry: TelemetryLike = None,
) -> EvaluationBroker:
    """Build the broker one engine run uses, honoring a shared policy."""
    policy = runtime if runtime is not None else RuntimePolicy()
    campaign = {"method": method} if method else None
    return EvaluationBroker(
        objective,
        config=policy.config,
        cache=policy.cache,
        ledger=policy.ledger,
        recorder=recorder,
        campaign=campaign,
        telemetry=telemetry,
    )


__all__ = [
    "DISPATCH_MODES",
    "FAILURE_POLICIES",
    "BrokerConfig",
    "BrokerStats",
    "EvalBatch",
    "EvaluationBroker",
    "EvaluationError",
    "NonFiniteResultError",
    "RuntimePolicy",
    "make_broker",
]
