"""Content-addressed evaluation result cache.

Each simulation result is addressed by a SHA-256 digest of the objective's
``cache_key`` plus the evaluation point *rounded to a fixed number of
decimals*.  Rounding is what makes deduplication effective in practice: the
repeated points a campaign actually produces — the shared initial design
every BO method starts from, REMBO proposals that clip to the same boundary
``x`` (Eq. 11 projects many embedded ``z`` onto one cube face) — agree to
well below 1e-12 but not always bit-for-bit after independent float
pipelines.  Twelve decimals is far inside simulator noise and far outside
any step an optimizer takes deliberately, so distinct query points never
collide (see DESIGN.md §10 for the rationale).

The cache is in-memory and thread-safe (the broker's worker threads share
it); it pickles by value with the lock dropped and recreated, so it can
ride inside task tuples handed to a process pool — though mutations made in
a child process do not propagate back (cross-method sharing needs
``n_jobs=1`` or a ledger replay).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Mapping

import numpy as np

from repro._typing import ArrayLike
from repro.utils.contracts import shape_contract, thread_shared
from repro.utils.sanitize_concurrency import make_lock

#: Default rounding applied to points before hashing (see module docstring).
DEFAULT_DECIMALS = 12


@shape_contract("x: a(d,)")
def point_digest(
    cache_key: str, x: ArrayLike, decimals: int = DEFAULT_DECIMALS
) -> str:
    """SHA-256 digest addressing one ``(objective, rounded point)`` result."""
    arr = np.asarray(x, dtype=np.float64).reshape(-1)
    rounded = np.round(arr, decimals) + 0.0  # fold -0.0 into +0.0
    payload = b"|".join(
        [cache_key.encode("utf-8"), str(int(decimals)).encode(), rounded.tobytes()]
    )
    return hashlib.sha256(payload).hexdigest()


@shape_contract("X: a(n, d)")
def batch_digests(
    cache_key: str, X: ArrayLike, decimals: int = DEFAULT_DECIMALS
) -> list[str]:
    """Digests for a whole ``(n, d)`` block in one vectorized pass.

    The rounding and ``-0.0`` fold run once over the full block instead of
    row by row; each digest is byte-identical to :func:`point_digest` on
    the corresponding row (``np.round`` and the ``+ 0.0`` fold are
    elementwise, so batching cannot change any byte of a row's payload).
    """
    arr = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
    rounded = np.ascontiguousarray(np.round(arr, decimals) + 0.0)
    prefix = b"|".join([cache_key.encode("utf-8"), str(int(decimals)).encode(), b""])
    return [
        hashlib.sha256(prefix + row.tobytes()).hexdigest() for row in rounded
    ]


@thread_shared
class ResultCache:
    """Thread-safe digest → objective-value store with hit/miss counters.

    One lock guards the store *and* the hit/miss counters, so ``get`` can
    count and look up atomically.  Both construction and unpickling obtain
    the lock from the same factory (:meth:`_new_lock`) — there is exactly
    one place that decides which lock class an instance carries, so a
    pickled-and-restored cache is guarded identically to a fresh one.
    """

    def __init__(self, decimals: int = DEFAULT_DECIMALS) -> None:
        self._lock = self._new_lock()
        if decimals < 0:
            raise ValueError(f"decimals must be non-negative, got {decimals}")
        self.decimals = int(decimals)
        self._store: dict[str, float] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _new_lock() -> "threading.RLock":  # type: ignore[valid-type]
        """The single source of the cache's lock (init and unpickle)."""
        return make_lock("runtime.ResultCache")

    def key_for(self, cache_key: str, x: ArrayLike) -> str:
        """The digest this cache would use for ``(cache_key, x)``."""
        return point_digest(cache_key, x, decimals=self.decimals)

    def get(self, digest: str) -> float | None:
        """Look up a digest, counting the hit or miss."""
        with self._lock:
            if digest in self._store:
                self.hits += 1
                return self._store[digest]
            self.misses += 1
            return None

    def keys_for_batch(self, cache_key: str, X: ArrayLike) -> list[str]:
        """Digests for every row of ``X`` (one vectorized rounding pass)."""
        return batch_digests(cache_key, X, decimals=self.decimals)

    def get_many(self, digests: list[str]) -> list[float | None]:
        """Look up many digests under a single lock acquisition.

        Counts one hit or miss per digest, exactly as the equivalent
        sequence of :meth:`get` calls would.
        """
        out: list[float | None] = []
        with self._lock:
            for digest in digests:
                if digest in self._store:
                    self.hits += 1
                    out.append(self._store[digest])
                else:
                    self.misses += 1
                    out.append(None)
        return out

    def put(self, digest: str, value: float) -> None:
        with self._lock:
            self._store[digest] = float(value)

    def preload(self, mapping: Mapping[str, float]) -> None:
        """Bulk-insert digest → value pairs (ledger replay) without counting."""
        with self._lock:
            for digest, value in mapping.items():
                self._store[digest] = float(value)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._store

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._store),
                "hits": self.hits,
                "misses": self.misses,
            }

    # -- pickling (locks are not picklable) ---------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = self._new_lock()


__all__ = ["DEFAULT_DECIMALS", "ResultCache", "batch_digests", "point_digest"]
