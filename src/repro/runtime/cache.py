"""Content-addressed evaluation result cache, in-memory or persistent.

Each simulation result is addressed by a SHA-256 digest of the objective's
``cache_key`` plus the evaluation point *rounded to a fixed number of
decimals*.  Rounding is what makes deduplication effective in practice: the
repeated points a campaign actually produces — the shared initial design
every BO method starts from, REMBO proposals that clip to the same boundary
``x`` (Eq. 11 projects many embedded ``z`` onto one cube face) — agree to
well below 1e-12 but not always bit-for-bit after independent float
pipelines.  Twelve decimals is far inside simulator noise and far outside
any step an optimizer takes deliberately, so distinct query points never
collide (see DESIGN.md §10 for the rationale).

Construction goes through two factories (the bare constructor is
deprecated):

* :meth:`ResultCache.in_memory` — the historical per-run cache;
* :meth:`ResultCache.open` — a **persistent cross-campaign store**
  (DESIGN.md §15): digest → value pairs are appended to 16 shard files
  (``shard-0.jsonl`` … ``shard-f.jsonl``, by first hex digit) under one
  directory, one flushed JSONL line per new result, so a killed service
  leaves valid shard prefixes the next open replays.  The files are
  append-only; ``max_entries`` bounds only the *in-memory* working set via
  LRU eviction (an evicted digest re-simulates, then re-appends).

The cache is thread-safe (broker worker fleets and scheduler campaign
threads share it) and exposes a *single-flight* protocol for
cross-campaign deduplication: :meth:`lookup_or_claim` atomically resolves
each digest to a hit, an ownership claim (the caller must simulate and
:meth:`put` — or :meth:`abandon_many` on failure), or an in-flight marker
another thread owns that :meth:`wait_for` blocks on.  With N campaigns
racing over shared designs, exactly one simulates each point.

It pickles by value with the locks dropped and recreated, so
it can ride inside task tuples handed to a process pool — though mutations
made in a child process do not propagate back (cross-method sharing needs
``n_jobs=1`` or a ledger replay).
"""

from __future__ import annotations

import hashlib
import json
import threading
import warnings
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro._typing import ArrayLike
from repro.utils.contracts import shape_contract, thread_shared
from repro.utils.sanitize_concurrency import make_lock

#: Default rounding applied to points before hashing (see module docstring).
DEFAULT_DECIMALS = 12

#: On-disk schema version stamped into ``meta.json`` of a persistent cache.
CACHE_FORMAT_VERSION = 1

#: Statuses returned by :meth:`ResultCache.lookup_or_claim`, per digest.
CLAIM_HIT = "hit"  #: value present; returned alongside the status
CLAIM_OWNED = "owned"  #: caller now owns the digest: simulate, then put/abandon
CLAIM_INFLIGHT = "inflight"  #: another thread owns it: wait_for() the value
CLAIM_REPEAT = "repeat"  #: duplicate of an earlier digest in the *same* call

_DEPRECATION_MSG = (
    "constructing ResultCache() directly is deprecated and will be removed "
    "in the next release; use ResultCache.in_memory() for the historical "
    "per-run cache or ResultCache.open(path) for a persistent store"
)


@shape_contract("x: a(d,)")
def point_digest(
    cache_key: str, x: ArrayLike, decimals: int = DEFAULT_DECIMALS
) -> str:
    """SHA-256 digest addressing one ``(objective, rounded point)`` result."""
    arr = np.asarray(x, dtype=np.float64).reshape(-1)
    rounded = np.round(arr, decimals) + 0.0  # fold -0.0 into +0.0
    payload = b"|".join(
        [cache_key.encode("utf-8"), str(int(decimals)).encode(), rounded.tobytes()]
    )
    return hashlib.sha256(payload).hexdigest()


@shape_contract("X: a(n, d)")
def batch_digests(
    cache_key: str, X: ArrayLike, decimals: int = DEFAULT_DECIMALS
) -> list[str]:
    """Digests for a whole ``(n, d)`` block in one vectorized pass.

    The rounding and ``-0.0`` fold run once over the full block instead of
    row by row; each digest is byte-identical to :func:`point_digest` on
    the corresponding row (``np.round`` and the ``+ 0.0`` fold are
    elementwise, so batching cannot change any byte of a row's payload).
    """
    arr = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
    rounded = np.ascontiguousarray(np.round(arr, decimals) + 0.0)
    prefix = b"|".join([cache_key.encode("utf-8"), str(int(decimals)).encode(), b""])
    return [
        hashlib.sha256(prefix + row.tobytes()).hexdigest() for row in rounded
    ]


def _parse_shard(path: Path) -> list[tuple[str, float]]:
    """Parse one shard file, tolerating a torn final line (killed write)."""
    entries: list[tuple[str, float]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    last = len(lines)
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            obj = json.loads(stripped)
        except json.JSONDecodeError:
            if lineno == last:  # the write a kill interrupted
                break
            raise ValueError(
                f"corrupt cache shard {path}: unparseable line {lineno} is "
                "not the final line"
            ) from None
        entries.append((str(obj["d"]), float(obj["y"])))
    return entries


def _read_shards(root: Path, max_entries: int | None) -> dict[str, float]:
    """Replay every shard file into an insertion-ordered store dict.

    Later lines win (a re-appended digest after eviction); replaying in
    file order keeps the most recently written entries newest in LRU
    order, so the load-time trim keeps exactly the freshest tail.
    """
    entries: list[tuple[str, float]] = []
    for shard in sorted(root.glob("shard-*.jsonl")):
        entries.extend(_parse_shard(shard))
    store: dict[str, float] = {}
    for digest, value in entries:
        if digest in store:
            del store[digest]
        store[digest] = value
    if max_entries is not None:
        while len(store) > max_entries:
            del store[next(iter(store))]
    return store


def _append_shard_line(root: Path, digest: str, value: float) -> None:
    """Append one ``{"d", "y"}`` record to the digest's shard file.

    Open-append-close per record: the close flushes the line to the OS, a
    kill can tear at most the final line (which :func:`_parse_shard`
    tolerates), and the cache never holds open file handles — so it stays
    picklable and safe to share across scheduler campaign threads.
    """
    line = json.dumps({"d": digest, "y": value}, separators=(",", ":")) + "\n"
    with (root / f"shard-{digest[0]}.jsonl").open("a", encoding="utf-8") as fh:
        fh.write(line)


@thread_shared
class ResultCache:
    """Thread-safe digest → objective-value store with hit/miss counters.

    One lock guards the store *and* the hit/miss/eviction counters, so
    ``get`` can count and look up atomically.  Both construction and
    unpickling obtain the lock from the same factory (:meth:`_new_lock`) —
    there is exactly one place that decides which lock class an instance
    carries, so a pickled-and-restored cache is guarded identically to a
    fresh one.  The single-flight bookkeeping lives under a separate
    condition variable (``_flight_lock``); where both are needed the
    nesting order is always ``_flight_lock`` outer, ``_lock`` inner.

    Use :meth:`in_memory` or :meth:`open` — the bare constructor form is
    deprecated (the extra keyword parameters are the factories' plumbing,
    not public API).
    """

    def __init__(
        self,
        decimals: int = DEFAULT_DECIMALS,
        *,
        path: Path | None = None,
        max_entries: int | None = None,
        _from_factory: bool = False,
    ) -> None:
        if not _from_factory:
            warnings.warn(_DEPRECATION_MSG, DeprecationWarning, stacklevel=2)
        if decimals < 0:
            raise ValueError(f"decimals must be non-negative, got {decimals}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 when set, got {max_entries}"
            )
        self._lock = self._new_lock()
        self._flight_lock = threading.Condition()
        self.decimals = int(decimals)
        self.max_entries = max_entries
        self.path = path
        self._store: dict[str, float] = {}
        self._inflight: set[str] = set()
        self._metrics: Any = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self.path is not None:
            self._store = _read_shards(self.path, max_entries)

    # -- construction --------------------------------------------------------

    @classmethod
    def in_memory(
        cls,
        decimals: int = DEFAULT_DECIMALS,
        max_entries: int | None = None,
    ) -> "ResultCache":
        """A process-local cache (the historical ``ResultCache()`` behavior).

        ``max_entries`` optionally bounds the store with LRU eviction.
        """
        return cls(decimals, max_entries=max_entries, _from_factory=True)

    @classmethod
    def open(
        cls,
        path: str | Path,
        decimals: int | None = None,
        max_entries: int | None = None,
    ) -> "ResultCache":
        """Open (or create) a persistent cache directory at ``path``.

        The directory holds ``meta.json`` (format version + decimals) and
        up to 16 append-only JSONL shard files keyed by the first hex digit
        of each digest.  ``decimals`` must match an existing store's
        recorded value (omit it to adopt whatever the store was created
        with); ``max_entries`` bounds only the in-memory working set — the
        shard files are append-only and never rewritten.  Each append is
        written and closed eagerly, so no handle outlives the write.
        """
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        meta_path = root / "meta.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            version = int(meta.get("version", -1))
            if version != CACHE_FORMAT_VERSION:
                raise ValueError(
                    f"cache at {root} has format version {version}; this "
                    f"build reads version {CACHE_FORMAT_VERSION}"
                )
            stored = int(meta["decimals"])
            if decimals is not None and int(decimals) != stored:
                raise ValueError(
                    f"cache at {root} was created with decimals={stored}, "
                    f"open() called with decimals={decimals}"
                )
            decimals = stored
        else:
            decimals = DEFAULT_DECIMALS if decimals is None else int(decimals)
            meta_path.write_text(
                json.dumps(
                    {"version": CACHE_FORMAT_VERSION, "decimals": decimals},
                    separators=(",", ":"),
                )
                + "\n",
                encoding="utf-8",
            )
        return cls(
            decimals, path=root, max_entries=max_entries, _from_factory=True
        )

    @staticmethod
    def _new_lock() -> "threading.RLock":  # type: ignore[valid-type]
        """The single source of the cache's lock (init and unpickle)."""
        return make_lock("runtime.ResultCache")

    @property
    def persistent(self) -> bool:
        return self.path is not None

    def bind_metrics(self, metrics: Any) -> None:
        """Mirror hit/miss/eviction counts into a metrics registry.

        ``metrics`` is a :class:`~repro.telemetry.metrics.MetricsRegistry`
        (or the null registry); the cache feeds ``result_cache.hits`` /
        ``result_cache.misses`` / ``result_cache.evictions`` counters and a
        ``result_cache.size`` gauge.
        """
        with self._lock:
            self._metrics = metrics
            size = len(self._store)
        self._emit_metrics(size=size)

    def _emit_metrics(
        self,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        size: int | None = None,
    ) -> None:
        """Apply accumulated counter deltas outside the cache lock."""
        metrics = self._metrics
        if metrics is None:
            return
        if hits:
            metrics.counter("result_cache.hits").inc(hits)
        if misses:
            metrics.counter("result_cache.misses").inc(misses)
        if evictions:
            metrics.counter("result_cache.evictions").inc(evictions)
        if size is not None:
            metrics.gauge("result_cache.size").set(float(size))

    def close(self) -> None:
        """Release the cache.

        Every shard append is written-and-closed eagerly, so there is
        nothing buffered to flush; the method (and context-manager form)
        exists so call sites scope the cache's lifetime explicitly.
        """

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- lookups -------------------------------------------------------------

    def key_for(self, cache_key: str, x: ArrayLike) -> str:
        """The digest this cache would use for ``(cache_key, x)``."""
        return point_digest(cache_key, x, decimals=self.decimals)

    def get(self, digest: str) -> float | None:
        """Look up a digest, counting the hit or miss."""
        with self._lock:
            if digest in self._store:
                self.hits += 1
                value = self._store[digest] = self._store.pop(digest)
                hit = True
            else:
                self.misses += 1
                value, hit = None, False
        self._emit_metrics(hits=int(hit), misses=int(not hit))
        return value

    def keys_for_batch(self, cache_key: str, X: ArrayLike) -> list[str]:
        """Digests for every row of ``X`` (one vectorized rounding pass)."""
        return batch_digests(cache_key, X, decimals=self.decimals)

    def get_many(self, digests: list[str]) -> list[float | None]:
        """Look up many digests under a single lock acquisition.

        Counts one hit or miss per digest, exactly as the equivalent
        sequence of :meth:`get` calls would.
        """
        out: list[float | None] = []
        hits = misses = 0
        with self._lock:
            for digest in digests:
                if digest in self._store:
                    hits += 1
                    value = self._store[digest] = self._store.pop(digest)
                    out.append(value)
                else:
                    misses += 1
                    out.append(None)
            self.hits += hits
            self.misses += misses
        self._emit_metrics(hits=hits, misses=misses)
        return out

    def put(self, digest: str, value: float) -> None:
        """Store one result, releasing any single-flight claim on it."""
        evicted = 0
        with self._lock:
            if digest in self._store:
                del self._store[digest]  # re-insert: most-recently-used
                self._store[digest] = float(value)
                size = len(self._store)
            else:
                self._store[digest] = float(value)
                if self.path is not None:
                    _append_shard_line(self.path, digest, float(value))
                if self.max_entries is not None:
                    while len(self._store) > self.max_entries:
                        del self._store[next(iter(self._store))]
                        evicted += 1
                    self.evictions += evicted
                size = len(self._store)
        with self._flight_lock:
            self._inflight.discard(digest)
            self._flight_lock.notify_all()
        self._emit_metrics(evictions=evicted, size=size)

    def preload(self, mapping: Mapping[str, float]) -> None:
        """Bulk-insert digest → value pairs (ledger replay) without counting.

        Persistent caches write through: preloaded results a prior process
        simulated become part of the shared store.
        """
        evicted = 0
        with self._lock:
            for digest, value in mapping.items():
                if digest not in self._store and self.path is not None:
                    _append_shard_line(self.path, digest, float(value))
                self._store[digest] = float(value)
            if self.max_entries is not None:
                while len(self._store) > self.max_entries:
                    del self._store[next(iter(self._store))]
                    evicted += 1
                self.evictions += evicted
            size = len(self._store)
        with self._flight_lock:
            for digest in mapping:
                self._inflight.discard(digest)
            self._flight_lock.notify_all()
        self._emit_metrics(evictions=evicted, size=size)

    # -- single-flight claims (cross-campaign dedup) --------------------------

    def lookup_or_claim(
        self, digests: list[str]
    ) -> list[tuple[str, float | None]]:
        """Atomically resolve each digest to a value or a claim.

        Returns one ``(status, value)`` pair per digest:

        * :data:`CLAIM_HIT` — ``value`` is the cached result;
        * :data:`CLAIM_OWNED` — the caller took ownership: it must
          simulate the point and either :meth:`put` the result or
          :meth:`abandon_many` the digest (always abandon in a ``finally``
          — an unreleased claim blocks every waiter);
        * :data:`CLAIM_INFLIGHT` — another owner is simulating it now;
          :meth:`wait_for` blocks until the value lands or the owner
          abandons;
        * :data:`CLAIM_REPEAT` — the digest already appeared earlier in
          *this call* (in-batch duplicate); the earlier occurrence's
          status governs.

        Hit/miss counters move exactly as :meth:`get_many` would: one hit
        per HIT, one miss per OWNED and per REPEAT (a repeat is a miss the
        batch resolves internally), nothing for INFLIGHT (the wait is
        counted when it resolves).
        """
        out: list[tuple[str, float | None]] = []
        hits = misses = 0
        seen: set[str] = set()
        with self._flight_lock:
            with self._lock:
                for digest in digests:
                    if digest in self._store:
                        hits += 1
                        value = self._store[digest] = self._store.pop(digest)
                        out.append((CLAIM_HIT, value))
                    elif digest in seen:
                        misses += 1
                        out.append((CLAIM_REPEAT, None))
                    elif digest in self._inflight:
                        out.append((CLAIM_INFLIGHT, None))
                    else:
                        misses += 1
                        self._inflight.add(digest)
                        seen.add(digest)
                        out.append((CLAIM_OWNED, None))
                self.hits += hits
                self.misses += misses
        self._emit_metrics(hits=hits, misses=misses)
        return out

    def wait_for(
        self, digest: str, timeout: float | None = None
    ) -> float | None:
        """Block until an in-flight digest resolves; return its value.

        Returns ``None`` when the owner abandoned the claim (the caller
        should :meth:`lookup_or_claim` again — it may now win ownership),
        when the value was evicted before this thread woke, or when
        ``timeout`` (seconds) expired.  A successful wait counts as a hit;
        the unresolved outcomes count nothing (the retry accounts itself).
        """
        with self._flight_lock:
            while digest in self._inflight:
                if not self._flight_lock.wait(timeout):
                    return None
            with self._lock:
                if digest in self._store:
                    self.hits += 1
                    value = self._store[digest] = self._store.pop(digest)
                else:
                    value = None
        if value is not None:
            self._emit_metrics(hits=1)
        return value

    def abandon_many(self, digests: Iterable[str]) -> None:
        """Release single-flight claims without storing values.

        Call from a ``finally`` for every digest the caller still owns —
        including after :meth:`put` resolved some of them (releasing a
        digest that is not claimed is a no-op), so failure paths can
        blanket-release the whole owned set.
        """
        with self._flight_lock:
            for digest in digests:
                self._inflight.discard(digest)
            self._flight_lock.notify_all()

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._store

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._store),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # -- pickling (locks and handles are not picklable) ----------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        del state["_flight_lock"]
        state["_metrics"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = self._new_lock()
        self._flight_lock = threading.Condition()


__all__ = [
    "CACHE_FORMAT_VERSION",
    "CLAIM_HIT",
    "CLAIM_INFLIGHT",
    "CLAIM_OWNED",
    "CLAIM_REPEAT",
    "DEFAULT_DECIMALS",
    "ResultCache",
    "batch_digests",
    "point_digest",
]
