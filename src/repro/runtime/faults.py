"""Deterministic fault injection for exercising the evaluation runtime.

Real AMS simulation campaigns fail in mundane ways: license hiccups,
solver non-convergence, jobs that hang, corrupted measurements that come
back as NaN.  The runtime's retry/timeout/policy machinery exists for
those — and testing it needs failures that are *reproducible*.

:class:`FaultInjectingObjective` wraps any objective and decides, per
evaluation point, whether to misbehave.  The decision is a pure function of
``(plan.seed, point digest)``: the same point always draws the same fault
plan, regardless of evaluation order or parallelism.  Faults are
*transient* — each faulty point fails a fixed number of times (drawn from
the same stream) and then returns the true value — so a campaign run under
injection with enough retries completes with exactly the fault-free
``X``/``y``.

:class:`FaultInjectingTestbench` lifts the same wrapper to a circuit
testbench: it delegates everything to the wrapped bench but returns
fault-injecting objectives from ``objective(name)``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro._typing import FloatArray
from repro.runtime.cache import DEFAULT_DECIMALS, point_digest
from repro.runtime.objective import Objective, require_objective
from repro.utils.rng import as_generator


class TransientSimulationError(RuntimeError):
    """A simulated transient infrastructure failure (retryable)."""


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, with which probabilities.

    ``failure_rate`` is the per-point probability of being faulty at all.
    A faulty point fails its first ``n_faults`` attempts (uniform in
    ``[1, max_faults_per_point]``), each failure drawn among three modes:
    a NaN return (probability ``nan_fraction``), a hang of ``hang_seconds``
    followed by a transient error (``hang_fraction``), or an immediate
    transient error (the remainder).
    """

    failure_rate: float = 0.3
    nan_fraction: float = 0.3
    hang_fraction: float = 0.0
    hang_seconds: float = 0.05
    max_faults_per_point: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {self.failure_rate}")
        if self.nan_fraction < 0 or self.hang_fraction < 0:
            raise ValueError("fault mode fractions must be non-negative")
        if self.nan_fraction + self.hang_fraction > 1.0:
            raise ValueError("nan_fraction + hang_fraction must not exceed 1")
        if self.max_faults_per_point < 1:
            raise ValueError(
                f"max_faults_per_point must be >= 1, got {self.max_faults_per_point}"
            )


@dataclass(frozen=True)
class _PointFaults:
    """Resolved injection behavior for one point: modes of its failing attempts."""

    modes: tuple[str, ...]  # e.g. ("error", "nan"); empty = healthy point


class FaultInjectingObjective(Objective):
    """Wrap an objective with deterministic, per-point transient faults.

    The wrapper keeps a per-digest attempt counter (lock-protected, so the
    broker's worker threads can share it): attempt ``k`` of a point whose
    plan holds ``m`` faults misbehaves iff ``k < m``.  Identity
    (``cache_key``, ``dim``, ``bounds``) delegates to the wrapped
    objective — injected faults are an infrastructure property, not part of
    the function being computed, and cached values must match the clean run.
    """

    def __init__(self, inner: Objective, plan: FaultPlan | None = None) -> None:
        self._inner = require_objective(inner, "FaultInjectingObjective")
        self.plan = plan if plan is not None else FaultPlan()
        self._attempts: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def dim(self) -> int:
        return self._inner.dim

    @property
    def bounds(self) -> FloatArray | None:
        return self._inner.bounds

    @property
    def cache_key(self) -> str:
        return self._inner.cache_key

    def _faults_for(self, digest: str) -> _PointFaults:
        material = hashlib.sha256(
            f"{self.plan.seed}|{digest}".encode("utf-8")
        ).digest()
        rng = as_generator(int.from_bytes(material[:8], "little"))
        if float(rng.uniform()) >= self.plan.failure_rate:
            return _PointFaults(modes=())
        n_faults = int(rng.integers(1, self.plan.max_faults_per_point + 1))
        modes = []
        for _ in range(n_faults):
            u = float(rng.uniform())
            if u < self.plan.nan_fraction:
                modes.append("nan")
            elif u < self.plan.nan_fraction + self.plan.hang_fraction:
                modes.append("hang")
            else:
                modes.append("error")
        return _PointFaults(modes=tuple(modes))

    def _next_attempt(self, digest: str) -> int:
        with self._lock:
            attempt = self._attempts.get(digest, 0)
            self._attempts[digest] = attempt + 1
        return attempt

    def evaluate(self, X: FloatArray) -> FloatArray:
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape[0], dtype=float)
        for i, x in enumerate(X):
            digest = point_digest(self.cache_key, x, decimals=DEFAULT_DECIMALS)
            faults = self._faults_for(digest)
            attempt = self._next_attempt(digest)
            if attempt < len(faults.modes):
                mode = faults.modes[attempt]
                if mode == "nan":
                    out[i] = float("nan")
                    continue
                if mode == "hang":
                    time.sleep(self.plan.hang_seconds)
                raise TransientSimulationError(
                    f"injected {mode} fault (attempt {attempt}) for point "
                    f"{digest[:12]}"
                )
            out[i] = float(self._inner.evaluate(x[None, :])[0])
        return out

    def reset(self) -> None:
        """Forget attempt history (a 'fresh process' for resume tests)."""
        with self._lock:
            self._attempts.clear()


class DelayObjective(Objective):
    """Wrap an objective so every evaluation takes real wall time.

    Pure pacing: values, identity (``cache_key``/``dim``/``bounds``) and
    determinism are untouched — the wrapper just sleeps
    ``delay_seconds`` per evaluated row before delegating.  The serve
    kill/resume tests use it to hold a campaign mid-flight long enough to
    SIGKILL the scheduler at a controlled point; the cached values still
    match an undelayed run bitwise.
    """

    def __init__(self, inner: Objective, delay_seconds: float) -> None:
        self._inner = require_objective(inner, "DelayObjective")
        if delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {delay_seconds}"
            )
        self.delay_seconds = float(delay_seconds)

    @property
    def dim(self) -> int:
        return self._inner.dim

    @property
    def bounds(self) -> FloatArray | None:
        return self._inner.bounds

    @property
    def cache_key(self) -> str:
        return self._inner.cache_key

    @property
    def prefers_batch(self) -> bool:
        return self._inner.prefers_batch

    def evaluate(self, X: FloatArray) -> FloatArray:
        X = np.asarray(X, dtype=float)
        if self.delay_seconds > 0.0:
            time.sleep(self.delay_seconds * max(1, X.shape[0]))
        return self._inner.evaluate(X)


class FaultInjectingTestbench:
    """A circuit testbench whose objectives inject deterministic faults.

    Delegates every attribute to the wrapped testbench; only
    ``objective(name)`` differs, returning the wrapped bench's objective
    inside a :class:`FaultInjectingObjective`.
    """

    def __init__(self, testbench: Any, plan: FaultPlan | None = None) -> None:
        self._testbench = testbench
        self._plan = plan if plan is not None else FaultPlan()
        self._wrapped: dict[str, FaultInjectingObjective] = {}

    def __getattr__(self, name: str) -> Any:
        return getattr(self._testbench, name)

    def objective(self, name: str) -> FaultInjectingObjective:
        if name not in self._wrapped:
            self._wrapped[name] = FaultInjectingObjective(
                self._testbench.objective(name), plan=self._plan
            )
        return self._wrapped[name]


__all__ = [
    "DelayObjective",
    "FaultInjectingObjective",
    "FaultInjectingTestbench",
    "FaultPlan",
    "TransientSimulationError",
]
