"""Append-only JSONL run ledger: event log and checkpoint format in one.

Every evaluation the broker performs emits events — ``dispatched``,
``completed``, ``failed``, ``retried``, ``cache_hit``, ``skipped``,
``penalized`` — as one JSON object per line.  Because each line is flushed
as it is written, a killed campaign leaves a valid prefix: the ledger *is*
the checkpoint.  :func:`read_ledger` tolerates a truncated final line (the
write the kill interrupted) and rebuilds the completed-evaluation state
that :func:`repro.runtime.resume` preloads into a fresh cache.

Event schema (version 1)
------------------------
``campaign``
    Run metadata: ``cache_key``, ``dim``, ``method``, broker config.
``dispatched``
    ``id`` (evaluation counter), ``attempt``, ``digest``.
``completed``
    ``id``, ``attempt``, ``digest``, ``x`` (the evaluated point),
    ``y``, ``seconds`` (simulation wall time), ``cached`` (always false —
    cache hits get their own event).
``cache_hit``
    ``id``, ``digest``, ``y`` — the point was served without simulating.
``failed``
    ``id``, ``attempt``, ``error`` (exception class), ``message``.
``retried``
    ``id``, ``attempt`` (the upcoming attempt), ``backoff_seconds``.
``skipped`` / ``penalized``
    Terminal outcome under the matching failure policy; ``penalized``
    carries the substituted ``y``.

Durations are monotonic (``time.perf_counter``) deltas only; the ledger
deliberately records no wall-clock timestamps so replaying it is
deterministic (see the NL401 invariant).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable

import numpy as np

from repro._typing import FloatArray
from repro.utils.contracts import thread_shared
from repro.utils.sanitize_concurrency import make_lock

#: Schema version stamped on campaign events.
LEDGER_VERSION = 1


@thread_shared
class RunLedger:
    """Append-only JSONL writer; one flushed line per event.

    The file handle opens lazily on first append (so a ledger object can be
    constructed, pickled into worker tasks, and only materialize the file
    where events actually happen) and is excluded from pickling.

    Appends are thread-safe: the lazy open, the line write and the flush
    run under one lock, so concurrent campaign threads (ROADMAP item 1)
    can share a ledger without ever interleaving bytes of two JSON lines.
    Serialization of the event happens *outside* the lock — the only
    serialized section is the file append itself.
    """

    def __init__(self, path: str | Path) -> None:
        self._lock = make_lock("runtime.RunLedger")
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def append(self, event: dict[str, Any]) -> None:
        """Write one event line and flush it to disk."""
        line = json.dumps(event, separators=(",", ":")) + "\n"
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- pickling (locks and file handles are not picklable) -----------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_fh"] = None
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = make_lock("runtime.RunLedger")


@dataclass
class LedgerReplay:
    """Parsed state of one ledger file.

    ``completed`` maps digests to objective values (latest wins) and is
    what resume preloads into a cache; ``X``/``y`` are the completed
    evaluations in event order, for inspecting a partial campaign.
    """

    events: list[dict[str, Any]]
    completed: dict[str, float]
    X: FloatArray
    y: FloatArray
    counts: dict[str, int] = field(default_factory=dict)
    truncated: bool = False
    #: completed events whose digest had already completed earlier — actual
    #: repeat simulations the cache should have absorbed.
    duplicate_simulations: int = 0

    @property
    def n_completed(self) -> int:
        return self.counts.get("completed", 0)

    @property
    def n_cache_hits(self) -> int:
        return self.counts.get("cache_hit", 0)

    def campaigns(self) -> list[dict[str, Any]]:
        return [e for e in self.events if e.get("event") == "campaign"]


def _parse_lines(lines: Iterable[str]) -> tuple[list[dict[str, Any]], bool]:
    """Parse JSONL content, dropping at most one truncated trailing line."""
    events: list[dict[str, Any]] = []
    pending_error: int | None = None
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if pending_error is not None:
            raise ValueError(
                f"corrupt ledger: unparseable line {pending_error} is not "
                "the final line"
            )
        try:
            events.append(json.loads(stripped))
        except json.JSONDecodeError:
            pending_error = lineno
    return events, pending_error is not None


def read_ledger(path: str | Path) -> LedgerReplay:
    """Parse a ledger file into a :class:`LedgerReplay`.

    A truncated final line (interrupted write) is dropped and flagged via
    ``truncated``; garbage anywhere else raises.
    """
    text = Path(path).read_text(encoding="utf-8")
    events, truncated = _parse_lines(text.splitlines())

    completed: dict[str, float] = {}
    xs: list[list[float]] = []
    ys: list[float] = []
    counts: dict[str, int] = {}
    duplicates = 0
    for event in events:
        kind = str(event.get("event", "?"))
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "completed":
            digest = str(event["digest"])
            if digest in completed:
                duplicates += 1
            completed[digest] = float(event["y"])
            xs.append([float(v) for v in event["x"]])
            ys.append(float(event["y"]))

    if xs:
        X = np.asarray(xs, dtype=float)
    else:
        dim = 0
        for event in events:
            if event.get("event") == "campaign" and "dim" in event:
                dim = int(event["dim"])
                break
        X = np.empty((0, dim), dtype=float)
    return LedgerReplay(
        events=events,
        completed=completed,
        X=X,
        y=np.asarray(ys, dtype=float),
        counts=counts,
        truncated=truncated,
        duplicate_simulations=duplicates,
    )


__all__ = ["LEDGER_VERSION", "LedgerReplay", "RunLedger", "read_ledger"]
