"""The unified ``Objective`` protocol every evaluation flows through.

Historically each engine and sampler accepted a bare ``Callable`` taking one
variation row and returning a float — no identity (so results could not be
cached or deduplicated), no declared dimensionality or bounds (so every
caller re-derived them), and no batch form (so vectorized testbenches were
evaluated row by row).  :class:`Objective` is the single replacement: a
vectorized ``__call__(X: (n, D)) -> (n,)`` plus ``dim``, ``bounds`` and a
stable ``cache_key`` that the evaluation runtime (broker, cache, ledger)
keys results on.

Migration
---------
Plain scalar/row callables are wrapped explicitly, once::

    objective = FunctionObjective(my_fn, dim=19, bounds=bounds)
    campaign = Campaign(objective, engine)

The implicit coercion shims (``as_objective`` / ``coerce_objective``) that
accepted bare callables at every engine boundary completed their one-release
deprecation cycle and are gone; the runtime now requires a real
:class:`Objective` (see :func:`require_objective`).

For backward compatibility :meth:`Objective.__call__` also accepts a single
1-D row and returns a plain float, so an :class:`Objective` is a drop-in
replacement anywhere a legacy row callable was expected.
"""

from __future__ import annotations

import abc
import hashlib
import pickle
from typing import Callable

import numpy as np

from repro._typing import ArrayLike, FloatArray
from repro.utils.validation import as_matrix, check_bounds


class Objective(abc.ABC):
    """A cache-addressable, vectorized black-box objective.

    Subclasses implement :meth:`evaluate` (the batched form) and ``dim``;
    ``bounds`` and ``cache_key`` have sensible defaults.  Values are in
    *minimization* orientation throughout, matching paper Eq. 2.
    """

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Dimensionality ``D`` of the variation space."""

    @property
    def bounds(self) -> FloatArray | None:
        """The evaluation box as ``(dim, 2)`` rows of ``(lo, hi)``, if known."""
        return None

    @property
    def cache_key(self) -> str:
        """Stable identity used to key cached/logged results.

        Two objectives with equal ``cache_key`` must compute the same
        function; the default derives from the concrete class, which is
        only collision-safe within a single run — give testbench-backed
        objectives an explicit, content-derived key.
        """
        return f"{type(self).__module__}.{type(self).__qualname__}[d={self.dim}]"

    @property
    def prefers_batch(self) -> bool:
        """Whether the broker should hand :meth:`evaluate` whole chunks.

        ``True`` declares that a ``(k, dim)`` call is genuinely vectorized
        — cheaper than ``k`` single-row calls and free of per-row state
        that retries depend on — so ``dispatch="auto"`` may use chunked
        dispatch.  The conservative default is ``False``: row-at-a-time
        dispatch, which any correct :meth:`evaluate` supports.
        """
        return False

    @abc.abstractmethod
    def evaluate(self, X: FloatArray) -> FloatArray:
        """Evaluate a batch ``X`` of shape ``(n, dim)``; returns ``(n,)``."""

    def __call__(self, x: ArrayLike):
        """Vectorized call; a single 1-D row returns a plain float."""
        arr = np.asarray(x, dtype=float)
        single = arr.ndim == 1
        X = as_matrix(arr, self.dim)
        out = np.asarray(self.evaluate(X), dtype=float).reshape(-1)
        if out.shape[0] != X.shape[0]:
            raise ValueError(
                f"{type(self).__name__}.evaluate returned {out.shape[0]} "
                f"values for {X.shape[0]} rows"
            )
        return float(out[0]) if single else out


def stable_callable_name(fn: Callable) -> str:
    """A cache-key-safe name for ``fn``: its qualname, or a content digest.

    ``functools.partial`` objects and callable instances have no
    ``__qualname__``; their default ``repr`` embeds the object's memory
    address, which differs between processes and would silently fork the
    content-addressed result cache (resume re-simulates everything, dedup
    never hits).  Such callables get a deterministic name derived from
    their pickle payload instead; a callable that is *also* unpicklable
    cannot be named stably and must be given an explicit ``cache_key``.
    """
    name = getattr(fn, "__qualname__", None)
    if name:
        return str(name)
    try:
        payload = pickle.dumps(fn, protocol=4)
    except Exception as exc:
        raise ValueError(
            f"cannot derive a stable cache_key for {type(fn).__qualname__}: "
            "it has no __qualname__ and is not picklable; pass cache_key= "
            "explicitly"
        ) from exc
    short = hashlib.sha256(payload).hexdigest()[:16]
    return f"{type(fn).__qualname__}#{short}"


class FunctionObjective(Objective):
    """Adapter giving a plain callable the :class:`Objective` interface.

    Parameters
    ----------
    fn:
        With ``vectorized=False`` (default), a legacy row callable
        ``fn(x: (dim,)) -> float``; with ``vectorized=True``, a batch
        callable ``fn(X: (n, dim)) -> (n,)``.
    dim:
        Dimensionality of the variation space.
    bounds:
        Optional evaluation box, ``(dim, 2)`` or ``(2, dim)``.
    cache_key:
        Stable identity; defaults to the function's qualified name plus
        ``dim``, which is only collision-safe within a single run.
    """

    def __init__(
        self,
        fn: Callable,
        dim: int,
        bounds: ArrayLike | None = None,
        cache_key: str | None = None,
        vectorized: bool = False,
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._fn = fn
        self._dim = int(dim)
        if bounds is None:
            self._bounds: FloatArray | None = None
        else:
            lower, upper = check_bounds(bounds, self._dim)
            self._bounds = np.column_stack([lower, upper])
        if cache_key is None:
            name = stable_callable_name(fn)
            module = getattr(fn, "__module__", "") or ""
            cache_key = f"{module}.{name}[d={self._dim}]"
        self._cache_key = str(cache_key)
        self._vectorized = bool(vectorized)

    @property
    def prefers_batch(self) -> bool:
        return self._vectorized

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def bounds(self) -> FloatArray | None:
        return None if self._bounds is None else self._bounds.copy()

    @property
    def cache_key(self) -> str:
        return self._cache_key

    def evaluate(self, X: FloatArray) -> FloatArray:
        X = as_matrix(X, self._dim)
        if self._vectorized:
            return np.asarray(self._fn(X), dtype=float).reshape(X.shape[0])
        return np.array([float(self._fn(x)) for x in X], dtype=float)


def require_objective(objective: object, who: str = "the evaluation runtime") -> Objective:
    """Validate that ``objective`` implements the :class:`Objective` protocol.

    The single choke point replacing the removed coercion shims: anything
    that is not an :class:`Objective` raises a :class:`TypeError` naming
    the explicit wrapper to use.
    """
    if isinstance(objective, Objective):
        return objective
    raise TypeError(
        f"{who} requires an Objective, got {type(objective).__name__}; "
        "wrap plain callables explicitly with "
        "FunctionObjective(fn, dim=..., bounds=...)"
    )


def resolve_bounds(objective, bounds):
    """The evaluation box a run happens in: ``(lower, upper, (d, 2) box)``.

    Explicit ``bounds`` win; otherwise the objective's own ``bounds``
    attribute (the :class:`Objective` protocol) is used.  Raises when
    neither is available.
    """
    if bounds is None:
        bounds = getattr(objective, "bounds", None)
    if bounds is None:
        raise ValueError(
            "no bounds available: pass bounds= or an Objective that "
            "declares its own"
        )
    lower, upper = check_bounds(bounds)
    return lower, upper, np.column_stack([lower, upper])


__all__ = [
    "Objective",
    "FunctionObjective",
    "require_objective",
    "resolve_bounds",
    "stable_callable_name",
]
