"""Ledger replay verifier: the dynamic proof behind the NL7xx static rules.

The NL7xx determinism passes (``tools/numlint/passes/determinism.py``)
argue *statically* that nothing impure is reachable from cache keys,
ledger records or evaluation paths.  This module is the matching dynamic
check: take a completed (possibly killed-and-resumed) :class:`RunLedger`
and prove, record by record, that the runtime's two guarantees actually
held —

* **digest stability** — every completed record's point still hashes to
  the digest the ledger stored (``cache_key`` and rounding are
  reproducible across processes), and
* **value stability** — re-executing the point produces the recorded
  objective value bit for bit (the JSON round-trip preserves doubles via
  shortest repr, so the comparison is exact).

Two replay modes, mirroring how a resumed campaign consumes the ledger:

``warm``
    The resume path without simulation: preload a fresh
    :class:`~repro.runtime.cache.ResultCache` from the ledger (exactly
    what :func:`repro.runtime.resume.resume` does) and confirm every
    completed record's *recomputed* digest hits the cache with the
    recorded value.  Cheap — no objective calls.
``cold``
    Re-execute every unique completed point through a fresh
    :class:`~repro.runtime.broker.EvaluationBroker` (empty cache) and
    compare values bitwise.  This exercises the full dispatch path the
    original run used; a fault-injected campaign replays clean because
    injected faults are transient and ``cache_key`` delegates to the
    wrapped objective.

CLI::

    python -m repro.runtime.replay LEDGER --testbench uvlo
    python -m repro.runtime.replay LEDGER --objective pkg.mod:attr
    python -m repro.runtime.replay --selftest

``--selftest`` runs a fault-injected UVLO campaign, kills it mid-batch
(torn final line included), resumes it appending to the same ledger, then
verifies the combined ledger in both modes — the one-line CI smoke for
the whole kill/resume/replay contract.  Exit status: 0 on zero
divergence, 1 on any divergence, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.runtime.broker import BrokerConfig, EvaluationBroker, RuntimePolicy
from repro.runtime.cache import DEFAULT_DECIMALS, ResultCache, point_digest
from repro.runtime.ledger import RunLedger, read_ledger
from repro.runtime.objective import Objective, require_objective

#: Recognized replay modes.
REPLAY_MODES = ("warm", "cold", "both")


@dataclass(frozen=True)
class Divergence:
    """One record whose replay disagreed with the ledger."""

    record_id: int
    mode: str  # "digest" | "warm" | "cold"
    kind: str  # "digest" | "missing" | "value"
    digest: str
    detail: str
    recorded_y: float | None = None
    replayed_y: float | None = None

    def render(self) -> str:
        return (
            f"record id={self.record_id} [{self.mode}/{self.kind}] "
            f"{self.detail}"
        )


@dataclass
class ReplayReport:
    """Outcome of verifying one ledger file."""

    ledger_path: Path
    mode: str
    cache_key: str
    n_events: int
    n_completed: int
    n_unique: int
    n_checked: int
    truncated: bool
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def zero_divergence(self) -> bool:
        return not self.divergences

    @property
    def first_divergence(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    def summary(self) -> str:
        lines = [
            f"ledger:     {self.ledger_path}",
            f"mode:       {self.mode}",
            f"cache_key:  {self.cache_key}",
            f"events:     {self.n_events}"
            + (" (truncated tail dropped)" if self.truncated else ""),
            f"completed:  {self.n_completed} ({self.n_unique} unique points)",
            f"checks:     {self.n_checked}",
        ]
        if self.zero_divergence:
            lines.append("result:     ZERO DIVERGENCE — replay is bitwise clean")
        else:
            lines.append(f"result:     {len(self.divergences)} divergence(s)")
            first = self.first_divergence
            assert first is not None
            lines.append(f"first:      {first.render()}")
        return "\n".join(lines)


def _completed_records(events: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    return [e for e in events if e.get("event") == "completed"]


def _header_value(
    headers: Sequence[dict[str, Any]], key: str
) -> Any | None:
    for header in headers:
        if key in header:
            return header[key]
    return None


def verify_replay(
    ledger_path: str | Path,
    objective: Objective,
    mode: str = "both",
    config: BrokerConfig | None = None,
) -> ReplayReport:
    """Verify every completed record of ``ledger_path`` against ``objective``.

    ``config`` shapes the cold-replay broker (retries matter when the
    objective injects faults); the cache decimals always come from the
    ledger's campaign header so digests are recomputed exactly as the
    original run computed them.  Raises :class:`ValueError` when the
    ledger was written for a different ``cache_key`` than the objective
    provides — that is operator error, not a divergence.
    """
    if mode not in REPLAY_MODES:
        raise ValueError(f"mode must be one of {REPLAY_MODES}, got {mode!r}")
    objective = require_objective(objective, "verify_replay")
    replay = read_ledger(ledger_path)
    headers = replay.campaigns()

    recorded_key = _header_value(headers, "cache_key")
    if recorded_key is not None and str(recorded_key) != objective.cache_key:
        raise ValueError(
            f"ledger was written for cache_key={recorded_key!r} but the "
            f"objective provides {objective.cache_key!r}; pass the same "
            "objective the campaign ran"
        )
    recorded_decimals = _header_value(headers, "cache_decimals")
    decimals = (
        int(recorded_decimals)
        if recorded_decimals is not None
        else DEFAULT_DECIMALS
    )

    records = _completed_records(replay.events)
    unique_x: dict[str, np.ndarray] = {}
    for record in records:
        unique_x.setdefault(
            str(record["digest"]), np.asarray(record["x"], dtype=float)
        )

    report = ReplayReport(
        ledger_path=Path(ledger_path),
        mode=mode,
        cache_key=objective.cache_key,
        n_events=len(replay.events),
        n_completed=len(records),
        n_unique=len(unique_x),
        n_checked=0,
        truncated=replay.truncated,
    )

    # digest stability: recompute each record's address from scratch
    for record in records:
        report.n_checked += 1
        recomputed = point_digest(
            objective.cache_key, np.asarray(record["x"], dtype=float), decimals
        )
        if recomputed != str(record["digest"]):
            report.divergences.append(
                Divergence(
                    record_id=int(record.get("id", -1)),
                    mode="digest",
                    kind="digest",
                    digest=str(record["digest"]),
                    detail=(
                        f"recorded digest {str(record['digest'])[:12]}… but "
                        f"the point now hashes to {recomputed[:12]}…; a "
                        "resume would re-simulate this point"
                    ),
                )
            )

    if mode in ("warm", "both"):
        _verify_warm(report, records, objective, decimals)
    if mode in ("cold", "both"):
        _verify_cold(report, records, unique_x, objective, decimals, config)

    report.divergences.sort(key=lambda d: (d.record_id, d.mode, d.kind))
    return report


def _verify_warm(
    report: ReplayReport,
    records: Sequence[dict[str, Any]],
    objective: Objective,
    decimals: int,
) -> None:
    """The resume path: ledger → preloaded cache → per-record lookups."""
    cache = ResultCache.in_memory(decimals=decimals)
    cache.preload(
        {str(r["digest"]): float(r["y"]) for r in records}
    )
    for record in records:
        report.n_checked += 1
        recorded_y = float(record["y"])
        digest = cache.key_for(
            objective.cache_key, np.asarray(record["x"], dtype=float)
        )
        hit = cache.get(digest)
        if hit is None:
            report.divergences.append(
                Divergence(
                    record_id=int(record.get("id", -1)),
                    mode="warm",
                    kind="missing",
                    digest=digest,
                    recorded_y=recorded_y,
                    detail=(
                        "resume-preloaded cache misses the recomputed "
                        f"digest {digest[:12]}…; the point would re-simulate"
                    ),
                )
            )
        elif hit != recorded_y:
            report.divergences.append(
                Divergence(
                    record_id=int(record.get("id", -1)),
                    mode="warm",
                    kind="value",
                    digest=digest,
                    recorded_y=recorded_y,
                    replayed_y=hit,
                    detail=(
                        f"cache returned {hit!r} for a record that stored "
                        f"{recorded_y!r}"
                    ),
                )
            )


def _verify_cold(
    report: ReplayReport,
    records: Sequence[dict[str, Any]],
    unique_x: dict[str, np.ndarray],
    objective: Objective,
    decimals: int,
    config: BrokerConfig | None,
) -> None:
    """Re-execute every unique point through a fresh broker, compare bitwise."""
    if not unique_x:
        return
    cfg = config if config is not None else BrokerConfig()
    cfg = replace(cfg, cache_decimals=decimals)
    broker = EvaluationBroker(
        objective, config=cfg, cache=ResultCache.in_memory(decimals=decimals)
    )
    digests = list(unique_x)
    X = np.stack([unique_x[d] for d in digests])
    batch = broker.evaluate_batch(X)
    replayed: dict[str, float] = {}
    for row, submitted_pos in enumerate(np.asarray(batch.index)):
        replayed[digests[int(submitted_pos)]] = float(batch.y[row])
    for record in records:
        report.n_checked += 1
        recorded_y = float(record["y"])
        digest = str(record["digest"])
        value = replayed.get(digest)
        if value is None:
            report.divergences.append(
                Divergence(
                    record_id=int(record.get("id", -1)),
                    mode="cold",
                    kind="missing",
                    digest=digest,
                    recorded_y=recorded_y,
                    detail=(
                        "re-execution dropped the point (failure policy); "
                        "the original run completed it"
                    ),
                )
            )
        elif value != recorded_y:
            report.divergences.append(
                Divergence(
                    record_id=int(record.get("id", -1)),
                    mode="cold",
                    kind="value",
                    digest=digest,
                    recorded_y=recorded_y,
                    replayed_y=value,
                    detail=(
                        f"re-execution produced {value!r}, ledger recorded "
                        f"{recorded_y!r}"
                    ),
                )
            )


# -- kill / resume self-test -------------------------------------------------


def truncate_mid_run(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Simulate a kill: keep a prefix of the ledger plus a torn final line.

    Cuts after ``keep_fraction`` of the ``completed`` events and appends
    the partial line a mid-write kill leaves behind.  Returns the number
    of completed events kept.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    total = sum(1 for line in lines if '"event":"completed"' in line)
    cut_after = max(1, int(total * keep_fraction))
    kept_lines: list[str] = []
    kept_completed = 0
    for line in lines:
        kept_lines.append(line)
        if '"event":"completed"' in line:
            kept_completed += 1
            if kept_completed >= cut_after:
                break
    path.write_text(
        "\n".join(kept_lines) + "\n" + '{"event":"compl', encoding="utf-8"
    )
    return kept_completed


def run_selftest(
    workdir: str | Path | None = None, mode: str = "both"
) -> ReplayReport:
    """Fault-injected UVLO campaign → kill mid-batch → resume → verify.

    The full replay-safety contract in one call: the resumed ledger (the
    original prefix healed of its torn line, extended in place by the
    resumed run) must replay with zero divergences against the clean
    objective.
    """
    from repro.bo.engine import RunSpec
    from repro.bo.rembo import RemboBO
    from repro.circuits.behavioral.uvlo import UVLOTestbench
    from repro.runtime.faults import FaultInjectingTestbench, FaultPlan

    def engine() -> RemboBO:
        return RemboBO(
            batch_size=4, embedding_dim=3, tune_every=1, n_restarts=1, seed=11
        )

    def faulty_bench() -> FaultInjectingTestbench:
        # fresh wrapper per run: a resumed process starts with empty
        # attempt counters, exactly like a real kill
        return FaultInjectingTestbench(
            UVLOTestbench(),
            FaultPlan(failure_rate=0.3, nan_fraction=0.4, seed=5),
        )

    bench = UVLOTestbench()
    spec = RunSpec(
        bounds=bench.bounds(),
        n_init=6,
        n_batches=2,
        threshold=bench.threshold("delta_vthl"),
    )
    cfg = BrokerConfig(max_retries=3, backoff_seconds=0.0)

    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="replay-selftest-") as tmp:
            return _selftest_in(
                Path(tmp), engine, faulty_bench, bench, spec, cfg, mode
            )
    return _selftest_in(
        Path(workdir), engine, faulty_bench, bench, spec, cfg, mode
    )


def _selftest_in(workdir, engine, faulty_bench, bench, spec, cfg, mode):
    from repro.runtime.resume import resume

    ledger_path = workdir / "campaign.jsonl"
    policy = RuntimePolicy(config=cfg, ledger=RunLedger(ledger_path))
    engine().solve(
        objective=faulty_bench().objective("delta_vthl"),
        spec=spec,
        policy=policy,
    )
    policy.ledger.close()

    truncate_mid_run(ledger_path)
    state = resume(ledger_path)
    resumed_policy = state.policy(config=cfg)  # append in place
    engine().solve(
        objective=faulty_bench().objective("delta_vthl"),
        spec=spec,
        policy=resumed_policy,
    )
    resumed_policy.ledger.close()

    return verify_replay(
        ledger_path, bench.objective("delta_vthl"), mode=mode, config=cfg
    )


# -- CLI ----------------------------------------------------------------------


def _objective_from_args(args: argparse.Namespace) -> Objective:
    if args.objective:
        spec = args.objective
        if ":" not in spec:
            raise SystemExit(
                f"--objective expects module:attr, got {spec!r}"
            )
        module_name, attr = spec.split(":", 1)
        obj = getattr(importlib.import_module(module_name), attr)
        if callable(obj) and not isinstance(obj, Objective):
            obj = obj()
        return require_objective(obj, "--objective")
    if args.testbench:
        bench = _make_testbench(args.testbench)
        if args.fault_rate > 0.0:
            from repro.runtime.faults import FaultInjectingTestbench, FaultPlan

            bench = FaultInjectingTestbench(
                bench,
                FaultPlan(
                    failure_rate=args.fault_rate,
                    nan_fraction=args.nan_fraction,
                    seed=args.fault_seed,
                ),
            )
        return bench.objective(args.measure)
    raise SystemExit("pass --testbench or --objective (or --selftest)")


def _make_testbench(name: str):
    if name == "uvlo":
        from repro.circuits.behavioral.uvlo import UVLOTestbench

        return UVLOTestbench()
    if name == "ldo":
        from repro.circuits.behavioral.ldo import LDOTestbench

        return LDOTestbench()
    raise SystemExit(f"unknown testbench {name!r}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.replay",
        description=(
            "Verify a RunLedger by replaying it: recompute every completed "
            "record's digest and value and report zero-divergence or the "
            "first diverging record."
        ),
    )
    parser.add_argument("ledger", nargs="?", help="path to a ledger .jsonl")
    parser.add_argument(
        "--mode", choices=REPLAY_MODES, default="both",
        help="warm (resume-path cache check), cold (re-execute), or both",
    )
    parser.add_argument(
        "--testbench", choices=("uvlo", "ldo"),
        help="rebuild the objective from a named circuit testbench",
    )
    parser.add_argument(
        "--measure", default="delta_vthl",
        help="testbench measure name (default: delta_vthl)",
    )
    parser.add_argument(
        "--objective",
        help="module:attr naming an Objective instance or zero-arg factory",
    )
    parser.add_argument(
        "--max-retries", type=int, default=3,
        help="retry budget for cold re-execution (default: 3)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="re-inject transient faults at this rate during cold replay",
    )
    parser.add_argument("--nan-fraction", type=float, default=0.3)
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument(
        "--selftest", action="store_true",
        help="run the kill/resume/replay smoke end to end (no ledger needed)",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="directory for --selftest artifacts (default: temporary)",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        report = run_selftest(workdir=args.workdir, mode=args.mode)
    else:
        if not args.ledger:
            parser.error("a ledger path is required unless --selftest is set")
        config = BrokerConfig(max_retries=args.max_retries, backoff_seconds=0.0)
        report = verify_replay(
            args.ledger,
            _objective_from_args(args),
            mode=args.mode,
            config=config,
        )

    print(report.summary())
    return 0 if report.zero_divergence else 1


if __name__ == "__main__":
    sys.exit(main())
