"""Campaign checkpoint/resume built on the run ledger.

A killed campaign leaves a valid ledger prefix (each event line is flushed
as written).  :func:`resume` parses that prefix and preloads every
*completed* evaluation into a fresh :class:`ResultCache`.  Re-running the
same seeded campaign with the returned :class:`RuntimePolicy` then
fast-forwards deterministically: every evaluation the interrupted run
finished is served from the cache (no re-simulation), the campaign picks
up mid-batch exactly where the kill landed, and — because cached values
are the exact floats the simulations produced (JSON round-trips doubles
via shortest-repr) — the final :class:`~repro.bo.records.RunResult` is
bitwise-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.runtime.broker import BrokerConfig, RuntimePolicy
from repro.runtime.cache import DEFAULT_DECIMALS, ResultCache
from repro.runtime.ledger import LedgerReplay, RunLedger, read_ledger


def _drop_torn_tail(path: Path) -> None:
    """Remove the torn final line a mid-write kill left behind.

    ``ResumeState.policy(append_ledger=True)`` keeps appending to the same
    file; without healing, the unparseable fragment would sit *between*
    the original prefix and the resumed events, and every later
    :func:`~repro.runtime.ledger.read_ledger` would reject the file
    (garbage is only tolerated on the final line).
    """
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    idx = len(lines) - 1
    while idx >= 0 and not lines[idx].strip():
        idx -= 1
    if idx < 0:
        return
    try:
        json.loads(lines[idx].strip())
    except json.JSONDecodeError:
        del lines[idx:]
    if lines and not lines[-1].endswith("\n"):
        lines[-1] += "\n"
    path.write_text("".join(lines), encoding="utf-8")


@dataclass
class ResumeState:
    """Replayed ledger plus a cache preloaded with its completed evaluations."""

    replay: LedgerReplay
    cache: ResultCache
    ledger_path: Path

    @property
    def n_completed(self) -> int:
        return self.replay.n_completed

    @property
    def truncated(self) -> bool:
        return self.replay.truncated

    def policy(
        self,
        config: BrokerConfig | None = None,
        append_ledger: bool = True,
    ) -> RuntimePolicy:
        """A :class:`RuntimePolicy` that fast-forwards through this state.

        ``append_ledger=True`` (default) keeps logging to the same ledger
        file, so the resumed run's events extend the original record.
        """
        return RuntimePolicy(
            config=config if config is not None else BrokerConfig(),
            cache=self.cache,
            ledger=RunLedger(self.ledger_path) if append_ledger else None,
        )


def resume(
    ledger_path: str | Path,
    decimals: int = DEFAULT_DECIMALS,
    cache: ResultCache | None = None,
) -> ResumeState:
    """Rebuild campaign state from a (possibly truncated) ledger file.

    ``decimals`` must match the interrupted run's ``cache_decimals`` so the
    preloaded digests address the same rounded points; the campaign header
    in the ledger records the original value.

    ``cache`` preloads the completed evaluations into an *existing* cache
    instead of a fresh in-memory one — the multi-campaign scheduler passes
    its shared persistent store here, so one campaign's resumed results
    immediately serve every other campaign (DESIGN.md §15).  The cache's
    ``decimals`` must agree with ``decimals``.

    When the kill tore the final line, the fragment is dropped from the
    file so that the default append-in-place resume
    (:meth:`ResumeState.policy`) leaves a ledger every later
    :func:`~repro.runtime.ledger.read_ledger` still accepts.
    """
    replay = read_ledger(ledger_path)
    if replay.truncated:
        _drop_torn_tail(Path(ledger_path))
    for header in replay.campaigns():
        recorded = header.get("cache_decimals")
        if recorded is not None and int(recorded) != int(decimals):
            raise ValueError(
                f"ledger was written with cache_decimals={recorded}, "
                f"resume called with decimals={decimals}"
            )
    if cache is None:
        cache = ResultCache.in_memory(decimals=decimals)
    elif cache.decimals != int(decimals):
        raise ValueError(
            f"shared cache uses decimals={cache.decimals}, resume called "
            f"with decimals={decimals}"
        )
    cache.preload(replay.completed)
    return ResumeState(replay=replay, cache=cache, ledger_path=Path(ledger_path))


__all__ = ["ResumeState", "resume"]
