"""Sampling baselines: MC, SSS, space-filling designs, statistical blockade."""

from repro.sampling.blockade import (
    BlockadeDiagnostics,
    LogisticClassifier,
    StatisticalBlockade,
)
from repro.sampling.designs import halton, latin_hypercube
from repro.sampling.monte_carlo import MonteCarloSampler
from repro.sampling.sss import (
    NOMINAL_SIGMA_FRACTION,
    ScaledSigmaSampler,
    SSSModelFit,
)

__all__ = [
    "MonteCarloSampler",
    "ScaledSigmaSampler",
    "SSSModelFit",
    "NOMINAL_SIGMA_FRACTION",
    "latin_hypercube",
    "halton",
    "StatisticalBlockade",
    "LogisticClassifier",
    "BlockadeDiagnostics",
]
