"""Statistical blockade (Singhee & Rutenbar 2009) — extension baseline.

The paper's introduction cites statistical blockade [15] among the prior
smart-sampling art; it is included here as an extra comparator.  The method:

1. simulate a small pilot Monte-Carlo set,
2. set a *blockade threshold* at a tail quantile of the pilot performances,
3. train a cheap classifier to predict whether a candidate lands in the
   tail, with the decision boundary relaxed by a safety margin,
4. stream a large candidate set through the classifier and simulate only
   the unblocked (predicted-tail) candidates.

The classifier is a from-scratch ridge-regularized logistic regression
(IRLS); no external ML dependency is used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bo.engine import RunSpec
from repro.bo.records import RunRecorder, RunResult
from repro.runtime.broker import RuntimePolicy, make_broker
from repro.runtime.objective import Objective, require_objective, resolve_bounds
from repro.telemetry.config import TelemetryLike, resolve_telemetry
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import as_matrix, as_vector


class LogisticClassifier:
    """Ridge-regularized logistic regression fit by IRLS.

    Small, dense and deterministic — adequate for blockade filtering where
    the classifier only needs to be conservative, not accurate.
    """

    def __init__(self, ridge: float = 1e-3, max_iter: int = 50, tol: float = 1e-8):
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.ridge = float(ridge)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.weights_: np.ndarray | None = None

    @staticmethod
    def _design(X: np.ndarray) -> np.ndarray:
        return np.column_stack([np.ones(X.shape[0]), X])

    def fit(self, X, labels) -> "LogisticClassifier":
        X = as_matrix(X)
        t = as_vector(labels, X.shape[0])
        if not np.all(np.isin(t, (0.0, 1.0))):
            raise ValueError("labels must be 0/1")
        phi = self._design(X)
        w = np.zeros(phi.shape[1])
        for _ in range(self.max_iter):
            logits = np.clip(phi @ w, -35, 35)
            p = 1.0 / (1.0 + np.exp(-logits))
            R = np.maximum(p * (1.0 - p), 1e-9)
            H = phi.T @ (phi * R[:, None]) + self.ridge * np.eye(phi.shape[1])
            grad = phi.T @ (p - t) + self.ridge * w
            step = np.linalg.solve(H, grad)
            w -= step
            if np.max(np.abs(step)) < self.tol:
                break
        self.weights_ = w
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("classifier has not been fitted")
        phi = self._design(as_matrix(X))
        return 1.0 / (1.0 + np.exp(-np.clip(phi @ self.weights_, -35, 35)))


@dataclass
class BlockadeDiagnostics:
    """Filtering statistics of one blockade run."""

    pilot_size: int
    candidate_size: int
    n_unblocked: int
    blockade_threshold: float


class StatisticalBlockade:
    """Blockade-filtered rare-event sampling.

    Parameters
    ----------
    pilot_samples:
        Pilot MC simulations used to train the classifier.
    candidate_samples:
        Candidate points streamed through the classifier.
    tail_quantile:
        Pilot quantile defining "tail" (on the minimization orientation,
        lower = worse, so the tail is the *low* quantile).
    margin_quantile:
        Relaxed quantile used for classifier training labels; must be
        larger than ``tail_quantile`` so the classifier errs unblocked.
    probability_cutoff:
        Candidates with tail probability above this are simulated.
    """

    def __init__(
        self,
        pilot_samples: int = 200,
        candidate_samples: int = 2000,
        tail_quantile: float = 0.02,
        margin_quantile: float = 0.1,
        probability_cutoff: float = 0.2,
        seed: SeedLike = None,
    ) -> None:
        if pilot_samples < 10:
            raise ValueError(f"pilot_samples must be >= 10, got {pilot_samples}")
        if candidate_samples < 1:
            raise ValueError(
                f"candidate_samples must be >= 1, got {candidate_samples}"
            )
        if not 0 < tail_quantile < margin_quantile < 1:
            raise ValueError(
                "need 0 < tail_quantile < margin_quantile < 1, got "
                f"{tail_quantile}, {margin_quantile}"
            )
        if not 0 < probability_cutoff < 1:
            raise ValueError(
                f"probability_cutoff must be in (0, 1), got {probability_cutoff}"
            )
        self.pilot_samples = int(pilot_samples)
        self.candidate_samples = int(candidate_samples)
        self.tail_quantile = float(tail_quantile)
        self.margin_quantile = float(margin_quantile)
        self.probability_cutoff = float(probability_cutoff)
        self._rng = as_generator(seed)

    def solve(
        self,
        *,
        objective: Objective,
        spec: RunSpec | None = None,
        policy: RuntimePolicy | None = None,
        telemetry: TelemetryLike = None,
        rng: SeedLike = None,
    ) -> RunResult:
        """Pilot, train, filter, simulate unblocked candidates.

        The result's ``extra["blockade"]`` holds a
        :class:`BlockadeDiagnostics`; total simulations = pilot plus
        unblocked candidates.
        """
        objective = require_objective(objective, type(self).__name__)
        spec = spec if spec is not None else RunSpec()
        tele = resolve_telemetry(telemetry)
        sample_rng = as_generator(rng) if rng is not None else self._rng
        lower, upper, _ = resolve_bounds(objective, spec.bounds)
        dim = lower.shape[0]
        recorder = RunRecorder(method="Blockade")
        broker = make_broker(
            objective, policy, recorder=recorder, method="Blockade",
            telemetry=tele,
        )
        timer = Timer().start()

        with tele.tracer.span("init_design", n_init=self.pilot_samples):
            pilot = broker.evaluate_batch(
                sample_rng.uniform(lower, upper, size=(self.pilot_samples, dim))
            )
        recorder.mark_initial()
        pilot_X, pilot_y = pilot.X, pilot.y
        if pilot_y.size == 0:
            raise ValueError(
                "no pilot evaluations survived the failure policy; "
                "cannot train the blockade classifier"
            )

        blockade_threshold = float(np.quantile(pilot_y, self.tail_quantile))
        margin_threshold = float(np.quantile(pilot_y, self.margin_quantile))
        labels = (pilot_y <= margin_threshold).astype(float)

        candidates = sample_rng.uniform(
            lower, upper, size=(self.candidate_samples, dim)
        )
        if labels.min() == labels.max():
            # degenerate pilot (all one class): nothing can be learned,
            # simulate every candidate rather than block blindly
            unblocked = candidates
        else:
            classifier = LogisticClassifier().fit(pilot_X, labels)
            proba = classifier.predict_proba(candidates)
            unblocked = candidates[proba >= self.probability_cutoff]

        with tele.tracer.span(
            "sampling", n_unblocked=int(unblocked.shape[0])
        ):
            if unblocked.size:
                broker.evaluate_batch(unblocked)
        timer.stop()

        return recorder.finalize(
            total_seconds=timer.elapsed,
            eval_seconds=broker.stats.eval_seconds,
            extra={
                "blockade": BlockadeDiagnostics(
                    pilot_size=self.pilot_samples,
                    candidate_size=self.candidate_samples,
                    n_unblocked=int(unblocked.shape[0]),
                    blockade_threshold=blockade_threshold,
                )
            },
        )

