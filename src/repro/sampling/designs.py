"""Space-filling designs: Latin hypercube and Halton sequences.

Used for initial BO designs in ablations and for the MNA-engine examples;
both are implemented from scratch (no scipy.qmc dependency).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_bounds


def latin_hypercube(
    n_samples: int, bounds, seed: SeedLike = None
) -> np.ndarray:
    """A random Latin-hypercube design: one sample per axis stratum.

    Each dimension's ``[lo, hi]`` range is split into ``n_samples`` equal
    strata; every stratum contains exactly one point, at an independently
    uniform position, with strata permuted independently per dimension.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    lower, upper = check_bounds(bounds)
    dim = lower.shape[0]
    rng = as_generator(seed)
    unit = np.empty((n_samples, dim))
    for k in range(dim):
        strata = (rng.permutation(n_samples) + rng.uniform(size=n_samples)) / n_samples
        unit[:, k] = strata
    return lower + unit * (upper - lower)


def _primes(count: int) -> list[int]:
    """The first ``count`` primes (trial division; count is small)."""
    primes: list[int] = []
    candidate = 2
    while len(primes) < count:
        if all(candidate % p for p in primes):
            primes.append(candidate)
        candidate += 1
    return primes


def _van_der_corput(n: int, base: int) -> float:
    """The ``n``-th element of the van der Corput sequence in ``base``."""
    value, denom = 0.0, 1.0
    while n:
        n, digit = divmod(n, base)
        denom *= base
        value += digit / denom
    return value


def halton(n_samples: int, bounds, skip: int = 20) -> np.ndarray:
    """A Halton low-discrepancy design over the box.

    ``skip`` drops the first (most correlated) elements of each coordinate
    sequence, the usual leap for moderate dimensions.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    if skip < 0:
        raise ValueError(f"skip must be non-negative, got {skip}")
    lower, upper = check_bounds(bounds)
    dim = lower.shape[0]
    bases = _primes(dim)
    unit = np.empty((n_samples, dim))
    for k, base in enumerate(bases):
        unit[:, k] = [
            _van_der_corput(i + 1 + skip, base) for i in range(n_samples)
        ]
    return lower + unit * (upper - lower)
