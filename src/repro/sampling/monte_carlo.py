"""Uniform Monte-Carlo failure hunting (the paper's "MC" baseline).

Section 5.1: "To maximize the possibility of hitting rare failures within
the large hyper-cube, uniform sampling distribution is adopted for MC."
"""

from __future__ import annotations


from repro.bo.engine import RunSpec
from repro.bo.records import RunRecorder, RunResult
from repro.runtime.broker import RuntimePolicy, make_broker
from repro.runtime.objective import Objective, require_objective, resolve_bounds
from repro.telemetry.config import TelemetryLike, resolve_telemetry
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer


class MonteCarloSampler:
    """Evaluate ``n_samples`` i.i.d. uniform points inside the box.

    Parameters
    ----------
    n_samples:
        Simulation budget.
    stop_on_failure:
        Terminate at the first ``y < threshold`` observation.
    """

    def __init__(
        self,
        n_samples: int,
        stop_on_failure: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        self.n_samples = int(n_samples)
        self.stop_on_failure = bool(stop_on_failure)
        self._rng = as_generator(seed)

    def solve(
        self,
        *,
        objective: Objective,
        spec: RunSpec | None = None,
        policy: RuntimePolicy | None = None,
        telemetry: TelemetryLike = None,
        rng: SeedLike = None,
    ) -> RunResult:
        objective = require_objective(objective, type(self).__name__)
        spec = spec if spec is not None else RunSpec()
        tele = resolve_telemetry(telemetry)
        sample_rng = as_generator(rng) if rng is not None else self._rng
        lower, upper, _ = resolve_bounds(objective, spec.bounds)
        threshold = spec.threshold
        recorder = RunRecorder(method="MC")
        broker = make_broker(
            objective, policy, recorder=recorder, method="MC", telemetry=tele
        )

        timer = Timer().start()
        X = sample_rng.uniform(
            lower, upper, size=(self.n_samples, lower.shape[0])
        )
        with tele.tracer.span("sampling", n_samples=self.n_samples):
            if self.stop_on_failure and threshold is not None:
                for x in X:
                    value = broker.evaluate(x)
                    if value is not None and value < threshold:
                        break
            else:
                broker.evaluate_batch(X)
        recorder.mark_initial()
        timer.stop()
        return recorder.finalize(
            total_seconds=timer.elapsed,
            eval_seconds=broker.stats.eval_seconds,
        )

