"""Uniform Monte-Carlo failure hunting (the paper's "MC" baseline).

Section 5.1: "To maximize the possibility of hitting rare failures within
the large hyper-cube, uniform sampling distribution is adopted for MC."
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bo.records import RunResult
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_bounds


class MonteCarloSampler:
    """Evaluate ``n_samples`` i.i.d. uniform points inside the box.

    Parameters
    ----------
    n_samples:
        Simulation budget.
    stop_on_failure:
        Terminate at the first ``y < threshold`` observation.
    """

    def __init__(
        self,
        n_samples: int,
        stop_on_failure: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        self.n_samples = int(n_samples)
        self.stop_on_failure = bool(stop_on_failure)
        self._rng = as_generator(seed)

    def run(
        self,
        objective: Callable[[np.ndarray], float],
        bounds,
        threshold: float | None = None,
    ) -> RunResult:
        lower, upper = check_bounds(bounds)
        timer = Timer().start()
        X = self._rng.uniform(lower, upper, size=(self.n_samples, lower.shape[0]))
        ys = []
        for x in X:
            value = float(objective(x))
            ys.append(value)
            if (
                self.stop_on_failure
                and threshold is not None
                and value < threshold
            ):
                break
        timer.stop()
        n = len(ys)
        return RunResult(
            X=X[:n],
            y=np.asarray(ys),
            n_init=n,
            method="MC",
            runtime_seconds=timer.elapsed,
        )
