"""Uniform Monte-Carlo failure hunting (the paper's "MC" baseline).

Section 5.1: "To maximize the possibility of hitting rare failures within
the large hyper-cube, uniform sampling distribution is adopted for MC."
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bo.records import RunRecorder, RunResult
from repro.runtime.broker import RuntimePolicy, make_broker
from repro.runtime.objective import Objective, coerce_objective, resolve_bounds
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer


class MonteCarloSampler:
    """Evaluate ``n_samples`` i.i.d. uniform points inside the box.

    Parameters
    ----------
    n_samples:
        Simulation budget.
    stop_on_failure:
        Terminate at the first ``y < threshold`` observation.
    """

    def __init__(
        self,
        n_samples: int,
        stop_on_failure: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        self.n_samples = int(n_samples)
        self.stop_on_failure = bool(stop_on_failure)
        self._rng = as_generator(seed)

    def run(
        self,
        objective: Objective | Callable[[np.ndarray], float],
        bounds=None,
        threshold: float | None = None,
        runtime: RuntimePolicy | None = None,
    ) -> RunResult:
        objective = coerce_objective(objective, bounds)
        lower, upper, _ = resolve_bounds(objective, bounds)
        recorder = RunRecorder(method="MC")
        broker = make_broker(objective, runtime, recorder=recorder, method="MC")

        timer = Timer().start()
        X = self._rng.uniform(lower, upper, size=(self.n_samples, lower.shape[0]))
        if self.stop_on_failure and threshold is not None:
            for x in X:
                value = broker.evaluate(x)
                if value is not None and value < threshold:
                    break
        else:
            broker.evaluate_batch(X)
        recorder.mark_initial()
        timer.stop()
        return recorder.finalize(
            total_seconds=timer.elapsed,
            eval_seconds=broker.stats.eval_seconds,
        )
