"""Scaled-Sigma Sampling (Sun et al. 2013/2015), the paper's "SSS" baseline.

SSS accelerates rare-event estimation by sampling the process parameters at
*inflated* standard deviations ``s·σ`` (``s > 1``), where failures are no
longer rare, and extrapolating the failure rate back to the nominal scale
through the analytic model

    ``log P(s) ≈ α + β · log s − γ / s²``

fit by least squares over the scales that produced at least one failure.
For the paper's failure-*detection* comparison the relevant outputs are the
evaluation log itself (worst case observed, first failure within the
bounded variation cube Ω) — SSS spends its budget in the distribution tails
but still misses failure regions that are not aligned with radial
directions, which is why it finds nothing in Tables 1-2.

The normalized variation space maps ``±4σ`` onto ``[-1, 1]`` (Section 5.1),
so the nominal per-coordinate sigma is 1/4; samples falling outside Ω are
clipped onto the cube boundary before simulation, keeping every simulated
point inside the verification region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bo.engine import RunSpec
from repro.bo.records import RunRecorder, RunResult
from repro.runtime.broker import RuntimePolicy, make_broker
from repro.runtime.objective import Objective, require_objective, resolve_bounds
from repro.telemetry.config import TelemetryLike, resolve_telemetry
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer

#: ±4σ spans the normalized cube (paper Section 5.1).
NOMINAL_SIGMA_FRACTION = 1.0 / 4.0


@dataclass
class SSSModelFit:
    """The fitted ``log P(s) = α + β log s − γ/s²`` extrapolation model."""

    alpha: float
    beta: float
    gamma: float
    scales: np.ndarray
    failure_fractions: np.ndarray

    def log_failure_rate(self, scale: float = 1.0) -> float:
        """Model prediction of ``log P`` at a given sigma scale."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return self.alpha + self.beta * np.log(scale) - self.gamma / scale**2

    def failure_rate(self, scale: float = 1.0) -> float:
        return float(np.exp(self.log_failure_rate(scale)))


class ScaledSigmaSampler:
    """The SSS baseline: tail-inflated Gaussian sampling plus extrapolation.

    Parameters
    ----------
    samples_per_scale:
        Simulations spent at each sigma scale.
    scales:
        Sigma inflation factors; defaults to the customary ladder 1-4.
    sigma_fraction:
        Nominal per-coordinate sigma as a fraction of the half box side.
    stop_on_failure:
        Terminate at the first in-cube failure.
    """

    def __init__(
        self,
        samples_per_scale: int,
        scales: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0),
        sigma_fraction: float = NOMINAL_SIGMA_FRACTION,
        stop_on_failure: bool = False,
        seed: SeedLike = None,
    ) -> None:
        if samples_per_scale < 1:
            raise ValueError(
                f"samples_per_scale must be >= 1, got {samples_per_scale}"
            )
        scales = np.asarray(list(scales), dtype=float)
        if scales.size == 0 or np.any(scales <= 0):
            raise ValueError("scales must be positive and non-empty")
        if sigma_fraction <= 0:
            raise ValueError(f"sigma_fraction must be positive, got {sigma_fraction}")
        self.samples_per_scale = int(samples_per_scale)
        self.scales = np.sort(scales)
        self.sigma_fraction = float(sigma_fraction)
        self.stop_on_failure = bool(stop_on_failure)
        self._rng = as_generator(seed)

    @property
    def n_samples(self) -> int:
        return self.samples_per_scale * self.scales.size

    def solve(
        self,
        *,
        objective: Objective,
        spec: RunSpec | None = None,
        policy: RuntimePolicy | None = None,
        telemetry: TelemetryLike = None,
        rng: SeedLike = None,
    ) -> RunResult:
        """Sample every scale, simulate, and fit the extrapolation model.

        The returned :class:`RunResult` carries the :class:`SSSModelFit`
        (when enough scales failed to fit one) in ``extra["sss_fit"]`` and
        the per-scale failure fractions in ``extra["failure_fractions"]``.
        """
        objective = require_objective(objective, type(self).__name__)
        spec = spec if spec is not None else RunSpec()
        tele = resolve_telemetry(telemetry)
        sample_rng = as_generator(rng) if rng is not None else self._rng
        lower, upper, _ = resolve_bounds(objective, spec.bounds)
        threshold = spec.threshold
        dim = lower.shape[0]
        center = 0.5 * (lower + upper)
        half_span = 0.5 * (upper - lower)
        recorder = RunRecorder(method="SSS")
        broker = make_broker(
            objective, policy, recorder=recorder, method="SSS", telemetry=tele
        )

        timer = Timer().start()
        fractions = np.zeros(self.scales.size)
        stop = False
        for i, scale in enumerate(self.scales):
            with tele.tracer.span(
                "sampling", scale=float(scale), n_samples=self.samples_per_scale
            ) as span:
                sigma = scale * self.sigma_fraction * half_span
                X = center + sample_rng.standard_normal(
                    (self.samples_per_scale, dim)
                ) * sigma
                X = np.clip(X, lower, upper)
                n_fail = 0
                if self.stop_on_failure and threshold is not None:
                    for x in X:
                        value = broker.evaluate(x)
                        if value is not None and value < threshold:
                            n_fail += 1
                            stop = True
                            break
                else:
                    batch = broker.evaluate_batch(X)
                    if threshold is not None and batch.n_evaluated:
                        n_fail = int(np.sum(batch.y < threshold))
                fractions[i] = n_fail / self.samples_per_scale
                span.set("n_failures", n_fail)
            if stop:
                break
        recorder.mark_initial()
        timer.stop()

        extra: dict = {"failure_fractions": fractions, "scales": self.scales}
        fit = self._fit_model(fractions)
        if fit is not None:
            extra["sss_fit"] = fit
        return recorder.finalize(
            total_seconds=timer.elapsed,
            eval_seconds=broker.stats.eval_seconds,
            extra=extra,
        )


    def _fit_model(self, fractions: np.ndarray) -> SSSModelFit | None:
        """Least-squares fit of the three-parameter SSS model.

        Needs at least three scales with non-zero failure fraction; returns
        None otherwise (the extrapolation is then undefined, which is
        itself an informative outcome for extremely rare failures).
        """
        mask = fractions > 0
        if int(np.sum(mask)) < 3:
            return None
        s = self.scales[mask]
        log_p = np.log(fractions[mask])
        design = np.column_stack([np.ones_like(s), np.log(s), -1.0 / s**2])
        coeffs, *_ = np.linalg.lstsq(design, log_p, rcond=None)
        return SSSModelFit(
            alpha=float(coeffs[0]),
            beta=float(coeffs[1]),
            gamma=float(coeffs[2]),
            scales=self.scales.copy(),
            failure_fractions=fractions.copy(),
        )
