"""Campaign service layer: run many campaigns over one shared runtime.

``repro.serve`` turns the single-campaign library into a service
(ROADMAP item 1): an asyncio :class:`CampaignScheduler` drains a
priority queue of :class:`~repro.campaign.CampaignSpec` jobs over a
bounded pool of worker threads, every campaign writing its own
:class:`~repro.runtime.ledger.RunLedger` checkpoint while all of them
share one persistent :meth:`~repro.runtime.cache.ResultCache.open`
store — so repeated corner-stress workloads become cache hits instead
of simulations, and killing the whole service loses nothing that a
``--resume`` restart cannot replay bitwise.

Entry points: :class:`CampaignScheduler` in-process, or
``python -m repro.serve jobs.json --workers 4`` from the shell
(see :mod:`repro.serve.service`).
"""

from repro.serve.jobs import build_spec, load_jobs
from repro.serve.scheduler import (
    CampaignOutcome,
    CampaignScheduler,
    SchedulerResult,
)

__all__ = [
    "CampaignOutcome",
    "CampaignScheduler",
    "SchedulerResult",
    "build_spec",
    "load_jobs",
]
