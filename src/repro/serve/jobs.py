"""Job files → validated :class:`~repro.campaign.CampaignSpec` objects.

The service accepts declarative jobs so campaigns can be queued without
writing Python.  A job file is JSON (always available) or TOML (Python
≥ 3.11, via :mod:`tomllib`) holding either one job object/table or a
``jobs`` list; a directory submits every ``*.json`` / ``*.toml`` inside
it, sorted by filename for a deterministic queue order.

Job schema (all keys optional except ``name``, ``testbench``,
``engine.kind``)::

    {
      "name": "uvlo-vthl-a",          // ledger/result file stem
      "priority": 1,                  // higher drains first
      "seed": 7,                      // campaign re-seed per run
      "testbench": "uvlo",            // uvlo | ldo
      "measure": "delta_vthl",        // testbench measure name
      "engine": {"kind": "rembo", "batch_size": 4, "seed": 7},
      "run": {"n_init": 6, "n_batches": 2, "threshold": "auto"},
      "surrogate": {"kind": "sparse", "m": 256},  // or just "sparse"
      "faults": {"failure_rate": 0.2},   // optional FaultPlan knobs
      "eval_delay_seconds": 0.05         // optional pacing (kill tests)
    }

``threshold: "auto"`` resolves to the testbench's specified threshold
for ``measure``.  ``surrogate`` picks the GP surrogate — a kind string
(``"exact"`` / ``"sparse"`` / ``"auto"``) or a table of
:class:`~repro.gp.surrogate.SurrogateSpec` fields; it is validated at
load time so a typo'd kind rejects the job file, not the running
campaign.  Engines are registered as *factories*: every (re)submission
constructs a pristine solver, which is what makes ``--resume`` replay
an interrupted campaign bitwise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from repro.bo.batch import BatchBO
from repro.bo.engine import EngineProtocol, RunSpec
from repro.bo.loop import SequentialBO
from repro.bo.rembo import RemboBO
from repro.campaign import CampaignSpec
from repro.gp.surrogate import coerce_surrogate_spec
from repro.runtime.faults import (
    DelayObjective,
    FaultInjectingObjective,
    FaultPlan,
)
from repro.sampling.monte_carlo import MonteCarloSampler

try:  # Python >= 3.11; TOML jobs degrade gracefully below that
    import tomllib
except ImportError:  # pragma: no cover - version-dependent
    tomllib = None  # type: ignore[assignment]

#: Engine registry: kind → constructor (params become keyword arguments).
ENGINE_KINDS: dict[str, Callable[..., EngineProtocol]] = {
    "rembo": RemboBO,
    "batch": BatchBO,
    "sequential": SequentialBO,
    "monte-carlo": MonteCarloSampler,
}

#: RunSpec fields a job's ``run`` table may set (plus "threshold": "auto").
_RUN_KEYS = ("n_init", "budget", "n_batches", "threshold")


def _make_testbench(name: str) -> Any:
    if name == "uvlo":
        from repro.circuits.behavioral.uvlo import UVLOTestbench

        return UVLOTestbench()
    if name == "ldo":
        from repro.circuits.behavioral.ldo import LDOTestbench

        return LDOTestbench()
    raise ValueError(f"unknown testbench {name!r}; options: uvlo, ldo")


def _engine_factory(
    engine_cfg: dict[str, Any], default_seed: Any
) -> Callable[[], EngineProtocol]:
    cfg = dict(engine_cfg)
    kind = cfg.pop("kind", None)
    if kind not in ENGINE_KINDS:
        raise ValueError(
            f"engine.kind must be one of {sorted(ENGINE_KINDS)}, got {kind!r}"
        )
    ctor = ENGINE_KINDS[kind]
    if "seed" not in cfg and default_seed is not None:
        cfg["seed"] = default_seed
    # a fresh solver per call: resubmission/resume must never reuse
    # internal state an earlier run advanced
    return lambda: ctor(**cfg)


def build_spec(payload: dict[str, Any]) -> CampaignSpec:
    """One job object → a validated :class:`CampaignSpec`."""
    if not isinstance(payload, dict):
        raise ValueError(f"a job must be an object/table, got {type(payload).__name__}")
    unknown = set(payload) - {
        "name",
        "priority",
        "seed",
        "testbench",
        "measure",
        "engine",
        "run",
        "surrogate",
        "faults",
        "eval_delay_seconds",
    }
    if unknown:
        raise ValueError(f"unknown job keys: {sorted(unknown)}")
    name = payload.get("name")
    if not name:
        raise ValueError("every job needs a non-empty 'name'")
    bench = _make_testbench(str(payload.get("testbench", "")))
    measure = str(payload.get("measure", "delta_vthl"))
    seed = payload.get("seed")

    objective = bench.objective(measure)
    faults = payload.get("faults")
    if faults:
        objective = FaultInjectingObjective(objective, FaultPlan(**faults))
    delay = float(payload.get("eval_delay_seconds", 0.0))
    if delay > 0.0:
        objective = DelayObjective(objective, delay)

    engine_cfg = payload.get("engine")
    if not isinstance(engine_cfg, dict):
        raise ValueError("every job needs an 'engine' object with a 'kind'")

    run_cfg = dict(payload.get("run") or {})
    unknown_run = set(run_cfg) - set(_RUN_KEYS)
    if unknown_run:
        raise ValueError(f"unknown run keys: {sorted(unknown_run)}")
    if run_cfg.get("threshold") == "auto":
        run_cfg["threshold"] = bench.threshold(measure)
    run_spec = RunSpec(bounds=bench.bounds(), **run_cfg)

    # fail fast on a bad surrogate table: coercion raises the ValueError
    # naming the allowed kinds before the job enters the queue
    surrogate = coerce_surrogate_spec(payload.get("surrogate"))

    return CampaignSpec(
        objective=objective,
        engine=_engine_factory(engine_cfg, seed),
        run_spec=run_spec,
        seed=seed,
        name=str(name),
        priority=int(payload.get("priority", 0)),
        surrogate=surrogate,
    )


def _load_payloads(path: Path) -> list[dict[str, Any]]:
    if path.suffix == ".toml":
        if tomllib is None:
            raise RuntimeError(
                f"{path}: TOML job files need Python >= 3.11 (tomllib); "
                "use JSON on this interpreter"
            )
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    elif path.suffix == ".json":
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        raise ValueError(f"{path}: job files must be .json or .toml")
    if isinstance(data, dict) and "jobs" in data:
        jobs = data["jobs"]
        if not isinstance(jobs, list):
            raise ValueError(f"{path}: 'jobs' must be a list")
        return list(jobs)
    if isinstance(data, dict):
        return [data]
    if isinstance(data, list):
        return list(data)
    raise ValueError(f"{path}: expected a job object or a list of jobs")


def load_jobs(paths: list[str | Path]) -> list[CampaignSpec]:
    """Job files and/or directories → specs, in deterministic order."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                sorted(
                    p
                    for p in path.iterdir()
                    if p.suffix in (".json", ".toml")
                )
            )
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"job file {path} does not exist")
    specs: list[CampaignSpec] = []
    for file in files:
        for payload in _load_payloads(file):
            specs.append(build_spec(payload))
    if not specs:
        raise ValueError(f"no jobs found under {', '.join(map(str, paths))}")
    return specs


__all__ = ["ENGINE_KINDS", "build_spec", "load_jobs"]
