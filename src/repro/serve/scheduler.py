"""Async multi-campaign scheduler over a shared persistent result cache.

The scheduler is deliberately thin glue over machinery earlier PRs
hardened: campaigns run through the single
:func:`~repro.campaign.run_campaign_spec` code path, checkpoint through
their own :class:`~repro.runtime.ledger.RunLedger`, dedup through one
shared :class:`~repro.runtime.cache.ResultCache` (single-flight, so two
campaigns racing on the same design never both simulate it), and resume
through :func:`repro.runtime.resume.resume` — which makes a SIGKILL of
the whole service recoverable campaign by campaign, bitwise.

Concurrency model: jobs are drained from an in-memory priority queue
(higher ``CampaignSpec.priority`` first, FIFO within a priority) by
``max_concurrent`` asyncio workers; each worker pushes the actual
campaign onto a thread via :func:`asyncio.to_thread`, because engines
and brokers are synchronous, thread-safe code.  The event loop itself
never blocks on simulation.

Artifacts live under ``runs_dir``: ``<name>.jsonl`` (ledger),
``<name>.result.json`` (final X/y, written atomically after the run so
its existence certifies completion) and ``cache/`` (the persistent
shard store, unless an external cache is injected).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.campaign import CampaignResult, CampaignSpec, run_campaign_spec
from repro.runtime.broker import BrokerConfig, RuntimePolicy
from repro.runtime.cache import ResultCache
from repro.runtime.ledger import RunLedger, read_ledger
from repro.runtime.resume import resume
from repro.telemetry.config import (
    Telemetry,
    TelemetryConfig,
    TelemetryLike,
    resolve_telemetry,
)


@dataclass
class CampaignOutcome:
    """What happened to one scheduled campaign."""

    name: str
    result: CampaignResult | None = None
    error: str | None = None
    resumed: bool = False
    #: ``--resume`` found the campaign's result file: nothing to re-run.
    already_complete: bool = False
    queue_wait_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    ledger_path: Path | None = None
    result_path: Path | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SchedulerResult:
    """Aggregate of one scheduler drain: outcomes plus shared-state stats."""

    outcomes: list[CampaignOutcome]
    cache_stats: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def n_completed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def duplicate_simulations(self) -> int:
        """Completed simulations whose digest was simulated elsewhere too.

        Counts repeats *across every campaign's ledger*: with the shared
        single-flight cache working, campaigns that evaluate overlapping
        designs produce zero — the second campaign records ``cache_hit``
        events instead of re-simulating.
        """
        seen: set[str] = set()
        duplicates = 0
        for outcome in self.outcomes:
            path = outcome.ledger_path
            if path is None or not Path(path).exists():
                continue
            for event in read_ledger(path).events:
                if event.get("event") != "completed":
                    continue
                digest = str(event["digest"])
                if digest in seen:
                    duplicates += 1
                seen.add(digest)
        return duplicates

    def summary(self) -> str:
        lines = [
            f"campaigns:  {len(self.outcomes)} "
            f"({self.n_completed} ok, {self.n_failed} failed)",
            f"cache:      {self.cache_stats}",
            f"duplicate simulations across campaigns: "
            f"{self.duplicate_simulations}",
        ]
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else f"FAILED: {outcome.error}"
            detail = ""
            if outcome.already_complete:
                detail = " (already complete)"
            elif outcome.resumed:
                detail = " (resumed)"
            lines.append(f"  - {outcome.name}: {status}{detail}")
        return "\n".join(lines)


def _write_result(path: Path, outcome_name: str, result: CampaignResult) -> None:
    """Persist the campaign's final log; JSON floats round-trip doubles
    via shortest repr, so byte-equal files mean bitwise-equal X/y."""
    payload = {
        "campaign": outcome_name,
        "method": result.run.method,
        "n_evaluations": result.run.n_evaluations,
        "X": [[float(v) for v in row] for row in result.run.X],
        "y": [float(v) for v in result.run.y],
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, indent=None), encoding="utf-8"
    )
    tmp.replace(path)


class CampaignScheduler:
    """Run submitted :class:`~repro.campaign.CampaignSpec` jobs concurrently.

    Parameters
    ----------
    runs_dir:
        Directory for per-campaign ledgers, result files and (by
        default) the persistent cache.  Created if missing.
    cache:
        An existing :class:`~repro.runtime.cache.ResultCache` every
        campaign shares.  Default: a persistent store opened at
        ``runs_dir / "cache"`` (closed when the scheduler closes).
    max_entries:
        LRU bound for the default cache; ignored when ``cache`` is given.
    max_concurrent:
        How many campaigns run at once (each on its own thread).
    broker_config:
        Base :class:`~repro.runtime.broker.BrokerConfig` for every
        campaign; ``cache_decimals`` is aligned to the shared cache.
    telemetry:
        Shared observability for the whole service — every campaign's
        spans nest in one trace, and the cache/queue metrics land in one
        registry.  A :class:`~repro.telemetry.TelemetryConfig` is
        materialized and owned (closed by :meth:`close`).
    resume:
        When True, a job whose result file exists is skipped, and a job
        whose ledger exists is resumed: its completed evaluations are
        preloaded into the shared cache and the ledger is extended in
        place, reproducing the interrupted run bitwise.
    """

    def __init__(
        self,
        runs_dir: str | Path,
        *,
        cache: ResultCache | None = None,
        max_entries: int | None = None,
        max_concurrent: int = 2,
        broker_config: BrokerConfig | None = None,
        telemetry: TelemetryLike = None,
        resume: bool = False,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.runs_dir = Path(runs_dir)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self._owns_cache = cache is None
        if cache is None:
            self.cache = ResultCache.open(
                self.runs_dir / "cache", max_entries=max_entries
            )
        else:
            self.cache = cache
        cfg = broker_config if broker_config is not None else BrokerConfig()
        self.config = replace(cfg, cache_decimals=self.cache.decimals)
        self.max_concurrent = int(max_concurrent)
        self._resume = bool(resume)
        self._owns_telemetry = isinstance(telemetry, TelemetryConfig)
        if telemetry is None:
            # no tracer, but always a real registry: SchedulerResult's
            # queue/latency/cache metrics must exist even untraced
            from repro.telemetry.metrics import MetricsRegistry

            self.telemetry: Telemetry = Telemetry(metrics=MetricsRegistry())
        else:
            self.telemetry = resolve_telemetry(telemetry)
        self.cache.bind_metrics(self.telemetry.metrics)
        self._specs: list[CampaignSpec] = []
        self._closed = False

    # -- job intake -----------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> None:
        """Queue one campaign for the next :meth:`run`."""
        if any(existing.name == spec.name for existing in self._specs):
            raise ValueError(
                f"a campaign named {spec.name!r} is already submitted; "
                "names key the per-campaign ledger and result files"
            )
        self._specs.append(spec)
        self.telemetry.metrics.counter("scheduler.campaigns_submitted").inc()

    def submit_all(self, specs: list[CampaignSpec]) -> None:
        for spec in specs:
            self.submit(spec)

    # -- paths ----------------------------------------------------------------

    def ledger_path(self, name: str) -> Path:
        return self.runs_dir / f"{name}.jsonl"

    def result_path(self, name: str) -> Path:
        return self.runs_dir / f"{name}.result.json"

    # -- execution ------------------------------------------------------------

    def run(self) -> SchedulerResult:
        """Drain the queue to completion (blocking wrapper)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> SchedulerResult:
        """Drain every submitted campaign, ``max_concurrent`` at a time."""
        if self._closed:
            raise RuntimeError("scheduler is closed")
        specs, self._specs = self._specs, []
        queue: asyncio.PriorityQueue[
            tuple[int, int, CampaignSpec, float]
        ] = asyncio.PriorityQueue()
        for seq, spec in enumerate(specs):
            queue.put_nowait((-spec.priority, seq, spec, time.perf_counter()))
        depth_gauge = self.telemetry.metrics.gauge("scheduler.queue_depth")
        depth_gauge.set(queue.qsize())

        if self._resume:
            await asyncio.to_thread(self._preload_ledgers, specs)

        outcomes: dict[int, CampaignOutcome] = {}
        n_workers = max(1, min(self.max_concurrent, len(specs)))
        workers = [
            asyncio.create_task(self._worker(queue, outcomes, depth_gauge))
            for _ in range(n_workers)
        ]
        await asyncio.gather(*workers)

        ordered = [outcomes[seq] for seq in sorted(outcomes)]
        return SchedulerResult(
            outcomes=ordered,
            cache_stats=dict(self.cache.stats),
            metrics=self.telemetry.snapshot(),
        )

    async def _worker(
        self,
        queue: "asyncio.PriorityQueue[tuple[int, int, CampaignSpec, float]]",
        outcomes: dict[int, CampaignOutcome],
        depth_gauge: Any,
    ) -> None:
        while True:
            try:
                _, seq, spec, enqueued = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            depth_gauge.set(queue.qsize())
            outcomes[seq] = await asyncio.to_thread(
                self._run_job, spec, enqueued
            )

    def _preload_ledgers(self, specs: list[CampaignSpec]) -> None:
        """Seed the shared cache from *every* resumable ledger up front.

        Campaign A's pre-kill simulations may be recorded only in A's
        ledger (its partner B logged cache hits).  If B's worker starts
        before A's job has replayed A's ledger, B re-claims and
        re-simulates those points — duplicated work the per-job
        :func:`resume` call cannot prevent.  Replaying all ledgers before
        the first worker starts makes every recorded value visible to
        every campaign from its first claim.  Ledgers of already-complete
        campaigns are replayed too: their values serve the others.
        """
        for spec in specs:
            ledger_path = self.ledger_path(spec.name)
            if not ledger_path.exists():
                continue
            try:
                resume(
                    ledger_path,
                    decimals=self.cache.decimals,
                    cache=self.cache,
                )
            except Exception:  # noqa: BLE001 — left for the job itself
                # a bad ledger fails its own campaign in _run_job, where
                # the error is recorded on that campaign's outcome
                continue

    def _run_job(self, spec: CampaignSpec, enqueued: float) -> CampaignOutcome:
        metrics = self.telemetry.metrics
        queue_wait = time.perf_counter() - enqueued
        metrics.histogram("scheduler.queue_wait_seconds").observe(queue_wait)
        ledger_path = self.ledger_path(spec.name)
        result_path = self.result_path(spec.name)
        outcome = CampaignOutcome(
            name=spec.name,
            queue_wait_seconds=queue_wait,
            ledger_path=ledger_path,
            result_path=result_path,
        )
        try:
            if self._resume and result_path.exists():
                outcome.already_complete = True
                metrics.counter("scheduler.campaigns_already_complete").inc()
                return outcome
            if self._resume and ledger_path.exists():
                # preloads the interrupted run's completed evaluations
                # into the shared cache and heals a torn final line; the
                # re-run below appends to the same ledger
                resume(
                    ledger_path,
                    decimals=self.cache.decimals,
                    cache=self.cache,
                )
                outcome.resumed = True
                metrics.counter("scheduler.campaigns_resumed").inc()

            policy = RuntimePolicy(
                config=self.config,
                cache=self.cache,
                ledger=RunLedger(ledger_path),
            )
            t0 = time.perf_counter()
            try:
                with self.telemetry.tracer.span(
                    "scheduled_campaign",
                    campaign=spec.name,
                    priority=spec.priority,
                    resumed=outcome.resumed,
                ) as span:
                    span.set("queue_wait_seconds", queue_wait)
                    result = run_campaign_spec(
                        spec, policy=policy, telemetry=self.telemetry
                    )
                    span.set("n_evaluations", result.run.n_evaluations)
            finally:
                policy.ledger.close()
            outcome.elapsed_seconds = time.perf_counter() - t0
            _write_result(result_path, spec.name, result)
            outcome.result = result
            metrics.counter("scheduler.campaigns_completed").inc()
            metrics.histogram("scheduler.campaign_seconds").observe(
                outcome.elapsed_seconds
            )
        except Exception as exc:  # noqa: BLE001 — one bad job must not sink the fleet
            outcome.error = f"{type(exc).__name__}: {exc}"
            metrics.counter("scheduler.campaigns_failed").inc()
        return outcome

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release owned resources (default cache, owned telemetry)."""
        if self._closed:
            return
        self._closed = True
        if self._owns_cache:
            self.cache.close()
        if self._owns_telemetry:
            self.telemetry.close()

    def __enter__(self) -> "CampaignScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


__all__ = ["CampaignOutcome", "CampaignScheduler", "SchedulerResult"]
