"""``python -m repro.serve`` — the campaign service CLI.

Submit declarative job files (see :mod:`repro.serve.jobs`) to a
:class:`~repro.serve.scheduler.CampaignScheduler`::

    python -m repro.serve jobs.json --workers 4 --runs-dir runs/serve
    python -m repro.serve jobs/ --resume          # restart after a kill
    python -m repro.serve --selftest              # kill/resume smoke

``--resume`` restarts an interrupted service: campaigns whose result
file exists are skipped, campaigns with a partial ledger are resumed
bitwise, everything else runs fresh — all against the same persistent
cache directory, so nothing already simulated is ever simulated again.

``--selftest`` is the one-command CI smoke for the whole service
contract: run two tiny campaigns to completion as a baseline, run them
again in a second directory, simulate a mid-flight kill (truncate every
ledger, drop the result files and the cache), restart with resume, and
require (a) bitwise-identical result files, (b) zero replay divergence
per ledger (``verify_replay``), and (c) zero duplicate simulations
across the campaigns.  Exit status: 0 clean, 1 divergent/failed,
2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Sequence

from repro.runtime.broker import BrokerConfig
from repro.runtime.cache import ResultCache
from repro.runtime.replay import truncate_mid_run, verify_replay
from repro.serve.jobs import load_jobs
from repro.serve.scheduler import CampaignScheduler, SchedulerResult
from repro.telemetry.config import TelemetryConfig

#: The two-campaign job set the selftest schedules.  Same seed and
#: measure on purpose: the campaigns propose identical designs, so the
#: shared single-flight cache must absorb every overlap (zero duplicate
#: simulations) while both still complete with full ledgers.
_SELFTEST_JOBS = [
    {
        "name": "selftest-a",
        "priority": 1,
        "seed": 11,
        "testbench": "uvlo",
        "measure": "delta_vthl",
        "engine": {
            "kind": "rembo",
            "batch_size": 4,
            "embedding_dim": 3,
            "tune_every": 1,
            "n_restarts": 1,
            "seed": 11,
        },
        "run": {"n_init": 6, "n_batches": 2, "threshold": "auto"},
    },
    {
        "name": "selftest-b",
        "priority": 0,
        "seed": 11,
        "testbench": "uvlo",
        "measure": "delta_vthl",
        "engine": {
            "kind": "rembo",
            "batch_size": 4,
            "embedding_dim": 3,
            "tune_every": 1,
            "n_restarts": 1,
            "seed": 11,
        },
        "run": {"n_init": 6, "n_batches": 2, "threshold": "auto"},
    },
]


def _run_jobs(runs_dir: Path, workers: int, resume: bool) -> SchedulerResult:
    from repro.serve.jobs import build_spec

    with CampaignScheduler(
        runs_dir,
        max_concurrent=workers,
        broker_config=BrokerConfig(backoff_seconds=0.0),
        resume=resume,
    ) as scheduler:
        scheduler.submit_all([build_spec(job) for job in _SELFTEST_JOBS])
        return scheduler.run()


def run_serve_selftest(workdir: str | Path | None = None) -> int:
    """Baseline run → simulated kill → resumed run → bitwise comparison."""
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="serve-selftest-") as tmp:
            return _selftest_in(Path(tmp))
    return _selftest_in(Path(workdir))


def _selftest_in(workdir: Path) -> int:
    from repro.circuits.behavioral.uvlo import UVLOTestbench

    baseline_dir = workdir / "baseline"
    killed_dir = workdir / "killed"
    failures: list[str] = []

    baseline = _run_jobs(baseline_dir, workers=2, resume=False)
    if baseline.n_failed:
        failures.append(f"baseline run failed:\n{baseline.summary()}")
    if baseline.duplicate_simulations != 0:
        failures.append(
            f"baseline ran {baseline.duplicate_simulations} duplicate "
            "simulations; the shared cache should have absorbed them"
        )

    # full run in a second directory, then simulate a mid-flight kill:
    # truncate every ledger, drop the completion certificates and the
    # persistent cache so the tail genuinely re-simulates
    first = _run_jobs(killed_dir, workers=2, resume=False)
    if first.n_failed:
        failures.append(f"pre-kill run failed:\n{first.summary()}")
    for job in _SELFTEST_JOBS:
        name = str(job["name"])
        truncate_mid_run(killed_dir / f"{name}.jsonl")
        (killed_dir / f"{name}.result.json").unlink()
    shutil.rmtree(killed_dir / "cache")

    resumed = _run_jobs(killed_dir, workers=2, resume=True)
    if resumed.n_failed:
        failures.append(f"resumed run failed:\n{resumed.summary()}")
    for outcome in resumed.outcomes:
        if not outcome.resumed:
            failures.append(f"{outcome.name}: expected a ledger resume")

    bench = UVLOTestbench()
    for job in _SELFTEST_JOBS:
        name = str(job["name"])
        base = json.loads(
            (baseline_dir / f"{name}.result.json").read_text(encoding="utf-8")
        )
        res = json.loads(
            (killed_dir / f"{name}.result.json").read_text(encoding="utf-8")
        )
        if base != res:
            failures.append(
                f"{name}: resumed result diverges from the baseline run"
            )
        report = verify_replay(
            killed_dir / f"{name}.jsonl",
            bench.objective("delta_vthl"),
            mode="both",
            config=BrokerConfig(backoff_seconds=0.0),
        )
        if not report.zero_divergence:
            failures.append(f"{name}: replay divergence\n{report.summary()}")

    if failures:
        print("serve selftest FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "serve selftest: kill + --resume reproduced "
        f"{len(_SELFTEST_JOBS)} campaigns bitwise, zero replay divergence, "
        "zero duplicate simulations"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Run queued campaign jobs concurrently over one shared "
            "persistent result cache, with per-campaign ledger "
            "checkpoints and bitwise kill/resume."
        ),
    )
    parser.add_argument(
        "jobs",
        nargs="*",
        help="job files (.json/.toml) or directories of job files",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="campaigns run concurrently (default: 2)",
    )
    parser.add_argument(
        "--runs-dir",
        default="runs/serve",
        help="ledger/result/cache directory (default: runs/serve)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="persistent cache directory (default: RUNS_DIR/cache)",
    )
    parser.add_argument(
        "--max-cache-entries",
        type=int,
        default=None,
        help="LRU bound on the shared cache (default: unbounded)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip completed campaigns, resume interrupted ones bitwise",
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="write one shared telemetry trace for the whole service",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the kill/resume service smoke end to end (no jobs needed)",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for --selftest artifacts (default: temporary)",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        return run_serve_selftest(workdir=args.workdir)
    if not args.jobs:
        parser.error("pass at least one job file/directory (or --selftest)")

    specs = load_jobs(args.jobs)
    runs_dir = Path(args.runs_dir)
    cache_dir = Path(args.cache) if args.cache else runs_dir / "cache"
    runs_dir.mkdir(parents=True, exist_ok=True)
    telemetry = TelemetryConfig(trace_path=args.trace) if args.trace else None
    with ResultCache.open(
        cache_dir, max_entries=args.max_cache_entries
    ) as cache:
        with CampaignScheduler(
            runs_dir,
            cache=cache,
            max_concurrent=args.workers,
            telemetry=telemetry,
            resume=args.resume,
        ) as scheduler:
            scheduler.submit_all(specs)
            result = scheduler.run()
    print(result.summary())
    return 0 if result.n_failed == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
