"""Synthetic objectives (paper Eq. 10 and embedded-subspace test functions)."""

from repro.synthetic.functions import (
    EmbeddedFunction,
    RareFailureFunction,
    branin,
    random_orthonormal,
    rastrigin,
    rosenbrock,
    sphere,
    styblinski_tang,
    ysyn,
)

__all__ = [
    "ysyn",
    "sphere",
    "branin",
    "styblinski_tang",
    "rosenbrock",
    "rastrigin",
    "random_orthonormal",
    "EmbeddedFunction",
    "RareFailureFunction",
]
