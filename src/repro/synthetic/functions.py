"""Synthetic objectives with controllable effective dimensionality.

``ysyn`` is the paper's Eq. 10 test function for the Fig. 2 optimizer
scaling study.  ``EmbeddedFunction`` plants a low-dimensional function
inside a high-dimensional box through an orthonormal basis — the exact
structure the random-embedding theory (Section 4.1) assumes — and
``RareFailureFunction`` adds a narrow failure pocket so the full failure-
detection pipeline can be validated quickly in tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import as_float_array


def ysyn(c: np.ndarray) -> Callable[[np.ndarray], float]:
    """The paper's Eq. 10: ``y_syn(x) = ‖x − c‖₂ / ‖c‖₂``.

    A smooth convex bowl centred at ``c``; used to measure how many
    function evaluations DIRECT-L and COBYLA need per optimization as the
    dimension grows (Fig. 2).
    """
    c = as_float_array(c, "c")
    norm_c = float(np.linalg.norm(c))
    if norm_c == 0:
        raise ValueError("c must be non-zero (the paper normalizes by ||c||)")

    def fun(x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        return float(np.linalg.norm(x - c) / norm_c)

    return fun


# -- classic low-dimensional minimization test functions --------------------


def sphere(v: np.ndarray) -> float:
    """``Σ v_i²`` with minimum 0 at the origin."""
    v = np.asarray(v, dtype=float)
    return float(np.sum(v**2))


def branin(v: np.ndarray) -> float:
    """The 2-D Branin function (three global minima, value ≈ 0.397887)."""
    v = np.asarray(v, dtype=float)
    if v.shape[-1] != 2:
        raise ValueError(f"branin is 2-D, got {v.shape[-1]} coordinates")
    x1, x2 = float(v[0]), float(v[1])
    a, b, c = 1.0, 5.1 / (4.0 * np.pi**2), 5.0 / np.pi
    r, s, t = 6.0, 10.0, 1.0 / (8.0 * np.pi)
    return a * (x2 - b * x1**2 + c * x1 - r) ** 2 + s * (1 - t) * np.cos(x1) + s


def styblinski_tang(v: np.ndarray) -> float:
    """Styblinski-Tang; per-dimension minimum ≈ −39.166 at v ≈ −2.9035."""
    v = np.asarray(v, dtype=float)
    return float(0.5 * np.sum(v**4 - 16.0 * v**2 + 5.0 * v))


def rosenbrock(v: np.ndarray) -> float:
    """The banana valley, minimum 0 at all-ones."""
    v = np.asarray(v, dtype=float)
    if v.shape[-1] < 2:
        raise ValueError("rosenbrock needs at least 2 coordinates")
    return float(
        np.sum(100.0 * (v[1:] - v[:-1] ** 2) ** 2 + (1.0 - v[:-1]) ** 2)
    )


def rastrigin(v: np.ndarray) -> float:
    """Highly multimodal; minimum 0 at the origin."""
    v = np.asarray(v, dtype=float)
    return float(10.0 * v.size + np.sum(v**2 - 10.0 * np.cos(2.0 * np.pi * v)))


def random_orthonormal(D: int, d: int, seed: SeedLike = None) -> np.ndarray:
    """A ``D×d`` matrix with orthonormal columns (QR of a Gaussian)."""
    if not 1 <= d <= D:
        raise ValueError(f"need 1 <= d <= D, got d={d}, D={D}")
    rng = as_generator(seed)
    Q, R = np.linalg.qr(rng.standard_normal((D, d)))
    # fix the sign convention so the basis is deterministic given the draw
    return Q * np.sign(np.diag(R))


class EmbeddedFunction:
    """A ``D``-dimensional function with an exact ``d_e``-dim effective subspace.

    ``y(x) = g(s · Bᵀ x)`` where ``B`` has orthonormal columns: any
    variation orthogonal to ``span(B)`` leaves ``y`` unchanged, which is the
    paper's definition of effective dimensionality (Section 4.1).

    Parameters
    ----------
    inner:
        The low-dimensional function ``g``.
    total_dim / effective_dim:
        ``D`` and ``d_e``.
    scale:
        Stretch applied to the projected coordinates before calling ``g``
        (lets bounded boxes reach interesting regions of ``g``).
    """

    def __init__(
        self,
        inner: Callable[[np.ndarray], float],
        total_dim: int,
        effective_dim: int,
        scale: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        self.inner = inner
        self.total_dim = int(total_dim)
        self.effective_dim = int(effective_dim)
        self.scale = float(scale)
        self.basis = random_orthonormal(total_dim, effective_dim, seed=seed)

    def project(self, x: np.ndarray) -> np.ndarray:
        """The effective coordinates ``v = s · Bᵀ x``."""
        x = np.asarray(x, dtype=float)
        return self.scale * (x @ self.basis)

    def __call__(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != self.total_dim:
            raise ValueError(
                f"expected {self.total_dim} coordinates, got {x.shape[-1]}"
            )
        return float(self.inner(self.project(x)))


class RareFailureFunction:
    """A smooth landscape with one narrow low-value pocket (rare failure).

    ``y(x) = base(v) − depth · exp(−‖v − v*‖² / (2 radius²))`` on the
    effective coordinates ``v = Bᵀ x``.  Away from the pocket the function
    is a gentle bowl whose minimum stays above the failure threshold, so
    uniform sampling essentially never fails; inside the pocket the value
    drops below the threshold.  The pocket centre ``v*`` is placed at a
    controlled fraction of the reachable projected radius.

    This is the unit-test stand-in for the circuits: it has exactly the
    two properties (low effective dimension, rare sharp failure) the
    paper's evaluation relies on.
    """

    def __init__(
        self,
        total_dim: int,
        effective_dim: int,
        threshold: float = -1.0,
        depth: float = 3.0,
        radius: float = 0.25,
        center_fraction: float = 0.6,
        seed: SeedLike = None,
    ) -> None:
        if not 0 < center_fraction <= 1:
            raise ValueError(
                f"center_fraction must be in (0, 1], got {center_fraction}"
            )
        if depth <= 0 or radius <= 0:
            raise ValueError("depth and radius must be positive")
        rng = as_generator(seed)
        self.total_dim = int(total_dim)
        self.effective_dim = int(effective_dim)
        self.threshold = float(threshold)
        self.depth = float(depth)
        self.radius = float(radius)
        self.basis = random_orthonormal(total_dim, effective_dim, seed=rng)
        # a point of [-1,1]^D projects to ||v|| <= sqrt(d_e) (column norms 1);
        # place the pocket well inside the reachable ball
        direction = rng.standard_normal(effective_dim)
        direction /= np.linalg.norm(direction)
        self.center = center_fraction * np.sqrt(effective_dim) * direction

    def effective_value(self, v: np.ndarray) -> float:
        """The landscape on the effective coordinates."""
        v = np.asarray(v, dtype=float)
        base = 0.5 * float(np.sum(v**2)) / self.effective_dim
        dist_sq = float(np.sum((v - self.center) ** 2))
        pocket = self.depth * np.exp(-dist_sq / (2.0 * self.radius**2))
        return base - pocket

    def __call__(self, x: np.ndarray) -> float:
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != self.total_dim:
            raise ValueError(
                f"expected {self.total_dim} coordinates, got {x.shape[-1]}"
            )
        return self.effective_value(x @ self.basis)

    @property
    def pocket_x(self) -> np.ndarray:
        """A ``D``-dim point inside the failure pocket (for tests)."""
        return self.basis @ self.center
