"""Zero-dependency observability for the BO stack.

Four pieces, one import surface:

* :mod:`repro.telemetry.trace` — nested spans with monotonic durations,
  written as JSONL joinable with the :class:`~repro.runtime.ledger.RunLedger`;
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms with a
  deterministic :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`;
* :mod:`repro.telemetry.profile` — ``REPRO_PROFILE=1`` per-call timing of
  the numeric hot paths, identity (zero-cost) when off;
* :mod:`repro.telemetry.report` — the ``python -m repro.telemetry.report``
  CLI rendering a per-phase time/eval breakdown.

Instrumented call sites take a single ``telemetry=`` argument resolved by
:func:`resolve_telemetry`; ``None`` means off via shared no-op singletons.
"""

from __future__ import annotations

from repro.telemetry.config import (
    NULL_TELEMETRY,
    Telemetry,
    TelemetryConfig,
    TelemetryLike,
    resolve_telemetry,
)
from repro.telemetry.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.telemetry.profile import (
    PROFILE_ENV_VAR,
    profile_enabled,
    profile_snapshot,
    profiled,
    reset_profile,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_VERSION,
    NullSpan,
    NullTracer,
    SpanHandle,
    Trace,
    Tracer,
    TraceSchemaError,
    TraceSpan,
    read_trace,
)

__all__ = [
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "PROFILE_ENV_VAR",
    "TRACE_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullSpan",
    "NullTracer",
    "SpanHandle",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryLike",
    "Trace",
    "TraceSchemaError",
    "TraceSpan",
    "Tracer",
    "profile_enabled",
    "profile_snapshot",
    "profiled",
    "read_trace",
    "reset_profile",
    "resolve_telemetry",
]
