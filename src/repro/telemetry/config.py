"""The telemetry bundle threaded through engines, brokers and samplers.

:class:`Telemetry` pairs a tracer with a metrics registry behind one
object so every instrumented layer takes a single ``telemetry=`` argument.
Three spellings reach an engine:

* ``None`` — telemetry off; resolves to :data:`NULL_TELEMETRY`, whose
  tracer and metrics are shared no-op singletons (identity objects, the
  <2%-overhead path);
* a :class:`TelemetryConfig` — declarative: where the trace goes; the
  engine (or :class:`~repro.campaign.Campaign`) materializes it;
* a live :class:`Telemetry` — shared across runs of one campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Union

from repro.telemetry.metrics import MetricsRegistry, NULL_METRICS, NullMetrics
from repro.telemetry.trace import NULL_TRACER, NullTracer, Tracer


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative telemetry wiring for a campaign.

    Parameters
    ----------
    trace_path:
        JSONL trace destination; ``None`` keeps spans in memory only
        (still queryable through ``telemetry.tracer.finished``).
    """

    trace_path: str | Path | None = None


class Telemetry:
    """A live tracer + metrics pair; context manager closes the tracer."""

    def __init__(
        self,
        tracer: "Tracer | NullTracer | None" = None,
        metrics: "MetricsRegistry | NullMetrics | None" = None,
    ) -> None:
        self.tracer: Tracer | NullTracer = (
            tracer if tracer is not None else NULL_TRACER
        )
        self.metrics: MetricsRegistry | NullMetrics = (
            metrics if metrics is not None else NULL_METRICS
        )

    @property
    def enabled(self) -> bool:
        return bool(self.tracer.enabled or self.metrics.enabled)

    @classmethod
    def from_config(cls, config: TelemetryConfig) -> "Telemetry":
        return cls(tracer=Tracer(config.trace_path), metrics=MetricsRegistry())

    def snapshot(self) -> dict[str, Any]:
        """The metrics snapshot (deterministic; empty when off)."""
        return self.metrics.snapshot()

    def close(self) -> None:
        self.tracer.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: The telemetry-off singleton: no-op tracer, no-op metrics.
NULL_TELEMETRY = Telemetry()

#: What instrumented call sites accept as their ``telemetry`` argument.
TelemetryLike = Union[Telemetry, TelemetryConfig, None]


def resolve_telemetry(telemetry: TelemetryLike) -> Telemetry:
    """Normalize a ``telemetry=`` argument to a live :class:`Telemetry`.

    ``None`` resolves to the shared :data:`NULL_TELEMETRY` (off);
    a :class:`TelemetryConfig` is materialized fresh — the caller owns
    closing it (``with resolve_telemetry(cfg) as tele: ...``).
    """
    if telemetry is None:
        return NULL_TELEMETRY
    if isinstance(telemetry, TelemetryConfig):
        return Telemetry.from_config(telemetry)
    return telemetry


__all__ = [
    "NULL_TELEMETRY",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryLike",
    "resolve_telemetry",
]
