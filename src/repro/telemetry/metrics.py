"""Counters, gauges and histograms with a deterministic snapshot API.

The registry is the numeric side of the observability layer: where the
tracer answers "where did the time go", the metrics answer "how many" —
simulations completed, cache hits, retries, acquisition fevals, clipped
projection coordinates.  The perf harness consumes :meth:`snapshot`,
whose output is deterministic (sorted keys, plain builtins) so two runs
of the same seeded campaign produce byte-identical snapshots.

Instruments are created on first use (``registry.counter("x").inc()``)
and cheap enough to sit on warm paths; the telemetry-off path uses the
:data:`NULL_METRICS` singleton whose instruments are shared no-ops.
All mutation happens on the dispatching thread (the broker aggregates
worker results before counting), so no locking is needed.
"""

from __future__ import annotations

import math
from typing import Any


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += int(n)


class Gauge:
    """A last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values: count/total/min/max.

    Deliberately bucket-free — the campaigns this instruments produce
    hundreds of observations, and the report renders mean/extremes, not
    quantiles.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class NullCounter:
    __slots__ = ()

    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()

    value = 0.0

    def set(self, value: float) -> None:
        pass


class NullHistogram:
    __slots__ = ()

    count = 0
    total = 0.0
    min = math.inf
    max = -math.inf
    mean = 0.0

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    enabled = True

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram()
        return inst

    def snapshot(self) -> dict[str, Any]:
        """Deterministic plain-builtin view of every instrument.

        Keys are sorted; histogram extremes of empty histograms render as
        ``None`` so the snapshot stays JSON-serializable.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "mean": hist.mean,
                    "min": hist.min if hist.count else None,
                    "max": hist.max if hist.count else None,
                }
                for name, hist in sorted(self._histograms.items())
            },
        }


class NullMetrics:
    """No-op registry handed out when telemetry is off."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullMetrics",
]
