"""Counters, gauges and histograms with a deterministic snapshot API.

The registry is the numeric side of the observability layer: where the
tracer answers "where did the time go", the metrics answer "how many" —
simulations completed, cache hits, retries, acquisition fevals, clipped
projection coordinates.  The perf harness consumes :meth:`snapshot`,
whose output is deterministic (sorted keys, plain builtins) so two runs
of the same seeded campaign produce byte-identical snapshots.

Instruments are created on first use (``registry.counter("x").inc()``)
and cheap enough to sit on warm paths; the telemetry-off path uses the
:data:`NULL_METRICS` singleton whose instruments are shared no-ops.
The registry and every instrument are ``@thread_shared``: a fleet of
campaign threads over a shared broker (ROADMAP item 1) counts into one
registry, so get-or-create races and increments are serialized under
fine-grained per-object locks — an uncontended RLock acquire per ``inc``,
which is noise next to the simulations being counted.  Snapshots taken
while writers are still running are internally consistent per instrument;
exact totals require the writers to have joined, which is what the
threaded stress suite pins.
"""

from __future__ import annotations

import math
from typing import Any

from repro.utils.contracts import thread_shared
from repro.utils.sanitize_concurrency import make_lock


@thread_shared
class Counter:
    """A monotonically increasing integer count; ``inc`` is thread-safe."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self._lock = make_lock("metrics.Counter")
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += int(n)


@thread_shared
class Gauge:
    """A last-write-wins scalar; ``set`` is thread-safe."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self._lock = make_lock("metrics.Gauge")
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


@thread_shared
class Histogram:
    """Streaming summary of observed values: count/total/min/max.

    Deliberately bucket-free — the campaigns this instruments produce
    hundreds of observations, and the report renders mean/extremes, not
    quantiles.  ``observe`` is thread-safe: the four fields move together
    under the instrument lock, so a snapshot never sees a count without
    its total.
    """

    __slots__ = ("count", "total", "min", "max", "_lock")

    def __init__(self) -> None:
        self._lock = make_lock("metrics.Histogram")
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class NullCounter:
    __slots__ = ()

    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()

    value = 0.0

    def set(self, value: float) -> None:
        pass


class NullHistogram:
    __slots__ = ()

    count = 0
    total = 0.0
    min = math.inf
    max = -math.inf
    mean = 0.0

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


@thread_shared
class MetricsRegistry:
    """Named instruments, created on first use.

    Get-or-create runs under the registry lock so two threads asking for
    the same name always receive the same instrument — the losing thread
    of an unsynchronized race would otherwise count into an orphan.
    """

    def __init__(self) -> None:
        self._lock = make_lock("metrics.MetricsRegistry")
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    enabled = True

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter()
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge()
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram()
            return inst

    def snapshot(self) -> dict[str, Any]:
        """Deterministic plain-builtin view of every instrument.

        Keys are sorted; histogram extremes of empty histograms render as
        ``None`` so the snapshot stays JSON-serializable.  The registry
        lock pins the instrument set; per-instrument fields are read
        without their locks (reads are atomic under the GIL and exactness
        is only promised once writers have joined).
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: inst.value for name, inst in counters},
            "gauges": {name: inst.value for name, inst in gauges},
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "mean": hist.mean,
                    "min": hist.min if hist.count else None,
                    "max": hist.max if hist.count else None,
                }
                for name, hist in histograms
            },
        }


class NullMetrics:
    """No-op registry handed out when telemetry is off."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullMetrics",
]
