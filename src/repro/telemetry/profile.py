"""Opt-in per-call profiling of the numeric hot paths.

``REPRO_PROFILE=1`` (read once at import, exactly like the PR 3
``REPRO_SANITIZE`` sanitizer gate) turns :func:`profiled` into a timing
wrapper that accumulates per-call counts and monotonic durations into a
process-global table, keyed by the site label.  With the variable unset
the decorator resolves to the bare function at import time — no wrapper
frame, no lookup, zero call overhead — which is what lets it sit on the
GP evaluator and acquisition batch paths without moving the perf smoke.

Intended sites (wired in this repo):

* ``gp.evaluator.lml`` — fused LML value+gradient evaluations,
* ``gp.model.predict`` — posterior evaluations (the acquisition bill),
* ``gp.hyperopt.fit`` — whole hyperparameter searches,
* ``acquisition.optimize`` — single-acquisition optimizer runs,
* ``bo.propose_batch`` — lockstep multi-weight batch proposals.

Read results with :func:`profile_snapshot` (deterministic: sorted keys)
and reset between phases with :func:`reset_profile`.
"""

from __future__ import annotations

import os
import time
from functools import wraps
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: Environment variable gating the profiling hooks; read once at import.
PROFILE_ENV_VAR = "REPRO_PROFILE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def profile_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` requests per-call timing."""
    return os.environ.get(PROFILE_ENV_VAR, "").strip().lower() in _TRUTHY


_ENABLED = profile_enabled()

#: label -> [n_calls, total_seconds]; mutated only under the GIL from the
#: calling thread, read via profile_snapshot().
_TABLE: dict[str, list[float]] = {}


def profiled(label: str) -> Callable[[F], F]:
    """Accumulate per-call wall time under ``label`` when profiling is on.

    With ``REPRO_PROFILE`` unset this returns the function unchanged at
    decoration time (identity — verified by the subprocess probe in
    ``tests/test_telemetry.py``).
    """
    if not _ENABLED:

        def passthrough(fn: F) -> F:
            return fn

        return passthrough

    def decorate(fn: F) -> F:
        cell = _TABLE.setdefault(label, [0, 0.0])

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                cell[0] += 1
                cell[1] += time.perf_counter() - start

        return wrapper  # type: ignore[return-value]

    return decorate


def profile_snapshot() -> dict[str, dict[str, float]]:
    """Deterministic view of the accumulated profile table.

    Labels whose site was never called are included (count 0) so the
    presence of a hook is observable.
    """
    return {
        label: {"calls": int(cell[0]), "seconds": float(cell[1])}
        for label, cell in sorted(_TABLE.items())
    }


def reset_profile() -> None:
    """Zero every accumulated cell (labels stay registered)."""
    for cell in _TABLE.values():
        cell[0] = 0
        cell[1] = 0.0


__all__ = [
    "PROFILE_ENV_VAR",
    "profile_enabled",
    "profile_snapshot",
    "profiled",
    "reset_profile",
]
