"""Per-phase breakdown of a campaign trace: ``python -m repro.telemetry.report``.

Renders where a campaign spent its wall clock and its evaluations from a
JSONL trace file written by the :class:`~repro.telemetry.trace.Tracer`::

    python -m repro.telemetry.report runs/uvlo.trace.jsonl
    python -m repro.telemetry.report runs/uvlo.trace.jsonl --ledger runs/uvlo.jsonl

With ``--ledger`` the report also reconciles the trace against the
:class:`~repro.runtime.ledger.RunLedger` event stream (evaluation spans
vs ``completed`` events — the two are joinable on the shared ``id``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Sequence

from repro.telemetry.trace import Trace, TraceSpan, read_trace
from repro.utils.tables import render_table
from repro.utils.timing import format_duration


@dataclass(frozen=True)
class PhaseRow:
    """Aggregate of every span sharing one name."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    share: float  # fraction of summed campaign-span time
    evaluations: int  # summed "fevals"/eval-count attributes, if any
    cache_hits: int  # summed broker "cache_hits" attributes
    cache_misses: int  # summed broker "cache_misses" attributes

    @property
    def cache_rate(self) -> float | None:
        """Fraction of intake rows served from cache, or None if untracked."""
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return None
        return self.cache_hits / lookups


#: Attribute keys that count evaluations, searched in priority order.
_EVAL_ATTRS = ("fevals", "n_evaluations", "n_completed")


def _span_evaluations(span: TraceSpan) -> int:
    for key in _EVAL_ATTRS:
        value = span.attrs.get(key)
        if isinstance(value, (int, float)):
            return int(value)
    return 0


def _span_counter(span: TraceSpan, key: str) -> int:
    value = span.attrs.get(key)
    return int(value) if isinstance(value, (int, float)) else 0


def phase_breakdown(trace: Trace) -> list[PhaseRow]:
    """Aggregate spans by name, largest total time first.

    ``share`` is relative to the summed duration of the ``campaign``
    root spans (falling back to the summed root spans of any name when a
    trace was produced without a campaign wrapper).  Cache hit/miss
    counters are the broker's batched-intake annotations
    (:meth:`~repro.telemetry.trace.Tracer.annotate`), so the hit-rate
    column shows where the result cache absorbed simulations.
    """
    roots = trace.named("campaign") or trace.roots()
    wall = sum(s.dt for s in roots) or 1.0
    totals: dict[str, list[float]] = {}
    for span in trace:
        cell = totals.setdefault(span.name, [0, 0.0, 0, 0, 0])
        cell[0] += 1
        cell[1] += span.dt
        cell[2] += _span_evaluations(span)
        cell[3] += _span_counter(span, "cache_hits")
        cell[4] += _span_counter(span, "cache_misses")
    rows = [
        PhaseRow(
            name=name,
            count=int(cell[0]),
            total_seconds=cell[1],
            mean_seconds=cell[1] / cell[0],
            share=cell[1] / wall,
            evaluations=int(cell[2]),
            cache_hits=int(cell[3]),
            cache_misses=int(cell[4]),
        )
        for name, cell in totals.items()
    ]
    rows.sort(key=lambda r: (-r.total_seconds, r.name))
    return rows


def render_report(trace: Trace, title: str | None = None) -> str:
    """The per-phase table the CLI prints."""
    rows = phase_breakdown(trace)
    body = [
        [
            row.name,
            row.count,
            format_duration(row.total_seconds),
            f"{1000.0 * row.mean_seconds:.2f}ms",
            f"{100.0 * row.share:.1f}%",
            row.evaluations or "-",
            row.cache_hits if row.cache_rate is not None else "-",
            (
                f"{100.0 * row.cache_rate:.1f}%"
                if row.cache_rate is not None
                else "-"
            ),
        ]
        for row in rows
    ]
    return render_table(
        [
            "phase",
            "spans",
            "total",
            "mean",
            "% of campaign",
            "evals",
            "hits",
            "hit rate",
        ],
        body,
        title=title,
    )


def reconcile_with_ledger(trace: Trace, ledger_path: str) -> list[str]:
    """Compare evaluation spans against the ledger's completed events."""
    from repro.runtime.ledger import read_ledger

    replay = read_ledger(ledger_path)
    n_spans = len(trace.named("evaluate"))
    lines = [
        f"evaluate spans:          {n_spans}",
        f"ledger completed events: {replay.n_completed}",
        f"ledger cache hits:       {replay.n_cache_hits}",
    ]
    if n_spans == replay.n_completed:
        lines.append("trace and ledger agree on the simulation count")
    else:
        lines.append(
            "MISMATCH: trace and ledger disagree on the simulation count"
        )
    return lines


def _final_run_evaluations(ledger_path: str) -> int:
    """Evaluations the ledger's *final* run performed.

    A resumed campaign's ledger holds the interrupted prefix plus the
    resumed run appended in place, each run opening with its own
    ``campaign`` header — only events after the last header belong to
    the run the scheduler span measured.
    """
    from repro.runtime.ledger import read_ledger

    events = read_ledger(ledger_path).events
    last_header = 0
    for i, event in enumerate(events):
        if event.get("event") == "campaign":
            last_header = i
    return sum(
        1
        for event in events[last_header:]
        if event.get("event") in ("completed", "cache_hit", "penalized")
    )


def scheduler_report(trace: Trace, runs_dir: str) -> str:
    """Per-campaign queue wait / latency, reconciled against the ledgers.

    One row per ``scheduled_campaign`` span; the ``ledger`` column
    recounts the campaign's observations (``completed`` + ``cache_hit``
    + ``penalized`` events of its final run) from
    ``RUNS_DIR/<campaign>.jsonl`` and must match the span's recorded
    ``n_evaluations``.
    """
    from pathlib import Path

    body = []
    for span in trace.named("scheduled_campaign"):
        name = str(span.attrs.get("campaign", "?"))
        wait = span.attrs.get("queue_wait_seconds")
        n_evals = span.attrs.get("n_evaluations")
        ledger_path = Path(runs_dir) / f"{name}.jsonl"
        if ledger_path.exists():
            from_ledger: int | str = _final_run_evaluations(str(ledger_path))
        else:
            from_ledger = "-"
        agree = (
            "ok"
            if isinstance(from_ledger, int)
            and isinstance(n_evals, (int, float))
            and int(n_evals) == from_ledger
            else "MISMATCH"
        )
        body.append(
            [
                name,
                "yes" if span.attrs.get("resumed") else "no",
                (
                    format_duration(float(wait))
                    if isinstance(wait, (int, float))
                    else "-"
                ),
                format_duration(span.dt),
                int(n_evals) if isinstance(n_evals, (int, float)) else "-",
                from_ledger,
                agree,
            ]
        )
    body.sort(key=lambda row: str(row[0]))
    return render_table(
        [
            "campaign",
            "resumed",
            "queue wait",
            "latency",
            "evals",
            "ledger",
            "reconciled",
        ],
        body,
        title=f"Scheduled campaigns: {runs_dir}",
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Per-phase time/eval breakdown of a campaign trace.",
    )
    parser.add_argument("trace", help="JSONL trace file written by a Tracer")
    parser.add_argument(
        "--ledger",
        default=None,
        help="optional RunLedger JSONL to reconcile evaluation counts against",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        help=(
            "scheduler runs directory: adds a per-campaign queue-wait/"
            "latency section reconciled against each campaign's ledger"
        ),
    )
    args = parser.parse_args(argv)
    trace = read_trace(args.trace)
    print(render_report(trace, title=f"Campaign trace: {args.trace}"))
    campaigns = trace.named("campaign")
    if campaigns:
        wall = sum(s.dt for s in campaigns)
        print(f"\ncampaign wall clock: {format_duration(wall)}")
    if args.runs_dir is not None:
        print()
        print(scheduler_report(trace, args.runs_dir))
    if args.ledger is not None:
        print()
        for line in reconcile_with_ledger(trace, args.ledger):
            print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
