"""Structured tracing: nested spans over one campaign, written as JSONL.

A *span* is a named, timed section of a campaign — ``campaign >
iteration > gp_fit / acq_opt / evaluate`` — with a monotonic duration
(``time.perf_counter`` deltas, never wall clock: the NL401 invariant) and
a dict of structured attributes (LML at convergence, acquisition fevals,
clip-projection fraction, cache hit counts, ...).  Spans nest through an
explicit *per-thread* stack owned by the :class:`Tracer` (a
``threading.local``): each campaign/worker thread sees its own nesting, so
``tracer.span(...)`` context managers express the hierarchy directly even
when several campaign threads share one tracer, while work measured
elsewhere (the broker times each simulation inside its worker pool) enters
after the fact through :meth:`Tracer.record_span` and is parented to
whatever span the *calling* thread has open.  Id assignment and line
emission are serialized under the tracer lock, so concurrent spans get
unique ids and whole JSONL lines; the tracer is ``@thread_shared``
(DESIGN.md §13).

The trace file is one JSON object per line, flushed per line like the
:class:`~repro.runtime.ledger.RunLedger` so a killed campaign leaves a
valid prefix.  Spans carry the broker's evaluation ids in their
attributes, which is what makes a trace joinable against the ledger's
event stream (both sides name the same ``id``).

Trace schema (version 1)
------------------------
``{"kind": "trace", "version": 1}``
    Header, first line of every file.
``{"kind": "span", "name": ..., "id": ..., "parent": ..., "t0": ...,
"dt": ..., "attrs": {...}}``
    One completed span.  ``id`` is unique and increasing in emission
    order, ``parent`` is the enclosing span's id (``null`` for roots),
    ``t0`` is the start offset in seconds from the tracer's epoch and
    ``dt`` the duration.  Spans are emitted at *close*, so parents appear
    after their children; ids are assigned at *open*, so a parent's id is
    always smaller than its children's.

When telemetry is off the engines hold the module-level
:data:`NULL_TRACER`, whose ``span``/``record_span`` are no-ops returning a
shared null handle — the overhead of instrumentation is one method call
per phase, which is what keeps the telemetry-off path within the perf
budget (same pattern as the PR 3 sanitizer).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Callable, Iterator

from repro.utils.contracts import thread_shared
from repro.utils.sanitize_concurrency import make_lock

#: Schema version stamped on the trace header line.
TRACE_VERSION = 1


class TraceSchemaError(ValueError):
    """A trace file violates the span schema or nesting invariants."""


class SpanHandle:
    """One open span; a context manager that closes (and emits) it.

    Attributes set through :meth:`set` / :meth:`add` land in the span's
    ``attrs`` dict on the emitted JSONL line.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "_t0")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one structured attribute to the span."""
        self.attrs[key] = value

    def add(self, key: str, value: float) -> None:
        """Accumulate a numeric attribute (missing keys start at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + value

    def __enter__(self) -> "SpanHandle":
        self._t0 = self._tracer._open(self)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._close(self, self._t0)


class NullSpan:
    """The shared no-op span handle used when telemetry is off."""

    __slots__ = ()

    name = ""
    span_id: int | None = None
    parent_id: int | None = None

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, key: str, value: float) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


class NullTracer:
    """Identity tracer: every operation is a no-op.

    Engines and the broker call the tracer unconditionally; holding this
    object instead of a real :class:`Tracer` is what "telemetry off"
    means.  All methods intentionally avoid allocation.
    """

    __slots__ = ()

    enabled = False

    @property
    def current_id(self) -> int | None:
        return None

    def span(self, name: str, **attrs: Any) -> NullSpan:
        return NULL_SPAN

    def record_span(
        self,
        name: str,
        seconds: float,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        pass

    def annotate(self, key: str, value: float) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


#: Shared singletons handed out on the telemetry-off path.
NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()


class _ThreadSpans(threading.local):
    """Per-thread open-span state: ids for parenting, handles for annotate."""

    def __init__(self) -> None:
        self.ids: list[int] = []
        self.handles: list[SpanHandle] = []


@thread_shared
class Tracer:
    """Emits nested spans as JSONL; see the module docstring for schema.

    Thread model: span *nesting* is per thread (``self._tls`` holds each
    thread's open-span stack, so worker spans nest correctly under that
    worker's own spans and never under a sibling thread's), while id
    assignment and line emission are serialized under ``self._lock`` so
    ids stay unique and JSONL lines whole.

    Parameters
    ----------
    path:
        Trace file destination.  ``None`` keeps the spans in memory only
        (``finished``), which the tests and :class:`~repro.campaign.Campaign`
        use for reconciliation without touching disk.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    enabled = True

    def __init__(
        self,
        path: str | Path | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._lock = make_lock("telemetry.Tracer")
        self.path = Path(path) if path is not None else None
        self._clock = clock
        self._epoch = clock()
        self._fh: IO[str] | None = None
        self._next_id = 1
        self._tls = _ThreadSpans()
        self._n_open = 0
        #: Every emitted span line, in emission order (kept even when
        #: writing to a file, so reconciliation never re-reads the disk).
        self.finished: list[dict[str, Any]] = []

    # -- span lifecycle ------------------------------------------------------

    @property
    def current_id(self) -> int | None:
        """Id of the calling thread's innermost open span (parent for new)."""
        ids = self._tls.ids
        return ids[-1] if ids else None

    def span(self, name: str, **attrs: Any) -> SpanHandle:
        """Open a nested span as a context manager."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return SpanHandle(self, name, span_id, self.current_id, attrs)

    def _open(self, handle: SpanHandle) -> float:
        self._tls.ids.append(handle.span_id)
        self._tls.handles.append(handle)
        with self._lock:
            self._n_open += 1
        return self._clock() - self._epoch

    def _close(self, handle: SpanHandle, t0: float) -> None:
        ids = self._tls.ids
        if not ids or ids[-1] != handle.span_id:
            raise TraceSchemaError(
                f"span {handle.name!r} closed out of order (open stack "
                f"{ids})"
            )
        ids.pop()
        self._tls.handles.pop()
        with self._lock:
            self._n_open -= 1
        self._emit(
            handle.name,
            handle.span_id,
            handle.parent_id,
            t0,
            (self._clock() - self._epoch) - t0,
            handle.attrs,
        )

    def record_span(
        self,
        name: str,
        seconds: float,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        """Record an already-measured span under the current open span.

        Used for work timed elsewhere — the broker measures each
        simulation inside its worker pool and reports the duration here
        from the dispatching thread.  The start offset is reconstructed
        as ``now - seconds``.
        """
        now = self._clock() - self._epoch
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        t0 = max(0.0, now - float(seconds))
        self._emit(name, span_id, self.current_id, t0, float(seconds), attrs or {})

    def annotate(self, key: str, value: float) -> None:
        """Accumulate a numeric attribute onto the innermost *open* span.

        Lets code that does not own a span handle (the broker annotating
        the engine's enclosing ``iteration``/``init_design`` span with
        cache-hit counts) attach attributes without threading handles
        through every call site.  The innermost span is the *calling
        thread's* — a worker never annotates a sibling thread's span.  No
        open span means nothing to annotate — the call is a silent no-op,
        mirroring :class:`NullTracer`.
        """
        handles = self._tls.handles
        if handles:
            handles[-1].add(key, value)

    # -- emission ------------------------------------------------------------

    def _emit(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        t0: float,
        dt: float,
        attrs: dict[str, Any],
    ) -> None:
        line = {
            "kind": "span",
            "name": name,
            "id": span_id,
            "parent": parent_id,
            "t0": t0,
            "dt": dt,
            "attrs": attrs,
        }
        text = json.dumps(line, separators=(",", ":")) + "\n"
        with self._lock:
            self.finished.append(line)
            if self.path is not None:
                if self._fh is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._fh = self.path.open("a", encoding="utf-8")
                    header = {"kind": "trace", "version": TRACE_VERSION}
                    self._fh.write(
                        json.dumps(header, separators=(",", ":")) + "\n"
                    )
                self._fh.write(text)
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._n_open:
                raise TraceSchemaError(
                    f"tracer closed with {self._n_open} span(s) still open"
                )
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- reading -----------------------------------------------------------------


@dataclass(frozen=True)
class TraceSpan:
    """One parsed span line."""

    name: str
    span_id: int
    parent_id: int | None
    t0: float
    dt: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def t1(self) -> float:
        return self.t0 + self.dt


@dataclass
class Trace:
    """A parsed trace: spans in emission order plus lookup helpers."""

    version: int
    spans: list[TraceSpan]

    def __post_init__(self) -> None:
        self._by_id = {s.span_id: s for s in self.spans}

    def get(self, span_id: int) -> TraceSpan:
        return self._by_id[span_id]

    def roots(self) -> list[TraceSpan]:
        """Top-level spans (no parent), usually one ``campaign``."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span_id: int) -> list[TraceSpan]:
        return [s for s in self.spans if s.parent_id == span_id]

    def named(self, name: str) -> list[TraceSpan]:
        return [s for s in self.spans if s.name == name]

    def __iter__(self) -> Iterator[TraceSpan]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self.spans)


def _parse_span(obj: dict[str, Any], lineno: int) -> TraceSpan:
    try:
        name = obj["name"]
        span_id = obj["id"]
        parent = obj["parent"]
        t0 = obj["t0"]
        dt = obj["dt"]
        attrs = obj.get("attrs", {})
    except KeyError as err:
        raise TraceSchemaError(
            f"trace line {lineno}: span missing field {err.args[0]!r}"
        ) from None
    if not isinstance(name, str) or not isinstance(span_id, int):
        raise TraceSchemaError(f"trace line {lineno}: bad name/id types")
    if parent is not None and not isinstance(parent, int):
        raise TraceSchemaError(f"trace line {lineno}: bad parent id")
    if not isinstance(attrs, dict):
        raise TraceSchemaError(f"trace line {lineno}: attrs must be a dict")
    if dt < 0:
        raise TraceSchemaError(f"trace line {lineno}: negative duration")
    return TraceSpan(
        name=name,
        span_id=span_id,
        parent_id=parent,
        t0=float(t0),
        dt=float(dt),
        attrs=dict(attrs),
    )


def read_trace(path: str | Path) -> Trace:
    """Parse and validate a trace file.

    Enforced invariants: a version-1 header, unique span ids, every
    ``parent`` referencing a known id assigned before the child's (the
    open-before rule), and non-negative durations.  A torn trailing line
    (interrupted write) is tolerated, anything else raises
    :class:`TraceSchemaError`.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise TraceSchemaError(f"{path}: empty trace file")
    spans: list[TraceSpan] = []
    version: int | None = None
    seen: set[int] = set()
    for lineno, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):  # torn final line from a killed run
                break
            raise TraceSchemaError(
                f"{path}: unparseable line {lineno} is not the final line"
            ) from None
        kind = obj.get("kind")
        if kind == "trace":
            if version is not None:
                raise TraceSchemaError(f"{path}: duplicate trace header")
            version = int(obj.get("version", -1))
            if version != TRACE_VERSION:
                raise TraceSchemaError(
                    f"{path}: unsupported trace version {version}"
                )
            continue
        if kind != "span":
            raise TraceSchemaError(
                f"{path}: line {lineno} has unknown kind {kind!r}"
            )
        if version is None:
            raise TraceSchemaError(f"{path}: span before the trace header")
        span = _parse_span(obj, lineno)
        if span.span_id in seen:
            raise TraceSchemaError(
                f"{path}: duplicate span id {span.span_id} on line {lineno}"
            )
        if span.parent_id is not None and span.parent_id >= span.span_id:
            # ids are assigned at open: a parent is always opened (and
            # numbered) before any of its children
            raise TraceSchemaError(
                f"{path}: span {span.span_id} has non-ancestor parent "
                f"{span.parent_id}"
            )
        seen.add(span.span_id)
        spans.append(span)
    if version is None:
        raise TraceSchemaError(f"{path}: missing trace header")
    parents = {s.parent_id for s in spans if s.parent_id is not None}
    unknown = parents - {s.span_id for s in spans}
    if unknown:
        raise TraceSchemaError(
            f"{path}: spans reference unknown parent ids {sorted(unknown)}"
        )
    return Trace(version=version, spans=spans)


__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "SpanHandle",
    "Trace",
    "TraceSchemaError",
    "TraceSpan",
    "Tracer",
    "TRACE_VERSION",
    "read_trace",
]
