"""Shared utilities: RNG plumbing, validation, timing, table rendering."""

from repro.utils.rng import SeedLike, as_generator, spawn
from repro.utils.tables import (
    format_count,
    format_sim_budget,
    render_table,
)
from repro.utils.timing import Timer, format_duration
from repro.utils.validation import (
    as_float_array,
    as_matrix,
    as_vector,
    check_bounds,
    unit_cube_bounds,
)

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn",
    "as_float_array",
    "as_matrix",
    "as_vector",
    "check_bounds",
    "unit_cube_bounds",
    "Timer",
    "format_duration",
    "render_table",
    "format_count",
    "format_sim_budget",
]
