"""Declarative array-shape contracts with an opt-in runtime sanitizer.

The REMBO pipeline is a chain of shape-sensitive linear-algebra steps —
``z ∈ [-√d, √d]^d`` → ``x = p_Ω(Az)`` (Eq. 11), the pseudo-inverse reverse
map ``z = A†x`` (Eq. 12), GP train/predict on ``(n, d)`` batches — where a
silently broadcast or transposed array corrupts results instead of
crashing.  :func:`shape_contract` turns the informal docstring shapes into
a machine-checked contract string::

    @shape_contract("X: (n, d), A: (D, d) -> (n, D)")
    def reverse_map(X, A): ...

**Grammar** (see DESIGN.md §9 for the full rules)::

    spec    := params [ "->" rets ]
    params  := param ("," param)*            # top-level commas only
    param   := NAME ["?"] ":" alts           # "?" → None is allowed
    alts    := shape ("|" shape)*            # any alternative may match
    shape   := [DTYPE] "(" [dim ("," dim)*] ")"   # array shape
             | NAME                          # scalar int, binds symbol NAME
    DTYPE   := "f"  (float64, the default) | "i" (integer) | "a" (any)
    dim     := SYMBOL | INT | "*"            # "*" matches any size

Dimension symbols unify *per call*: every occurrence of a symbol must
resolve to the same concrete size across all declared arguments and
returns, integer literals must match exactly, and ``*`` is unconstrained.
A bare-name scalar entry (``n_init: n``) binds an integer argument into
the symbol table so returns like ``-> (n, d)`` can be pinned against it.
Multiple return shapes (``-> (n,), (n, n)``) declare a tuple return.

**Runtime mode.**  The sanitizer is gated on the ``REPRO_SANITIZE``
environment variable, read once at import time.  When it is off (the
default), :func:`shape_contract` returns the decorated function object
itself — the decorator is an identity, no wrapper frame, no parsing, zero
call overhead.  When on, every call validates declared shapes and dtypes,
trips on NaN/Inf in float arrays (``check_finite=False`` opts a function
out), and rejects aliasing between ``out``/``*_out`` buffers and the other
array arguments (``allow_aliasing=True`` opts out).

**Static mode.**  The same contract strings are parsed by
``tools/numlint/shapes.py`` and checked interprocedurally by the NL5xx
shapelint passes without importing this module; keep the two grammars in
sync (``tests/test_contracts.py`` cross-checks them on a shared corpus).
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

import numpy as np

F = TypeVar("F", bound=Callable[..., Any])

#: Environment variable gating the runtime sanitizer; read once at import.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests runtime contract checking."""
    return os.environ.get(SANITIZE_ENV_VAR, "").strip().lower() in _TRUTHY


_ENABLED = sanitize_enabled()


class ShapeContractError(ValueError):
    """A runtime violation of a declared shape contract."""


class ContractParseError(ValueError):
    """A malformed contract specification string."""


# -- parsed representation ---------------------------------------------------

_SYMBOL_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")
_INT_RE = re.compile(r"[0-9]+\Z")


@dataclass(frozen=True)
class ArrayShape:
    """One array alternative: a dtype class plus a dimension tuple."""

    dims: tuple[str | int, ...]
    dtype: str = "f"  # "f" float64 | "i" integer | "a" any

    def render(self) -> str:
        prefix = "" if self.dtype == "f" else self.dtype
        inner = ", ".join(str(d) for d in self.dims)
        if len(self.dims) == 1:
            inner += ","
        return f"{prefix}({inner})"


@dataclass(frozen=True)
class ScalarDim:
    """A scalar integer argument bound into the symbol table."""

    symbol: str

    def render(self) -> str:
        return self.symbol


@dataclass(frozen=True)
class ParamSpec:
    """Contract entry for one named parameter."""

    name: str
    alternatives: tuple[ArrayShape | ScalarDim, ...]
    optional: bool = False

    def render(self) -> str:
        alts = " | ".join(a.render() for a in self.alternatives)
        return f"{self.name}{'?' if self.optional else ''}: {alts}"


@dataclass(frozen=True)
class Contract:
    """A fully parsed contract specification."""

    params: tuple[ParamSpec, ...]
    returns: tuple[tuple[ArrayShape | ScalarDim, ...], ...] = ()
    spec: str = ""

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)


@dataclass
class _Cursor:
    """Minimal tokenizer state over a spec string."""

    text: str
    pos: int = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        if self.startswith(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.take(token):
            raise ContractParseError(
                f"expected {token!r} at position {self.pos} in {self.text!r}"
            )

    def word(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if self.pos == start:
            raise ContractParseError(
                f"expected a name at position {start} in {self.text!r}"
            )
        return self.text[start : self.pos]

    @property
    def done(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


def _parse_dim(cur: _Cursor) -> str | int:
    if cur.take("*"):
        return "*"
    word = cur.word()
    if _INT_RE.match(word):
        return int(word)
    if _SYMBOL_RE.match(word):
        return word
    raise ContractParseError(f"bad dimension {word!r} in {cur.text!r}")


def _parse_shape(cur: _Cursor) -> ArrayShape | ScalarDim:
    dtype = "f"
    for candidate in ("f", "i", "a"):
        if cur.startswith(candidate) and cur.text.startswith(
            candidate + "(", cur.pos
        ):
            cur.take(candidate)
            dtype = candidate
            break
    if cur.take("("):
        dims: list[str | int] = []
        if not cur.startswith(")"):
            dims.append(_parse_dim(cur))
            while cur.take(","):
                if cur.startswith(")"):  # trailing comma: 1-tuple spelling
                    break
                dims.append(_parse_dim(cur))
        cur.expect(")")
        return ArrayShape(dims=tuple(dims), dtype=dtype)
    word = cur.word()
    if not _SYMBOL_RE.match(word):
        raise ContractParseError(f"bad scalar symbol {word!r} in {cur.text!r}")
    return ScalarDim(symbol=word)


def _parse_alternatives(cur: _Cursor) -> tuple[ArrayShape | ScalarDim, ...]:
    alts = [_parse_shape(cur)]
    while cur.take("|"):
        alts.append(_parse_shape(cur))
    return tuple(alts)


def parse_contract(spec: str) -> Contract:
    """Parse a contract specification string (raises ContractParseError)."""
    if not isinstance(spec, str) or not spec.strip():
        raise ContractParseError("contract spec must be a non-empty string")
    params_text, arrow, returns_text = spec.partition("->")
    cur = _Cursor(params_text)
    params: list[ParamSpec] = []
    seen: set[str] = set()
    if not cur.done:
        while True:
            name = cur.word()
            optional = cur.take("?")
            cur.expect(":")
            alts = _parse_alternatives(cur)
            if name in seen:
                raise ContractParseError(f"duplicate parameter {name!r}")
            seen.add(name)
            params.append(
                ParamSpec(name=name, alternatives=alts, optional=optional)
            )
            if not cur.take(","):
                break
        if not cur.done:
            raise ContractParseError(
                f"trailing input at position {cur.pos} in {params_text!r}"
            )
    returns: tuple[tuple[ArrayShape | ScalarDim, ...], ...] = ()
    if arrow:
        rcur = _Cursor(returns_text)
        rets: list[tuple[ArrayShape | ScalarDim, ...]] = []
        while True:
            rets.append(_parse_alternatives(rcur))
            if not rcur.take(","):
                break
        if not rcur.done:
            raise ContractParseError(
                f"trailing input at position {rcur.pos} in {returns_text!r}"
            )
        for ret in rets:
            for alt in ret:
                if isinstance(alt, ScalarDim):
                    raise ContractParseError(
                        "return entries must be array shapes, got "
                        f"scalar symbol {alt.symbol!r}"
                    )
        returns = tuple(rets)
    return Contract(params=tuple(params), returns=returns, spec=spec)


# -- runtime validation ------------------------------------------------------


def _unify_dims(
    shape: ArrayShape, concrete: tuple[int, ...], env: dict[str, int]
) -> bool:
    if len(shape.dims) != len(concrete):
        return False
    trial = dict(env)
    for dim, size in zip(shape.dims, concrete):
        if dim == "*":
            continue
        if isinstance(dim, int):
            if dim != size:
                return False
        else:
            bound = trial.get(dim)
            if bound is None:
                trial[dim] = int(size)
            elif bound != size:
                return False
    env.update(trial)
    return True


def _dtype_ok(shape: ArrayShape, dtype: np.dtype[Any]) -> bool:
    if shape.dtype == "a":
        return True
    if shape.dtype == "i":
        return bool(np.issubdtype(dtype, np.integer))
    return bool(dtype == np.float64)


def _match_value(
    name: str,
    alternatives: tuple[ArrayShape | ScalarDim, ...],
    value: Any,
    env: dict[str, int],
    qualname: str,
    check_finite: bool,
) -> np.ndarray | None:
    """Validate one value against its alternatives; returns the array view."""
    failures: list[str] = []
    for alt in alternatives:
        if isinstance(alt, ScalarDim):
            if isinstance(value, (bool, np.bool_)) or not isinstance(
                value, (int, np.integer)
            ):
                failures.append(f"{alt.render()} (not an int)")
                continue
            bound = env.get(alt.symbol)
            if bound is not None and bound != int(value):
                failures.append(
                    f"{alt.render()} (symbol {alt.symbol}={bound}, "
                    f"got {int(value)})"
                )
                continue
            env[alt.symbol] = int(value)
            return None
        arr = np.asarray(value)
        if not _dtype_ok(alt, arr.dtype):
            failures.append(f"{alt.render()} (dtype {arr.dtype})")
            continue
        if not _unify_dims(alt, arr.shape, env):
            failures.append(f"{alt.render()} (shape {arr.shape})")
            continue
        if (
            check_finite
            and np.issubdtype(arr.dtype, np.floating)
            and not np.all(np.isfinite(arr))
        ):
            raise ShapeContractError(
                f"{qualname}: {name} contains non-finite values "
                f"(contract {alt.render()})"
            )
        return arr
    raise ShapeContractError(
        f"{qualname}: {name} does not satisfy its shape contract; "
        f"tried {', '.join(failures)} with bindings {env or '{}'}"
    )


def _is_out_param(name: str) -> bool:
    return name == "out" or name.endswith("_out")


def _validate_return(
    contract: Contract,
    result: Any,
    env: dict[str, int],
    qualname: str,
    check_finite: bool,
) -> None:
    if not contract.returns:
        return
    if len(contract.returns) == 1:
        parts: tuple[Any, ...] = (result,)
    else:
        if not isinstance(result, tuple) or len(result) != len(
            contract.returns
        ):
            raise ShapeContractError(
                f"{qualname}: expected a {len(contract.returns)}-tuple "
                f"return, got {type(result).__name__}"
            )
        parts = result
    for index, (alts, value) in enumerate(zip(contract.returns, parts)):
        label = "return" if len(parts) == 1 else f"return[{index}]"
        _match_value(label, alts, value, env, qualname, check_finite)


def apply_contract(
    fn: F,
    spec: str,
    *,
    check_finite: bool = True,
    allow_aliasing: bool = False,
) -> F:
    """Wrap ``fn`` with runtime validation of ``spec`` (always, ungated).

    :func:`shape_contract` delegates here when the sanitizer is enabled;
    tests call it directly to exercise validation without the environment
    gate.
    """
    contract = parse_contract(spec)
    signature = inspect.signature(fn)
    declared = set(contract.param_names)
    known = set(signature.parameters)
    unknown = declared - known
    if unknown:
        raise ContractParseError(
            f"{fn.__qualname__}: contract names {sorted(unknown)} not in "
            f"signature ({sorted(known)})"
        )
    qualname = fn.__qualname__

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        bound = signature.bind(*args, **kwargs)
        env: dict[str, int] = {}
        arrays: dict[str, Any] = {}
        for param in contract.params:
            if param.name not in bound.arguments:
                continue
            value = bound.arguments[param.name]
            if value is None:
                if param.optional:
                    continue
                raise ShapeContractError(
                    f"{qualname}: {param.name} is None but the contract "
                    f"declares {param.render()}"
                )
            _match_value(
                param.name,
                param.alternatives,
                value,
                env,
                qualname,
                check_finite,
            )
            arrays[param.name] = value
        if not allow_aliasing:
            outs = [
                (name, value)
                for name, value in arrays.items()
                if _is_out_param(name) and isinstance(value, np.ndarray)
            ]
            for out_name, out_value in outs:
                for name, value in arrays.items():
                    if name == out_name or not isinstance(value, np.ndarray):
                        continue
                    if np.may_share_memory(out_value, value):
                        raise ShapeContractError(
                            f"{qualname}: out buffer {out_name!r} aliases "
                            f"argument {name!r}"
                        )
        result = fn(*args, **kwargs)
        _validate_return(contract, result, env, qualname, check_finite)
        return result

    setattr(wrapper, "__shape_contract__", contract)
    return wrapper  # type: ignore[return-value]


T = TypeVar("T")


def thread_shared(cls: type[T]) -> type[T]:
    """Mark a class whose instances are mutated from multiple threads.

    The marker declares a contract, not a mechanism: every mutation of
    instance state outside construction (``__init__`` / ``__setstate__``)
    must hold the instance's ``_lock`` (an :class:`threading.RLock` built
    with :func:`repro.utils.sanitize_concurrency.make_lock`) in a literal
    ``with self._lock:`` block.  The contract is checked twice, mirroring
    :func:`shape_contract`:

    * statically by the numlint NL603 pass (attribute mutation outside a
      ``with self._lock:`` block; per-thread state under a ``self._tls``
      :class:`threading.local` is exempt), and
    * at runtime, when ``REPRO_SANITIZE=1``, by the concurrency
      sanitizer's ownership tripwires
      (:func:`repro.utils.sanitize_concurrency.instrument_thread_shared`),
      which raise on unsynchronized cross-thread writes.

    Identity-when-off: without the sanitizer this sets one class attribute
    and returns the class unchanged — no wrapping, no per-call cost.
    """
    cls.__thread_shared__ = True  # type: ignore[attr-defined]
    if _ENABLED:
        from repro.utils.sanitize_concurrency import instrument_thread_shared

        instrument_thread_shared(cls)
    return cls


def shape_contract(
    spec: str,
    *,
    check_finite: bool = True,
    allow_aliasing: bool = False,
) -> Callable[[F], F]:
    """Declare an array-shape contract on a function.

    With ``REPRO_SANITIZE`` unset (the default) the decorator resolves to
    the bare function at import time — no wrapper, no parsing, zero call
    overhead; the contract string still documents the shapes and is checked
    statically by the NL5xx shapelint passes.  With ``REPRO_SANITIZE=1``
    every call validates the declared shapes/dtypes (with per-call symbol
    unification), trips on non-finite float values unless
    ``check_finite=False``, and rejects ``out``/``*_out`` buffers that
    alias other array arguments unless ``allow_aliasing=True``.
    """
    if not _ENABLED:

        def passthrough(fn: F) -> F:
            return fn

        return passthrough

    def decorate(fn: F) -> F:
        return apply_contract(
            fn,
            spec,
            check_finite=check_finite,
            allow_aliasing=allow_aliasing,
        )

    return decorate


__all__ = [
    "SANITIZE_ENV_VAR",
    "ArrayShape",
    "Contract",
    "ContractParseError",
    "ParamSpec",
    "ScalarDim",
    "ShapeContractError",
    "apply_contract",
    "parse_contract",
    "sanitize_enabled",
    "shape_contract",
    "thread_shared",
]
