"""Opt-in process-pool fan-out for independent, deterministic tasks.

Parallelism in this repo is only applied where each task is a pure function
of its (picklable) argument and tasks are mutually independent — per-weight
acquisition refinements, per-cell experiment runs.  Results always come
back in task order, so ``n_jobs > 1`` reproduces the sequential output
bit for bit; randomness must be passed in via pre-spawned seeds
(:func:`repro.utils.rng.spawn`), never drawn inside a worker from global
state.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: None/0/negative mean "all cores"."""
    if n_jobs is None or n_jobs <= 0:
        return os.cpu_count() or 1
    return int(n_jobs)


def parallel_map(
    fn: Callable[[T], R], tasks: Iterable[T], n_jobs: int = 1
) -> list[R]:
    """``[fn(t) for t in tasks]``, optionally across a process pool.

    ``n_jobs <= 1`` runs sequentially in-process.  Larger values fan out to
    at most ``min(n_jobs, len(tasks))`` worker processes (fork start method
    where available); ``fn`` and every task must be picklable.
    """
    task_list: Sequence[T] = list(tasks)
    workers = min(resolve_n_jobs(n_jobs), len(task_list))
    if workers <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        return list(pool.map(fn, task_list))
