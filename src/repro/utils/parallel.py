"""Opt-in process-pool fan-out for independent, deterministic tasks.

Parallelism in this repo is only applied where each task is a pure function
of its (picklable) argument and tasks are mutually independent — per-weight
acquisition refinements, per-cell experiment runs.  Results always come
back in task order, so ``n_jobs > 1`` reproduces the sequential output
bit for bit; randomness must be passed in via pre-spawned seeds
(:func:`repro.utils.rng.spawn`), never drawn inside a worker from global
state.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Execution backends understood by :class:`WorkerPool`.
POOL_KINDS = ("inline", "thread", "process")


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: None/0/negative mean "all cores"."""
    if n_jobs is None or n_jobs <= 0:
        return os.cpu_count() or 1
    return int(n_jobs)


def parallel_map(
    fn: Callable[[T], R], tasks: Iterable[T], n_jobs: int = 1
) -> list[R]:
    """``[fn(t) for t in tasks]``, optionally across a process pool.

    ``n_jobs <= 1`` runs sequentially in-process.  Larger values fan out to
    at most ``min(n_jobs, len(tasks))`` worker processes (fork start method
    where available); ``fn`` and every task must be picklable.
    """
    task_list: Sequence[T] = list(tasks)
    workers = min(resolve_n_jobs(n_jobs), len(task_list))
    if workers <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_fork_context()
    ) as pool:
        return list(pool.map(fn, task_list))


def _fork_context() -> multiprocessing.context.BaseContext:
    """The start-method context every process pool in this module uses.

    ``fork`` is preferred when the platform offers it: workers inherit the
    parent's imported modules and read-only task state by page-sharing
    instead of re-importing and re-pickling per worker, which for the
    numpy-heavy task payloads here is both markedly faster to start and
    immune to "module not importable under spawn" surprises.  The known
    fork hazards are pre-empted elsewhere: tasks never draw from inherited
    RNG state (per-task generators are spawned up front —
    ``repro.utils.rng.spawn``, enforced by NL602) and never share locks
    with the parent (worker callables touch only locals/arguments,
    enforced by NL601).  Platforms without ``fork`` (Windows, macOS
    spawn-default builds) fall back to the platform's first advertised
    start method.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


class WorkerPool:
    """Submit/collect execution facade with per-task timeouts.

    Unlike :func:`parallel_map` (fire a batch, get results, done), a
    :class:`WorkerPool` reports *per-task outcomes* — ``(result, error)``
    pairs in task order — so a caller like the evaluation broker can retry
    or degrade individual tasks instead of failing the batch.

    Kinds
    -----
    ``inline``
        Runs tasks sequentially in-process.  ``timeout`` cannot be
        enforced (there is no second thread to keep the clock) and is
        ignored.
    ``thread``
        A :class:`~concurrent.futures.ThreadPoolExecutor`.  A timed-out
        task is *abandoned*, not killed — its thread runs to completion in
        the background, so genuinely unbounded hangs should use
        ``process``.
    ``process``
        A process pool (fork start method where available); tasks and
        results must be picklable.
    """

    def __init__(self, kind: str = "thread", n_jobs: int = 1) -> None:
        if kind not in POOL_KINDS:
            raise ValueError(f"kind must be one of {POOL_KINDS}, got {kind!r}")
        self.kind = kind
        self.n_jobs = 1 if kind == "inline" else resolve_n_jobs(n_jobs)
        self._executor: Executor | None = None

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.kind == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self.n_jobs)
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_jobs, mp_context=_fork_context()
                )
        return self._executor

    def run_tasks(
        self,
        fn: Callable[[T], R],
        tasks: Sequence[T],
        timeout: float | None = None,
    ) -> list[tuple[R | None, BaseException | None]]:
        """Run every task, returning ``(result, error)`` per task in order.

        Exactly one element of each pair is non-None.  A task exceeding
        ``timeout`` seconds yields a :class:`TimeoutError` entry (thread /
        process kinds only; inline ignores the deadline).
        """
        if self.kind == "inline":
            outcomes: list[tuple[R | None, BaseException | None]] = []
            for task in tasks:
                try:
                    outcomes.append((fn(task), None))
                except Exception as exc:  # deliberate: report, don't raise
                    outcomes.append((None, exc))
            return outcomes
        executor = self._ensure_executor()
        futures = [executor.submit(fn, task) for task in tasks]
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(timeout=timeout), None))
            except FuturesTimeoutError:
                future.cancel()
                outcomes.append(
                    (None, TimeoutError(f"task exceeded {timeout}s"))
                )
            except Exception as exc:
                outcomes.append((None, exc))
        return outcomes

    def close(self) -> None:
        """Shut the pool down without waiting for abandoned tasks."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
