"""Random-number-generator plumbing shared by every stochastic component.

All public classes in :mod:`repro` accept a ``seed`` argument that may be an
integer, ``None`` or an existing :class:`numpy.random.Generator`.  Funnelling
every call through :func:`as_generator` keeps experiments reproducible and
lets composite objects (e.g. the REMBO driver, which owns a sampler, a GP and
several optimizers) split one seed into independent child streams.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    An existing generator is passed through untouched so that callers can
    share one stream; anything else is fed to ``np.random.default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent child streams.

    The children are derived from fresh entropy drawn from ``rng`` itself, so
    repeated calls with the same parent state reproduce the same children.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
