"""Opt-in runtime race sanitizer for shared runtime/telemetry state.

ROADMAP item 1 (the async campaign scheduler) will run N campaigns × M
workers against *shared* objects — one :class:`~repro.runtime.cache.ResultCache`
across campaigns, one :class:`~repro.runtime.ledger.RunLedger` event stream,
one :class:`~repro.telemetry.metrics.MetricsRegistry`.  A lost counter
increment or an interleaved ledger line is silent: the campaign still
"works", the failure-rate bookkeeping is just wrong, which in a rare-event
detection pipeline is indistinguishable from a physics result.  This module
is the runtime half of the NL6xx concurrency-safety family (the static half
lives in ``tools/numlint/passes/concurrency.py``): cheap tripwires that turn
latent races into loud errors during sanitized test runs.

Like the shape sanitizer (DESIGN.md §9), everything here is gated on
``REPRO_SANITIZE`` *at import time* and is an identity when off:

* :func:`make_lock` returns a plain :class:`threading.RLock` — the exact
  object the hardened classes would use anyway, zero added overhead;
* :func:`repro.utils.contracts.thread_shared` stays a pure marker
  decorator (one class attribute, no wrapping).

With ``REPRO_SANITIZE=1`` two mechanisms switch on:

**Ownership tripwires.**  Every ``@thread_shared`` class is instrumented
(:func:`instrument_thread_shared`): instances are stamped with the ident of
the thread that constructed them, and every attribute write from *another*
thread must hold the instance's ``_lock`` (checked via ``RLock._is_owned``)
or a :class:`ConcurrencySanitizeError` is raised at the exact write that
raced.  Writes from the owning thread stay unchecked — single-threaded use
of a shared class is always legal — so the tripwire only fires on genuine
cross-thread mutation that bypassed the lock.

**Lock-order recording.**  :func:`make_lock` returns a
:class:`TrackedLock` that reports acquisitions to a process-wide
:class:`LockOrderRecorder`.  Locks are tracked by *name* (one node per lock
class, like kernel lockdep, so two instances of the same class share a
node); acquiring ``B`` while holding ``A`` adds the edge ``A -> B``, and an
edge that closes a cycle raises :class:`LockOrderError` *before* the
acquisition blocks — the potential deadlock is reported instead of
deadlocking the test run.  Reentrant acquisition of the same named lock
(RLock semantics) is recognized and never treated as a cycle.

Both mechanisms are approximate in the usual sanitizer sense: they detect
the unsynchronized schedules that actually execute, not all schedules that
could.  They are cheap enough to leave on for the whole threaded stress
suite (``tests/test_concurrency.py``), which is the point.
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, Type, TypeVar

from repro.utils.contracts import sanitize_enabled

C = TypeVar("C")

_ENABLED = sanitize_enabled()


class ConcurrencySanitizeError(RuntimeError):
    """An unsynchronized cross-thread mutation of ``@thread_shared`` state."""


class LockOrderError(ConcurrencySanitizeError):
    """A lock acquisition that closes a cycle in the lock-order graph."""


# -- lock-order recording -----------------------------------------------------


class LockOrderRecorder:
    """Directed graph over lock names; raises on edges that close a cycle.

    Thread-safe: the per-thread held-lock stack lives in a
    :class:`threading.local`, the shared edge set under a private mutex.
    The recorder is usable directly (the tests drive it without the
    environment gate); :class:`TrackedLock` feeds it automatically when
    the sanitizer is on.
    """

    def __init__(self) -> None:
        self._edges: dict[str, set[str]] = {}
        self._held = threading.local()
        self._mutex = threading.Lock()

    def _stack(self) -> list[str]:
        stack: list[str] | None = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def acquired(self, name: str) -> None:
        """Record that the current thread is acquiring ``name``.

        Called *before* the underlying acquire so a would-be deadlock is
        reported rather than entered.  Raises :class:`LockOrderError` when
        holding some ``H`` with an existing path ``name -> ... -> H``.
        """
        stack = self._stack()
        if name in stack:  # reentrant RLock acquisition: never an edge
            stack.append(name)
            return
        with self._mutex:
            for held in stack:
                if name in self._edges.get(held, ()):
                    continue
                path = self._find_path(name, held)
                if path is not None:
                    cycle = " -> ".join([held, *path])
                    raise LockOrderError(
                        f"lock-order cycle: acquiring {name!r} while holding "
                        f"{held!r}, but the recorded order is {cycle}"
                    )
                self._edges.setdefault(held, set()).add(name)
        stack.append(name)

    def released(self, name: str) -> None:
        """Record that the current thread released ``name``."""
        stack = self._stack()
        if stack and stack[-1] == name:
            stack.pop()
        elif name in stack:  # out-of-order release: drop the right entry
            stack.reverse()
            stack.remove(name)
            stack.reverse()

    def abandon(self, name: str) -> None:
        """Undo an :meth:`acquired` whose underlying acquire failed."""
        self.released(name)

    def _find_path(self, src: str, dst: str) -> list[str] | None:
        """A path ``src -> ... -> dst`` in the edge graph, if one exists."""
        seen = {src}
        frontier: list[tuple[str, list[str]]] = [(src, [src])]
        while frontier:
            node, path = frontier.pop()
            if node == dst:
                return path
            for nxt in sorted(self._edges.get(node, ())):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append((nxt, path + [nxt]))
        return None

    def edges(self) -> dict[str, tuple[str, ...]]:
        """A deterministic snapshot of the recorded order graph."""
        with self._mutex:
            return {
                name: tuple(sorted(targets))
                for name, targets in sorted(self._edges.items())
            }

    def reset(self) -> None:
        """Forget every recorded edge (test isolation)."""
        with self._mutex:
            self._edges.clear()


#: Process-wide recorder fed by every :class:`TrackedLock`.
GLOBAL_LOCK_ORDER = LockOrderRecorder()


class TrackedLock:
    """An RLock that reports acquisition order to a recorder.

    Exposes the subset of the lock protocol the hardened classes use
    (context manager, ``acquire``/``release``) plus ``_is_owned`` so the
    ownership tripwires can ask whether the current thread holds it.
    """

    __slots__ = ("name", "_lock", "_recorder")

    def __init__(
        self, name: str, recorder: LockOrderRecorder | None = None
    ) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._recorder = recorder if recorder is not None else GLOBAL_LOCK_ORDER

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._recorder.acquired(self.name)  # raises before a would-be deadlock
        ok = self._lock.acquire(blocking, timeout)
        if not ok:
            self._recorder.abandon(self.name)
        return ok

    def release(self) -> None:
        self._lock.release()
        self._recorder.released(self.name)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def _is_owned(self) -> bool:
        return self._lock._is_owned()  # type: ignore[attr-defined]


def make_lock(name: str) -> "threading.RLock | TrackedLock":  # type: ignore[valid-type]
    """The lock a ``@thread_shared`` class should guard its state with.

    Identity-when-off: without ``REPRO_SANITIZE`` this *is*
    ``threading.RLock()`` — no wrapper, no recorder, no overhead.  With the
    sanitizer on it returns a :class:`TrackedLock` feeding the global
    lock-order recorder under ``name`` (use one stable name per class, e.g.
    ``"runtime.ResultCache"``; instances share the lockdep node).
    """
    if not _ENABLED:
        return threading.RLock()
    return TrackedLock(name)


# -- ownership tripwires ------------------------------------------------------

#: id(obj) -> ident of the constructing thread, for instrumented classes.
#: Entries are never pruned: the sanitizer runs in bounded test processes
#: and an id reused by a new instrumented object is re-stamped in __init__.
_OWNERS: dict[int, int] = {}
_OWNERS_MUTEX = threading.Lock()

#: Attribute writes always allowed on instrumented classes (sanitizer
#: bookkeeping and the lock itself, which is installed before first use).
_EXEMPT_ATTRS = frozenset({"_lock"})


def _lock_is_owned(obj: Any) -> bool:
    lock = getattr(obj, "_lock", None)
    probe = getattr(lock, "_is_owned", None)
    return bool(probe()) if probe is not None else False


def check_shared_write(obj: Any, name: str) -> None:
    """Tripwire consulted on every attribute write of a tracked object.

    Allowed: writes from the constructing thread (single-threaded use of a
    shared class is always legal), writes made while holding ``obj._lock``,
    and writes to exempt bookkeeping attributes.  Everything else is an
    unsynchronized cross-thread mutation and raises.
    """
    if name in _EXEMPT_ATTRS:
        return
    ident = threading.get_ident()
    with _OWNERS_MUTEX:
        owner = _OWNERS.get(id(obj))
    if owner is None or owner == ident:
        return
    if _lock_is_owned(obj):
        return
    raise ConcurrencySanitizeError(
        f"unsynchronized cross-thread write to "
        f"{type(obj).__name__}.{name}: the object is owned by thread "
        f"{owner} but thread {ident} wrote without holding its _lock"
    )


def instrument_thread_shared(cls: Type[C]) -> Type[C]:
    """Install ownership tripwires on a ``@thread_shared`` class.

    Wraps ``__init__`` to stamp the constructing thread and ``__setattr__``
    to route every attribute write through :func:`check_shared_write`.
    Callable directly (ungated) so the tests can exercise the tripwires
    without the environment switch; :func:`~repro.utils.contracts.thread_shared`
    applies it automatically when the sanitizer is on.
    """
    orig_init: Callable[..., None] = cls.__init__  # type: ignore[misc]
    orig_setattr: Callable[[Any, str, Any], None] = cls.__setattr__

    @functools.wraps(orig_init)
    def stamped_init(self: Any, *args: Any, **kwargs: Any) -> None:
        with _OWNERS_MUTEX:
            _OWNERS[id(self)] = threading.get_ident()
        orig_init(self, *args, **kwargs)

    def checked_setattr(self: Any, name: str, value: Any) -> None:
        check_shared_write(self, name)
        orig_setattr(self, name, value)

    cls.__init__ = stamped_init  # type: ignore[misc]
    cls.__setattr__ = checked_setattr  # type: ignore[method-assign, assignment]
    cls.__concurrency_instrumented__ = True  # type: ignore[attr-defined]
    return cls


def concurrency_sanitize_enabled() -> bool:
    """Whether this process imported with the race sanitizer armed."""
    return _ENABLED


__all__ = [
    "ConcurrencySanitizeError",
    "GLOBAL_LOCK_ORDER",
    "LockOrderError",
    "LockOrderRecorder",
    "TrackedLock",
    "check_shared_write",
    "concurrency_sanitize_enabled",
    "instrument_thread_shared",
    "make_lock",
]
