"""Plain-text table rendering for the benchmark harness.

The benchmark scripts print rows shaped like the paper's Tables 1 and 2;
this module owns the monospace formatting so every bench renders the same
way.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Every cell is converted with ``str``; column widths adapt to content.
    """
    header_cells = [str(h) for h in headers]
    body = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(body):
        if len(row) != len(header_cells):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(header_cells)}"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_row(header_cells))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)


def format_count(count: int) -> str:
    """Format a simulation count with thousands separators (``649,000``)."""
    return f"{count:,}"


def format_sim_budget(n_init: int, n_seq: int, batch: int | None = None) -> str:
    """Format a BO simulation budget in the paper's notation.

    ``5 + 95`` renders as ``5init + 95seq``; with ``batch`` given,
    ``5init + 5x19batch``.
    """
    if batch is not None:
        if batch <= 0 or n_seq % batch:
            raise ValueError(
                f"sequential budget {n_seq} is not a multiple of batch {batch}"
            )
        return f"{n_init}init + {n_seq // batch}x{batch}batch"
    return f"{n_init}init + {n_seq}seq"
