"""Wall-clock timing utilities for the experiment harness.

The paper's Tables 1 and 2 report total runtime per method; these helpers
record and format those durations consistently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A start/stop stopwatch that can be used as a context manager.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    _start: float | None = field(default=None, repr=False)
    elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def format_duration(seconds: float) -> str:
    """Format seconds in the paper's ``XhYYmZZs`` style.

    Sub-minute durations keep fractional seconds (``12.3s``), otherwise the
    value is broken into hours/minutes/seconds like ``4h22m07s``.
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 60:
        return f"{seconds:.2f}s"
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    return f"{minutes}m{secs:02d}s"
