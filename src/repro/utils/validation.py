"""Input validation helpers used at public API boundaries.

The library deals almost exclusively in float arrays of shape ``(n, dim)``
(sample batches) and ``(n,)`` (labels).  These helpers normalize user input
to those shapes with clear error messages instead of letting shape bugs
surface deep inside linear algebra.
"""

from __future__ import annotations

import numpy as np

from repro._typing import ArrayLike, FloatArray


def as_float_array(x: ArrayLike, name: str = "x") -> FloatArray:
    """Convert ``x`` to a float64 ndarray, rejecting NaN/inf."""
    arr = np.asarray(x, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def as_matrix(
    x: ArrayLike, dim: int | None = None, name: str = "X"
) -> FloatArray:
    """Normalize ``x`` to shape ``(n, dim)``.

    A 1-D vector is promoted to a single row.  If ``dim`` is given the
    trailing dimension must match it.
    """
    arr = as_float_array(x, name)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    if dim is not None and arr.shape[1] != dim:
        raise ValueError(
            f"{name} has {arr.shape[1]} columns, expected {dim}"
        )
    return arr


def as_vector(
    y: ArrayLike, length: int | None = None, name: str = "y"
) -> FloatArray:
    """Normalize ``y`` to shape ``(n,)``, squeezing a trailing unit axis."""
    arr = as_float_array(y, name)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr[:, 0]
    if arr.ndim == 0:
        arr = arr[None]
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if length is not None and arr.shape[0] != length:
        raise ValueError(f"{name} has length {arr.shape[0]}, expected {length}")
    return arr


def check_bounds(
    bounds: ArrayLike, dim: int | None = None
) -> tuple[FloatArray, FloatArray]:
    """Validate box bounds and return ``(lower, upper)`` float arrays.

    Accepts an ``(dim, 2)`` array-like of per-coordinate ``(lo, hi)`` pairs
    or a ``(2, dim)``-style tuple ``(lower, upper)``.
    """
    arr = np.asarray(bounds, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"bounds must be 2-D, got shape {arr.shape}")
    if arr.shape[1] == 2:
        lower, upper = arr[:, 0], arr[:, 1]
    elif arr.shape[0] == 2:
        lower, upper = arr[0], arr[1]
    else:
        raise ValueError(f"bounds must be (dim, 2) or (2, dim), got {arr.shape}")
    if dim is not None and lower.shape[0] != dim:
        raise ValueError(f"bounds cover {lower.shape[0]} dims, expected {dim}")
    if not np.all(np.isfinite(lower)) or not np.all(np.isfinite(upper)):
        raise ValueError("bounds must be finite")
    if np.any(lower >= upper):
        bad = int(np.argmax(lower >= upper))
        raise ValueError(
            f"lower bound must be < upper bound in every coordinate "
            f"(violated at index {bad}: {lower[bad]} >= {upper[bad]})"
        )
    return lower.copy(), upper.copy()


def unit_cube_bounds(dim: int) -> FloatArray:
    """Return the ``[-1, 1]^dim`` bounds array used for variation spaces."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    return np.column_stack([-np.ones(dim), np.ones(dim)])
