"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset(rng):
    """A small smooth regression dataset in 3-D."""
    X = rng.uniform(-1.0, 1.0, size=(25, 3))
    y = np.sin(2.0 * X[:, 0]) + 0.5 * X[:, 1] ** 2 - 0.3 * X[:, 2]
    return X, y
