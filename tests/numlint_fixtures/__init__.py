"""Fixture snippets for the numlint test suite.

Files in this directory are *inputs* to the linter, not importable test
code: the ``*_bad.py`` snippets deliberately violate the invariants each
pass enforces, and the ``*_good.py`` snippets show the sanctioned idiom.
The directory name is in ``tools.numlint.core.EXCLUDED_DIR_NAMES`` so the
repo-wide lint run never walks into it.
"""
