"""Raw Cholesky factorizations that must route through chol_with_jitter."""

import numpy as np
import scipy.linalg


def factor(K):
    return scipy.linalg.cholesky(K, lower=True)  # NL103 under repro/gp/


def factor_numpy(K):
    return np.linalg.cholesky(K)  # NL103 under repro/gp/
