"""Cholesky usage the NL103 rule must accept inside repro/gp/."""

import scipy.linalg

from repro.gp.model import chol_with_jitter


def factor(K):
    return chol_with_jitter(K)


def deliberate(K):
    # a deliberate fail-fast factorization carries an inline suppression
    return scipy.linalg.cholesky(K, lower=True)  # numlint: disable=NL103
