"""Deliberately racy snippets: every NL6xx code fires in this file."""

import subprocess
import threading

from numpy.random import default_rng

from repro.utils.contracts import thread_shared
from repro.utils.parallel import WorkerPool, parallel_map

RESULTS = []
RNG = default_rng(0)
COUNTER = 0


def bad_task(x):
    RESULTS.append(x)  # NL601: mutating a module-level list in a worker
    global COUNTER
    COUNTER = COUNTER + 1  # NL601: global assignment in a worker
    return RNG.normal() + x  # NL602: shared generator drawn in a worker


def run(pool: WorkerPool, items):
    return pool.run_tasks(bad_task, items)


def run_map(items):
    # NL601: the lambda mutates closure-escaped module state
    return parallel_map(lambda x: RESULTS.append(x), items)


class Dispatcher:
    def __init__(self):
        self._seen = []
        self._rng = default_rng(1)

    def _work(self, task):
        self._seen.append(task)  # NL601: shared instance mutated in a worker
        return self._rng.uniform()  # NL602: shared instance RNG in a worker

    def run(self, pool, tasks):
        return pool.run_tasks(self._work, tasks)


@thread_shared
class SharedThing:
    def __init__(self):
        self._lock = threading.RLock()
        self.count = 0
        self.items = []

    def bump(self):
        self.count += 1  # NL603: unlocked write
        self.items.append(1)  # NL603: unlocked mutating call

    def locked_bump(self):
        with self._lock:
            self.count += 1


def traced(tracer, path):
    with tracer.span("save"):
        fh = open(path, "w")  # NL604: open() inside a span body
        fh.write("x")
        fh.flush()  # NL604: flush inside a span body
        subprocess.run(["sync"])  # NL604: subprocess inside a span body


async def pump(path):
    return open(path).read()  # NL604: blocking open() in an async def


class TwoLocks:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def forward(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def backward(self):
        with self._b_lock:
            with self._a_lock:  # NL605: opposite nesting order
                pass
