"""Thread-clean counterparts: nothing here triggers an NL6xx code."""

import threading

from repro.utils.contracts import thread_shared
from repro.utils.parallel import WorkerPool
from repro.utils.rng import spawn


def pure_task(task):
    # workers may mutate locals and draw from generators they were handed
    rng, x = task
    acc = []
    acc.append(x)
    return rng.normal() + sum(acc)


def run(pool: WorkerPool, rng, items):
    streams = spawn(rng, len(items))  # per-task generators: NL602's remedy
    results = pool.run_tasks(pure_task, list(zip(streams, items)))
    return [r for r, _ in results]


class Dispatcher:
    def __init__(self):
        self.collected = []

    def _work(self, task):
        value = task * 2.0
        return value

    def run(self, pool, tasks):
        out = pool.run_tasks(self._work, tasks)
        # shared-state mutation happens on the dispatching thread
        self.collected.extend(r for r, _ in out)
        return out


@thread_shared
class SharedThing:
    def __init__(self):
        self._lock = threading.RLock()
        self.count = 0
        self._tls = threading.local()

    def bump(self):
        with self._lock:
            self.count += 1

    def peek(self):
        return self.count

    def push(self, span_id):
        # threading.local chains are per-thread by construction
        if getattr(self._tls, "stack", None) is None:
            self._tls.stack = []
        self._tls.stack.append(span_id)


def traced(tracer, compute):
    with tracer.span("compute"):
        result = compute()
    with open("out.txt", "w", encoding="utf-8") as fh:  # outside the span
        fh.write(str(result))
    return result


class TwoLocks:
    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def first(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def second(self):
        with self._a_lock:  # same order everywhere: consistent
            with self._b_lock:
                pass
