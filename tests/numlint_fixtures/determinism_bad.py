"""Deliberately irreproducible snippets: every NL7xx code fires here.

Lint this file with relpath ``src/repro/runtime/fixture.py`` so the
NL706 persistence-layer scope applies.
"""

import datetime
import json
import os
import random
import time

import numpy as np

from repro.utils.parallel import WorkerPool


def _salt() -> float:
    return time.time()


def _draw() -> float:
    return random.random()


class KeyedThing:
    def __init__(self, dim: int):
        self.dim = dim
        self._ledger = []

    @property
    def cache_key(self) -> str:  # NL701: TIME reachable via _salt()
        return f"thing-{_salt()}-{self.dim}"

    def _finish(self, record: dict) -> None:  # NL702: wall clock into ledger
        record["at"] = datetime.datetime.now().isoformat()
        self._ledger.append(record)

    def evaluate(self, X):  # NL703: legacy global-state draw
        return np.asarray(X).sum(axis=1) + np.random.normal()

    def solve(self, budget: int):  # NL703: global RNG reachable via _draw()
        return [_draw() for _ in range(budget)]

    def dump(self, names) -> str:  # NL704: set iteration into json.dumps
        return json.dumps([n for n in set(names)])


def make_key(tag: str) -> str:
    # NL701: host name in a key-construction site (ENV effect)
    cache_key = f"{tag}@{os.uname().nodename}"
    return cache_key


def run_all(tasks):
    pool = WorkerPool(kind="process", n_jobs=4)  # NL705: never closed
    return pool.run_tasks(_draw, tasks)


def append_event(path, event) -> None:
    try:
        with path.open("a") as fh:
            fh.write(json.dumps(event) + "\n")
    except OSError:  # NL706: swallowed ledger write failure
        pass


def load_events(path):
    try:
        return json.loads(path.read_text())
    except:  # noqa: E722  NL706: bare except on a persistence path
        return None
