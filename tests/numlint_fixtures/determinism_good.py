"""Reproducible counterparts: the determinism pass stays silent here."""

import json
import time

import numpy as np
from numpy.random import default_rng

from repro.utils.parallel import WorkerPool


def _elapsed(t0: float) -> float:
    # monotonic durations are allowed everywhere
    return time.perf_counter() - t0


class KeyedThing:
    def __init__(self, dim: int, seed: int):
        self.dim = dim
        self._rng = default_rng(seed)
        self._ledger = []

    @property
    def cache_key(self) -> str:
        return f"thing[d={self.dim}]"

    def _finish(self, record: dict, seconds: float) -> None:
        record["seconds"] = float(seconds)
        self._ledger.append(record)

    def evaluate(self, X):
        noise = self._rng.normal(size=np.asarray(X).shape[0])
        return np.asarray(X).sum(axis=1) + noise

    def dump(self, names) -> str:
        return json.dumps(sorted(set(names)))


def make_key(tag: str, dim: int) -> str:
    cache_key = f"{tag}[d={dim}]"
    return cache_key


def run_closed(fn, tasks):
    pool = WorkerPool(kind="process", n_jobs=4)
    try:
        return pool.run_tasks(fn, tasks)
    finally:
        pool.close()


def run_with(fn, tasks):
    with WorkerPool(kind="thread", n_jobs=2) as pool:
        return pool.run_tasks(fn, tasks)


def make_pool(n_jobs: int) -> WorkerPool:
    pool = WorkerPool(kind="thread", n_jobs=n_jobs)
    return pool  # ownership transfer: the caller manages the lifecycle


def append_event(path, event) -> None:
    try:
        with path.open("a") as fh:
            fh.write(json.dumps(event) + "\n")
    except OSError as exc:
        raise RuntimeError(f"ledger write failed: {exc}") from exc
