"""Dtype violations — only flagged when placed in a hot-path module (NL301/NL302)."""

import numpy as np


def implicit_dtypes(values, grads):
    a = np.asarray(values)  # NL301
    b = np.array([float(g) for g in grads])  # NL301
    c = np.asfortranarray(values)  # NL301
    return a, b, c


def mixed_precision(x):
    lowp = np.asarray(x, dtype=np.float32)  # NL302
    return lowp.astype(np.float64)
