"""Explicit dtypes at every array boundary."""

import numpy as np


def explicit_dtypes(values, grads, index):
    a = np.asarray(values, dtype=float)
    b = np.array([float(g) for g in grads], dtype=float)
    c = np.asfortranarray(values, dtype=float)
    idx = np.asarray(index, dtype=int)  # index arrays are fine as int
    return a, b, c, idx


def allocations(n):
    # fresh allocations default to float64: no boundary, nothing to flag
    return np.zeros(n), np.empty((n, n))
