"""Bad linear algebra: explicit inverses and normal equations (NL101/NL102)."""

import numpy as np
import scipy.linalg
from numpy.linalg import inv


def explicit_inverse(K):
    K_inv = np.linalg.inv(K)  # NL101
    K_inv2 = scipy.linalg.inv(K)  # NL101
    K_inv3 = inv(K)  # NL101: via from-import
    return K_inv + K_inv2 + K_inv3


def normal_equation_pinv(A):
    # NL102: cond(A)^2 — exactly the bug fixed in repro.embedding
    return np.linalg.solve(A.T @ A, A.T)


def normal_equation_rowspace(A, b):
    return scipy.linalg.solve(A @ A.T, b)  # NL102: the E E^T flavor
