"""Sanctioned linear algebra: factorizations, not inverses."""

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular


def cholesky_solve(K, y):
    chol = cho_factor(K, lower=True)
    return cho_solve(chol, y)


def qr_pseudo_inverse(A):
    Q, R = np.linalg.qr(A)
    return solve_triangular(R, Q.T, lower=False)


def least_squares(A, b):
    solution, *_ = np.linalg.lstsq(A, b, rcond=None)
    return solution


def plain_solve(K, y):
    # solving a general (non-Gram-product) system is fine
    return np.linalg.solve(K, y)
