"""Nondeterminism — flagged when placed in library/experiment code (NL40x)."""

import time

import scipy.optimize
import scipy.stats


def wall_clock_seed():
    return int(time.time())  # NL401


def unstable_order(names):
    unique = set(names)
    collected = []
    for name in unique:  # not flagged: static analysis can't see the type
        collected.append(name)
    for name in set(names):  # NL402
        collected.append(name)
    ordered = list({"a", "b", "c"})  # NL402
    squares = [n * n for n in {1, 2, 3}]  # NL402
    return collected, ordered, squares


def unseeded_optimizer(objective, bounds):
    return scipy.optimize.differential_evolution(objective, bounds)  # NL403


def unseeded_draws(n):
    return scipy.stats.norm.rvs(size=n)  # NL403
