"""Deterministic experiment code: monotonic clocks, sorted orders, seeds."""

import time

import scipy.optimize
import scipy.stats


def measured_duration(fn):
    start = time.perf_counter()  # monotonic: fine for durations
    fn()
    return time.perf_counter() - start


def stable_order(names):
    return [name for name in sorted(set(names))]


def seeded_optimizer(objective, bounds, seed):
    return scipy.optimize.differential_evolution(objective, bounds, seed=seed)


def seeded_draws(n, rng):
    return scipy.stats.norm.rvs(size=n, random_state=rng)
