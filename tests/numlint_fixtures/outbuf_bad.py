"""Broken *_into contracts (NL201/NL202/NL203/NL204)."""

import numpy as np


def corr_into(sq):  # NL201: *_into with no out-style parameter
    return np.exp(-0.5 * sq)


def scale_into(x, factor, out):
    out = np.empty_like(x)  # NL202: rebinds the caller's buffer
    out[...] = x * factor
    return out


def copy_into(x, g_out):
    fresh = x.copy()
    return fresh  # NL203: returns a fresh array, not the out parameter


def noop_into(x, dg_out):  # NL204: dg_out is never written
    total = float(np.sum(x))
    del total
    return None
