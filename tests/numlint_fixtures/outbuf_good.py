"""Well-formed *_into kernels honoring the out-buffer contract."""

import numpy as np


def corr_into(sq, g_out, dg_out=None):
    np.exp(-0.5 * sq, out=g_out)  # write via out= keyword
    if dg_out is not None:
        dg_out[...] = -0.5 * g_out  # write via subscript store
        dg_out *= 1.0  # in-place update is a write, not a rebind
    return g_out


def fused_into(sq, g_out, dg_out, scratch):
    np.sqrt(sq, out=scratch)
    corr_into(scratch, g_out, dg_out)  # forwarding delegates the write
    return None


def fill_into(value, out):
    out.fill(value)  # write via mutating method
