"""Bad RNG usage: global state and unseeded generators (NL001/NL002)."""

import random

import numpy as np
from numpy.random import rand


def legacy_global_draws(n):
    np.random.seed(0)  # NL001: mutates hidden global state
    a = np.random.rand(n)  # NL001
    b = np.random.uniform(0.0, 1.0, size=n)  # NL001
    c = rand(n)  # NL001: via from-import alias
    d = random.random()  # NL001: stdlib global twister
    state = np.random.RandomState(3)  # NL001: legacy RNG class
    return a, b, c, d, state


def hidden_entropy():
    rng = np.random.default_rng()  # NL002: unseeded in library code
    rng2 = np.random.default_rng(None)  # NL002: explicit None is unseeded
    return rng.standard_normal(4) + rng2.standard_normal(4)
