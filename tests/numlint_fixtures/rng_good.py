"""Sanctioned RNG usage: explicitly threaded, seedable Generators."""

import numpy as np


def seeded_draws(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)


def threaded_generator(n, rng: np.random.Generator):
    return rng.uniform(0.0, 1.0, size=n)


def split_streams(seed, count):
    parent = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in parent.spawn(count)]
