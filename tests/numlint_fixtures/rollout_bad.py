"""A contracted module with an uncontracted public array API (NL530)."""

import numpy as np

from repro._typing import FloatArray
from repro.utils.contracts import shape_contract


@shape_contract("X: (n, d) -> (n,)")
def contracted(X: FloatArray) -> FloatArray:
    return X.sum(axis=1)


def uncontracted(X: FloatArray) -> FloatArray:  # NL530
    return X * 2.0


def returns_array(scale: float) -> np.ndarray:  # NL530
    return np.ones(3) * scale


def _private(X: FloatArray) -> FloatArray:  # private: exempt
    return X


def untyped_public(x):  # no array annotation: exempt
    return x
