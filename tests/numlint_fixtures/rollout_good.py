"""A contracted module whose public array APIs all carry contracts."""

import numpy as np

from repro._typing import FloatArray
from repro.utils.contracts import shape_contract


@shape_contract("X: (n, d) -> (n,)")
def contracted(X: FloatArray) -> FloatArray:
    return X.sum(axis=1)


@shape_contract("-> (3,)")
def make(scale: float) -> np.ndarray:
    return np.ones(3) * scale


def opted_out(X: FloatArray) -> FloatArray:  # numlint: disable=NL530
    return X


def _private(X: FloatArray) -> FloatArray:
    return X
