"""Violations for the shape-contracts pass (NL501/502/510/511/520)."""

import numpy as np

from repro.utils.contracts import shape_contract

SPEC = "X: (n, d)"


@shape_contract(SPEC)  # NL501: spec is not a string literal
def nonliteral(X):
    return X


@shape_contract("X (n, d)")  # NL501: missing colon, does not parse
def malformed(X):
    return X


@shape_contract("Y: (n, d)")  # NL502: Y is not a parameter
def unknown_name(X):
    return X


@shape_contract("A: (n, d), B: (m, k) -> (n, k)")
def bad_matmul(A, B):
    return A @ B  # NL510: inner dims d and m are rigid and distinct


@shape_contract("X: (n, d), y: (m,) -> (n,)")
def bad_return(X, y):
    return y  # NL511: (m,) where the contract declares (n,)


@shape_contract("X: (n, d), A: (D, d) -> (n, D)")
def reverse_map(X, A):
    return X @ A.T


@shape_contract("X: (n, d), A: (D, d)")
def bad_call(X, A):
    # NL520: passes (d, D) where the callee declares (D, d), forcing the
    # caller's d and D to coincide — the interprocedural mismatch no
    # per-statement pass can see
    return reverse_map(X, A.T)
