"""Clean shape-contract usage: the NL5xx passes must stay silent."""

import numpy as np

from repro.utils.contracts import shape_contract


@shape_contract("X: (n, d), A: (D, d) -> (n, D)")
def reverse_map(X, A):
    return X @ A.T


@shape_contract("X: a(n, D) | a(D,), lower: a(D,), upper: a(D,)")
def clip(X, lower, upper):
    return np.clip(np.asarray(X, dtype=float), lower, upper)


@shape_contract("theta: a(p,) -> (), (p,)")
def value_and_grad(theta):
    theta = np.asarray(theta, dtype=float)
    return float(theta.sum()), 2.0 * theta


@shape_contract("n_init: n, d_dim: d -> (n, d)")
def initial_design(n_init, d_dim):
    return np.zeros((n_init, d_dim))


@shape_contract("X: (n, d), A: (D, d) -> (n, D)")
def good_call(X, A):
    # interprocedural call with consistent symbolic shapes
    return reverse_map(X, A)


@shape_contract("K: (n, n), v: (n,) -> (n,)")
def solve_like(K, v):
    out = K @ v
    for _ in range(2):
        out = K @ out
    return out
