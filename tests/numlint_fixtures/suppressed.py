"""Inline suppression: findings silenced by # numlint: disable markers."""

import numpy as np


def reference_inverse(K):
    # a deliberate reference implementation, acknowledged in-line
    K_inv = np.linalg.inv(K)  # numlint: disable=NL101
    everything = np.linalg.inv(K)  # numlint: disable
    wrong_code = np.linalg.inv(K)  # numlint: disable=NL999
    return K_inv + everything + wrong_code
