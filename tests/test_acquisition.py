"""Tests for the acquisition functions and their optimization."""

import numpy as np
import pytest

from repro.acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
    WeightedAcquisition,
    default_acquisition_optimizer,
    optimize_acquisition,
    pbo_weights,
)
from repro.gp import GaussianProcess
from repro.kernels import Matern52, SquaredExponential


@pytest.fixture
def fitted_gp(rng):
    X = rng.uniform(-1, 1, (15, 2))
    y = np.sum(X**2, axis=1)
    return GaussianProcess(Matern52(dim=2), noise_variance=1e-4).fit(X, y)


class TestConventions:
    """All acquisitions are minimized: lower value = better sample point."""

    def test_requires_fitted_gp(self):
        gp = GaussianProcess(SquaredExponential())
        for cls in (ProbabilityOfImprovement, ExpectedImprovement):
            with pytest.raises(RuntimeError):
                cls(gp)

    def test_incumbent_is_min_label(self, fitted_gp):
        acq = ExpectedImprovement(fitted_gp)
        assert acq.incumbent == pytest.approx(fitted_gp.y_train.min())

    def test_scalar_call_matches_evaluate(self, fitted_gp):
        acq = LowerConfidenceBound(fitted_gp, kappa=2.0)
        x = np.array([0.3, -0.3])
        assert acq(x) == pytest.approx(acq.evaluate(x[None, :])[0])


class TestExpectedImprovement:
    def test_nonpositive_everywhere(self, fitted_gp, rng):
        acq = ExpectedImprovement(fitted_gp)
        values = acq.evaluate(rng.uniform(-1, 1, (50, 2)))
        assert np.all(values <= 0.0)

    def test_prefers_low_mean_region(self, fitted_gp):
        """EI near the bowl minimum beats EI at the rim."""
        acq = ExpectedImprovement(fitted_gp)
        assert acq(np.array([0.0, 0.0])) <= acq(np.array([0.95, 0.95]))

    def test_zero_at_well_sampled_worse_point(self, fitted_gp):
        acq = ExpectedImprovement(fitted_gp)
        worst_idx = int(np.argmax(fitted_gp.y_train))
        assert acq(fitted_gp.X_train[worst_idx]) == pytest.approx(0.0, abs=1e-6)

    def test_xi_reduces_improvement(self, fitted_gp):
        plain = ExpectedImprovement(fitted_gp, xi=0.0)
        margin = ExpectedImprovement(fitted_gp, xi=0.5)
        x = np.array([0.1, 0.1])
        assert margin(x) >= plain(x)

    def test_negative_xi_rejected(self, fitted_gp):
        with pytest.raises(ValueError):
            ExpectedImprovement(fitted_gp, xi=-0.1)


class TestProbabilityOfImprovement:
    def test_range(self, fitted_gp, rng):
        acq = ProbabilityOfImprovement(fitted_gp)
        values = acq.evaluate(rng.uniform(-1, 1, (50, 2)))
        assert np.all(values <= 0.0) and np.all(values >= -1.0)


class TestLowerConfidenceBound:
    def test_equals_mean_minus_kappa_sigma(self, fitted_gp):
        acq = LowerConfidenceBound(fitted_gp, kappa=1.7)
        x = np.array([[0.4, 0.4]])
        pred = fitted_gp.predict(x)
        assert acq.evaluate(x)[0] == pytest.approx(
            pred.mean[0] - 1.7 * pred.std[0]
        )

    def test_kappa_zero_is_pure_mean(self, fitted_gp):
        acq = LowerConfidenceBound(fitted_gp, kappa=0.0)
        x = np.array([[0.2, -0.6]])
        assert acq.evaluate(x)[0] == pytest.approx(fitted_gp.predict(x).mean[0])


class TestWeightedAcquisition:
    def test_eq9_formula(self, fitted_gp):
        acq = WeightedAcquisition(fitted_gp, weight=0.3)
        x = np.array([[0.5, 0.1]])
        pred = fitted_gp.predict(x)
        expected = 0.7 * pred.mean[0] - 0.3 * pred.std[0]
        assert acq.evaluate(x)[0] == pytest.approx(expected)

    def test_w0_is_pure_exploitation(self, fitted_gp):
        acq = WeightedAcquisition(fitted_gp, weight=0.0)
        x = np.array([[0.5, 0.1]])
        assert acq.evaluate(x)[0] == pytest.approx(fitted_gp.predict(x).mean[0])

    def test_w1_is_pure_exploration(self, fitted_gp):
        acq = WeightedAcquisition(fitted_gp, weight=1.0)
        x = np.array([[0.5, 0.1]])
        assert acq.evaluate(x)[0] == pytest.approx(-fitted_gp.predict(x).std[0])

    def test_weight_bounds(self, fitted_gp):
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                WeightedAcquisition(fitted_gp, weight=bad)


class TestPboWeights:
    def test_spans_zero_to_one(self):
        w = pbo_weights(5)
        assert w[0] == 0.0 and w[-1] == 1.0
        assert len(w) == 5

    def test_single_weight_balanced(self):
        np.testing.assert_array_equal(pbo_weights(1), [0.5])

    def test_monotone(self):
        w = pbo_weights(19)
        assert np.all(np.diff(w) > 0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            pbo_weights(0)


class TestOptimizeAcquisition:
    def test_finds_bowl_minimum(self, fitted_gp):
        """Pure exploitation on a bowl-shaped posterior goes to the middle."""
        acq = WeightedAcquisition(fitted_gp, weight=0.0)
        bounds = np.array([[-1.0, 1.0], [-1.0, 1.0]])
        result = optimize_acquisition(acq, bounds)
        assert np.linalg.norm(result.x) < 0.3

    def test_counts_acquisition_evaluations(self, fitted_gp):
        acq = ExpectedImprovement(fitted_gp)
        bounds = np.array([[-1.0, 1.0], [-1.0, 1.0]])
        optimizer = default_acquisition_optimizer(2, global_budget=50, local_budget=30)
        result = optimize_acquisition(acq, bounds, optimizer=optimizer)
        assert 0 < result.n_evaluations <= 90

    def test_default_optimizer_validation(self):
        with pytest.raises(ValueError):
            default_acquisition_optimizer(0)
