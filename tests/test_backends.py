"""Tests for the opt-in compiled kernel backend (``REPRO_BACKEND``).

The numpy path is the reference; the gating tests run everywhere, while
the numpy-vs-numba agreement pins are skipped cleanly when numba is not
installed (the default container ships without it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BACKEND_ENV,
    BackendUnavailableError,
    compiled_ops,
    numba_available,
    requested_backend,
)
from repro.gp import GaussianProcess
from repro.gp.evaluator import MarginalLikelihoodEvaluator
from repro.kernels import Matern52, SquaredExponential


def _dataset(n, d, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, (n, d))
    y = np.sin(X.sum(axis=1)) + 0.1 * rng.standard_normal(n)
    return X, y


class TestBackendSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert requested_backend() == "numpy"
        assert compiled_ops() is None

    def test_explicit_numpy(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert requested_backend() == "numpy"
        assert compiled_ops() is None

    def test_name_normalized(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "  NumPy ")
        assert requested_backend() == "numpy"
        monkeypatch.setenv(BACKEND_ENV, "")
        assert requested_backend() == "numpy"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "cupy")
        with pytest.raises(ValueError, match="not a known backend"):
            requested_backend()
        with pytest.raises(ValueError, match="not a known backend"):
            compiled_ops()

    @pytest.mark.skipif(
        numba_available(), reason="numba installed: the request succeeds"
    )
    def test_numba_without_install_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numba")
        with pytest.raises(BackendUnavailableError, match="numba"):
            compiled_ops()

    def test_hot_path_unaffected_by_default(self, monkeypatch):
        """The numpy default never routes through compiled ops."""
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        X, y = _dataset(20, 3, seed=1)
        gp = GaussianProcess(Matern52(dim=3, ard=True), noise_variance=1e-4)
        gp.fit(X, y)
        lml, grad = MarginalLikelihoodEvaluator(gp).evaluate(gp.theta)
        assert np.isfinite(lml)
        assert np.all(np.isfinite(grad))


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaAgreement:
    """Numpy-vs-numba pins at 1e-8 (only run where numba exists)."""

    @pytest.fixture()
    def ops(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numba")
        return compiled_ops()

    def test_matern52_corr_and_grad(self, ops):
        rng = np.random.default_rng(2)
        sq = rng.uniform(0.0, 9.0, (16, 16))
        g = np.empty_like(sq)
        dg = np.empty_like(sq)
        ops.matern52_corr_grad(sq, g, dg)
        r = np.sqrt(sq)
        sqrt5 = np.sqrt(5.0)
        expected_g = (1.0 + sqrt5 * r + (5.0 / 3.0) * sq) * np.exp(-sqrt5 * r)
        expected_dg = -(5.0 / 6.0) * (1.0 + sqrt5 * r) * np.exp(-sqrt5 * r)
        np.testing.assert_allclose(g, expected_g, atol=1e-8)
        np.testing.assert_allclose(dg, expected_dg, atol=1e-8)
        g2 = np.empty_like(sq)
        ops.matern52_corr(sq, g2)
        np.testing.assert_allclose(g2, expected_g, atol=1e-8)

    def test_rbf_corr_and_grad(self, ops):
        rng = np.random.default_rng(3)
        sq = rng.uniform(0.0, 9.0, (12, 12))
        g = np.empty_like(sq)
        dg = np.empty_like(sq)
        ops.rbf_corr_grad(sq, g, dg)
        np.testing.assert_allclose(g, np.exp(-0.5 * sq), atol=1e-8)
        np.testing.assert_allclose(dg, -0.5 * np.exp(-0.5 * sq), atol=1e-8)

    def test_ard_grad_vec(self, ops):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((15, 4))
        W = rng.standard_normal((15, 15))
        vec = ops.ard_grad_vec(W, X)
        diff = X[:, None, :] - X[None, :, :]
        expected = np.einsum("ij,ijk->k", W, diff**2)
        np.testing.assert_allclose(vec, expected, atol=1e-8)

    def test_assemble_inner(self, ops):
        rng = np.random.default_rng(5)
        n = 10
        alpha = rng.standard_normal(n)
        full_inv = rng.standard_normal((n, n))
        full_inv = full_inv @ full_inv.T  # symmetric, like K^{-1}
        inv_lower = np.tril(full_inv)  # dpotri layout
        out = np.empty((n, n))
        ops.assemble_inner(alpha, inv_lower, out)
        expected = np.outer(alpha, alpha) - full_inv
        np.testing.assert_allclose(out, expected, atol=1e-8)

    @pytest.mark.parametrize("kernel_name", ["matern52", "se"])
    def test_lml_and_gradient_match_numpy(self, monkeypatch, kernel_name):
        """End-to-end: the evaluator agrees across backends at 1e-8."""
        kernels = {
            "matern52": lambda: Matern52(dim=3, ard=True),
            "se": lambda: SquaredExponential(dim=3),
        }
        X, y = _dataset(30, 3, seed=6)
        results = {}
        for backend in ("numpy", "numba"):
            monkeypatch.setenv(BACKEND_ENV, backend)
            gp = GaussianProcess(
                kernels[kernel_name](), noise_variance=1e-3, train_noise=True
            ).fit(X, y)
            evaluator = MarginalLikelihoodEvaluator(gp)
            results[backend] = evaluator.evaluate(gp.theta + 0.2)
        lml_np, grad_np = results["numpy"]
        lml_nb, grad_nb = results["numba"]
        assert lml_nb == pytest.approx(lml_np, abs=1e-8)
        np.testing.assert_allclose(grad_nb, grad_np, atol=1e-8)

    @pytest.mark.parametrize("kernel_name", ["matern52", "se"])
    def test_posterior_matches_numpy(self, monkeypatch, kernel_name):
        kernels = {
            "matern52": lambda: Matern52(dim=3, ard=True),
            "se": lambda: SquaredExponential(dim=3),
        }
        X, y = _dataset(30, 3, seed=7)
        Z = _dataset(12, 3, seed=8)[0]
        preds = {}
        for backend in ("numpy", "numba"):
            monkeypatch.setenv(BACKEND_ENV, backend)
            gp = GaussianProcess(
                kernels[kernel_name](), noise_variance=1e-4
            ).fit(X, y)
            preds[backend] = gp.predict(Z)
        np.testing.assert_allclose(
            preds["numba"].mean, preds["numpy"].mean, atol=1e-8
        )
        np.testing.assert_allclose(
            preds["numba"].variance, preds["numpy"].variance, atol=1e-8
        )
