"""Tests for the three BO engines on cheap objectives."""

import numpy as np
import pytest

from repro.acquisition import default_acquisition_optimizer
from repro.bo import BatchBO, RemboBO, RunSpec, SequentialBO, uniform_initial_design
from repro.bo.engine import EngineProtocol, SurrogateManager
from repro.runtime import FunctionObjective
from repro.synthetic import RareFailureFunction
from repro.utils.validation import unit_cube_bounds


def bowl(x):
    return float(np.sum((np.asarray(x) - 0.3) ** 2))


def wrap(fn, dim):
    return FunctionObjective(fn, dim=dim, bounds=unit_cube_bounds(dim))


def bowl_objective(dim):
    return wrap(bowl, dim)


def tiny_optimizer(dim):
    return default_acquisition_optimizer(dim, global_budget=80, local_budget=40)


class TestUniformInitialDesign:
    def test_shape_and_bounds(self):
        X = uniform_initial_design(unit_cube_bounds(4), 10, seed=0)
        assert X.shape == (10, 4)
        assert np.all(np.abs(X) <= 1.0)

    def test_reproducible(self):
        a = uniform_initial_design(unit_cube_bounds(2), 5, seed=1)
        b = uniform_initial_design(unit_cube_bounds(2), 5, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            uniform_initial_design(unit_cube_bounds(2), 0)


class TestSurrogateManager:
    def test_refit_standardizes(self, rng):
        manager = SurrogateManager(2, seed=0)
        X = rng.uniform(-1, 1, (12, 2))
        y = 100.0 + 10.0 * rng.standard_normal(12)
        gp = manager.refit(X, y)
        assert abs(gp.y_train.mean()) < 1e-9  # standardized labels

    def test_tune_every_cadence(self, rng):
        manager = SurrogateManager(2, tune_every=2, seed=0)
        X = rng.uniform(-1, 1, (8, 2))
        y = rng.standard_normal(8)
        manager.refit(X, y)
        theta_after_first = manager.model.theta.copy()
        # second refit (cadence 2) must not re-tune: same theta
        manager.refit(X, y)
        np.testing.assert_allclose(manager.model.theta, theta_after_first)

    def test_gp_property_deprecated(self, rng):
        manager = SurrogateManager(2, seed=0)
        manager.refit(rng.uniform(-1, 1, (8, 2)), rng.standard_normal(8))
        with pytest.warns(DeprecationWarning, match="SurrogateManager.model"):
            legacy = manager.gp
        assert legacy is manager.model

    def test_validation(self):
        with pytest.raises(ValueError):
            SurrogateManager(0)
        with pytest.raises(ValueError):
            SurrogateManager(2, tune_every=0)


class TestSequentialBO:
    def test_satisfies_engine_protocol(self):
        assert isinstance(SequentialBO(seed=0), EngineProtocol)

    def test_improves_on_initial_design(self):
        engine = SequentialBO(
            acquisition="ei", seed=0, acquisition_optimizer_factory=tiny_optimizer
        )
        result = engine.solve(
            objective=bowl_objective(2), spec=RunSpec(n_init=5, budget=20)
        )
        assert result.n_evaluations == 20
        assert result.best_y < result.y[:5].min()

    @pytest.mark.parametrize("acq", ["ei", "pi", "lcb"])
    def test_all_acquisitions_run(self, acq):
        engine = SequentialBO(
            acquisition=acq, seed=1, acquisition_optimizer_factory=tiny_optimizer
        )
        result = engine.solve(
            objective=bowl_objective(2), spec=RunSpec(n_init=4, budget=10)
        )
        assert result.n_evaluations == 10
        assert result.method == acq.upper()

    def test_initial_data_reused(self):
        X0 = uniform_initial_design(unit_cube_bounds(2), 6, seed=2)
        y0 = np.array([bowl(x) for x in X0])
        engine = SequentialBO(seed=2, acquisition_optimizer_factory=tiny_optimizer)
        result = engine.solve(
            objective=bowl_objective(2),
            spec=RunSpec(budget=10, initial_data=(X0, y0)),
        )
        np.testing.assert_array_equal(result.X[:6], X0)
        assert result.n_init == 6

    def test_stop_on_failure(self):
        engine = SequentialBO(
            acquisition="lcb",
            seed=3,
            stop_on_failure=True,
            acquisition_optimizer_factory=tiny_optimizer,
        )
        result = engine.solve(
            objective=bowl_objective(2),
            spec=RunSpec(n_init=4, budget=40, threshold=0.05),
        )
        assert result.n_evaluations < 40

    def test_budget_below_init_rejected(self):
        engine = SequentialBO(seed=0)
        with pytest.raises(ValueError):
            engine.solve(
                objective=bowl_objective(2), spec=RunSpec(n_init=10, budget=5)
            )

    def test_rejects_bare_callable(self):
        engine = SequentialBO(seed=0)
        with pytest.raises(TypeError, match="FunctionObjective"):
            engine.solve(objective=bowl, spec=RunSpec(n_init=4, budget=8))

    def test_run_wrapper_removed(self):
        # the deprecated positional run() entry point is gone; solve()
        # and the Campaign facade are the only ways in
        assert not hasattr(SequentialBO(seed=0), "run")

    def test_unknown_acquisition(self):
        with pytest.raises(ValueError):
            SequentialBO(acquisition="ucb")

    def test_counts_acquisition_evaluations(self):
        engine = SequentialBO(seed=4, acquisition_optimizer_factory=tiny_optimizer)
        result = engine.solve(
            objective=bowl_objective(2), spec=RunSpec(n_init=4, budget=8)
        )
        assert result.acquisition_evaluations > 0


class TestBatchBO:
    def test_satisfies_engine_protocol(self):
        assert isinstance(BatchBO(batch_size=2, seed=0), EngineProtocol)

    def test_batch_structure(self):
        engine = BatchBO(
            batch_size=4, seed=0, acquisition_optimizer_factory=tiny_optimizer
        )
        result = engine.solve(
            objective=bowl_objective(2), spec=RunSpec(n_init=5, n_batches=3)
        )
        assert result.n_evaluations == 5 + 12
        assert result.method == "pBO"

    def test_custom_weights_validated(self):
        with pytest.raises(ValueError):
            BatchBO(batch_size=3, weights=[0.5, 0.5])
        with pytest.raises(ValueError):
            BatchBO(batch_size=2, weights=[0.2, 1.5])

    def test_improves_on_initial_design(self):
        engine = BatchBO(
            batch_size=3, seed=1, acquisition_optimizer_factory=tiny_optimizer
        )
        result = engine.solve(
            objective=bowl_objective(3), spec=RunSpec(n_init=6, n_batches=4)
        )
        assert result.best_y < result.y[:6].min()


class TestRemboBO:
    def test_satisfies_engine_protocol(self):
        assert isinstance(RemboBO(batch_size=2, seed=0), EngineProtocol)

    def test_fixed_embedding_dim(self):
        engine = RemboBO(
            batch_size=3,
            embedding_dim=2,
            seed=0,
            acquisition_optimizer_factory=tiny_optimizer,
        )
        result = engine.solve(
            objective=bowl_objective(6), spec=RunSpec(n_init=5, n_batches=3)
        )
        assert result.n_evaluations == 5 + 9
        assert result.model_dim == 2
        assert result.Z is not None
        assert result.Z.shape == (result.n_evaluations, 2)
        assert result.extra["embedding_dim"] == 2

    def test_proposals_inside_omega(self):
        engine = RemboBO(
            batch_size=4,
            embedding_dim=3,
            seed=1,
            acquisition_optimizer_factory=tiny_optimizer,
        )
        result = engine.solve(
            objective=bowl_objective(8), spec=RunSpec(n_init=5, n_batches=2)
        )
        assert np.all(np.abs(result.X) <= 1.0 + 1e-12)

    def test_automatic_dimension_selection(self):
        fun = RareFailureFunction(10, 2, threshold=-1.0, radius=0.4, seed=3)
        engine = RemboBO(
            batch_size=3,
            embedding_dim=None,
            dimension_candidates=[1, 2, 4],
            dimension_trials=2,
            seed=2,
            acquisition_optimizer_factory=tiny_optimizer,
        )
        result = engine.solve(
            objective=wrap(fun, 10), spec=RunSpec(n_init=10, n_batches=2)
        )
        assert "dimension_selection" in result.extra
        assert result.model_dim in (1, 2, 4)

    def test_finds_planted_rare_failure(self):
        """End-to-end: Algorithm 1 detects a synthetic rare failure."""
        fun = RareFailureFunction(
            16, 3, threshold=-1.2, depth=3.0, radius=0.28,
            center_fraction=0.55, seed=9,
        )
        engine = RemboBO(batch_size=6, embedding_dim=4, seed=12)
        result = engine.solve(
            objective=wrap(fun, 16),
            spec=RunSpec(n_init=10, n_batches=8, threshold=fun.threshold),
        )
        summary = result.summarize(fun.threshold)
        assert summary.detected

    def test_embedding_dim_exceeding_D_rejected(self):
        engine = RemboBO(batch_size=2, embedding_dim=10, seed=0)
        with pytest.raises(ValueError):
            engine.solve(
                objective=bowl_objective(4), spec=RunSpec(n_init=3, n_batches=1)
            )

    def test_stop_on_failure(self):
        fun = RareFailureFunction(12, 2, threshold=-0.5, radius=0.5, seed=5)
        engine = RemboBO(
            batch_size=4,
            embedding_dim=3,
            seed=6,
            stop_on_failure=True,
            acquisition_optimizer_factory=tiny_optimizer,
        )
        result = engine.solve(
            objective=wrap(fun, 12),
            spec=RunSpec(n_init=8, n_batches=10, threshold=fun.threshold),
        )
        # either stopped early after a failing batch or exhausted budget
        assert result.n_evaluations <= 8 + 40
