"""Tests for Specification folding and RunResult bookkeeping."""

import numpy as np
import pytest

from repro.bo import FailureSummary, RunResult, Specification


class TestSpecification:
    def test_failure_above(self):
        spec = Specification("IQ", threshold=12.0, failure_when="above", units="mA")
        assert spec.is_failure(13.0)
        assert not spec.is_failure(11.0)

    def test_failure_below(self):
        spec = Specification("gain", threshold=40.0, failure_when="below")
        assert spec.is_failure(39.0)
        assert not spec.is_failure(41.0)

    def test_minimization_folding_above(self):
        """Eq. 1 form: failure iff minimized value < T."""
        spec = Specification("IQ", threshold=12.0, failure_when="above")
        T = spec.minimization_threshold
        assert spec.to_minimization(13.0) < T  # failing value
        assert spec.to_minimization(11.0) > T  # passing value

    def test_minimization_folding_below(self):
        spec = Specification("gain", threshold=40.0, failure_when="below")
        T = spec.minimization_threshold
        assert spec.to_minimization(39.0) < T
        assert spec.to_minimization(41.0) > T

    def test_involution(self):
        spec = Specification("x", threshold=1.0, failure_when="above")
        assert spec.from_minimization(spec.to_minimization(3.7)) == pytest.approx(3.7)

    def test_vectorized(self):
        spec = Specification("x", threshold=0.5, failure_when="above")
        out = spec.is_failure(np.array([0.4, 0.6]))
        np.testing.assert_array_equal(out, [False, True])

    def test_wrap_objective(self):
        spec = Specification("x", threshold=2.0, failure_when="above")
        objective = spec.wrap_objective(lambda x: float(np.sum(x)))
        # performance 3 (> 2, failing) must map below T
        assert objective(np.array([3.0])) < spec.minimization_threshold

    def test_format_value(self):
        spec = Specification("IQ", threshold=12.0, failure_when="above", units="mA")
        assert spec.format_value(spec.to_minimization(12.7)) == "12.7mA"

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            Specification("x", threshold=0.0, failure_when="sideways")


class TestRunResult:
    def make(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        y = np.array([0.5, -0.2, 0.9, -0.8])
        return RunResult(X=X, y=y, n_init=2, method="test")

    def test_best(self):
        result = self.make()
        assert result.best_y == -0.8
        assert result.best_index == 3
        np.testing.assert_array_equal(result.best_x, [1.0, 1.0])

    def test_best_so_far_monotone(self):
        trace = self.make().best_so_far()
        np.testing.assert_array_equal(trace, [0.5, -0.2, -0.2, -0.8])

    def test_summarize_counts_failures(self):
        summary = self.make().summarize(threshold=0.0)
        assert summary.n_failures == 2
        assert summary.first_failure_index == 2  # 1-based
        assert summary.detected

    def test_summarize_no_failures(self):
        summary = self.make().summarize(threshold=-5.0)
        assert summary.n_failures == 0
        assert summary.first_failure_index is None
        assert not summary.detected

    def test_n_init_validation(self):
        with pytest.raises(ValueError):
            RunResult(X=np.zeros((2, 1)), y=np.zeros(2), n_init=5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            RunResult(X=np.zeros((2, 1)), y=np.zeros(3), n_init=0)


class TestFailureSummary:
    def test_detected_flag(self):
        s = FailureSummary(
            method="m", n_simulations=10, worst_value=0.0,
            n_failures=0, first_failure_index=None, total_seconds=1.0,
        )
        assert not s.detected
