"""End-to-end tests for the :class:`~repro.campaign.Campaign` facade.

The acceptance criteria of the observability PR are pinned here on a small
UVLO campaign:

* the evaluation-span count in the trace equals the ledger's completed
  event count (the two streams are joinable on the broker's eval ids);
* per-phase child durations reconcile with the campaign wall clock;
* a seeded run with telemetry on is bitwise-identical (X, y) to the same
  run with telemetry off — instrumentation must not perturb the numerics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo import RemboBO, RunSpec, SequentialBO
from repro.campaign import Campaign, CampaignResult
from repro.circuits.behavioral.uvlo import UVLOTestbench
from repro.runtime import FunctionObjective, RuntimePolicy, read_ledger
from repro.sampling import MonteCarloSampler
from repro.telemetry import Telemetry, TelemetryConfig, read_trace
from repro.utils.validation import unit_cube_bounds


def bowl(x):
    return float(np.sum(np.asarray(x) ** 2))


def bowl_objective(dim=2):
    return FunctionObjective(bowl, dim=dim, bounds=unit_cube_bounds(dim))


def small_rembo(seed=11):
    return RemboBO(
        batch_size=4, embedding_dim=3, tune_every=1, n_restarts=1, seed=seed
    )


def uvlo_spec(testbench, n_batches=2):
    return RunSpec(
        bounds=testbench.bounds(),
        n_init=6,
        n_batches=n_batches,
        threshold=testbench.threshold("delta_vthl"),
    )


class TestCampaignValidation:
    def test_rejects_bare_callable(self):
        with pytest.raises(TypeError, match="FunctionObjective"):
            Campaign(bowl, MonteCarloSampler(10, seed=0))

    def test_rejects_non_engine(self):
        with pytest.raises(TypeError, match="solve"):
            Campaign(bowl_objective(), object())

    def test_spec_overrides_patch_fields(self):
        campaign = Campaign(bowl_objective(), MonteCarloSampler(5, seed=0))
        outcome = campaign.run(RunSpec(threshold=9.0), threshold=0.5)
        assert outcome.spec.threshold == 0.5

    def test_kwargs_build_spec_when_none_given(self):
        campaign = Campaign(bowl_objective(), MonteCarloSampler(5, seed=0))
        outcome = campaign.run(threshold=0.5)
        assert outcome.spec == RunSpec(threshold=0.5)


class TestCampaignTelemetry:
    def test_trace_reconciles_with_ledger(self, tmp_path):
        testbench = UVLOTestbench()
        trace_path = tmp_path / "uvlo.trace.jsonl"
        ledger_path = tmp_path / "uvlo.jsonl"
        campaign = Campaign(
            testbench.objective("delta_vthl"),
            small_rembo(),
            policy=RuntimePolicy.shared(ledger_path=ledger_path),
            telemetry=TelemetryConfig(trace_path=trace_path),
        )
        outcome = campaign.run(uvlo_spec(testbench))

        assert outcome.trace_path == trace_path
        assert outcome.ledger_path == ledger_path
        trace = read_trace(trace_path)
        replay = read_ledger(ledger_path)

        # acceptance: evaluation spans == ledger completed events (cache
        # hits are served without simulating, so they get neither)
        assert len(trace.named("evaluate")) == replay.n_completed
        assert (
            replay.n_completed + replay.n_cache_hits
            == outcome.run.n_evaluations
        )
        # the metrics counters tell the same story
        counters = outcome.metrics["counters"]
        assert counters["evaluations.completed"] == replay.n_completed
        assert counters.get("cache.hits", 0) == replay.n_cache_hits

        # the engine phases all nest under the single campaign root
        (root,) = trace.roots()
        assert root.name == "campaign"
        assert root.attrs["engine"] == "RemboBO"
        assert root.attrs["n_evaluations"] == outcome.run.n_evaluations
        for name in ("init_design", "iteration", "gp_fit", "acq_opt"):
            assert trace.named(name), f"missing {name} spans"

        # every span fits inside the campaign wall clock, and the direct
        # children account for (almost) all of it: phase durations must
        # reconcile with the root to within 5%
        assert all(span.t1 <= root.t1 + 1e-6 for span in trace)
        children = trace.children(root.span_id)
        child_time = sum(span.dt for span in children)
        assert child_time <= root.dt + 1e-6
        assert child_time >= 0.95 * root.dt

    def test_telemetry_does_not_perturb_results(self, tmp_path):
        testbench = UVLOTestbench()
        plain = Campaign(
            testbench.objective("delta_vthl"), small_rembo()
        ).run(uvlo_spec(testbench))
        traced = Campaign(
            testbench.objective("delta_vthl"),
            small_rembo(),
            telemetry=TelemetryConfig(trace_path=tmp_path / "t.jsonl"),
        ).run(uvlo_spec(testbench))
        np.testing.assert_array_equal(plain.run.X, traced.run.X)
        np.testing.assert_array_equal(plain.run.y, traced.run.y)

    def test_campaign_seed_makes_runs_replicas(self):
        campaign = Campaign(
            bowl_objective(3),
            SequentialBO(seed=0, n_restarts=1),
            seed=7,
        )
        spec = RunSpec(n_init=4, budget=8)
        first = campaign.run(spec)
        second = campaign.run(spec)
        np.testing.assert_array_equal(first.run.X, second.run.X)
        np.testing.assert_array_equal(first.run.y, second.run.y)

    def test_shared_live_telemetry_accumulates(self):
        tele = Telemetry.from_config(TelemetryConfig())
        campaign = Campaign(
            bowl_objective(), MonteCarloSampler(5, seed=0), telemetry=tele
        )
        campaign.run()
        campaign.run()
        # caller-owned telemetry: both runs landed in one tracer
        assert len([s for s in tele.tracer.finished if s["name"] == "campaign"]) == 2
        assert tele.metrics.snapshot()["counters"]["evaluations.completed"] == 10
        tele.close()

    def test_off_by_default(self):
        outcome = Campaign(bowl_objective(), MonteCarloSampler(5, seed=0)).run()
        assert isinstance(outcome, CampaignResult)
        assert outcome.trace_path is None
        assert outcome.ledger_path is None
        assert outcome.metrics == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert outcome.method == "MC"


class TestRunMethodTelemetry:
    def test_run_method_routes_through_solve_with_telemetry(self, tmp_path):
        from repro.experiments.config import uvlo_config
        from repro.experiments.methods import run_method

        testbench = UVLOTestbench()
        cfg = uvlo_config(
            mc_samples=20, n_init=5, n_batches=1, batch_size=3, seed=3
        )
        tele = Telemetry.from_config(
            TelemetryConfig(trace_path=tmp_path / "mc.jsonl")
        )
        result = run_method(
            "MC", testbench, "delta_vthl", cfg, telemetry=tele
        )
        tele.close()
        assert result.n_evaluations == 20
        trace = read_trace(tmp_path / "mc.jsonl")
        assert len(trace.named("evaluate")) == 20
