"""Tests for the behavioral UVLO and LDO testbenches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.behavioral import LDOTestbench, UVLOTestbench
from repro.circuits.behavioral.base import local_halo, soft_step


class TestSoftStep:
    def test_limits(self):
        assert soft_step(10.0, 0.1) == pytest.approx(0.0, abs=1e-10)
        assert soft_step(-10.0, 0.1) == pytest.approx(1.0, abs=1e-10)
        assert soft_step(0.0, 0.1) == pytest.approx(0.5)

    def test_monotone_decreasing_in_margin(self):
        margins = np.linspace(-1, 1, 21)
        values = soft_step(margins, 0.2)
        assert np.all(np.diff(values) < 0)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            soft_step(0.0, 0.0)


class TestLocalHalo:
    def test_one_inside(self):
        assert local_halo(-0.5, 0.3) == 1.0
        assert local_halo(0.0, 0.3) == 1.0

    def test_gaussian_tail_dies_fast(self):
        """The defining property versus soft_step: numerically dead far out."""
        far = local_halo(1.5, 0.3)
        assert far < 1e-5
        assert far < soft_step(1.5, 0.3)

    def test_monotone(self):
        margins = np.linspace(0.0, 2.0, 50)
        values = local_halo(margins, 0.3)
        assert np.all(np.diff(values) <= 0)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            local_halo(0.0, -1.0)


class TestUVLO:
    @pytest.fixture
    def tb(self):
        return UVLOTestbench()

    def test_dimensions(self, tb):
        assert tb.dim == 19
        assert len(tb.parameter_names) == 19
        assert tb.parameter_names[0] == "R1"
        assert tb.parameter_names[3] == "L1"

    def test_nominal_is_nearly_zero_offset(self, tb):
        assert tb.performance("delta_vthl", np.zeros(19)) < 0.01

    def test_performance_nonnegative(self, tb, rng):
        for _ in range(20):
            x = rng.uniform(-1, 1, 19)
            assert tb.performance("delta_vthl", x) >= 0.0

    def test_typical_variations_pass_spec(self, tb, rng):
        """Points inside ±1σ (|x| <= 0.25) never come close to failing."""
        X = rng.uniform(-0.25, 0.25, (200, 19))
        values = [tb.performance("delta_vthl", x) for x in X]
        assert max(values) < 0.5 * tb.specs["delta_vthl"].threshold

    def test_failures_are_rare_under_uniform(self, tb, rng):
        X = rng.uniform(-1, 1, (3000, 19))
        failures = sum(tb.is_failure("delta_vthl", x) for x in X)
        assert failures == 0

    def test_failure_region_exists(self, tb):
        """Driving the bias-collapse direction produces a spec failure."""
        from repro.circuits.behavioral.uvlo import _BIAS_WEIGHTS

        x = np.sign(_BIAS_WEIGHTS)
        assert tb.is_failure("delta_vthl", x)

    def test_collapse_direction_is_dense(self):
        from repro.circuits.behavioral.uvlo import _BIAS_WEIGHTS

        assert _BIAS_WEIGHTS.shape == (19,)
        assert np.all(np.abs(_BIAS_WEIGHTS) > 0.0)
        # no coordinate dominates: max weight well below the total
        assert np.abs(_BIAS_WEIGHTS).max() < 0.2 * np.abs(_BIAS_WEIGHTS).sum()

    def test_resistor_ratiometric_cancellation(self, tb):
        """Common resistor variation largely cancels in the divider ratio."""
        x_common = np.zeros(19)
        x_common[:3] = 0.5  # all resistors drift together
        x_single = np.zeros(19)
        x_single[0] = 0.5  # only R1 drifts
        common = tb.performance("delta_vthl", x_common)
        single = tb.performance("delta_vthl", x_single)
        assert common < single

    def test_objective_threshold_orientation(self, tb):
        obj = tb.objective("delta_vthl")
        T = tb.threshold("delta_vthl")
        from repro.circuits.behavioral.uvlo import _BIAS_WEIGHTS

        assert obj(np.sign(_BIAS_WEIGHTS)) < T  # failure maps below T
        assert obj(np.zeros(19)) > T

    def test_unknown_performance(self, tb):
        with pytest.raises(KeyError):
            tb.performance("gain", np.zeros(19))

    def test_out_of_cube_rejected(self, tb):
        with pytest.raises(ValueError):
            tb.performance("delta_vthl", np.full(19, 1.5))

    def test_wrong_shape_rejected(self, tb):
        with pytest.raises(ValueError):
            tb.performance("delta_vthl", np.zeros(18))


class TestLDO:
    @pytest.fixture
    def tb(self):
        return LDOTestbench()

    def test_dimensions(self, tb):
        assert tb.dim == 60
        assert tb.parameter_names[0] == "M1.L"
        assert tb.parameter_names[1] == "M1.Vth"
        assert tb.parameter_names[59] == "M20.tox"

    def test_nominal_values(self, tb):
        x = np.zeros(60)
        assert tb.performance("quiescent_current", x) == pytest.approx(5.0, abs=1.0)
        assert tb.performance("undershoot", x) == pytest.approx(0.15, abs=0.03)
        assert tb.performance("load_regulation", x) == pytest.approx(18.0, abs=3.0)

    @pytest.mark.parametrize(
        "spec", ["quiescent_current", "undershoot", "load_regulation"]
    )
    def test_failures_rare_under_uniform(self, tb, spec, rng):
        X = rng.uniform(-1, 1, (2000, 60))
        failures = sum(tb.is_failure(spec, x) for x in X)
        assert failures == 0

    @pytest.mark.parametrize(
        "spec, direction_name",
        [
            ("quiescent_current", "_IQ_DIRECTION"),
            ("undershoot", "_US_DIRECTION"),
            ("load_regulation", "_LR_DIRECTION"),
        ],
    )
    def test_failure_region_exists_per_spec(self, tb, spec, direction_name):
        import repro.circuits.behavioral.ldo as ldo_module

        direction = getattr(ldo_module, direction_name)
        x = np.sign(direction)
        assert tb.is_failure(spec, x), f"{spec} corner does not fail"

    def test_margins_are_dense_directions(self):
        import repro.circuits.behavioral.ldo as ldo_module

        for name in ("_IQ_DIRECTION", "_US_DIRECTION", "_LR_DIRECTION"):
            w = getattr(ldo_module, name)
            assert w.shape == (60,)
            assert np.count_nonzero(w) == 60
            assert np.abs(w).max() < 0.15 * np.abs(w).sum()

    def test_specs_fail_in_different_corners(self, tb):
        """The three margin directions are genuinely distinct."""
        import repro.circuits.behavioral.ldo as ldo_module

        iq = ldo_module._IQ_DIRECTION / np.linalg.norm(ldo_module._IQ_DIRECTION)
        us = ldo_module._US_DIRECTION / np.linalg.norm(ldo_module._US_DIRECTION)
        lr = ldo_module._LR_DIRECTION / np.linalg.norm(ldo_module._LR_DIRECTION)
        assert abs(iq @ us) < 0.8
        assert abs(iq @ lr) < 0.8
        assert abs(us @ lr) < 0.8

    def test_unknown_performance(self, tb):
        with pytest.raises(KeyError):
            tb.performance("psrr", np.zeros(60))

    def test_spec_thresholds_match_paper(self, tb):
        assert tb.specs["quiescent_current"].threshold == 12.0
        assert tb.specs["undershoot"].threshold == 0.40
        assert tb.specs["load_regulation"].threshold == 50.0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_property_uvlo_deterministic_and_finite(seed):
    """The testbench is a pure function of the variation vector."""
    tb = UVLOTestbench()
    x = np.random.default_rng(seed).uniform(-1, 1, 19)
    a = tb.performance("delta_vthl", x)
    b = tb.performance("delta_vthl", x)
    assert a == b
    assert np.isfinite(a) and a >= 0.0


class TestVectorizedObjectives:
    """Batched testbench evaluation must be bitwise batch-size invariant."""

    @pytest.mark.parametrize(
        "tb_cls, name",
        [
            (UVLOTestbench, "delta_vthl"),
            (LDOTestbench, "load_regulation"),
            (LDOTestbench, "quiescent_current"),
            (LDOTestbench, "undershoot"),
        ],
    )
    def test_batch_matches_per_row_bitwise(self, tb_cls, name):
        tb = tb_cls()
        rng = np.random.default_rng(17)
        X = rng.uniform(-1.0, 1.0, (31, tb.dim))
        objective = tb.objective(name)
        batched = objective.evaluate(X)
        rowwise = np.concatenate(
            [objective.evaluate(x[None, :]) for x in X]
        )
        # the margin contractions are einsum-based, so a whole block and a
        # single row produce the same floats bit for bit — this is what
        # makes chunked broker dispatch and resume bitwise-compatible
        np.testing.assert_array_equal(batched, rowwise)

    def test_performance_batch_matches_scalar(self):
        tb = UVLOTestbench()
        rng = np.random.default_rng(23)
        X = rng.uniform(-1.0, 1.0, (9, tb.dim))
        batched = tb.performance_batch("delta_vthl", X)
        scalar = np.array([tb.performance("delta_vthl", x) for x in X])
        np.testing.assert_array_equal(batched, scalar)

    def test_objectives_prefer_batch_dispatch(self):
        assert UVLOTestbench().objective("delta_vthl").prefers_batch
        assert LDOTestbench().objective("load_regulation").prefers_batch
