"""Threaded stress suite for the shared runtime/telemetry state.

The hard guarantee under test: with N threads hammering the
``@thread_shared`` classes — :class:`MetricsRegistry`,
:class:`RunLedger`, :class:`ResultCache`, :class:`Tracer` — *nothing is
lost*: counter totals are exact, every ledger line is whole JSON, span
ids are unique and nest per thread.  The suite runs identically with and
without ``REPRO_SANITIZE=1``; CI runs it both ways, and the sanitized
run additionally arms the ownership tripwires and the lock-order
recorder (exercised directly below, without the environment gate).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import (
    BrokerConfig,
    EvaluationBroker,
    FunctionObjective,
    ResultCache,
    RunLedger,
    read_ledger,
)
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.utils.sanitize_concurrency import (
    ConcurrencySanitizeError,
    LockOrderError,
    LockOrderRecorder,
    TrackedLock,
    instrument_thread_shared,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

N_THREADS = 8


def run_threads(target, n_threads: int = N_THREADS) -> list[BaseException]:
    """Run ``target(i)`` on ``n_threads`` threads; return raised errors."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def runner(i: int) -> None:
        try:
            barrier.wait()
            target(i)
        except BaseException as exc:  # noqa: BLE001 - reported to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


# -- MetricsRegistry ----------------------------------------------------------


class TestMetricsUnderThreads:
    N_PER_THREAD = 2000

    def test_counter_totals_are_exact(self):
        registry = MetricsRegistry()

        def hammer(i: int) -> None:
            for _ in range(self.N_PER_THREAD):
                registry.counter("shared").inc()
                registry.counter(f"per_thread.{i}").inc(2)

        assert run_threads(hammer) == []
        snap = registry.snapshot()
        assert snap["counters"]["shared"] == N_THREADS * self.N_PER_THREAD
        for i in range(N_THREADS):
            assert (
                snap["counters"][f"per_thread.{i}"] == 2 * self.N_PER_THREAD
            )

    def test_histogram_totals_are_exact(self):
        registry = MetricsRegistry()

        def observe(i: int) -> None:
            for k in range(self.N_PER_THREAD):
                registry.histogram("lat").observe(float(i * 1000 + k))

        assert run_threads(observe) == []
        hist = registry.snapshot()["histograms"]["lat"]
        n = N_THREADS * self.N_PER_THREAD
        assert hist["count"] == n
        expected_total = sum(
            float(i * 1000 + k)
            for i in range(N_THREADS)
            for k in range(self.N_PER_THREAD)
        )
        assert hist["total"] == pytest.approx(expected_total)
        assert hist["min"] == 0.0
        assert hist["max"] == float((N_THREADS - 1) * 1000 + self.N_PER_THREAD - 1)

    def test_get_or_create_race_yields_one_instrument(self):
        registry = MetricsRegistry()

        def create_and_inc(i: int) -> None:
            registry.counter("contested").inc()

        assert run_threads(create_and_inc, n_threads=16) == []
        # the losing thread of an unsynchronized race would have counted
        # into an orphan instrument, losing its increment
        assert registry.snapshot()["counters"]["contested"] == 16


# -- RunLedger ----------------------------------------------------------------


class TestLedgerUnderThreads:
    N_PER_THREAD = 300

    def test_no_lost_or_torn_lines(self, tmp_path):
        path = tmp_path / "stress.jsonl"
        with RunLedger(path) as ledger:

            def append(i: int) -> None:
                for k in range(self.N_PER_THREAD):
                    ledger.append({"event": "tick", "thread": i, "k": k})

            assert run_threads(append) == []

        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == N_THREADS * self.N_PER_THREAD
        per_thread: dict[int, set[int]] = {}
        for line in lines:
            event = json.loads(line)  # raises on any torn/interleaved line
            per_thread.setdefault(event["thread"], set()).add(event["k"])
        assert set(per_thread) == set(range(N_THREADS))
        for seen in per_thread.values():
            assert seen == set(range(self.N_PER_THREAD))

    def test_replay_parses_concurrent_ledger(self, tmp_path):
        path = tmp_path / "replay.jsonl"
        with RunLedger(path) as ledger:

            def append(i: int) -> None:
                for k in range(20):
                    ledger.append({"event": "completed", "digest": f"{i}:{k}",
                                   "x": [float(i), float(k)], "y": 1.0})

            assert run_threads(append) == []
        replay = read_ledger(path)
        assert not replay.truncated
        assert replay.n_completed == N_THREADS * 20
        assert len(replay.completed) == N_THREADS * 20


# -- ResultCache --------------------------------------------------------------


class TestCacheUnderThreads:
    def test_get_many_under_concurrent_writers(self):
        cache = ResultCache.in_memory()
        digests = [f"digest-{k}" for k in range(512)]
        stop = threading.Event()
        reader_errors: list[BaseException] = []

        def read_loop() -> None:
            try:
                while not stop.is_set():
                    values = cache.get_many(digests)
                    # a value is either absent or exactly what the writer
                    # stored — never a torn/partial state
                    for k, value in enumerate(values):
                        assert value is None or value == float(k)
            except BaseException as exc:  # noqa: BLE001
                reader_errors.append(exc)

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:

            def write(i: int) -> None:
                for k in range(i, len(digests), N_THREADS):
                    cache.put(digests[k], float(k))

            assert run_threads(write) == []
        finally:
            stop.set()
            reader.join()
        assert reader_errors == []
        assert len(cache) == len(digests)
        assert cache.get_many(digests) == [float(k) for k in range(512)]

    def test_hit_miss_accounting_is_exact(self):
        cache = ResultCache.in_memory()
        cache.put("known", 1.0)

        def lookup(i: int) -> None:
            for _ in range(500):
                cache.get("known")
                cache.get(f"unknown-{i}")

        assert run_threads(lookup) == []
        assert cache.stats["hits"] == N_THREADS * 500
        assert cache.stats["misses"] == N_THREADS * 500


# -- Tracer -------------------------------------------------------------------


class TestTracerUnderThreads:
    def test_spans_nest_per_thread_with_unique_ids(self):
        tracer = Tracer()

        def trace(i: int) -> None:
            with tracer.span("outer", thread=i):
                with tracer.span("inner", thread=i):
                    pass

        assert run_threads(trace) == []
        tracer.close()
        assert len(tracer.finished) == 2 * N_THREADS
        ids = [line["id"] for line in tracer.finished]
        assert len(set(ids)) == len(ids)
        outer_by_thread = {
            line["attrs"]["thread"]: line["id"]
            for line in tracer.finished
            if line["name"] == "outer"
        }
        for line in tracer.finished:
            if line["name"] == "inner":
                # each inner span parents under its *own* thread's outer
                assert line["parent"] == outer_by_thread[line["attrs"]["thread"]]
            else:
                assert line["parent"] is None

    def test_file_emission_stays_whole_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)

        def trace(i: int) -> None:
            for k in range(50):
                tracer.record_span("work", 0.001, {"thread": i, "k": k})

        assert run_threads(trace) == []
        tracer.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        # one header + every span line, each parseable
        assert len(lines) == 1 + N_THREADS * 50
        assert all(json.loads(line) for line in lines)


# -- broker thread-mode campaign ----------------------------------------------


class TestBrokerThreadCampaign:
    N_CAMPAIGNS = 4
    N_POINTS = 6

    def test_concurrent_campaigns_lose_nothing(self, tmp_path):
        """N campaign threads × thread-pool broker over shared state.

        Points are distinct across campaigns, so the exact event ledger is
        predictable: one campaign header per broker, one ``dispatched``
        plus one ``completed`` per point, and one completed-counter
        increment per point — with zero lost lines or increments.
        """
        ledger_path = tmp_path / "campaigns.jsonl"
        cache = ResultCache.in_memory()
        telemetry = Telemetry(tracer=Tracer(), metrics=MetricsRegistry())

        def objective(x):
            return float(np.sum(np.asarray(x) ** 2))

        with RunLedger(ledger_path) as ledger:

            def campaign(i: int) -> None:
                broker = EvaluationBroker(
                    FunctionObjective(objective, dim=2, cache_key="stress"),
                    BrokerConfig(executor="thread", n_jobs=2, dispatch="row"),
                    cache=cache,
                    ledger=ledger,
                    telemetry=telemetry,
                )
                X = np.column_stack(
                    [
                        np.linspace(0.0, 1.0, self.N_POINTS) + i * 7.0,
                        np.full(self.N_POINTS, float(i)),
                    ]
                )
                batch = broker.evaluate_batch(X)
                assert batch.n_evaluated == self.N_POINTS
                assert broker.stats.n_completed == self.N_POINTS

            assert run_threads(campaign, n_threads=self.N_CAMPAIGNS) == []

        replay = read_ledger(ledger_path)
        total = self.N_CAMPAIGNS * self.N_POINTS
        assert not replay.truncated
        assert len(replay.campaigns()) == self.N_CAMPAIGNS
        assert replay.counts["dispatched"] == total
        assert replay.counts["completed"] == total
        assert replay.duplicate_simulations == 0

        snap = telemetry.metrics.snapshot()
        assert snap["counters"]["evaluations.completed"] == total
        assert snap["histograms"]["evaluations.seconds"]["count"] == total

        spans = telemetry.tracer.finished
        assert len(spans) == total
        assert len({line["id"] for line in spans}) == total


# -- ownership tripwires (driven directly, no environment gate) ---------------


def _make_shared_class():
    class Shared:
        def __init__(self) -> None:
            self._lock = threading.RLock()
            self.value = 0

    return instrument_thread_shared(Shared)


class TestOwnershipTripwires:
    def test_owner_thread_writes_freely(self):
        obj = _make_shared_class()()
        obj.value = 1
        assert obj.value == 1

    def test_cross_thread_unlocked_write_raises(self):
        obj = _make_shared_class()()
        errors = run_threads(
            lambda i: setattr(obj, "value", i), n_threads=2
        )
        assert len(errors) == 2
        assert all(isinstance(e, ConcurrencySanitizeError) for e in errors)

    def test_cross_thread_locked_write_allowed(self):
        obj = _make_shared_class()()

        def locked_write(i: int) -> None:
            with obj._lock:
                obj.value += 1

        assert run_threads(locked_write, n_threads=4) == []
        assert obj.value == 4

    def test_hardened_classes_survive_sanitized_stress(self):
        # the real @thread_shared classes, force-instrumented: the whole
        # locked write-path must stay tripwire-silent under threads
        registry_cls = type(
            "InstrumentedRegistry", (MetricsRegistry,), {}
        )
        instrument_thread_shared(registry_cls)
        registry = registry_cls()

        def hammer(i: int) -> None:
            for _ in range(200):
                registry.counter("x").inc()

        assert run_threads(hammer) == []
        assert registry.snapshot()["counters"]["x"] == N_THREADS * 200


# -- lock-order recording -----------------------------------------------------


class TestLockOrder:
    def test_recorder_detects_cycle(self):
        recorder = LockOrderRecorder()
        recorder.acquired("A")
        recorder.acquired("B")  # records A -> B
        recorder.released("B")
        recorder.released("A")
        recorder.acquired("B")
        with pytest.raises(LockOrderError, match="lock-order cycle"):
            recorder.acquired("A")  # A -> B exists; B -> A closes the cycle

    def test_recorder_allows_consistent_order(self):
        recorder = LockOrderRecorder()
        for _ in range(3):
            recorder.acquired("A")
            recorder.acquired("B")
            recorder.released("B")
            recorder.released("A")
        assert recorder.edges() == {"A": ("B",)}

    def test_reentrant_acquire_is_not_a_cycle(self):
        recorder = LockOrderRecorder()
        recorder.acquired("A")
        recorder.acquired("A")  # RLock semantics
        recorder.released("A")
        recorder.released("A")
        assert recorder.edges() == {}

    def test_tracked_locks_raise_before_deadlocking(self):
        recorder = LockOrderRecorder()
        lock_a = TrackedLock("a", recorder)
        lock_b = TrackedLock("b", recorder)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with pytest.raises(LockOrderError):
                with lock_a:
                    pass
        # the failed acquisition must not leave phantom held state
        with lock_a:
            with lock_b:
                pass

    def test_cross_thread_cycle_detected(self):
        recorder = LockOrderRecorder()
        recorder.acquired("A")
        recorder.acquired("B")
        recorder.released("B")
        recorder.released("A")
        seen: list[BaseException] = []

        def other_order(i: int) -> None:
            recorder.acquired("B")
            try:
                recorder.acquired("A")
            finally:
                recorder.released("B")

        seen = run_threads(other_order, n_threads=1)
        assert len(seen) == 1 and isinstance(seen[0], LockOrderError)


# -- identity when off --------------------------------------------------------


def _probe(env_value: str | None) -> str:
    """Report sanitizer wiring from a fresh interpreter."""
    code = (
        "import threading\n"
        "from repro.utils import sanitize_concurrency as sc\n"
        "from repro.utils.contracts import thread_shared\n"
        "@thread_shared\n"
        "class Probe:\n"
        "    def __init__(self):\n"
        "        self._lock = sc.make_lock('probe.Probe')\n"
        "tracked = isinstance(sc.make_lock('probe'), sc.TrackedLock)\n"
        "instrumented = getattr(Probe, '__concurrency_instrumented__', False)\n"
        "plain = type(sc.make_lock('x')) is type(threading.RLock())\n"
        "if tracked and instrumented:\n"
        "    print('armed')\n"
        "elif not tracked and not instrumented and plain:\n"
        "    print('identity')\n"
        "else:\n"
        "    print('mixed')\n"
    )
    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_SANITIZE", None)
    if env_value is not None:
        env["REPRO_SANITIZE"] = env_value
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestSanitizeGate:
    def test_identity_when_off(self):
        assert _probe(None) == "identity"
        assert _probe("0") == "identity"

    def test_armed_when_on(self):
        assert _probe("1") == "armed"

    def test_marker_attribute_survives_both_modes(self):
        # the static pass keys on the decorator; the class attribute is
        # present regardless of the runtime gate
        from repro.runtime.cache import ResultCache as RC

        assert getattr(RC, "__thread_shared__", False)
