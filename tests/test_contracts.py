"""Tests for the shape-contract layer (runtime half + grammar cross-check).

``apply_contract`` is exercised directly so validation runs regardless of
the ``REPRO_SANITIZE`` gate; the gate itself is covered by spawning fresh
interpreters with the environment variable set/unset.  The grammar parser
is shared: ``tools.numlint.shapes`` imports it from
``repro.utils.contracts``, and the corpus below documents what it accepts.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.utils import contracts as runtime
from repro.utils.contracts import (
    ContractParseError,
    ShapeContractError,
    apply_contract,
    parse_contract,
)
from tools.numlint import shapes as static


# -- grammar -----------------------------------------------------------------

#: Specs every implementation must accept, with the structure they parse to.
VALID_SPECS = [
    "X: (n, d)",
    "X: (n, d), A: (D, d) -> (n, D)",
    "X: a(n, D) | a(D,), lower: a(D,), upper: a(D,) -> (n, D) | (D,)",
    "theta: a(p,) -> (), (p,)",
    "batch_size: n -> (n,)",
    "-> (60,)",
    "out?: i(n, 3)",
    "M: (2, 3), v: (*,)",
]

INVALID_SPECS = [
    "",
    "   ",
    "X (n, d)",  # missing colon
    "X: (n, d", # unclosed paren
    "X: (n, d)) ",  # trailing garbage
    "X: (n, d), X: (m,)",  # duplicate parameter
    "X: (n, 2x)",  # malformed dimension
    "-> n",  # scalar symbol in return position
    "x: (n,),",  # trailing comma after the parameter list
]


def _normalize(contract):
    """Project either implementation's parse tree onto plain tuples."""

    def alt(a):
        if hasattr(a, "dims"):
            return ("array", a.dtype, tuple(a.dims))
        return ("scalar", a.symbol)

    return (
        tuple(
            (p.name, p.optional, tuple(alt(a) for a in p.alternatives))
            for p in contract.params
        ),
        tuple(tuple(alt(a) for a in ret) for ret in contract.returns),
    )


class TestGrammarCrossCheck:
    def test_static_side_reuses_runtime_parser(self):
        # the grammar lives in one place now; the shapelint side imports it
        assert static.parse_contract is parse_contract
        assert static.ContractParseError is ContractParseError

    @pytest.mark.parametrize("spec", VALID_SPECS)
    def test_both_parsers_agree(self, spec):
        assert _normalize(parse_contract(spec)) == _normalize(
            static.parse_contract(spec)
        )

    @pytest.mark.parametrize("spec", INVALID_SPECS)
    def test_both_parsers_reject(self, spec):
        with pytest.raises(ContractParseError):
            parse_contract(spec)
        with pytest.raises(static.ContractParseError):
            static.parse_contract(spec)

    def test_default_dtype_is_float(self):
        contract = parse_contract("X: (n,)")
        assert contract.params[0].alternatives[0].dtype == "f"


# -- runtime validation ------------------------------------------------------


class TestApplyContract:
    def test_accepts_matching_shapes(self):
        @lambda f: apply_contract(f, "X: (n, d), A: (D, d) -> (n, D)")
        def reverse_map(X, A):
            return X @ A.T

        out = reverse_map(np.ones((4, 3)), np.ones((10, 3)))
        assert out.shape == (4, 10)

    def test_symbol_unification_across_arguments(self):
        @lambda f: apply_contract(f, "X: (n, d), A: (D, d) -> (n, D)")
        def reverse_map(X, A):
            return X @ A.T

        with pytest.raises(ShapeContractError, match="A does not satisfy"):
            # inner dimensions disagree: d binds to 3 then A arrives with 5
            reverse_map(np.ones((4, 3)), np.ones((10, 5)))

    def test_return_shape_checked_against_bindings(self):
        @lambda f: apply_contract(f, "X: (n, d) -> (n,)")
        def broken(X):
            return np.zeros(X.shape[0] + 1)

        with pytest.raises(ShapeContractError, match="return"):
            broken(np.ones((4, 3)))

    def test_tuple_return(self):
        @lambda f: apply_contract(f, "theta: (p,) -> (), (p,)")
        def value_and_grad(theta):
            return float(theta.sum()), theta * 2.0

        value, grad = value_and_grad(np.ones(3))
        assert value == 3.0 and grad.shape == (3,)

        @lambda f: apply_contract(f, "theta: (p,) -> (), (p,)")
        def wrong_arity(theta):
            return float(theta.sum())

        with pytest.raises(ShapeContractError, match="2-tuple"):
            wrong_arity(np.ones(3))

    def test_alternatives_allow_vector_or_batch(self):
        @lambda f: apply_contract(f, "X: a(n, D) | a(D,) -> (n, D) | (D,)")
        def identity(X):
            return np.asarray(X, dtype=float)

        assert identity(np.ones((5, 2))).shape == (5, 2)
        assert identity(np.ones(2)).shape == (2,)
        with pytest.raises(ShapeContractError):
            identity(np.ones((5, 2, 2)))

    def test_scalar_symbol_binds_into_returns(self):
        @lambda f: apply_contract(f, "k: n -> (n,)")
        def make(k):
            return np.zeros(k + 1)

        with pytest.raises(ShapeContractError, match="return"):
            make(3)

    def test_dtype_classes(self):
        @lambda f: apply_contract(f, "idx: i(n,)")
        def take(idx):
            return idx

        take(np.arange(3))
        with pytest.raises(ShapeContractError, match="dtype"):
            take(np.ones(3))  # float where an integer class is declared

        @lambda f: apply_contract(f, "X: (n,)")
        def strict_float(X):
            return X

        with pytest.raises(ShapeContractError, match="dtype"):
            strict_float(np.arange(3))  # int where float64 is declared

    def test_nan_tripwire_and_opt_out(self):
        @lambda f: apply_contract(f, "X: (n,)")
        def checked(X):
            return X

        with pytest.raises(ShapeContractError, match="non-finite"):
            checked(np.array([1.0, np.nan]))

        @lambda f: apply_contract(f, "X: (n,)", check_finite=False)
        def unchecked(X):
            return X

        unchecked(np.array([1.0, np.nan]))

    def test_optional_param(self):
        @lambda f: apply_contract(f, "X: (n,), out?: (n,)")
        def f(X, out=None):
            return None

        f(np.ones(3))
        f(np.ones(3), out=np.empty(3))

        @lambda f: apply_contract(f, "X: (n,), out: (n,)")
        def g(X, out=None):
            return None

        with pytest.raises(ShapeContractError, match="None"):
            g(np.ones(3), out=None)

    def test_out_buffer_aliasing_guard(self):
        @lambda f: apply_contract(f, "X: (n,), out: (n,)")
        def guarded(X, out):
            return None

        buf = np.ones(4)
        with pytest.raises(ShapeContractError, match="aliases"):
            guarded(buf, out=buf[:])

        @lambda f: apply_contract(
            f, "X: (n,), out: (n,)", allow_aliasing=True
        )
        def tolerant(X, out):
            return None

        tolerant(buf, out=buf[:])

    def test_unknown_contract_name_rejected_at_decoration(self):
        with pytest.raises(ContractParseError, match="not in"):
            apply_contract(lambda X: X, "Y: (n,)")

    def test_wrapper_exposes_contract(self):
        wrapped = apply_contract(lambda X: X, "X: (n,)")
        assert wrapped.__shape_contract__.param_names == ("X",)


# -- the REPRO_SANITIZE gate -------------------------------------------------


def _probe(env_value: str | None) -> str:
    """Report decorator behaviour from a fresh interpreter."""
    code = (
        "from repro.utils.contracts import shape_contract\n"
        "def f(X):\n"
        "    return X\n"
        "g = shape_contract('X: (n,)')(f)\n"
        "print('identity' if g is f else 'wrapped')\n"
    )
    import os

    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_SANITIZE", None)
    if env_value is not None:
        env["REPRO_SANITIZE"] = env_value
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


class TestSanitizeGate:
    def test_decorator_is_identity_when_off(self):
        assert _probe(None) == "identity"
        assert _probe("0") == "identity"

    def test_decorator_wraps_when_on(self):
        assert _probe("1") == "wrapped"

    def test_sanitize_enabled_reflects_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not runtime.sanitize_enabled()
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert runtime.sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not runtime.sanitize_enabled()
