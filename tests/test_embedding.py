"""Tests for random embedding and Algorithm 2 dimension selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import (
    RandomEmbedding,
    clip_to_box,
    pick_flat_dimension,
    select_embedding_dimension,
)
from repro.synthetic import EmbeddedFunction, sphere


class TestRandomEmbedding:
    def test_matrix_shape(self):
        emb = RandomEmbedding(10, 3, seed=0)
        assert emb.matrix.shape == (10, 3)

    def test_z_bounds_sqrt_d(self):
        emb = RandomEmbedding(10, 4, seed=0)
        bounds = emb.z_bounds()
        np.testing.assert_allclose(bounds[:, 0], -2.0)
        np.testing.assert_allclose(bounds[:, 1], 2.0)

    def test_to_original_stays_in_box(self, rng):
        emb = RandomEmbedding(12, 4, seed=1)
        Z = rng.uniform(-2, 2, (100, 4))
        X = emb.to_original(Z)
        assert np.all(X >= -1.0) and np.all(X <= 1.0)

    def test_single_vector_shape(self):
        emb = RandomEmbedding(5, 2, seed=0)
        z = np.array([0.1, -0.2])
        assert emb.to_original(z).shape == (5,)
        assert emb.to_embedded(np.zeros(5)).shape == (2,)

    def test_unclipped_is_linear(self, rng):
        emb = RandomEmbedding(6, 2, seed=2)
        z1, z2 = rng.standard_normal((2, 2))
        lhs = emb.to_original_unclipped(z1 + z2)
        rhs = emb.to_original_unclipped(z1) + emb.to_original_unclipped(z2)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    def test_pinv_identity_eq12(self):
        emb = RandomEmbedding(8, 3, seed=3)
        A = emb.matrix
        np.testing.assert_allclose(emb.pinv @ A, np.eye(3), atol=1e-10)

    def test_pinv_roundtrip_for_range_points(self, rng):
        """x in range(A) maps down and back exactly (before clipping)."""
        emb = RandomEmbedding(8, 3, seed=4)
        z = 0.1 * rng.standard_normal(3)
        x = emb.to_original_unclipped(z)
        np.testing.assert_allclose(emb.to_embedded(x), z, atol=1e-10)

    def test_pinv_conditioning_regression(self):
        """QR pseudo-inverse survives an ill-conditioned embedding draw.

        The previous normal-equation form ``solve(AᵀA, Aᵀ)`` squares the
        condition number: at cond(A) = 1e8, AᵀA has cond 1e16 and the
        Moore-Penrose identity A A† A = A fails at O(1) relative error.
        The QR route keeps the error near machine precision.
        """
        rng = np.random.default_rng(11)
        D, d = 30, 6
        U, _ = np.linalg.qr(rng.standard_normal((D, d)))
        V, _ = np.linalg.qr(rng.standard_normal((d, d)))
        singular_values = np.logspace(0, -8, d)  # cond(A) = 1e8
        A = U @ np.diag(singular_values) @ V.T

        emb = RandomEmbedding(D, d, seed=0)
        emb.matrix = A
        emb._pinv = None
        pinv = emb.pinv

        # left-inverse identity A† A = I and the Eq. 12 reverse map stay
        # accurate to ~cond(A) * eps
        left_error = np.abs(pinv @ A - np.eye(d)).max()
        assert left_error < 1e-7
        rng2 = np.random.default_rng(12)
        z = rng2.standard_normal(d)
        z_error = np.abs(pinv @ (A @ z) - z).max()
        assert z_error < 1e-7

        # the old formula genuinely fails here (O(1) error), guarding
        # against the normal-equation form being reintroduced
        gram_pinv = np.linalg.solve(A.T @ A, A.T)
        gram_error = np.abs(gram_pinv @ A - np.eye(d)).max()
        assert gram_error > 1e-2
        assert gram_error > left_error * 1e4

    def test_reproducible_matrix(self):
        a = RandomEmbedding(7, 2, seed=9).matrix
        b = RandomEmbedding(7, 2, seed=9).matrix
        np.testing.assert_array_equal(a, b)

    def test_custom_bounds(self):
        bounds = np.array([[0.0, 2.0], [0.0, 4.0]])
        emb = RandomEmbedding(2, 1, bounds=bounds, seed=0)
        X = emb.to_original(np.array([[100.0]]))
        assert np.all(X >= [0.0, 0.0]) and np.all(X <= [2.0, 4.0])

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            RandomEmbedding(5, 6)
        with pytest.raises(ValueError):
            RandomEmbedding(5, 0)

    def test_clip_to_box(self):
        out = clip_to_box(np.array([[2.0, -3.0]]), np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
        np.testing.assert_array_equal(out, [[1.0, -1.0]])


class TestEmbeddingTheorem:
    def test_optimum_reachable_through_embedding(self, rng):
        """Wang et al. Theorem: for d >= d_e, the embedded search space
        contains a point matching the effective-subspace optimum."""
        fun = EmbeddedFunction(sphere, total_dim=10, effective_dim=2, seed=5)
        emb = RandomEmbedding(10, 4, seed=6)
        bounds = emb.z_bounds()
        # dense random search in z
        Z = rng.uniform(bounds[:, 0], bounds[:, 1], (20000, 4))
        values = np.array([fun(x) for x in emb.to_original(Z)])
        # optimum of the sphere through the box is ~0 (origin is reachable)
        assert values.min() < 0.01


class TestPickFlatDimension:
    def test_picks_knee(self):
        dims = [1, 2, 3, 4, 5, 6]
        mse = np.array([1.0, 0.5, 0.1, 0.08, 0.08, 0.08])
        assert pick_flat_dimension(dims, mse, tolerance=0.1) == 3

    def test_tolerance_trades_accuracy_for_reduction(self):
        dims = [1, 2, 3, 4]
        mse = np.array([1.0, 0.2, 0.05, 0.0])
        strict = pick_flat_dimension(dims, mse, tolerance=0.01)
        loose = pick_flat_dimension(dims, mse, tolerance=0.3)
        assert loose <= strict

    def test_flat_curve_picks_smallest(self):
        assert pick_flat_dimension([2, 4, 6], np.array([0.3, 0.3, 0.3])) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            pick_flat_dimension([1, 2], np.array([1.0]))
        with pytest.raises(ValueError):
            pick_flat_dimension([], np.array([]))
        with pytest.raises(ValueError):
            pick_flat_dimension([1], np.array([1.0]), tolerance=1.5)


class TestSelectEmbeddingDimension:
    def test_detects_effective_dimension(self, rng):
        """Algorithm 2's MSE flattens near the true effective dimension."""
        fun = EmbeddedFunction(sphere, total_dim=12, effective_dim=2, scale=2.0, seed=7)
        X = rng.uniform(-1, 1, (40, 12))
        y = np.array([fun(x) for x in X])
        result = select_embedding_dimension(
            X, y, dims=[1, 2, 4, 6, 8], n_trials=4, seed=8
        )
        # MSE at d=1 must be clearly worse than at d >= 4
        assert result.mse[0] > result.mse[2]
        assert 2 <= result.selected_dim <= 8

    def test_normalized_range(self, rng):
        fun = EmbeddedFunction(sphere, total_dim=8, effective_dim=2, seed=1)
        X = rng.uniform(-1, 1, (25, 8))
        y = np.array([fun(x) for x in X])
        result = select_embedding_dimension(X, y, dims=[1, 3, 5], n_trials=2, seed=2)
        assert result.normalized_mse.min() == pytest.approx(0.0)
        assert result.normalized_mse.max() == pytest.approx(1.0)

    def test_loo_criterion(self, rng):
        fun = EmbeddedFunction(sphere, total_dim=6, effective_dim=2, seed=3)
        X = rng.uniform(-1, 1, (20, 6))
        y = np.array([fun(x) for x in X])
        result = select_embedding_dimension(
            X, y, dims=[1, 2, 4], n_trials=2, criterion="loo", seed=4
        )
        assert result.selected_dim in (1, 2, 4)

    def test_validation(self, rng):
        X = rng.uniform(-1, 1, (10, 4))
        y = np.zeros(10)
        with pytest.raises(ValueError):
            select_embedding_dimension(X, y, dims=[5])
        with pytest.raises(ValueError):
            select_embedding_dimension(X, y, n_trials=0)
        with pytest.raises(ValueError):
            select_embedding_dimension(X, y, criterion="nope")


@settings(max_examples=20, deadline=None)
@given(
    D=st.integers(2, 20),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_projection_idempotent_and_bounded(D, seed):
    """p_Omega is idempotent and its output is always inside Omega."""
    rng = np.random.default_rng(seed)
    d = rng.integers(1, D + 1)
    emb = RandomEmbedding(D, int(d), seed=rng)
    Z = rng.uniform(-np.sqrt(d), np.sqrt(d), (20, int(d)))
    X = emb.to_original(Z)
    assert np.all(np.abs(X) <= 1.0 + 1e-12)
    np.testing.assert_allclose(
        clip_to_box(X, emb.lower, emb.upper), X, atol=1e-12
    )
