"""Tests for the experiment harness: configs, methods, tables, figures."""

import numpy as np
import pytest

from repro.circuits.behavioral import UVLOTestbench
from repro.experiments import (
    METHOD_ORDER,
    dimension_selection_curve,
    embedding_illustration,
    format_table,
    ldo_config,
    optimizer_scaling,
    run_method,
    run_table,
    shared_initial_data,
    uvlo_config,
)


@pytest.fixture(scope="module")
def tb():
    return UVLOTestbench()


def tiny_cfg(**overrides):
    defaults = dict(
        n_sequential=4,
        batch_size=2,
        n_batches=2,
        mc_samples=30,
        sss_samples_per_scale=10,
        global_budget=60,
        local_budget=30,
        dimension_trials=2,
        seed=5,
    )
    defaults.update(overrides)
    return uvlo_config(**defaults)


class TestConfigs:
    def test_uvlo_defaults_match_paper(self):
        cfg = uvlo_config()
        assert cfg.n_init == 5
        assert cfg.n_sequential == 95
        assert cfg.batch_size == 19
        assert cfg.n_batches == 5
        assert cfg.mc_samples == 20_000
        assert cfg.embedding_dim == 8
        assert cfg.bo_budget == 100

    def test_ldo_defaults_match_paper(self):
        cfg = ldo_config()
        assert cfg.n_init == 50
        assert cfg.batch_size == 70
        assert cfg.n_batches == 5
        assert cfg.embedding_dim == 30
        assert cfg.bo_budget == 400

    def test_scaled_preserves_bo_budgets(self):
        cfg = uvlo_config().scaled(0.1)
        assert cfg.mc_samples == 2000
        assert cfg.n_sequential == 95  # BO budgets stay paper-exact

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            uvlo_config().scaled(0.0)

    def test_kernel_factory(self):
        iso = uvlo_config(kernel="iso").kernel_factory()(4)
        assert iso.lengthscales.shape == (1,)
        ard = uvlo_config(kernel="ard").kernel_factory()(4)
        assert ard.lengthscales.shape == (4,)
        with pytest.raises(ValueError):
            uvlo_config(kernel="rbf?").kernel_factory()


class TestRunMethod:
    def test_shared_initial_data_deterministic(self, tb):
        cfg = tiny_cfg()
        a = shared_initial_data(tb, "delta_vthl", cfg)
        b = shared_initial_data(tb, "delta_vthl", cfg)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    @pytest.mark.parametrize("method", METHOD_ORDER)
    def test_every_method_runs(self, tb, method):
        cfg = tiny_cfg()
        result = run_method(method, tb, "delta_vthl", cfg)
        assert result.n_evaluations > 0
        assert np.all(np.abs(result.X) <= 1.0 + 1e-9)

    def test_budget_accounting(self, tb):
        cfg = tiny_cfg()
        ei = run_method("EI", tb, "delta_vthl", cfg)
        assert ei.n_evaluations == cfg.bo_budget
        pbo = run_method("pBO", tb, "delta_vthl", cfg)
        assert pbo.n_evaluations == cfg.n_init + cfg.batch_size * cfg.n_batches
        mc = run_method("MC", tb, "delta_vthl", cfg)
        assert mc.n_evaluations == cfg.mc_samples

    def test_unknown_method(self, tb):
        with pytest.raises(ValueError):
            run_method("BFGS", tb, "delta_vthl", tiny_cfg())


class TestRunTable:
    def test_table_rows_and_formatting(self, tb):
        cfg = tiny_cfg()
        table = run_table(tb, cfg, methods=("MC", "LCB", "This work"))
        assert len(table.rows) == 3
        row = table.row("delta_vthl", "MC")
        assert row.sim_budget == "30"
        text = format_table(table)
        assert "Worst Case" in text and "This work" in text

    def test_missing_row_raises(self, tb):
        cfg = tiny_cfg()
        table = run_table(tb, cfg, methods=("MC",))
        with pytest.raises(KeyError):
            table.row("delta_vthl", "EI")

    def test_budget_labels(self, tb):
        cfg = tiny_cfg()
        table = run_table(tb, cfg, methods=("LCB", "pBO"))
        assert table.row("delta_vthl", "LCB").sim_budget == "5init + 4seq"
        assert table.row("delta_vthl", "pBO").sim_budget == "5init + 2x2batch"


class TestFigures:
    def test_optimizer_scaling_superlinear(self):
        result = optimizer_scaling(
            dims=(2, 8), n_repeats=2, f_target=0.2, max_evaluations=50_000, seed=0
        )
        for name, counts in result.evaluations.items():
            # 4x the dimension costs more than 4x the evaluations would
            # be linear; super-linear growth at least doubles the ratio
            assert counts[1] > counts[0], name

    def test_embedding_illustration_recovers_optimum(self):
        result = embedding_illustration(seed=1)
        assert result.y_optimum_embedded == pytest.approx(
            result.y_optimum_2d, abs=0.01
        )

    def test_dimension_selection_curve(self, tb):
        cfg = tiny_cfg(n_init=6)
        curve = dimension_selection_curve(
            tb, "delta_vthl", cfg, dims=[1, 4, 8], seed=3
        )
        assert curve.dims.shape == (3,)
        assert curve.normalized_mse.min() == pytest.approx(0.0)
        assert curve.selected_dim in (1, 4, 8)
