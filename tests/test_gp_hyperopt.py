"""Tests for marginal-likelihood hyperparameter fitting."""

import numpy as np
import pytest

from repro.gp import GaussianProcess, Standardizer, fit_hyperparameters
from repro.kernels import Matern52, SquaredExponential


class TestFitHyperparameters:
    def test_improves_lml(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(
            Matern52(dim=3, lengthscale=10.0), noise_variance=1.0
        ).fit(X, y)
        before = gp.log_marginal_likelihood()
        result = fit_hyperparameters(gp, n_restarts=3, seed=0)
        assert result.log_marginal_likelihood >= before

    def test_leaves_gp_at_best_theta(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=0.1).fit(X, y)
        result = fit_hyperparameters(gp, n_restarts=2, seed=1)
        np.testing.assert_allclose(gp.theta, result.theta)
        assert gp.log_marginal_likelihood() == pytest.approx(
            result.log_marginal_likelihood, rel=1e-9
        )

    def test_respects_bounds(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=0.1).fit(X, y)
        fit_hyperparameters(gp, n_restarts=3, seed=2)
        bounds = gp.theta_bounds()
        assert np.all(gp.theta >= bounds[:, 0] - 1e-9)
        assert np.all(gp.theta <= bounds[:, 1] + 1e-9)

    def test_recovers_noise_scale(self, rng):
        """With abundant noisy data, fitted noise lands near the truth."""
        X = rng.uniform(-2, 2, (120, 1))
        true_noise = 0.05
        y = np.sin(X[:, 0]) + np.sqrt(true_noise) * rng.standard_normal(120)
        gp = GaussianProcess(SquaredExponential(dim=1), noise_variance=1.0).fit(X, y)
        fit_hyperparameters(gp, n_restarts=3, seed=3)
        assert 0.01 < gp.noise_variance < 0.25

    def test_requires_fit(self):
        gp = GaussianProcess(SquaredExponential())
        with pytest.raises(RuntimeError):
            fit_hyperparameters(gp)

    def test_rejects_zero_restarts(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=0.1).fit(X, y)
        with pytest.raises(ValueError):
            fit_hyperparameters(gp, n_restarts=0)

    def test_reproducible_with_seed(self, small_dataset):
        X, y = small_dataset
        results = []
        for _ in range(2):
            gp = GaussianProcess(Matern52(dim=3), noise_variance=0.1).fit(X, y)
            results.append(fit_hyperparameters(gp, n_restarts=3, seed=77).theta)
        np.testing.assert_allclose(results[0], results[1])


class TestStandardizer:
    def test_transform_roundtrip(self, rng):
        y = rng.uniform(-5, 20, 50)
        s = Standardizer()
        z = s.fit_transform(y)
        np.testing.assert_allclose(s.inverse_transform(z), y, atol=1e-12)

    def test_standardized_moments(self, rng):
        y = rng.uniform(-5, 20, 200)
        z = Standardizer().fit_transform(y)
        assert abs(z.mean()) < 1e-12
        assert z.std() == pytest.approx(1.0)

    def test_scalar_threshold_maps_consistently(self, rng):
        y = rng.uniform(0, 10, 30)
        s = Standardizer().fit(y)
        t = 4.2
        assert s.transform_scalar(t) == pytest.approx(s.transform([t])[0])
        assert s.inverse_transform_scalar(s.transform_scalar(t)) == pytest.approx(t)

    def test_constant_labels_use_unit_scale(self):
        s = Standardizer().fit([3.0, 3.0, 3.0])
        np.testing.assert_allclose(s.transform([3.0, 4.0]), [0.0, 1.0])

    def test_variance_scaling(self, rng):
        y = rng.uniform(-5, 20, 50)
        s = Standardizer().fit(y)
        assert s.scale_variance(1.0) == pytest.approx(s.scale_** 2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform([1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Standardizer().fit([])
