"""Tests for exact GP regression (paper Eqs. 5-8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import ConstantMean, GaussianProcess, ZeroMean
from repro.kernels import Matern52, SquaredExponential


def make_gp(noise=1e-8, **kwargs):
    return GaussianProcess(SquaredExponential(dim=1), noise_variance=noise, **kwargs)


class TestFitPredict:
    def test_interpolates_with_tiny_noise(self):
        X = np.linspace(-1, 1, 7)[:, None]
        y = np.sin(3 * X[:, 0])
        gp = make_gp().fit(X, y)
        pred = gp.predict(X)
        np.testing.assert_allclose(pred.mean, y, atol=1e-4)
        assert np.all(pred.variance < 1e-4)

    def test_uncertainty_grows_away_from_data(self):
        X = np.zeros((1, 1))
        gp = make_gp().fit(X, [0.0])
        near = gp.predict([[0.1]]).variance[0]
        far = gp.predict([[3.0]]).variance[0]
        assert far > near

    def test_variance_nonnegative(self, rng):
        X = rng.uniform(-1, 1, (30, 2))
        y = rng.standard_normal(30)
        gp = GaussianProcess(Matern52(dim=2), noise_variance=1e-6).fit(X, y)
        pred = gp.predict(rng.uniform(-1, 1, (50, 2)))
        assert np.all(pred.variance >= 0)

    def test_prior_reversion_far_away(self):
        gp = make_gp().fit([[0.0]], [5.0])
        pred = gp.predict([[100.0]])
        assert pred.mean[0] == pytest.approx(0.0, abs=1e-6)  # zero prior mean
        assert pred.variance[0] == pytest.approx(1.0, abs=1e-6)

    def test_constant_mean(self):
        gp = GaussianProcess(
            SquaredExponential(dim=1), noise_variance=1e-8, mean=ConstantMean(2.0)
        ).fit([[0.0]], [2.0])
        pred = gp.predict([[50.0]])
        assert pred.mean[0] == pytest.approx(2.0, abs=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            make_gp().predict([[0.0]])

    def test_std_is_sqrt_variance(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-4).fit(X, y)
        pred = gp.predict(X[:5])
        np.testing.assert_allclose(pred.std, np.sqrt(pred.variance))


class TestAddData:
    def test_incremental_matches_batch(self, small_dataset):
        X, y = small_dataset
        gp_batch = GaussianProcess(Matern52(dim=3), noise_variance=1e-4).fit(X, y)
        gp_inc = GaussianProcess(Matern52(dim=3), noise_variance=1e-4)
        gp_inc.fit(X[:10], y[:10]).add_data(X[10:], y[10:])
        test = X[:3] + 0.05
        np.testing.assert_allclose(
            gp_inc.predict(test).mean, gp_batch.predict(test).mean, atol=1e-10
        )

    def test_add_data_without_fit_fits(self):
        gp = make_gp()
        gp.add_data([[0.0]], [1.0])
        assert gp.is_fitted

    def test_dim_mismatch_rejected(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-4).fit(X, y)
        with pytest.raises(ValueError):
            gp.add_data(np.zeros((1, 2)), [0.0])


class TestPredictCov:
    def test_cov_diag_matches_variance(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-4).fit(X, y)
        test = X[:6] * 0.9
        pred = gp.predict(test)
        _, cov = gp.predict_cov(test)
        np.testing.assert_allclose(np.diag(cov), pred.variance, atol=1e-8)

    def test_cov_symmetric_psd(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-4).fit(X, y)
        _, cov = gp.predict_cov(X[:8] * 0.5)
        np.testing.assert_array_equal(cov, cov.T)  # exactly, via symmetrize
        assert np.linalg.eigvalsh(cov).min() > -1e-8

    def test_symmetrize_restores_psd_sampling(self, rng):
        # the regression symmetrize pins: ½(C + Cᵀ) + jitter must make a
        # round-off-asymmetric covariance exactly symmetric and Cholesky-able
        from repro.gp.model import symmetrize

        A = rng.standard_normal((12, 12))
        cov = A @ A.T
        cov += rng.standard_normal((12, 12)) * 1e-13  # float asymmetry
        assert not np.array_equal(cov, cov.T)
        fixed = symmetrize(cov, jitter=1e-10)
        np.testing.assert_array_equal(fixed, fixed.T)
        np.linalg.cholesky(fixed)  # must not raise
        # jitter lands only on the diagonal
        np.testing.assert_allclose(
            fixed - np.diag(np.full(12, 1e-10)), symmetrize(cov), atol=0
        )

    def test_posterior_samples_shape(self, small_dataset, rng):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-4).fit(X, y)
        samples = gp.sample_posterior(X[:4], n_samples=5, rng=rng)
        assert samples.shape == (5, 4)


class TestLogMarginalLikelihood:
    def test_matches_direct_formula(self, small_dataset):
        X, y = small_dataset
        noise = 1e-3
        gp = GaussianProcess(Matern52(dim=3), noise_variance=noise).fit(X, y)
        K = gp.kernel(X) + noise * np.eye(len(y))
        direct = (
            -0.5 * y @ np.linalg.solve(K, y)
            - 0.5 * np.linalg.slogdet(K)[1]
            - 0.5 * len(y) * np.log(2 * np.pi)
        )
        assert gp.log_marginal_likelihood() == pytest.approx(direct, rel=1e-9)

    def test_gradient_matches_numeric(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(
            Matern52(dim=3, ard=True), noise_variance=1e-2
        ).fit(X, y)
        analytic = gp.log_marginal_likelihood_gradient()
        theta0 = gp.theta.copy()
        eps = 1e-6
        numeric = np.zeros_like(theta0)
        for i in range(theta0.shape[0]):
            tp = theta0.copy()
            tp[i] += eps
            gp.theta = tp
            lp = gp.log_marginal_likelihood()
            tm = theta0.copy()
            tm[i] -= eps
            gp.theta = tm
            lm = gp.log_marginal_likelihood()
            numeric[i] = (lp - lm) / (2 * eps)
        gp.theta = theta0
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_gradient_without_noise_training(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(
            Matern52(dim=3), noise_variance=1e-2, train_noise=False
        ).fit(X, y)
        grad = gp.log_marginal_likelihood_gradient()
        assert grad.shape == (gp.kernel.n_params,)


class TestDiagnostics:
    def test_training_mse_small_for_interpolation(self):
        X = np.linspace(-1, 1, 9)[:, None]
        y = np.cos(2 * X[:, 0])
        gp = make_gp().fit(X, y)
        assert gp.training_mse() < 1e-6

    def test_loo_mse_larger_than_training_mse(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-3).fit(X, y)
        assert gp.loo_mse() >= gp.training_mse()

    def test_loo_residuals_match_refit(self, rng):
        """The closed-form LOO residual equals actually leaving one out."""
        X = rng.uniform(-1, 1, (10, 1))
        y = np.sin(2 * X[:, 0])
        noise = 1e-2
        gp = GaussianProcess(
            SquaredExponential(dim=1), noise_variance=noise
        ).fit(X, y)
        residuals = gp.loo_residuals()
        i = 3
        mask = np.arange(10) != i
        gp_loo = GaussianProcess(
            SquaredExponential(dim=1), noise_variance=noise
        ).fit(X[mask], y[mask])
        manual = y[i] - gp_loo.predict(X[i : i + 1]).mean[0]
        assert residuals[i] == pytest.approx(manual, rel=1e-6)


class TestThetaPlumbing:
    def test_theta_includes_noise(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-2).fit(X, y)
        assert gp.theta.shape == (gp.kernel.n_params + 1,)
        assert gp.theta[-1] == pytest.approx(np.log(1e-2))

    def test_setting_theta_refits(self, small_dataset):
        X, y = small_dataset
        gp = GaussianProcess(Matern52(dim=3), noise_variance=1e-2).fit(X, y)
        before = gp.predict(X[:1]).mean[0]
        theta = gp.theta.copy()
        theta[0] += 1.0
        gp.theta = theta
        after = gp.predict(X[:1]).mean[0]
        assert before != after

    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ValueError):
            GaussianProcess(SquaredExponential(), noise_variance=0.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(3, 20))
def test_property_posterior_variance_never_exceeds_prior(seed, n):
    """Conditioning on data can only reduce predictive variance."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, (n, 2))
    y = rng.standard_normal(n)
    kernel = Matern52(dim=2, variance=1.3)
    gp = GaussianProcess(kernel, noise_variance=1e-4).fit(X, y)
    test = rng.uniform(-2, 2, (10, 2))
    assert np.all(gp.predict(test).variance <= kernel.diag(test) + 1e-9)
