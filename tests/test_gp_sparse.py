"""Sparse inducing-point GP: equivalence harness, re-selection, threading.

The load-bearing suite for the surrogate layer:

* with ``m >= n`` the sparse model must agree with the exact GP to 1e-8
  on mean / variance / covariance / evidence (the DTC + VFE identities),
* incremental ``add_data`` against a fixed inducing set must match a
  fresh fit bitwise-tight,
* inducing-point selection is deterministic (no RNG),
* ``surrogate=`` threads through RunSpec / Campaign / serve jobs, and a
  sparse-surrogate campaign resumes from its ledger bitwise-identically.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.bo.engine import RunSpec, SurrogateManager
from repro.bo.rembo import RemboBO
from repro.campaign import Campaign, CampaignSpec, run_campaign_spec
from repro.circuits.behavioral.uvlo import UVLOTestbench
from repro.gp import (
    GaussianProcess,
    SparseGaussianProcess,
    SurrogateModel,
    SurrogateSpec,
    coerce_surrogate_spec,
    fit_hyperparameters,
    make_surrogate,
    select_inducing_points,
    surrogate_kind_of,
)
from repro.kernels import Matern52, SquaredExponential
from repro.runtime import RunLedger, RuntimePolicy, resume
from repro.serve.jobs import build_spec

EQ_TOL = 1e-8  # the m = n equivalence gate


def pair(X, y, noise=1e-4, kernel=None):
    """An exact GP and an m = n sparse GP conditioned on the same data."""
    dim = X.shape[1]
    k = kernel if kernel is not None else Matern52(dim=dim, ard=True)
    exact = GaussianProcess(k.clone(), noise_variance=noise).fit(X, y)
    sparse = SparseGaussianProcess(
        k.clone(), noise_variance=noise, m=X.shape[0]
    ).fit(X, y)
    return exact, sparse


class TestInducingSelection:
    def test_shape_and_determinism(self, rng):
        X = rng.uniform(-1, 1, (50, 4))
        Z1 = select_inducing_points(X, 10)
        Z2 = select_inducing_points(X.copy(), 10)
        assert Z1.shape == (10, 4)
        np.testing.assert_array_equal(Z1, Z2)  # bitwise: no RNG anywhere

    def test_m_equal_n_returns_data(self, rng):
        X = rng.uniform(-1, 1, (7, 2))
        Z = select_inducing_points(X, 7)
        np.testing.assert_array_equal(Z, X)
        assert Z is not X  # a copy, not an alias

    def test_centers_spread_over_clusters(self, rng):
        lo = rng.normal(-5.0, 0.1, (30, 2))
        hi = rng.normal(5.0, 0.1, (30, 2))
        Z = select_inducing_points(np.vstack([lo, hi]), 4)
        assert np.any(Z[:, 0] < 0) and np.any(Z[:, 0] > 0)

    def test_validation(self, rng):
        X = rng.uniform(-1, 1, (5, 2))
        with pytest.raises(ValueError):
            select_inducing_points(X, 0)
        with pytest.raises(ValueError):
            select_inducing_points(X, 6)
        with pytest.raises(ValueError):
            select_inducing_points(X, 2, n_iters=-1)


class TestExactEquivalence:
    """m = n collapses DTC/VFE to the exact GP; pinned at 1e-8."""

    def test_mean_variance_match(self, small_dataset, rng):
        X, y = small_dataset
        exact, sparse = pair(X, y)
        X_test = rng.uniform(-1, 1, (40, 3))
        pe, ps = exact.predict(X_test), sparse.predict(X_test)
        np.testing.assert_allclose(ps.mean, pe.mean, atol=EQ_TOL)
        np.testing.assert_allclose(ps.variance, pe.variance, atol=EQ_TOL)

    def test_covariance_matches(self, small_dataset, rng):
        X, y = small_dataset
        exact, sparse = pair(X, y)
        X_test = rng.uniform(-1, 1, (12, 3))
        me, ce = exact.predict_cov(X_test)
        ms, cs = sparse.predict_cov(X_test)
        np.testing.assert_allclose(ms, me, atol=EQ_TOL)
        np.testing.assert_allclose(cs, ce, atol=EQ_TOL)

    def test_evidence_matches(self, small_dataset):
        X, y = small_dataset
        exact, sparse = pair(X, y)
        assert sparse.log_marginal_likelihood() == pytest.approx(
            exact.log_marginal_likelihood(), abs=EQ_TOL
        )

    def test_evidence_gradient_matches_fd(self, small_dataset):
        # the sparse gradient is a central finite difference of the bound;
        # at m = n the bound IS the exact evidence, so it must agree with
        # the exact analytic gradient to FD accuracy (not to 1e-8)
        X, y = small_dataset
        exact, sparse = pair(X, y)
        ge = exact.log_marginal_likelihood_gradient()
        vs, gs = sparse.log_marginal_likelihood_value_and_gradient()
        assert vs == pytest.approx(exact.log_marginal_likelihood(), abs=EQ_TOL)
        np.testing.assert_allclose(gs, ge, atol=1e-4, rtol=1e-5)

    def test_different_kernels(self, small_dataset, rng):
        X, y = small_dataset
        exact, sparse = pair(X, y, kernel=SquaredExponential(dim=3))
        X_test = rng.uniform(-1, 1, (20, 3))
        np.testing.assert_allclose(
            sparse.predict(X_test).mean, exact.predict(X_test).mean, atol=EQ_TOL
        )

    def test_vfe_is_lower_bound_when_sparse(self, rng):
        X = rng.uniform(-1, 1, (60, 2))
        y = np.sin(3 * X[:, 0]) + 0.3 * X[:, 1]
        exact = GaussianProcess(Matern52(dim=2), noise_variance=1e-2).fit(X, y)
        sparse = SparseGaussianProcess(
            Matern52(dim=2), noise_variance=1e-2, m=12
        ).fit(X, y)
        assert sparse.n_inducing == 12
        assert (
            sparse.log_marginal_likelihood()
            <= exact.log_marginal_likelihood() + 1e-9
        )


class TestIncremental:
    def test_add_data_matches_fresh_fit(self, rng):
        X = rng.uniform(-1, 1, (40, 3))
        y = np.sin(2 * X[:, 0]) - X[:, 2]
        Z = select_inducing_points(X, 8)
        # a fixed inducing set isolates the factor-extension arithmetic
        inc = SparseGaussianProcess(
            Matern52(dim=3), noise_variance=1e-4, inducing_points=Z
        ).fit(X[:25], y[:25])
        inc.add_data(X[25:], y[25:])
        fresh = SparseGaussianProcess(
            Matern52(dim=3), noise_variance=1e-4, inducing_points=Z
        ).fit(X, y)
        X_test = rng.uniform(-1, 1, (15, 3))
        np.testing.assert_allclose(
            inc.predict(X_test).mean, fresh.predict(X_test).mean, atol=1e-10
        )
        np.testing.assert_allclose(
            inc.predict(X_test).variance,
            fresh.predict(X_test).variance,
            atol=1e-10,
        )
        assert inc.log_marginal_likelihood() == pytest.approx(
            fresh.log_marginal_likelihood(), abs=1e-8
        )

    def test_add_data_without_fit_fits(self, rng):
        gp = SparseGaussianProcess(Matern52(dim=2), m=4)
        gp.add_data(rng.uniform(-1, 1, (6, 2)), rng.standard_normal(6))
        assert gp.is_fitted and gp.n_train == 6

    def test_set_labels_keeps_inputs(self, rng):
        X = rng.uniform(-1, 1, (12, 2))
        gp = SparseGaussianProcess(Matern52(dim=2), m=6).fit(
            X, rng.standard_normal(12)
        )
        y2 = rng.standard_normal(12)
        gp.set_labels(y2)
        np.testing.assert_array_equal(gp.y_train, y2)
        fresh = SparseGaussianProcess(
            Matern52(dim=2), m=6, inducing_points=gp.inducing_points
        ).fit(X, y2)
        np.testing.assert_allclose(
            gp.predict(X).mean, fresh.predict(X).mean, atol=1e-10
        )

    def test_reselection_triggers_on_coverage_loss(self, rng):
        # fill the inducing budget on one cluster, then append a far-away
        # cluster: every new point is uncovered and the monitor must trip
        X0 = rng.normal(0.0, 0.3, (30, 2))
        gp = SparseGaussianProcess(
            Matern52(dim=2), m=8, reselect_coverage=0.5, reselect_fraction=0.1
        ).fit(X0, rng.standard_normal(30))
        assert gp.n_reselections == 0
        X_far = rng.normal(50.0, 0.3, (10, 2))
        gp.add_data(X_far, rng.standard_normal(10))
        assert gp.n_reselections == 1
        # the rebuilt set now covers both clusters
        assert np.any(np.linalg.norm(gp.inducing_points, axis=1) > 25)

    def test_nearby_data_extends_without_reselection(self, rng):
        X0 = rng.normal(0.0, 0.3, (30, 2))
        gp = SparseGaussianProcess(Matern52(dim=2), m=8).fit(
            X0, rng.standard_normal(30)
        )
        gp.add_data(rng.normal(0.0, 0.3, (10, 2)), rng.standard_normal(10))
        assert gp.n_reselections == 0
        assert gp.n_train == 40

    def test_budget_open_grows_inducing_set(self, rng):
        gp = SparseGaussianProcess(Matern52(dim=2), m=20).fit(
            rng.uniform(-1, 1, (8, 2)), rng.standard_normal(8)
        )
        assert gp.n_inducing == 8  # clamped to n
        gp.add_data(rng.uniform(-1, 1, (7, 2)), rng.standard_normal(7))
        assert gp.n_inducing == 15  # still below budget: tracks the data


class TestModelSurface:
    def test_protocol_conformance(self, rng):
        # fitted models: X_train/y_train raise before fit, which trips the
        # hasattr probing of runtime_checkable protocols
        X, y = rng.uniform(-1, 1, (6, 2)), rng.standard_normal(6)
        assert isinstance(
            SparseGaussianProcess(Matern52(dim=2), m=4).fit(X, y),
            SurrogateModel,
        )
        assert isinstance(GaussianProcess(Matern52(dim=2)).fit(X, y), SurrogateModel)

    def test_posterior_samples_shape(self, small_dataset, rng):
        X, y = small_dataset
        gp = SparseGaussianProcess(Matern52(dim=3), m=10).fit(X, y)
        S = gp.sample_posterior(X[:6], 5, rng)
        assert S.shape == (5, 6)

    def test_predict_cov_symmetric(self, small_dataset, rng):
        X, y = small_dataset
        gp = SparseGaussianProcess(Matern52(dim=3), m=10).fit(X, y)
        _, cov = gp.predict_cov(rng.uniform(-1, 1, (9, 3)))
        np.testing.assert_array_equal(cov, cov.T)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SparseGaussianProcess(Matern52(dim=2)).predict([[0.0, 0.0]])

    def test_theta_setter_refactorizes(self, small_dataset, rng):
        X, y = small_dataset
        gp = SparseGaussianProcess(Matern52(dim=3), m=10).fit(X, y)
        before = gp.predict(X[:4]).mean.copy()
        theta = gp.theta
        theta[:-1] += 0.4
        gp.theta = theta
        after = gp.predict(X[:4]).mean
        assert not np.allclose(before, after)

    def test_pickle_roundtrip(self, small_dataset, rng):
        X, y = small_dataset
        gp = SparseGaussianProcess(Matern52(dim=3), m=10).fit(X, y)
        clone = pickle.loads(pickle.dumps(gp))
        X_test = rng.uniform(-1, 1, (8, 3))
        np.testing.assert_allclose(
            clone.predict(X_test).mean, gp.predict(X_test).mean, atol=1e-12
        )

    def test_hyperopt_improves_evidence(self, rng):
        X = rng.uniform(-1, 1, (35, 2))
        y = np.sin(4 * X[:, 0]) + 0.2 * rng.standard_normal(35)
        gp = SparseGaussianProcess(Matern52(dim=2), m=12).fit(X, y)
        before = gp.log_marginal_likelihood()
        fit_hyperparameters(gp, n_restarts=1, seed=0, max_iter=40)
        assert gp.log_marginal_likelihood() >= before - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseGaussianProcess(Matern52(dim=2), noise_variance=0.0)
        with pytest.raises(ValueError):
            SparseGaussianProcess(Matern52(dim=2), m=0)
        with pytest.raises(ValueError):
            SparseGaussianProcess(Matern52(dim=2), reselect_coverage=1.5)
        with pytest.raises(ValueError):
            SparseGaussianProcess(Matern52(dim=2), reselect_fraction=0.0)


class TestSpecAndFactory:
    def test_coercion_forms(self):
        assert coerce_surrogate_spec(None) is None
        assert coerce_surrogate_spec("sparse").kind == "sparse"
        spec = coerce_surrogate_spec({"kind": "sparse", "m": 32})
        assert spec.m == 32
        assert coerce_surrogate_spec(spec) is spec

    def test_unknown_kind_names_allowed(self):
        with pytest.raises(ValueError, match="exact, sparse, auto"):
            coerce_surrogate_spec("bogus")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="allowed keys"):
            coerce_surrogate_spec({"kind": "sparse", "nope": 1})

    def test_non_spec_type_rejected(self):
        with pytest.raises(TypeError):
            coerce_surrogate_spec(42)

    def test_auto_resolution(self):
        spec = SurrogateSpec(kind="auto", switch_at=100)
        assert spec.resolve_kind(99) == "exact"
        assert spec.resolve_kind(100) == "sparse"
        assert SurrogateSpec(kind="sparse").resolve_kind(1) == "sparse"

    def test_make_surrogate_kinds(self):
        assert surrogate_kind_of(make_surrogate("exact", 3)) == "exact"
        sparse = make_surrogate({"kind": "sparse", "m": 9}, 3)
        assert surrogate_kind_of(sparse) == "sparse"
        assert sparse.m == 9
        assert surrogate_kind_of(make_surrogate(None, 3)) == "exact"
        auto = make_surrogate(SurrogateSpec(kind="auto", switch_at=10), 3, n=50)
        assert surrogate_kind_of(auto) == "sparse"

    def test_spec_noise_overrides_caller_default(self):
        gp = make_surrogate(
            SurrogateSpec(noise_variance=0.5), 2, noise_variance=1e-4
        )
        assert gp.noise_variance == 0.5


class TestManagerAutoSwitch:
    def test_switches_exact_to_sparse_at_threshold(self, rng):
        manager = SurrogateManager(
            2,
            tune_every=10**9,  # isolate the switch from re-tuning
            surrogate={"kind": "auto", "switch_at": 20, "m": 8},
        )
        X = rng.uniform(-1, 1, (15, 2))
        y = rng.standard_normal(15)
        assert surrogate_kind_of(manager.refit(X, y)) == "exact"
        theta_before = manager.model.theta.copy()
        X2 = np.vstack([X, rng.uniform(-1, 1, (10, 2))])
        y2 = np.concatenate([y, rng.standard_normal(10)])
        model = manager.refit(X2, y2)
        assert surrogate_kind_of(model) == "sparse"
        assert model.n_inducing == 8
        # hyperparameters survive the swap
        np.testing.assert_array_equal(model.theta, theta_before)

    def test_sparse_spec_builds_sparse_from_start(self, rng):
        manager = SurrogateManager(2, surrogate="sparse")
        model = manager.refit(
            rng.uniform(-1, 1, (10, 2)), rng.standard_normal(10)
        )
        assert isinstance(model, SparseGaussianProcess)


def uvlo_engine(seed=11):
    return RemboBO(
        batch_size=4, embedding_dim=3, tune_every=1, n_restarts=1, seed=seed
    )


def uvlo_run_spec(bench, surrogate=None):
    return RunSpec(
        bounds=bench.bounds(),
        n_init=6,
        n_batches=2,
        threshold=bench.threshold("delta_vthl"),
        surrogate=surrogate,
    )


class TestEngineThreading:
    def test_runspec_coerces_surrogate(self):
        spec = RunSpec(surrogate="sparse")
        assert isinstance(spec.surrogate, SurrogateSpec)
        with pytest.raises(ValueError, match="allowed kinds"):
            RunSpec(surrogate="bogus")

    def test_campaign_spec_validates_surrogate(self):
        bench = UVLOTestbench()
        with pytest.raises(ValueError, match="allowed kinds"):
            CampaignSpec(
                objective=bench.objective("delta_vthl"),
                engine=uvlo_engine(),
                surrogate="bogus",
            )

    def test_uvlo_campaign_runs_sparse(self):
        bench = UVLOTestbench()
        campaign = Campaign(
            bench.objective("delta_vthl"), uvlo_engine(), seed=11
        )
        out = campaign.run(uvlo_run_spec(bench, surrogate="sparse"))
        assert out.run.n_evaluations == 14  # 6 init + 2 batches of 4
        assert out.spec.surrogate.kind == "sparse"

    def test_campaign_level_surrogate_applies_to_runs(self):
        bench = UVLOTestbench()
        cspec = CampaignSpec(
            objective=bench.objective("delta_vthl"),
            engine=lambda: uvlo_engine(),
            run_spec=uvlo_run_spec(bench),
            seed=11,
            surrogate={"kind": "sparse", "m": 16},
        )
        out = run_campaign_spec(cspec)
        assert out.spec.surrogate.m == 16

    def test_sparse_campaign_matches_m_equals_n_exact(self):
        # with m >= every n the campaign sees, the sparse surrogate is the
        # exact GP — the whole run must be bitwise-identical
        bench = UVLOTestbench()
        spec_exact = uvlo_run_spec(bench)
        spec_sparse = uvlo_run_spec(bench, surrogate={"kind": "sparse", "m": 64})
        exact = uvlo_engine().solve(
            objective=bench.objective("delta_vthl"), spec=spec_exact
        )
        sparse = uvlo_engine().solve(
            objective=bench.objective("delta_vthl"), spec=spec_sparse
        )
        np.testing.assert_allclose(sparse.X, exact.X, atol=1e-8)
        np.testing.assert_allclose(sparse.y, exact.y, atol=1e-8)

    def test_serve_job_accepts_surrogate(self):
        payload = {
            "name": "sparse-job",
            "testbench": "uvlo",
            "engine": {"kind": "rembo", "batch_size": 4, "embedding_dim": 3},
            "run": {"n_init": 6, "n_batches": 1},
            "surrogate": {"kind": "sparse", "m": 32},
        }
        cspec = build_spec(payload)
        assert cspec.surrogate.m == 32
        payload["surrogate"] = "bogus"
        with pytest.raises(ValueError, match="allowed kinds"):
            build_spec(payload)

    def test_ledger_resume_bitwise_identical(self, tmp_path):
        bench = UVLOTestbench()

        def run(policy):
            return uvlo_engine().solve(
                objective=bench.objective("delta_vthl"),
                spec=uvlo_run_spec(bench, surrogate="sparse"),
                policy=policy,
            )

        ledger_path = tmp_path / "sparse.jsonl"
        policy = RuntimePolicy(ledger=RunLedger(ledger_path))
        uninterrupted = run(policy)
        policy.ledger.close()

        state = resume(ledger_path)
        resumed = run(
            RuntimePolicy(
                cache=state.cache, ledger=RunLedger(tmp_path / "resumed.jsonl")
            )
        )
        assert np.array_equal(uninterrupted.X, resumed.X)
        assert np.array_equal(uninterrupted.y, resumed.y)
        assert np.array_equal(uninterrupted.Z, resumed.Z)
