"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro.acquisition import default_acquisition_optimizer
from repro.bo import RemboBO, RunSpec, Specification, uniform_initial_design
from repro.circuits.behavioral import UVLOTestbench
from repro.embedding import select_embedding_dimension
from repro.experiments import (
    acquisition_weight_ablation,
    embedding_dimension_sweep,
    kernel_ablation,
    projection_ablation,
    uvlo_config,
)
from repro.runtime import FunctionObjective
from repro.sampling import MonteCarloSampler
from repro.synthetic import RareFailureFunction
from repro.utils.validation import unit_cube_bounds


def tiny_optimizer(dim):
    return default_acquisition_optimizer(dim, global_budget=80, local_budget=40)


class TestSyntheticPipeline:
    """Algorithm 2 then Algorithm 1 on a function with known structure."""

    def test_dimension_selection_feeds_rembo(self):
        fun = RareFailureFunction(14, 2, threshold=-1.0, depth=3.0,
                                  radius=0.35, seed=3)
        bounds = unit_cube_bounds(14)
        X0 = uniform_initial_design(bounds, 15, seed=4)
        y0 = np.array([fun(x) for x in X0])

        selection = select_embedding_dimension(
            X0, y0, dims=[1, 2, 3, 5], n_trials=3, seed=5
        )
        d = max(selection.selected_dim, 3)
        engine = RemboBO(batch_size=5, embedding_dim=d, seed=6)
        result = engine.solve(
            objective=FunctionObjective(fun, dim=14, bounds=bounds),
            spec=RunSpec(
                bounds=bounds, n_batches=6, threshold=fun.threshold,
                initial_data=(X0, y0),
            ),
        )
        summary = result.summarize(fun.threshold)
        assert summary.detected
        # failure log points actually fail when re-evaluated
        for idx in summary.failure_indices[:3]:
            assert fun(result.X[idx]) < fun.threshold

    def test_rembo_beats_mc_at_equal_budget(self):
        fun = RareFailureFunction(16, 3, threshold=-1.2, depth=3.0,
                                  radius=0.28, center_fraction=0.55, seed=9)
        bounds = unit_cube_bounds(16)
        objective = FunctionObjective(fun, dim=16, bounds=bounds)
        engine = RemboBO(batch_size=6, embedding_dim=4, seed=12)
        rembo = engine.solve(
            objective=objective,
            spec=RunSpec(n_init=10, n_batches=8, threshold=fun.threshold),
        )
        mc = MonteCarloSampler(rembo.n_evaluations, seed=12).solve(
            objective=objective, spec=RunSpec(threshold=fun.threshold)
        )
        assert rembo.best_y <= mc.best_y
        assert rembo.summarize(fun.threshold).detected
        assert not mc.summarize(fun.threshold).detected


class TestSpecObjectiveConsistency:
    def test_testbench_objective_round_trip(self):
        """Failures flagged on the objective match the raw performance."""
        tb = UVLOTestbench()
        spec = tb.specs["delta_vthl"]
        objective = tb.objective("delta_vthl")
        threshold = tb.threshold("delta_vthl")
        rng = np.random.default_rng(0)
        for _ in range(50):
            x = rng.uniform(-1, 1, 19)
            perf = tb.performance("delta_vthl", x)
            assert (objective(x) < threshold) == spec.is_failure(perf)

    def test_custom_spec_on_arbitrary_function(self):
        spec = Specification("area", threshold=2.0, failure_when="below")
        objective = spec.wrap_objective(lambda x: float(np.sum(np.abs(x))))
        assert objective(np.array([0.5, 0.5])) < spec.minimization_threshold
        assert objective(np.array([2.0, 2.0])) > spec.minimization_threshold


class TestAblationsRunSmall:
    @pytest.fixture(scope="class")
    def cfg(self):
        return uvlo_config(
            n_init=5,
            batch_size=3,
            n_batches=2,
            global_budget=60,
            local_budget=30,
            embedding_dim=4,
            seed=9,
        )

    @pytest.fixture(scope="class")
    def tb(self):
        return UVLOTestbench()

    def test_dimension_sweep(self, tb, cfg):
        rows = embedding_dimension_sweep(tb, "delta_vthl", cfg, dims=[2, 4])
        assert [r.variant for r in rows] == ["d=2", "d=4"]

    def test_weight_ablation(self, tb, cfg):
        rows = acquisition_weight_ablation(tb, "delta_vthl", cfg)
        assert len(rows) == 2

    def test_kernel_ablation(self, tb, cfg):
        rows = kernel_ablation(tb, "delta_vthl", cfg)
        assert len(rows) == 2

    def test_projection_ablation_restores_method(self, tb, cfg):
        from repro.embedding.random_embedding import RandomEmbedding

        original = RandomEmbedding.to_original
        rows = projection_ablation(tb, "delta_vthl", cfg)
        assert len(rows) == 2
        assert RandomEmbedding.to_original is original  # monkey-patch undone
