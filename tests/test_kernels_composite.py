"""Tests for kernel algebra (sum, product, scaled)."""

import numpy as np
import pytest

from repro.kernels import (
    Matern32,
    ProductKernel,
    ScaledKernel,
    SquaredExponential,
    SumKernel,
)
from tests.test_kernels_stationary import numeric_gradients


@pytest.fixture
def X(rng):
    return rng.uniform(-1, 1, (8, 2))


class TestSumKernel:
    def test_operator_sugar(self):
        k = SquaredExponential() + Matern32()
        assert isinstance(k, SumKernel)

    def test_values_add(self, X):
        a, b = SquaredExponential(variance=1.2), Matern32(variance=0.7)
        np.testing.assert_allclose((a + b)(X), a(X) + b(X))

    def test_diag_adds(self, X):
        k = SquaredExponential(variance=1.2) + Matern32(variance=0.7)
        np.testing.assert_allclose(k.diag(X), np.full(8, 1.9))

    def test_theta_concatenates(self):
        k = SquaredExponential() + Matern32()
        assert k.n_params == 4

    def test_theta_roundtrip_updates_children(self):
        k = SquaredExponential() + Matern32()
        theta = k.theta.copy()
        theta[0] = np.log(5.0)
        k.theta = theta
        assert k.left.variance == pytest.approx(5.0)

    def test_gradients_match_numeric(self, X):
        k = SquaredExponential(variance=1.5) + Matern32(lengthscale=0.6)
        for a, n in zip(k.gradients(X), numeric_gradients(k, X)):
            np.testing.assert_allclose(a, n, atol=1e-5)


class TestProductKernel:
    def test_operator_sugar(self):
        k = SquaredExponential() * Matern32()
        assert isinstance(k, ProductKernel)

    def test_values_multiply(self, X):
        a, b = SquaredExponential(), Matern32()
        np.testing.assert_allclose((a * b)(X), a(X) * b(X))

    def test_gradients_match_numeric(self, X):
        k = SquaredExponential(variance=2.0) * Matern32(lengthscale=0.8)
        for a, n in zip(k.gradients(X), numeric_gradients(k, X)):
            np.testing.assert_allclose(a, n, atol=1e-5)

    def test_psd(self, X):
        k = SquaredExponential() * Matern32()
        assert np.linalg.eigvalsh(k(X)).min() > -1e-9


class TestScaledKernel:
    def test_scales_values(self, X):
        inner = SquaredExponential()
        k = ScaledKernel(inner, 3.0)
        np.testing.assert_allclose(k(X), 3.0 * inner(X))

    def test_scale_not_a_parameter(self):
        k = ScaledKernel(SquaredExponential(), 3.0)
        assert k.n_params == 2  # inner kernel only

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            ScaledKernel(SquaredExponential(), 0.0)

    def test_gradients_scaled(self, X):
        inner = SquaredExponential()
        k = ScaledKernel(inner, 2.0)
        for a, b in zip(k.gradients(X), inner.gradients(X)):
            np.testing.assert_allclose(a, 2.0 * b)


class TestNesting:
    def test_three_way_composite(self, X):
        k = (SquaredExponential() + Matern32()) * SquaredExponential(variance=0.5)
        assert k.n_params == 6
        assert k(X).shape == (8, 8)
        for a, n in zip(k.gradients(X), numeric_gradients(k, X)):
            np.testing.assert_allclose(a, n, atol=1e-5)

    def test_type_check(self):
        with pytest.raises(TypeError):
            SumKernel(SquaredExponential(), "not a kernel")
