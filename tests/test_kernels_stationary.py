"""Tests for the stationary kernels: values, gradients, PSD properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    RBF,
    Matern12,
    Matern32,
    Matern52,
    RationalQuadratic,
    SquaredExponential,
    WhiteNoise,
)

ALL_KERNELS = [SquaredExponential, Matern12, Matern32, Matern52, RationalQuadratic]


def numeric_gradients(kernel, X, eps=1e-6):
    """Central-difference gradients of the Gram matrix w.r.t. theta."""
    theta0 = kernel.theta.copy()
    grads = []
    for i in range(theta0.shape[0]):
        tp = theta0.copy()
        tp[i] += eps
        kernel.theta = tp
        kp = kernel(X)
        tm = theta0.copy()
        tm[i] -= eps
        kernel.theta = tm
        km = kernel(X)
        grads.append((kp - km) / (2 * eps))
    kernel.theta = theta0
    return grads


class TestKernelValues:
    def test_se_at_zero_distance_is_variance(self):
        k = SquaredExponential(variance=2.5)
        x = np.array([[0.3, -0.2]])
        assert k(x)[0, 0] == pytest.approx(2.5)

    def test_rbf_alias(self):
        assert RBF is SquaredExponential

    def test_se_known_value(self):
        k = SquaredExponential(lengthscale=1.0)
        X = np.array([[0.0], [1.0]])
        assert k(X)[0, 1] == pytest.approx(np.exp(-0.5))

    def test_matern12_known_value(self):
        k = Matern12(lengthscale=2.0)
        X = np.array([[0.0], [2.0]])
        assert k(X)[0, 1] == pytest.approx(np.exp(-1.0))

    def test_matern_ordering_smoothness(self):
        # at moderate distance: rougher kernels decay faster
        X = np.array([[0.0], [1.0]])
        k12 = Matern12()(X)[0, 1]
        k32 = Matern32()(X)[0, 1]
        k52 = Matern52()(X)[0, 1]
        kse = SquaredExponential()(X)[0, 1]
        assert k12 < k32 < k52 < kse

    @pytest.mark.parametrize("cls", ALL_KERNELS)
    def test_symmetry(self, cls, rng):
        k = cls(dim=3)
        X = rng.uniform(-1, 1, (10, 3))
        K = k(X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)

    @pytest.mark.parametrize("cls", ALL_KERNELS)
    def test_diag_matches_gram_diagonal(self, cls, rng):
        k = cls(dim=2, variance=1.7)
        X = rng.uniform(-1, 1, (8, 2))
        np.testing.assert_allclose(k.diag(X), np.diag(k(X)), atol=1e-12)

    @pytest.mark.parametrize("cls", ALL_KERNELS)
    def test_cross_gram_shape(self, cls, rng):
        k = cls(dim=2)
        X = rng.uniform(-1, 1, (5, 2))
        Z = rng.uniform(-1, 1, (7, 2))
        assert k(X, Z).shape == (5, 7)

    @pytest.mark.parametrize("cls", ALL_KERNELS)
    def test_positive_semidefinite(self, cls, rng):
        k = cls(dim=4, lengthscale=0.7)
        X = rng.uniform(-2, 2, (20, 4))
        eigvals = np.linalg.eigvalsh(k(X))
        assert eigvals.min() > -1e-9


class TestARD:
    def test_requires_dim(self):
        with pytest.raises(ValueError, match="dim"):
            SquaredExponential(ard=True)

    def test_vector_lengthscale(self):
        k = Matern52(dim=3, lengthscale=[0.5, 1.0, 2.0], ard=True)
        assert k.lengthscales.shape == (3,)

    def test_scalar_broadcast(self):
        k = Matern52(dim=3, lengthscale=0.5, ard=True)
        np.testing.assert_array_equal(k.lengthscales, [0.5, 0.5, 0.5])

    def test_irrelevant_dim_ignored_with_large_lengthscale(self, rng):
        k = SquaredExponential(dim=2, lengthscale=[1.0, 1e3], ard=True)
        X = rng.uniform(-1, 1, (6, 2))
        Y = X.copy()
        Y[:, 1] = rng.uniform(-1, 1, 6)  # perturb the irrelevant dim
        np.testing.assert_allclose(k(X), k(Y), atol=1e-4)

    def test_wrong_lengthscale_count(self):
        with pytest.raises(ValueError):
            Matern32(dim=3, lengthscale=[1.0, 2.0], ard=True)


class TestTheta:
    @pytest.mark.parametrize("cls", ALL_KERNELS)
    def test_roundtrip(self, cls):
        k = cls(dim=2, variance=2.0, lengthscale=0.3)
        theta = k.theta.copy()
        k.theta = theta
        np.testing.assert_allclose(k.theta, theta)

    def test_theta_sets_values(self):
        k = SquaredExponential()
        k.theta = np.array([np.log(4.0), np.log(0.5)])
        assert k.variance == pytest.approx(4.0)
        assert k.lengthscales[0] == pytest.approx(0.5)

    def test_wrong_shape_rejected(self):
        k = SquaredExponential()
        with pytest.raises(ValueError):
            k.theta = np.zeros(5)

    @pytest.mark.parametrize("cls", ALL_KERNELS)
    def test_bounds_shape(self, cls):
        k = cls(dim=3, ard=True)
        bounds = k.theta_bounds()
        assert bounds.shape == (k.n_params, 2)
        assert np.all(bounds[:, 0] < bounds[:, 1])


class TestGradients:
    @pytest.mark.parametrize("cls", ALL_KERNELS)
    def test_gradient_matches_numeric_iso(self, cls, rng):
        k = cls(dim=3, variance=1.5, lengthscale=0.8)
        X = rng.uniform(-1, 1, (7, 3))
        analytic = k.gradients(X)
        numeric = numeric_gradients(k, X)
        assert len(analytic) == k.n_params
        for a, n in zip(analytic, numeric):
            np.testing.assert_allclose(a, n, atol=1e-5)

    @pytest.mark.parametrize("cls", [SquaredExponential, Matern32, Matern52])
    def test_gradient_matches_numeric_ard(self, cls, rng):
        k = cls(dim=3, ard=True, lengthscale=[0.5, 1.0, 2.0])
        X = rng.uniform(-1, 1, (6, 3))
        analytic = k.gradients(X)
        numeric = numeric_gradients(k, X)
        for a, n in zip(analytic, numeric):
            np.testing.assert_allclose(a, n, atol=1e-5)

    def test_matern12_gradient_finite_at_zero_distance(self):
        k = Matern12()
        X = np.array([[0.5], [0.5]])  # duplicate points
        grads = k.gradients(X)
        for g in grads:
            assert np.all(np.isfinite(g))


class TestWhiteNoise:
    def test_training_gram_is_scaled_identity(self):
        k = WhiteNoise(variance=0.3)
        X = np.zeros((4, 2))
        np.testing.assert_allclose(k(X), 0.3 * np.eye(4))

    def test_cross_gram_is_zero(self):
        k = WhiteNoise()
        assert np.all(k(np.zeros((3, 1)), np.ones((2, 1))) == 0.0)

    def test_gradient(self):
        k = WhiteNoise(variance=2.0)
        (g,) = k.gradients(np.zeros((3, 1)))
        np.testing.assert_allclose(g, 2.0 * np.eye(3))


@settings(max_examples=25, deadline=None)
@given(
    lengthscale=st.floats(0.1, 10.0),
    variance=st.floats(0.01, 100.0),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_gram_psd_and_bounded(lengthscale, variance, seed):
    """Any stationary Gram matrix is PSD with entries bounded by variance."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3, 3, (12, 2))
    k = Matern52(dim=2, variance=variance, lengthscale=lengthscale)
    K = k(X)
    assert np.all(K <= variance + 1e-9)
    assert np.linalg.eigvalsh(K).min() > -1e-7 * variance
