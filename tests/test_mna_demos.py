"""Tests for the transistor-level MNA demo testbenches."""

import numpy as np
import pytest

from repro.circuits.mna.ldo_demo import LDO_DEMO_DIM, LDODemo
from repro.circuits.mna.uvlo_demo import UVLO_DEMO_DIM, UVLODemo


class TestUVLODemo:
    def test_nominal_threshold_in_supply_range(self):
        demo = UVLODemo()
        vthl = demo.turn_off_threshold()
        assert 0.8 < vthl < UVLODemo.VDD_MAX

    def test_output_switches_along_sweep(self):
        demo = UVLODemo()
        vdd = np.linspace(UVLODemo.VDD_MAX, 0.8, 61)
        ok = demo.output_vs_vdd(vdd)
        # output is near VDD at full supply and collapses at low supply
        assert ok.max() - ok.min() > 1.0

    def test_asymmetric_variations_shift_threshold(self):
        nominal = UVLODemo().turn_off_threshold()
        x = np.zeros(UVLO_DEMO_DIM)
        x[0] = 0.9  # R1 up: divider ratio shifts, threshold must move
        shifted = UVLODemo(x).turn_off_threshold()
        assert shifted != pytest.approx(nominal, abs=1e-3)

    def test_symmetric_variations_cancel_ratiometrically(self):
        """Common drift of all resistors/thresholds cancels in the ratio."""
        nominal = UVLODemo().turn_off_threshold()
        shifted = UVLODemo(np.full(UVLO_DEMO_DIM, 0.5)).turn_off_threshold()
        assert shifted == pytest.approx(nominal, abs=0.05)

    def test_hysteresis_positive(self):
        demo = UVLODemo()
        assert demo.hysteresis() > 0.0

    def test_variation_shape_validated(self):
        with pytest.raises(ValueError):
            UVLODemo(np.zeros(3))


class TestLDODemo:
    def test_nominal_regulation_point(self):
        demo = LDODemo()
        vout = demo.output_voltage()
        # divider 1:1 regulates vout to ~2 * VREF
        assert vout == pytest.approx(2.0 * LDODemo.VREF, abs=0.15)

    def test_quiescent_current_positive_and_small(self):
        iq = LDODemo().quiescent_current()
        assert 0.0 < iq < 5e-3

    def test_load_regulation_positive(self):
        lr = LDODemo().load_regulation()
        assert 0.0 <= lr < 20.0

    def test_heavier_load_droops_more(self):
        demo = LDODemo()
        v_light = demo.output_voltage(1e-4)
        v_heavy = demo.output_voltage(20e-3)
        assert v_heavy <= v_light

    def test_undershoot_nonnegative(self):
        us = LDODemo().undershoot(t_stop=1e-6, dt=2e-8)
        assert us >= 0.0

    def test_variations_move_performance(self):
        base = LDODemo().load_regulation()
        varied = LDODemo(np.full(LDO_DEMO_DIM, 0.9)).load_regulation()
        assert varied != pytest.approx(base, abs=1e-9)

    def test_variation_shape_validated(self):
        with pytest.raises(ValueError):
            LDODemo(np.zeros(2))


class TestMNAObjectives:
    def test_ldo_objective_identity_and_rows(self):
        from repro.circuits.mna import ldo_demo_objective

        objective = ldo_demo_objective("load_regulation")
        assert objective.dim == LDO_DEMO_DIM
        assert not objective.prefers_batch  # row dispatch: fault isolation
        assert objective.threshold is None
        assert objective.cache_key == "LDODemo:load_regulation"
        rng = np.random.default_rng(3)
        X = rng.uniform(-1.0, 1.0, (4, LDO_DEMO_DIM))
        batched = objective.evaluate(X)
        rowwise = np.array(
            [LDODemo(x).load_regulation() for x in X]
        )
        np.testing.assert_array_equal(batched, rowwise)

    def test_ldo_objective_spec_orientation(self):
        from repro.bo.spec import Specification
        from repro.circuits.mna import ldo_demo_objective

        spec = Specification(
            "load regulation", threshold=0.22, failure_when="above", units="%"
        )
        objective = ldo_demo_objective("load_regulation", spec=spec)
        assert objective.threshold == spec.minimization_threshold
        x = np.zeros(LDO_DEMO_DIM)
        value = float(objective.evaluate(x[None, :])[0])
        raw = LDODemo(x).load_regulation()
        assert value == pytest.approx(
            float(spec.to_minimization(np.array([raw]))[0])
        )

    def test_ldo_unknown_measure_rejected(self):
        from repro.circuits.mna import ldo_demo_objective

        with pytest.raises(KeyError, match="no measure"):
            ldo_demo_objective("gain_margin")

    def test_uvlo_objective(self):
        from repro.circuits.mna import uvlo_demo_objective

        objective = uvlo_demo_objective()
        assert objective.dim == UVLO_DEMO_DIM
        value = float(
            objective.evaluate(np.zeros(UVLO_DEMO_DIM)[None, :])[0]
        )
        assert np.isfinite(value) and value >= 0.0
