"""Tests for the MNA engine: linear elements and DC solves."""

import numpy as np
import pytest

from repro.circuits.mna import (
    Capacitor,
    Circuit,
    ConvergenceError,
    CurrentSource,
    Diode,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
    solve_dc,
)


class TestResistiveNetworks:
    def test_voltage_divider(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", "0", 12.0))
        c.add(Resistor("R1", "in", "mid", 2000.0))
        c.add(Resistor("R2", "mid", "0", 1000.0))
        sol = solve_dc(c)
        assert sol.voltage("mid") == pytest.approx(4.0)

    def test_source_branch_current(self):
        c = Circuit()
        vs = c.add(VoltageSource("V1", "in", "0", 10.0))
        c.add(Resistor("R1", "in", "0", 1000.0))
        sol = solve_dc(c)
        # MNA branch current convention: current into the + terminal
        assert abs(sol.branch_current(vs)) == pytest.approx(0.01)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add(CurrentSource("I1", "0", "n1", 1e-3))  # pushes into n1
        c.add(Resistor("R1", "n1", "0", 1000.0))
        sol = solve_dc(c)
        assert sol.voltage("n1") == pytest.approx(1.0)

    def test_wheatstone_bridge_balanced(self):
        c = Circuit()
        c.add(VoltageSource("V1", "top", "0", 5.0))
        for name, a, b in [
            ("R1", "top", "l"), ("R2", "top", "r"), ("R3", "l", "0"), ("R4", "r", "0"),
        ]:
            c.add(Resistor(name, a, b, 1000.0))
        c.add(Resistor("Rg", "l", "r", 500.0))
        sol = solve_dc(c)
        assert sol.voltage("l") == pytest.approx(sol.voltage("r"))

    def test_floating_via_ground_alias(self):
        c = Circuit()
        c.add(VoltageSource("V1", "a", "gnd", 3.0))
        c.add(Resistor("R1", "a", "GND", 100.0))
        sol = solve_dc(c)
        assert sol.voltage("a") == pytest.approx(3.0)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            Resistor("R", "a", "b", 0.0)


class TestControlledSources:
    def test_vcvs_gain(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", "0", 2.0))
        c.add(VCVS("E1", "out", "0", "in", "0", gain=3.0))
        c.add(Resistor("RL", "out", "0", 1000.0))
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(6.0)

    def test_vccs_into_load(self):
        c = Circuit()
        c.add(VoltageSource("V1", "ctrl", "0", 1.0))
        # SPICE G convention: current flows out+ -> out- through the source,
        # i.e. it is pulled out of node "out"
        c.add(VCCS("G1", "out", "0", "ctrl", "0", gm=1e-3))
        c.add(Resistor("RL", "out", "0", 1000.0))
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(-1.0)

    def test_vcvs_differential_control(self):
        c = Circuit()
        c.add(VoltageSource("Va", "a", "0", 3.0))
        c.add(VoltageSource("Vb", "b", "0", 1.0))
        c.add(VCVS("E1", "out", "0", "a", "b", gain=2.0))
        c.add(Resistor("RL", "out", "0", 1.0))
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(4.0)


class TestDiode:
    def test_forward_drop_near_0p7(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "d", 1000.0))
        c.add(Diode("D1", "d", "0"))
        sol = solve_dc(c)
        assert 0.55 < sol.voltage("d") < 0.8

    def test_reverse_blocks(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", "0", -5.0))
        c.add(Resistor("R1", "in", "d", 1000.0))
        c.add(Diode("D1", "d", "0"))
        sol = solve_dc(c)
        assert sol.voltage("d") == pytest.approx(-5.0, abs=0.01)

    def test_series_diodes_stack_drops(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "d1", 1000.0))
        c.add(Diode("D1", "d1", "d2"))
        c.add(Diode("D2", "d2", "0"))
        sol = solve_dc(c)
        assert 1.1 < sol.voltage("d1") < 1.6


class TestCapacitorDC:
    def test_open_in_dc(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", "0", 5.0))
        c.add(Resistor("R1", "in", "out", 1000.0))
        c.add(Capacitor("C1", "out", "0", 1e-6))
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(5.0)  # no DC path to gnd


class TestSolverRobustness:
    def test_time_varying_source_evaluated_at_zero(self):
        c = Circuit()
        c.add(VoltageSource("V1", "a", "0", lambda t: 2.0 + t))
        c.add(Resistor("R1", "a", "0", 100.0))
        sol = solve_dc(c)
        assert sol.voltage("a") == pytest.approx(2.0)

    def test_branch_current_requires_branch(self):
        c = Circuit()
        r = c.add(Resistor("R1", "a", "0", 100.0))
        c.add(VoltageSource("V1", "a", "0", 1.0))
        sol = solve_dc(c)
        with pytest.raises(ValueError):
            sol.branch_current(r)
