"""Tests for the level-1 MOSFET model and transistor circuits."""

import numpy as np
import pytest

from repro.circuits.mna import (
    Circuit,
    MOSFET,
    MOSParams,
    Resistor,
    VoltageSource,
    level1_current,
    solve_dc,
    sweep_source,
)


class TestLevel1Equations:
    def test_cutoff(self):
        p = MOSParams(vth=0.5)
        i_d, gm, gds = level1_current(p, vgs=0.3, vds=1.0)
        assert i_d == 0.0 and gm == 0.0 and gds > 0.0

    def test_saturation_square_law(self):
        p = MOSParams(vth=0.5, kp=2e-4, w=10e-6, l=1e-6, lambda_=0.0)
        i_d, gm, _ = level1_current(p, vgs=1.0, vds=2.0)
        beta = 2e-4 * 10.0
        assert i_d == pytest.approx(0.5 * beta * 0.25)
        assert gm == pytest.approx(beta * 0.5)

    def test_triode_region(self):
        p = MOSParams(vth=0.5, kp=2e-4, w=10e-6, l=1e-6, lambda_=0.0)
        i_d, _, gds = level1_current(p, vgs=1.5, vds=0.1)
        beta = 2e-4 * 10.0
        assert i_d == pytest.approx(beta * (1.0 * 0.1 - 0.005))
        assert gds > 1e-5  # strongly conductive channel

    def test_continuity_at_pinchoff(self):
        p = MOSParams(vth=0.5, kp=2e-4, lambda_=0.05)
        vov = 0.5
        below = level1_current(p, vgs=1.0, vds=vov - 1e-9)[0]
        above = level1_current(p, vgs=1.0, vds=vov + 1e-9)[0]
        assert below == pytest.approx(above, rel=1e-6)

    def test_channel_length_modulation(self):
        p = MOSParams(vth=0.5, lambda_=0.1)
        low = level1_current(p, vgs=1.0, vds=1.0)[0]
        high = level1_current(p, vgs=1.0, vds=3.0)[0]
        assert high > low

    def test_scaled_variation(self):
        p = MOSParams(vth=0.5, kp=2e-4, l=1e-6)
        q = p.scaled(dl=0.1, dvth=0.05, dkp=-0.02)
        assert q.l == pytest.approx(1.1e-6)
        assert q.vth == pytest.approx(0.55)
        assert q.kp == pytest.approx(1.96e-4)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            MOSParams(kp=-1.0)


class TestMOSFETCircuits:
    def test_common_source_operating_point(self):
        c = Circuit()
        c.add(VoltageSource("VDD", "vdd", "0", 3.0))
        c.add(VoltageSource("VG", "g", "0", 0.8))
        c.add(Resistor("RD", "vdd", "d", 20e3))
        m = c.add(MOSFET("M1", "d", "g", "0",
                         MOSParams(vth=0.5, kp=2e-4, w=10e-6, l=1e-6, lambda_=0.0)))
        sol = solve_dc(c)
        # Id = 0.5*2e-3*(0.3)^2 = 90uA -> Vd = 3 - 1.8 = 1.2
        assert sol.voltage("d") == pytest.approx(1.2, abs=0.01)
        op = m.operating_point(sol.x)
        assert op["saturated"] == 1.0

    def test_diode_connected_nmos(self):
        c = Circuit()
        c.add(VoltageSource("VDD", "vdd", "0", 3.0))
        c.add(Resistor("R1", "vdd", "d", 10e3))
        c.add(MOSFET("M1", "d", "d", "0", MOSParams(vth=0.5, kp=2e-4)))
        sol = solve_dc(c)
        vd = sol.voltage("d")
        assert 0.5 < vd < 1.5  # one vth plus overdrive

    def test_nmos_current_mirror(self):
        c = Circuit()
        c.add(VoltageSource("VDD", "vdd", "0", 3.0))
        c.add(Resistor("Rref", "vdd", "ref", 25e3))
        params = MOSParams(vth=0.5, kp=2e-4, lambda_=0.0)
        c.add(MOSFET("M1", "ref", "ref", "0", params))
        c.add(MOSFET("M2", "out", "ref", "0", params))
        c.add(Resistor("Rout", "vdd", "out", 10e3))
        sol = solve_dc(c)
        i_ref = (3.0 - sol.voltage("ref")) / 25e3
        i_out = (3.0 - sol.voltage("out")) / 10e3
        assert i_out == pytest.approx(i_ref, rel=0.05)

    def test_cmos_inverter_transfer(self):
        c = Circuit()
        c.add(VoltageSource("VDD", "vdd", "0", 3.0))
        vin = c.add(VoltageSource("VIN", "in", "0", 0.0))
        c.add(MOSFET("MP", "out", "in", "vdd",
                     MOSParams(vth=0.5, kp=1e-4, w=20e-6), polarity="pmos"))
        c.add(MOSFET("MN", "out", "in", "0",
                     MOSParams(vth=0.5, kp=2e-4, w=10e-6)))
        sweep = sweep_source(c, vin, np.linspace(0.0, 3.0, 31))
        vout = sweep.voltage("out")
        assert vout[0] == pytest.approx(3.0, abs=0.01)  # input low -> out high
        assert vout[-1] == pytest.approx(0.0, abs=0.01)
        assert np.all(np.diff(vout) <= 1e-6)  # monotone falling

    def test_pmos_source_follower_polarity(self):
        c = Circuit()
        c.add(VoltageSource("VDD", "vdd", "0", 3.0))
        c.add(VoltageSource("VG", "g", "0", 1.0))
        c.add(MOSFET("MN", "vdd", "g", "s", MOSParams(vth=0.5, kp=2e-4)))
        c.add(Resistor("RS", "s", "0", 10e3))
        sol = solve_dc(c)
        vs = sol.voltage("s")
        assert 0.2 < vs < 0.5  # about vg - vth - overdrive

    def test_drain_source_swap_symmetry(self):
        """The model is symmetric: reversing D/S flips the current sign."""
        c1 = Circuit()
        c1.add(VoltageSource("V1", "a", "0", 0.1))
        c1.add(VoltageSource("VG", "g", "0", 1.5))
        c1.add(MOSFET("M", "a", "g", "0", MOSParams(vth=0.5, lambda_=0.0)))
        sol1 = solve_dc(c1)

        c2 = Circuit()
        c2.add(VoltageSource("V1", "a", "0", 0.1))
        c2.add(VoltageSource("VG", "g", "0", 1.5))
        c2.add(MOSFET("M", "0", "g", "a", MOSParams(vth=0.5, lambda_=0.0)))
        sol2 = solve_dc(c2)
        # branch current through V1 identical in magnitude either way
        i1 = sol1.x[c1.n_nodes + 0]
        i2 = sol2.x[c2.n_nodes + 0]
        assert i1 == pytest.approx(i2, rel=1e-6)

    def test_polarity_validation(self):
        with pytest.raises(ValueError):
            MOSFET("M", "d", "g", "s", polarity="cmos")
