"""Tests for transient integration, DC sweep and measurements."""

import numpy as np
import pytest

from repro.circuits.mna import (
    Capacitor,
    Circuit,
    CurrentSource,
    Resistor,
    VoltageSource,
    overshoot,
    settles_within,
    solve_dc,
    solve_transient,
    sweep_source,
    threshold_crossings,
    undershoot,
)


def rc_circuit(tau_r=1e3, tau_c=1e-6, source=None):
    c = Circuit()
    c.add(VoltageSource("V1", "in", "0", source if source else 1.0))
    c.add(Resistor("R1", "in", "out", tau_r))
    c.add(Capacitor("C1", "out", "0", tau_c))
    return c


class TestTransient:
    def test_rc_step_response(self):
        c = rc_circuit(source=lambda t: 1.0 if t > 0 else 0.0)
        result = solve_transient(c, t_stop=5e-3, dt=2e-5, x0=np.zeros(c.size))
        v = result.voltage("out")
        # value at t = tau is 1 - 1/e; BE is first order so tolerance is loose
        idx = np.searchsorted(result.time, 1e-3)
        assert v[idx] == pytest.approx(1.0 - np.exp(-1.0), abs=0.03)
        assert v[-1] == pytest.approx(1.0, abs=0.01)

    def test_defaults_to_dc_initial_condition(self):
        c = rc_circuit(source=2.0)
        result = solve_transient(c, t_stop=1e-4, dt=1e-5)
        # starts at the DC solution: already charged
        assert result.voltage("out")[0] == pytest.approx(2.0)

    def test_time_axis(self):
        c = rc_circuit()
        result = solve_transient(c, t_stop=1e-4, dt=1e-5)
        assert result.time[0] == 0.0
        assert result.time[-1] == pytest.approx(1e-4)
        assert np.all(np.diff(result.time) > 0)

    def test_rc_discharge(self):
        c = Circuit()
        c.add(Resistor("R1", "out", "0", 1e3))
        c.add(Capacitor("C1", "out", "0", 1e-6))
        x0 = np.zeros(c.size)
        x0[c.node("out")] = 1.0
        result = solve_transient(c, t_stop=3e-3, dt=2e-5, x0=x0)
        idx = np.searchsorted(result.time, 1e-3)
        assert result.voltage("out")[idx] == pytest.approx(np.exp(-1.0), abs=0.03)

    def test_current_source_charges_capacitor_linearly(self):
        c = Circuit()
        c.add(CurrentSource("I1", "0", "out", 1e-3))  # 1 mA into out
        c.add(Capacitor("C1", "out", "0", 1e-6))
        c.add(Resistor("Rleak", "out", "0", 1e9))
        result = solve_transient(c, t_stop=1e-3, dt=1e-5, x0=np.zeros(c.size))
        # dv/dt = I/C = 1000 V/s -> 1 V at 1 ms
        assert result.voltage("out")[-1] == pytest.approx(1.0, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_transient(rc_circuit(), t_stop=0.0, dt=1e-6)


class TestSweep:
    def test_linear_circuit_sweep(self):
        c = Circuit()
        vs = c.add(VoltageSource("V1", "in", "0", 0.0))
        c.add(Resistor("R1", "in", "mid", 1e3))
        c.add(Resistor("R2", "mid", "0", 1e3))
        result = sweep_source(c, vs, np.linspace(0, 10, 11))
        np.testing.assert_allclose(result.voltage("mid"), np.linspace(0, 5, 11))

    def test_source_value_restored(self):
        c = Circuit()
        vs = c.add(VoltageSource("V1", "in", "0", 7.0))
        c.add(Resistor("R1", "in", "0", 1e3))
        sweep_source(c, vs, [0.0, 1.0])
        assert vs.value == 7.0

    def test_empty_values_rejected(self):
        c = Circuit()
        vs = c.add(VoltageSource("V1", "in", "0", 0.0))
        c.add(Resistor("R1", "in", "0", 1e3))
        with pytest.raises(ValueError):
            sweep_source(c, vs, [])


class TestMeasurements:
    def test_threshold_crossings_interpolated(self):
        t = np.array([0.0, 1.0, 2.0, 3.0])
        wave = np.array([0.0, 1.0, 0.0, 1.0])
        rising = threshold_crossings(t, wave, 0.5, "rising")
        np.testing.assert_allclose(rising, [0.5, 2.5])
        falling = threshold_crossings(t, wave, 0.5, "falling")
        np.testing.assert_allclose(falling, [1.5])
        both = threshold_crossings(t, wave, 0.5, "both")
        assert both.size == 3

    def test_no_crossings(self):
        t = np.linspace(0, 1, 5)
        assert threshold_crossings(t, np.zeros(5), 0.5).size == 0

    def test_undershoot_overshoot(self):
        wave = np.array([1.0, 0.7, 1.2, 1.0])
        assert undershoot(wave, 1.0) == pytest.approx(0.3)
        assert overshoot(wave, 1.0) == pytest.approx(0.2)
        assert undershoot(np.array([1.0, 1.1]), 1.0) == 0.0

    def test_settles_within(self):
        t = np.linspace(0, 1, 11)
        wave = np.concatenate([np.full(5, 0.5), np.full(6, 1.0)])
        assert settles_within(t, wave, target=1.0, tolerance=0.05, after=0.5)
        assert not settles_within(t, wave, target=1.0, tolerance=0.05, after=0.0)

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            threshold_crossings(np.zeros(2), np.zeros(2), 0.0, "sideways")
