"""Tests for the numlint static-analysis suite.

Every pass is exercised against known-bad and known-good fixture snippets
under ``tests/numlint_fixtures/``; the suite ends with a self-check
asserting the repository itself is clean against the committed baseline,
plus CLI and baseline round-trip tests.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.numlint import (
    FileContext,
    all_passes,
    get_pass,
    load_baseline,
    run_paths,
    save_baseline,
    split_findings,
)
from tools.numlint.core import run_passes_on_context
from tools.numlint.sarif import build_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "numlint_fixtures"

#: Role-appropriate synthetic paths: dtype hygiene only applies to hot-path
#: modules and nondeterminism to library/experiment code, so fixtures are
#: lifted into the relevant part of the tree.
LIBRARY_PATH = "src/repro/sampling/fixture.py"
HOT_PATH = "src/repro/gp/fixture.py"
EXPERIMENT_PATH = "src/repro/experiments/fixture.py"
RUNTIME_PATH = "src/repro/runtime/fixture.py"
TEST_PATH = "tests/fixture.py"


def lint_fixture(
    filename: str, pass_name: str, relpath: str = LIBRARY_PATH
) -> list:
    source = (FIXTURES / filename).read_text(encoding="utf-8")
    ctx = FileContext(relpath, source)
    return run_passes_on_context(ctx, [get_pass(pass_name)])


def codes(findings) -> list[str]:
    return [f.code for f in findings]


class TestRngDiscipline:
    def test_fires_on_bad(self):
        found = codes(lint_fixture("rng_bad.py", "rng-discipline"))
        assert found.count("NL001") == 6
        assert found.count("NL002") == 2

    def test_silent_on_good(self):
        assert lint_fixture("rng_good.py", "rng-discipline") == []

    def test_unseeded_allowed_in_tests(self):
        found = codes(
            lint_fixture("rng_bad.py", "rng-discipline", relpath=TEST_PATH)
        )
        # legacy global-state calls stay banned even in tests, but the
        # bare default_rng() findings disappear
        assert "NL002" not in found
        assert "NL001" in found


class TestLinalgSafety:
    def test_fires_on_bad(self):
        found = codes(lint_fixture("linalg_bad.py", "linalg-safety"))
        assert found.count("NL101") == 3
        assert found.count("NL102") == 2

    def test_silent_on_good(self):
        assert lint_fixture("linalg_good.py", "linalg-safety") == []

    def test_tests_are_exempt(self):
        assert (
            lint_fixture("linalg_bad.py", "linalg-safety", relpath=TEST_PATH)
            == []
        )

    def test_flags_the_original_embedding_bug(self):
        ctx = FileContext(
            "src/repro/embedding/fixture.py",
            "import numpy as np\n"
            "def pinv(A):\n"
            "    return np.linalg.solve(A.T @ A, A.T)\n",
        )
        found = run_passes_on_context(ctx, [get_pass("linalg-safety")])
        assert codes(found) == ["NL102"]


class TestOutBuffer:
    def test_fires_on_bad(self):
        found = codes(lint_fixture("outbuf_bad.py", "out-buffer"))
        assert "NL201" in found
        assert "NL202" in found
        assert "NL203" in found
        assert "NL204" in found

    def test_silent_on_good(self):
        assert lint_fixture("outbuf_good.py", "out-buffer") == []

    def test_repo_kernels_satisfy_contract(self):
        # the real hot-path kernels are the reference implementations of
        # the convention; they must never be flagged
        path = REPO_ROOT / "src" / "repro" / "kernels" / "stationary.py"
        ctx = FileContext.from_path(path, REPO_ROOT)
        assert run_passes_on_context(ctx, [get_pass("out-buffer")]) == []


class TestDtypeHygiene:
    def test_fires_on_bad_in_hot_path(self):
        found = codes(lint_fixture("dtype_bad.py", "dtype-hygiene", HOT_PATH))
        assert found.count("NL301") == 3
        assert found.count("NL302") == 1

    def test_silent_on_good_in_hot_path(self):
        assert lint_fixture("dtype_good.py", "dtype-hygiene", HOT_PATH) == []

    def test_out_of_scope_module_not_flagged(self):
        assert lint_fixture("dtype_bad.py", "dtype-hygiene", LIBRARY_PATH) == []


class TestNondeterminism:
    def test_fires_on_bad(self):
        found = codes(
            lint_fixture("nondet_bad.py", "nondeterminism", EXPERIMENT_PATH)
        )
        assert found.count("NL401") == 1
        assert found.count("NL402") == 3
        assert found.count("NL403") == 2

    def test_silent_on_good(self):
        assert (
            lint_fixture("nondet_good.py", "nondeterminism", EXPERIMENT_PATH)
            == []
        )

    def test_tests_are_exempt(self):
        assert (
            lint_fixture("nondet_bad.py", "nondeterminism", relpath=TEST_PATH)
            == []
        )


class TestCholeskyDiscipline:
    def test_nl103_fires_in_gp_modules(self):
        found = codes(lint_fixture("cholesky_bad.py", "linalg-safety", HOT_PATH))
        assert found == ["NL103", "NL103"]

    def test_nl103_scoped_to_gp_path(self):
        assert (
            lint_fixture("cholesky_bad.py", "linalg-safety", LIBRARY_PATH) == []
        )

    def test_jittered_helper_and_suppression_pass(self):
        assert lint_fixture("cholesky_good.py", "linalg-safety", HOT_PATH) == []

    def test_tests_are_exempt(self):
        assert (
            lint_fixture("cholesky_bad.py", "linalg-safety", relpath=TEST_PATH)
            == []
        )


class TestShapeContracts:
    def test_fires_on_bad(self):
        found = codes(lint_fixture("shapes_bad.py", "shape-contracts"))
        assert found == [
            "NL501",  # non-literal spec
            "NL501",  # malformed spec
            "NL502",  # name missing from the signature
            "NL510",  # matmul inner-dimension conflict
            "NL511",  # return shape cannot unify
            "NL520",  # interprocedural call-site mismatch
        ]

    def test_silent_on_good(self):
        assert lint_fixture("shapes_good.py", "shape-contracts") == []

    def test_tests_are_exempt(self):
        assert (
            lint_fixture("shapes_bad.py", "shape-contracts", relpath=TEST_PATH)
            == []
        )

    def test_cross_module_mismatch(self, tmp_path):
        """NL520 across files: the callee's contract lives in another module."""
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "callee.py").write_text(
            "from repro.utils.contracts import shape_contract\n"
            "\n"
            "@shape_contract('X: (n, d), A: (D, d) -> (n, D)')\n"
            "def reverse_map(X, A):\n"
            "    return X @ A.T\n",
            encoding="utf-8",
        )
        (pkg / "caller.py").write_text(
            "from pkg.callee import reverse_map\n"
            "from repro.utils.contracts import shape_contract\n"
            "\n"
            "@shape_contract('X: (n, d), A: (D, d)')\n"
            "def bad(X, A):\n"
            "    return reverse_map(X, A.T)\n"
            "\n"
            "@shape_contract('X: (n, d), A: (D, d)')\n"
            "def good(X, A):\n"
            "    return reverse_map(X, A)\n",
            encoding="utf-8",
        )
        findings = run_paths(["src"], tmp_path, [get_pass("shape-contracts")])
        assert [(f.code, Path(f.relpath).name) for f in findings] == [
            ("NL520", "caller.py")
        ]


class TestContractRollout:
    def test_fires_on_uncontracted_public_array_function(self):
        found = codes(lint_fixture("rollout_bad.py", "contract-rollout"))
        assert found == ["NL530", "NL530"]

    def test_silent_on_good(self):
        assert lint_fixture("rollout_good.py", "contract-rollout") == []

    def test_uncontracted_modules_are_not_in_scope(self):
        # a module that never imports shape_contract has not opted in
        ctx = FileContext(
            LIBRARY_PATH,
            "import numpy as np\n"
            "def f(X: np.ndarray) -> np.ndarray:\n"
            "    return X\n",
        )
        assert run_passes_on_context(ctx, [get_pass("contract-rollout")]) == []

    def test_tests_are_exempt(self):
        assert (
            lint_fixture("rollout_bad.py", "contract-rollout", relpath=TEST_PATH)
            == []
        )

    def test_runtime_modules_are_contracted_by_path(self):
        # repro/runtime/ is opted in unconditionally: a public array
        # function there needs a contract even without the import
        source = (
            "import numpy as np\n"
            "def f(X: np.ndarray) -> np.ndarray:\n"
            "    return X\n"
        )
        ctx = FileContext("src/repro/runtime/fixture.py", source)
        found = run_passes_on_context(ctx, [get_pass("contract-rollout")])
        assert codes(found) == ["NL530"]
        # the same module outside the opted-in path is not in scope
        ctx = FileContext(LIBRARY_PATH, source)
        assert run_passes_on_context(ctx, [get_pass("contract-rollout")]) == []


class TestConcurrencySafety:
    def test_fires_on_bad(self):
        found = codes(lint_fixture("concurrency_bad.py", "concurrency-safety"))
        assert found.count("NL601") == 4
        assert found.count("NL602") == 2
        assert found.count("NL603") == 2
        assert found.count("NL604") == 4
        assert found.count("NL605") == 1
        assert len(found) == 13

    def test_silent_on_good(self):
        assert lint_fixture("concurrency_good.py", "concurrency-safety") == []

    def test_nl604_exempt_in_tests(self):
        found = codes(
            lint_fixture(
                "concurrency_bad.py", "concurrency-safety", relpath=TEST_PATH
            )
        )
        # blocking I/O inside spans is fine in tests; the race-shaped
        # codes stay banned everywhere (stress tests submit callables too)
        assert "NL604" not in found
        assert "NL601" in found and "NL603" in found

    def test_bound_method_submission_resolves(self):
        # the shared-instance findings anchor to the method body, proving
        # `self.method` submissions resolve through the enclosing class
        found = lint_fixture("concurrency_bad.py", "concurrency-safety")
        shared_self = [
            f for f in found if "'self._work'" in f.message
        ]
        assert {f.code for f in shared_self} == {"NL601", "NL602"}

    def test_repo_runtime_stack_is_clean(self):
        # the hardened shared classes are the reference implementations of
        # the @thread_shared contract; they must never be flagged
        for rel in (
            "src/repro/runtime/cache.py",
            "src/repro/runtime/ledger.py",
            "src/repro/runtime/broker.py",
            "src/repro/telemetry/metrics.py",
            "src/repro/telemetry/trace.py",
            "src/repro/utils/parallel.py",
        ):
            ctx = FileContext.from_path(REPO_ROOT / rel, REPO_ROOT)
            found = run_passes_on_context(
                ctx, [get_pass("concurrency-safety")]
            )
            assert found == [], [f.render() for f in found]


class TestDeterminism:
    def test_fires_on_bad(self):
        found = codes(
            lint_fixture("determinism_bad.py", "determinism", RUNTIME_PATH)
        )
        assert found.count("NL701") == 2
        assert found.count("NL702") == 1
        assert found.count("NL703") == 2
        assert found.count("NL704") == 1
        assert found.count("NL705") == 1
        assert found.count("NL706") == 2
        assert len(found) == 9

    def test_silent_on_good(self):
        assert (
            lint_fixture("determinism_good.py", "determinism", RUNTIME_PATH)
            == []
        )

    def test_silent_in_tests(self):
        # replay guarantees are a library property; test code may clock and
        # draw freely
        assert (
            lint_fixture("determinism_bad.py", "determinism", TEST_PATH) == []
        )

    def test_nl706_scoped_to_persistence_modules(self):
        # swallowed handlers are only a replay hazard on persistence paths;
        # the same code outside repro.runtime/repro.telemetry is quiet
        found = codes(
            lint_fixture("determinism_bad.py", "determinism", LIBRARY_PATH)
        )
        assert "NL706" not in found

    def test_interprocedural_witness_chain(self):
        # the cache-key finding names the helper chain down to time.time(),
        # proving the effect came through the call graph, not the body
        found = lint_fixture(
            "determinism_bad.py", "determinism", RUNTIME_PATH
        )
        nl701 = [f for f in found if f.code == "NL701"]
        assert any("time.time()" in f.message for f in nl701)
        assert any("_salt" in f.message for f in nl701)

    def test_repo_runtime_stack_is_clean(self):
        # the ledger/cache/broker/replay stack is what the pass protects;
        # it must itself satisfy every NL7xx rule
        determinism = get_pass("determinism")
        for rel in (
            "src/repro/runtime/cache.py",
            "src/repro/runtime/ledger.py",
            "src/repro/runtime/broker.py",
            "src/repro/runtime/replay.py",
            "src/repro/runtime/resume.py",
            "src/repro/runtime/objective.py",
        ):
            ctx = FileContext.from_path(REPO_ROOT / rel, REPO_ROOT)
            found = run_passes_on_context(ctx, [determinism])
            assert found == [], [f.render() for f in found]


class TestSarif:
    def test_document_structure(self):
        findings = lint_fixture(
            "determinism_bad.py", "determinism", RUNTIME_PATH
        )
        doc = build_sarif(findings, all_passes())
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "numlint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "NL000" in rule_ids and "NL701" in rule_ids
        assert len(run["results"]) == len(findings)
        for result, finding in zip(run["results"], findings):
            assert result["ruleId"] == finding.code
            assert result["ruleId"] in rule_ids
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"] == finding.relpath
            assert loc["region"]["startLine"] == finding.line
            assert loc["region"]["startColumn"] == finding.col + 1
            assert result["partialFingerprints"]["numlint/v1"]

    def test_empty_run_still_lists_rules(self):
        doc = build_sarif([], all_passes())
        (run,) = doc["runs"]
        assert run["results"] == []
        assert len(run["tool"]["driver"]["rules"]) > 30


class TestSuppression:
    def test_inline_disable(self):
        found = codes(lint_fixture("suppressed.py", "linalg-safety"))
        # the targeted and blanket disables silence their lines; the
        # wrong-code disable does not
        assert found == ["NL101"]


class TestFramework:
    def test_all_passes_registered(self):
        names = {p.name for p in all_passes()}
        assert names == {
            "rng-discipline",
            "linalg-safety",
            "out-buffer",
            "dtype-hygiene",
            "nondeterminism",
            "shape-contracts",
            "contract-rollout",
            "concurrency-safety",
            "determinism",
        }

    def test_syntax_error_reported_not_raised(self):
        ctx = FileContext(LIBRARY_PATH, "def broken(:\n")
        found = run_passes_on_context(ctx, all_passes())
        assert codes(found) == ["NL000"]

    def test_alias_resolution(self):
        ctx = FileContext(
            LIBRARY_PATH,
            "import numpy.linalg as la\n"
            "def f(K):\n"
            "    return la.inv(K)\n",
        )
        found = run_passes_on_context(ctx, [get_pass("linalg-safety")])
        assert codes(found) == ["NL101"]


class TestBaseline:
    BAD = (
        "import numpy as np\n"
        "def f(K):\n"
        "    return np.linalg.inv(K)\n"
    )

    def _write_tree(self, root: Path, extra_line: bool = False) -> Path:
        src = root / "src" / "pkg"
        src.mkdir(parents=True, exist_ok=True)
        body = self.BAD
        if extra_line:
            body += "def g(K):\n    return np.linalg.inv(K + 1)\n"
        (src / "mod.py").write_text(body, encoding="utf-8")
        return root

    def test_round_trip_and_new_finding_detection(self, tmp_path):
        root = self._write_tree(tmp_path)
        baseline_path = root / "baseline.json"
        findings = run_paths(["src"], root)
        assert codes(findings) == ["NL101"]

        save_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        new, baselined, stale = split_findings(findings, baseline)
        assert new == [] and len(baselined) == 1 and stale == []

        # a second offending line is new relative to the baseline
        self._write_tree(tmp_path, extra_line=True)
        findings = run_paths(["src"], root)
        new, baselined, stale = split_findings(findings, baseline)
        assert len(new) == 1 and len(baselined) == 1 and stale == []

        # fixing everything leaves the baseline entry stale
        (root / "src" / "pkg" / "mod.py").write_text(
            "def f(K):\n    return K\n", encoding="utf-8"
        )
        findings = run_paths(["src"], root)
        new, baselined, stale = split_findings(findings, baseline)
        assert new == [] and baselined == [] and len(stale) == 1

    def test_fingerprints_survive_line_moves(self, tmp_path):
        root = self._write_tree(tmp_path)
        baseline_path = root / "baseline.json"
        save_baseline(baseline_path, run_paths(["src"], root))
        baseline = load_baseline(baseline_path)

        # prepend unrelated code: line numbers shift, fingerprints don't
        mod = root / "src" / "pkg" / "mod.py"
        mod.write_text(
            "import numpy as np\n\n\ndef unrelated():\n    return 1\n\n"
            "def f(K):\n    return np.linalg.inv(K)\n",
            encoding="utf-8",
        )
        new, baselined, stale = split_findings(
            run_paths(["src"], root), baseline
        )
        assert new == [] and len(baselined) == 1 and stale == []


class TestRepoSelfCheck:
    def test_repo_clean_against_committed_baseline(self):
        findings = run_paths(
            ["src", "benchmarks", "tests", "examples"], REPO_ROOT
        )
        baseline = load_baseline(REPO_ROOT / "tools" / "numlint" / "baseline.json")
        new, _, stale = split_findings(findings, baseline)
        rendered = "\n".join(f.render() for f in new)
        assert new == [], f"new numlint findings:\n{rendered}"
        assert stale == [], (
            "stale baseline entries; run "
            "`python -m tools.numlint --update-baseline`"
        )

    def test_fixture_directory_is_excluded_from_walks(self):
        findings = run_paths(["tests"], REPO_ROOT)
        assert all("numlint_fixtures" not in f.relpath for f in findings)


class TestCli:
    def _run(self, *argv: str, cwd: Path = REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "tools.numlint", *argv],
            cwd=cwd,
            capture_output=True,
            text=True,
        )

    def test_repo_exits_zero(self):
        proc = self._run()
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_bad_file_exits_one_with_json(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TestBaseline.BAD, encoding="utf-8")
        proc = self._run(
            str(bad), "--root", str(tmp_path), "--no-baseline",
            "--format", "json",
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert [f["code"] for f in payload["new"]] == ["NL101"]

    def test_update_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TestBaseline.BAD, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        proc = self._run(
            "bad.py", "--root", str(tmp_path),
            "--baseline", str(baseline), "--update-baseline",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        proc = self._run(
            "bad.py", "--root", str(tmp_path), "--baseline", str(baseline)
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_stale_baseline_fails_only_with_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TestBaseline.BAD, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        proc = self._run(
            "bad.py", "--root", str(tmp_path),
            "--baseline", str(baseline), "--update-baseline",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        # fix the finding: its baseline fingerprint is now stale
        bad.write_text("def f(K):\n    return K\n", encoding="utf-8")
        proc = self._run(
            "bad.py", "--root", str(tmp_path), "--baseline", str(baseline)
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        proc = self._run(
            "bad.py", "--root", str(tmp_path), "--baseline", str(baseline),
            "--fail-stale",
        )
        assert proc.returncode == 1
        assert "stale" in proc.stdout

    def test_list_passes(self):
        proc = self._run("--list-passes")
        assert proc.returncode == 0
        for code in ("NL001", "NL101", "NL201", "NL301", "NL401", "NL601", "NL701"):
            assert code in proc.stdout

    def test_missing_path_is_usage_error(self):
        proc = self._run("no/such/dir")
        assert proc.returncode == 2

    def test_jobs_output_byte_identical(self):
        seq = self._run("src/repro/runtime", "--jobs", "1")
        par = self._run("src/repro/runtime", "--jobs", "4")
        assert seq.returncode == par.returncode == 0, seq.stdout + par.stdout
        assert par.stdout == seq.stdout

    def test_sarif_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(TestBaseline.BAD, encoding="utf-8")
        proc = self._run(
            str(bad), "--root", str(tmp_path), "--no-baseline",
            "--format", "sarif",
        )
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["NL101"]

    def test_explain_known_code(self):
        proc = self._run("--explain", "NL701")
        assert proc.returncode == 0
        assert "cache" in proc.stdout
        assert "triggers:" in proc.stdout and "clean:" in proc.stdout

    def test_explain_unknown_code(self):
        proc = self._run("--explain", "NL999")
        assert proc.returncode == 2
        assert "unknown code" in proc.stderr


@pytest.mark.parametrize("lint_pass", all_passes(), ids=lambda p: p.name)
def test_every_pass_declares_codes_and_description(lint_pass):
    assert lint_pass.codes, "passes must declare at least one code"
    assert lint_pass.description
    assert all(code.startswith("NL") for code in lint_pass.codes)
