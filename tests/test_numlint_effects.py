"""Unit tests for the interprocedural effect-inference engine.

The NL7xx determinism pass consumes this index; these tests pin the engine
itself: intrinsic effect catalogs, fixpoint propagation over the call
graph (including cycles), effect joins at call sites, decorator-wrapped
and nested functions, method resolution, and witness chains.
"""

from __future__ import annotations

from tools.numlint import FileContext
from tools.numlint.effects import PURE, build_effect_index

MOD_PATH = "src/repro/sampling/mod.py"
MOD = "repro.sampling.mod"


def index_of(source: str, relpath: str = MOD_PATH):
    return build_effect_index([FileContext(relpath, source)])


class TestIntrinsicEffects:
    def test_catalog_hits(self):
        idx = index_of(
            "import os\n"
            "import time\n"
            "import numpy as np\n"
            "def clocked():\n"
            "    return time.time()\n"
            "def drawn():\n"
            "    return np.random.rand()\n"
            "def envy():\n"
            "    return os.environ.get('HOME')\n"
            "def addressed(x):\n"
            "    return repr(x)\n"
            "def writes(path, data):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(data)\n"
            "def pure(x):\n"
            "    return x + 1\n"
        )
        assert idx.effects_of(f"{MOD}.clocked") == {"TIME"}
        assert idx.effects_of(f"{MOD}.drawn") == {"GLOBAL_RNG"}
        assert idx.effects_of(f"{MOD}.envy") == {"ENV"}
        assert idx.effects_of(f"{MOD}.addressed") == {"ADDR"}
        assert "IO" in idx.effects_of(f"{MOD}.writes")
        assert idx.is_pure(f"{MOD}.pure")

    def test_monotonic_clock_and_seeded_rng_are_pure(self):
        idx = index_of(
            "import time\n"
            "from numpy.random import default_rng\n"
            "def timed():\n"
            "    return time.perf_counter()\n"
            "def seeded():\n"
            "    return default_rng(7).normal()\n"
            "def unseeded():\n"
            "    return default_rng().normal()\n"
        )
        assert idx.is_pure(f"{MOD}.timed")
        assert idx.is_pure(f"{MOD}.seeded")
        assert idx.effects_of(f"{MOD}.unseeded") == {"GLOBAL_RNG"}

    def test_set_iteration_is_nondet(self):
        idx = index_of(
            "def over_set(names):\n"
            "    return [n for n in set(names)]\n"
            "def over_sorted(names):\n"
            "    return [n for n in sorted(set(names))]\n"
        )
        assert idx.effects_of(f"{MOD}.over_set") == {"NONDET_ITER"}
        assert idx.is_pure(f"{MOD}.over_sorted")

    def test_unknown_function_is_pure(self):
        idx = index_of("def f():\n    return 1\n")
        assert idx.effects_of("no.such.function") == PURE
        assert idx.is_pure("no.such.function")


class TestPropagation:
    def test_transitive_effect_and_chain(self):
        idx = index_of(
            "import time\n"
            "def leaf():\n"
            "    return time.time()\n"
            "def mid():\n"
            "    return leaf()\n"
            "def top():\n"
            "    return mid()\n"
        )
        assert idx.effects_of(f"{MOD}.top") == {"TIME"}
        assert idx.chain(f"{MOD}.top", "TIME") == [
            f"{MOD}.top",
            f"{MOD}.mid",
            f"{MOD}.leaf",
            "time.time()",
        ]
        assert (
            idx.render_chain(f"{MOD}.top", "TIME")
            == "top -> mid -> leaf -> time.time()"
        )
        source = idx.source_of(f"{MOD}.top", "TIME")
        assert source is not None and source.detail == "time.time()"

    def test_effects_join_across_callees(self):
        idx = index_of(
            "import os\n"
            "import time\n"
            "def a():\n"
            "    return time.time()\n"
            "def b():\n"
            "    return os.environ['HOME']\n"
            "def both():\n"
            "    return a(), b()\n"
        )
        assert idx.effects_of(f"{MOD}.both") == {"TIME", "ENV"}

    def test_cycles_terminate_and_share_effects(self):
        idx = index_of(
            "import time\n"
            "def ping(n):\n"
            "    return pong(n - 1) if n else time.time()\n"
            "def pong(n):\n"
            "    return ping(n - 1) if n else 0.0\n"
            "def recursive(n):\n"
            "    return recursive(n - 1) if n else time.time()\n"
        )
        assert idx.effects_of(f"{MOD}.ping") == {"TIME"}
        assert idx.effects_of(f"{MOD}.pong") == {"TIME"}
        assert idx.effects_of(f"{MOD}.recursive") == {"TIME"}
        # witness chains stay finite through the cycle
        chain = idx.chain(f"{MOD}.pong", "TIME")
        assert chain[-1] == "time.time()"

    def test_decorated_functions_propagate(self):
        idx = index_of(
            "import functools\n"
            "import time\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def salted():\n"
            "    return time.time()\n"
            "def caller():\n"
            "    return salted()\n"
        )
        assert idx.effects_of(f"{MOD}.salted") == {"TIME"}
        assert idx.effects_of(f"{MOD}.caller") == {"TIME"}

    def test_nested_defs_are_separate_units(self):
        idx = index_of(
            "import time\n"
            "def outer():\n"
            "    def inner():\n"
            "        return time.time()\n"
            "    return inner()\n"
        )
        assert idx.effects_of(f"{MOD}.outer.inner") == {"TIME"}
        assert idx.effects_of(f"{MOD}.outer") == {"TIME"}

    def test_self_method_resolution(self):
        idx = index_of(
            "import random\n"
            "class Thing:\n"
            "    def _draw(self):\n"
            "        return random.random()\n"
            "    def evaluate(self, x):\n"
            "        return x + self._draw()\n"
        )
        assert idx.effects_of(f"{MOD}.Thing._draw") == {"GLOBAL_RNG"}
        assert idx.effects_of(f"{MOD}.Thing.evaluate") == {"GLOBAL_RNG"}

    def test_callback_reference_edge(self):
        # passing an impure function by name taints the consumer: the
        # engine adds a reference edge even without a direct call
        idx = index_of(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
            "def runs_callback(items):\n"
            "    return list(map(stamp, items))\n"
        )
        assert "TIME" in idx.effects_of(f"{MOD}.runs_callback")


class TestCrossModule:
    def test_imported_name_resolves_across_files(self):
        helpers = FileContext(
            "src/repro/sampling/helpers.py",
            "import time\n"
            "def salty():\n"
            "    return time.time()\n",
        )
        mod = FileContext(
            MOD_PATH,
            "from repro.sampling.helpers import salty\n"
            "def build_key(tag):\n"
            "    return f'{tag}-{salty()}'\n",
        )
        idx = build_effect_index([helpers, mod])
        assert idx.effects_of(f"{MOD}.build_key") == {"TIME"}
        assert (
            idx.render_chain(f"{MOD}.build_key", "TIME")
            == "build_key -> salty -> time.time()"
        )

    def test_parse_error_contexts_are_skipped(self):
        broken = FileContext("src/repro/sampling/broken.py", "def broken(:\n")
        ok = FileContext(MOD_PATH, "def f():\n    return 1\n")
        idx = build_effect_index([broken, ok])
        assert idx.is_pure(f"{MOD}.f")
