"""Tests for the DIRECT / DIRECT-L global optimizer."""

import numpy as np
import pytest

from repro.optim import Direct
from repro.utils.validation import unit_cube_bounds


def sphere_at(c):
    c = np.asarray(c, dtype=float)
    return lambda x: float(np.sum((x - c) ** 2))


class TestConvergence:
    @pytest.mark.parametrize("locally_biased", [True, False])
    def test_sphere_2d(self, locally_biased):
        opt = Direct(max_evaluations=600, locally_biased=locally_biased)
        result = opt.minimize(sphere_at([0.3, -0.4]), unit_cube_bounds(2))
        assert result.fun < 1e-5
        np.testing.assert_allclose(result.x, [0.3, -0.4], atol=1e-2)

    def test_sphere_5d(self):
        opt = Direct(max_evaluations=3000)
        result = opt.minimize(sphere_at([0.2] * 5), unit_cube_bounds(5))
        assert result.fun < 1e-3

    def test_multimodal_finds_global_basin(self):
        """Rastrigin-like in 2-D: DIRECT should land in the global basin."""

        def fun(x):
            return float(
                np.sum(x**2 - 0.3 * np.cos(5 * np.pi * x)) + 0.6
            )

        opt = Direct(max_evaluations=1500, locally_biased=False)
        result = opt.minimize(fun, unit_cube_bounds(2))
        assert np.linalg.norm(result.x) < 0.15

    def test_asymmetric_bounds(self):
        opt = Direct(max_evaluations=500)
        bounds = np.array([[2.0, 10.0], [-5.0, -1.0]])
        result = opt.minimize(sphere_at([3.0, -2.0]), bounds)
        assert result.fun < 1e-4

    def test_optimum_on_boundary(self):
        opt = Direct(max_evaluations=800)
        result = opt.minimize(sphere_at([2.0, 2.0]), unit_cube_bounds(2))
        # best feasible point is the (1, 1) corner
        assert result.fun == pytest.approx(2.0, abs=0.05)


class TestBudgets:
    def test_respects_max_evaluations(self):
        opt = Direct(max_evaluations=100)
        result = opt.minimize(sphere_at([0.1, 0.1, 0.1]), unit_cube_bounds(3))
        assert result.n_evaluations <= 100

    def test_budget_one(self):
        opt = Direct(max_evaluations=1)
        result = opt.minimize(sphere_at([0.0, 0.0]), unit_cube_bounds(2))
        assert result.n_evaluations == 1
        np.testing.assert_allclose(result.x, [0.0, 0.0])  # the centre

    def test_f_target_early_stop(self):
        opt = Direct(max_evaluations=100_000, f_target=0.01)
        result = opt.minimize(sphere_at([0.25, 0.25]), unit_cube_bounds(2))
        assert result.fun <= 0.01
        assert result.success
        assert result.n_evaluations < 100_000

    def test_history_is_monotone(self):
        opt = Direct(max_evaluations=500)
        result = opt.minimize(sphere_at([0.3, 0.3]), unit_cube_bounds(2))
        values = [f for _, f in result.history]
        assert values == sorted(values, reverse=True)

    def test_no_eval_free_spinning(self):
        """The loop must terminate promptly once the budget is exhausted."""
        calls = {"n": 0}

        def fun(x):
            calls["n"] += 1
            return float(np.sum(x**2))

        opt = Direct(max_evaluations=51, max_iterations=10**6)
        result = opt.minimize(fun, unit_cube_bounds(4))
        assert calls["n"] == result.n_evaluations <= 51


class TestValidation:
    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            Direct(max_evaluations=0)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Direct().minimize(sphere_at([0.0]), [[1.0, 0.0]])


class TestLocallyBiasedDiffers:
    def test_division_counts_differ(self):
        """DIRECT-L divides fewer rectangles per iteration than DIRECT."""
        fun = sphere_at([0.3, -0.2, 0.1])
        r_l = Direct(max_evaluations=400, locally_biased=True).minimize(
            fun, unit_cube_bounds(3)
        )
        r_std = Direct(max_evaluations=400, locally_biased=False).minimize(
            fun, unit_cube_bounds(3)
        )
        # both converge on a convex bowl; they just take different paths
        assert r_l.fun < 1e-3
        assert r_std.fun < 1e-3
