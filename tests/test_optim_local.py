"""Tests for the local optimizers: COBYLA, Nelder-Mead, CMA-ES, random."""

import numpy as np
import pytest

from repro.optim import (
    CmaEs,
    Cobyla,
    CountingObjective,
    GlobalLocalOptimizer,
    MultiStartOptimizer,
    NelderMead,
    RandomSearch,
    Direct,
)
from repro.utils.validation import unit_cube_bounds


def sphere_at(c):
    c = np.asarray(c, dtype=float)
    return lambda x: float(np.sum((x - c) ** 2))


def rosenbrock2(x):
    return float(100.0 * (x[1] - x[0] ** 2) ** 2 + (1.0 - x[0]) ** 2)


LOCALS = [
    Cobyla(max_evaluations=2000),
    NelderMead(max_evaluations=2000),
    CmaEs(max_evaluations=3000, seed=7),
]


class TestLocalConvergence:
    @pytest.mark.parametrize("opt", LOCALS, ids=lambda o: type(o).__name__)
    def test_sphere_3d(self, opt):
        result = opt.minimize(sphere_at([0.2, -0.3, 0.5]), unit_cube_bounds(3))
        assert result.fun < 1e-4

    @pytest.mark.parametrize("opt", LOCALS, ids=lambda o: type(o).__name__)
    def test_warm_start_used(self, opt):
        result = opt.minimize(
            sphere_at([0.5, 0.5]), unit_cube_bounds(2), x0=np.array([0.45, 0.55])
        )
        assert result.fun < 1e-4

    def test_cobyla_rosenbrock_makes_progress(self):
        opt = Cobyla(max_evaluations=5000, rho_begin=0.3, rho_end=1e-8)
        bounds = np.array([[-2.0, 2.0], [-2.0, 2.0]])
        start = np.array([-1.0, 1.0])
        result = opt.minimize(rosenbrock2, bounds, x0=start)
        # linear trust-region models crawl in the banana valley; require
        # substantial progress from f(start) = 4, not full convergence
        assert result.fun < 0.3 * rosenbrock2(start)

    def test_nelder_mead_rosenbrock(self):
        opt = NelderMead(max_evaluations=4000)
        bounds = np.array([[-2.0, 2.0], [-2.0, 2.0]])
        result = opt.minimize(rosenbrock2, bounds, x0=np.array([-1.0, 1.0]))
        assert result.fun < 1e-3

    def test_optimum_on_boundary(self):
        opt = Cobyla(max_evaluations=1000)
        result = opt.minimize(sphere_at([2.0, 2.0]), unit_cube_bounds(2))
        assert result.fun == pytest.approx(2.0, abs=0.05)

    @pytest.mark.parametrize("opt", LOCALS, ids=lambda o: type(o).__name__)
    def test_stays_in_bounds(self, opt):
        seen = []

        def fun(x):
            seen.append(np.array(x))
            return float(np.sum((x - 2.0) ** 2))

        opt.minimize(fun, unit_cube_bounds(2))
        pts = np.array(seen)
        assert np.all(pts >= -1.0 - 1e-9) and np.all(pts <= 1.0 + 1e-9)


class TestBudgets:
    @pytest.mark.parametrize(
        "opt",
        [
            Cobyla(max_evaluations=50),
            NelderMead(max_evaluations=50),
            CmaEs(max_evaluations=60, seed=1),
            RandomSearch(max_evaluations=50, seed=1),
        ],
        ids=lambda o: type(o).__name__,
    )
    def test_respects_budget(self, opt):
        counted = CountingObjective(sphere_at([0.2] * 4))
        opt.minimize(counted, unit_cube_bounds(4))
        assert counted.n_evaluations <= 60

    def test_cobyla_tiny_budget_falls_back(self):
        opt = Cobyla(max_evaluations=3)
        result = opt.minimize(sphere_at([0.0] * 8), unit_cube_bounds(8))
        assert result.n_evaluations <= 3
        assert not result.success


class TestRandomSearch:
    def test_improves_with_budget(self):
        fun = sphere_at([0.3, 0.3])
        small = RandomSearch(max_evaluations=10, seed=0).minimize(
            fun, unit_cube_bounds(2)
        )
        large = RandomSearch(max_evaluations=1000, seed=0).minimize(
            fun, unit_cube_bounds(2)
        )
        assert large.fun <= small.fun

    def test_reproducible(self):
        fun = sphere_at([0.1, 0.1])
        a = RandomSearch(max_evaluations=50, seed=5).minimize(fun, unit_cube_bounds(2))
        b = RandomSearch(max_evaluations=50, seed=5).minimize(fun, unit_cube_bounds(2))
        np.testing.assert_allclose(a.x, b.x)


class TestComposition:
    def test_global_local_beats_global_alone(self):
        fun = sphere_at([0.123, -0.456, 0.789])
        bounds = unit_cube_bounds(3)
        coarse = Direct(max_evaluations=150).minimize(fun, bounds)
        combo = GlobalLocalOptimizer(
            Direct(max_evaluations=150), Cobyla(max_evaluations=500)
        ).minimize(fun, bounds)
        assert combo.fun <= coarse.fun

    def test_global_local_counts_both(self):
        fun = sphere_at([0.2, 0.2])
        combo = GlobalLocalOptimizer(
            Direct(max_evaluations=100), Cobyla(max_evaluations=100)
        )
        result = combo.minimize(fun, unit_cube_bounds(2))
        assert result.n_evaluations > 100  # both stages ran

    def test_multistart_keeps_best(self):
        fun = rosenbrock2
        bounds = np.array([[-2.0, 2.0], [-2.0, 2.0]])
        multi = MultiStartOptimizer(
            NelderMead(max_evaluations=800), n_starts=4, seed=3
        )
        result = multi.minimize(fun, bounds)
        assert result.fun < 1e-2

    def test_multistart_rejects_zero_starts(self):
        with pytest.raises(ValueError):
            MultiStartOptimizer(NelderMead(), n_starts=0)


class TestCountingObjective:
    def test_counts_and_tracks_best(self):
        counted = CountingObjective(sphere_at([0.0, 0.0]))
        counted(np.array([1.0, 1.0]))
        counted(np.array([0.5, 0.5]))
        counted(np.array([0.8, 0.8]))  # worse, should not update best
        assert counted.n_evaluations == 3
        assert counted.best_f == pytest.approx(0.5)
        np.testing.assert_allclose(counted.best_x, [0.5, 0.5])

    def test_history_records_improvements_only(self):
        counted = CountingObjective(sphere_at([0.0]))
        for v in [1.0, 0.5, 0.7, 0.2]:
            counted(np.array([v]))
        assert len(counted.history) == 3  # 1.0, 0.5, 0.2
